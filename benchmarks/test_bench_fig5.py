"""Benchmark: regenerate Figure 5 (% SLA failures vs load).

Kernel timed: one load sweep of the resource-management algorithm at a
fixed slack — allocation (Algorithm 1, with its capacity searches over the
hybrid predictor) plus the ground-truth runtime evaluation, per load point.
The paper notes each such line "was generated in under one second".
"""

from repro.experiments import fig5
from repro.experiments.rm_common import build_rm_setup, default_loads


def test_bench_fig5(benchmark, emit, warm_ground_truth):
    setup = build_rm_setup(fast=True)
    loads = default_loads(fast=True)
    benchmark(lambda: setup.sweep(loads, 1.0))
    emit("fig5", fig5.run(fast=True).rendered)
