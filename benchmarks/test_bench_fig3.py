"""Benchmark: regenerate Figure 3 (accuracy vs calibration-point spacing).

Kernel timed: the whole LQN-backed sweep — dozens of layered solves under
the paper's 20 ms convergence criterion, relationship-2 refits per x value.
"""

from repro.experiments import fig3


def test_bench_fig3(benchmark, emit, warm_ground_truth):
    result = benchmark.pedantic(
        lambda: fig3.run(fast=True), rounds=2, iterations=1
    )
    emit("fig3", result.rendered)
