"""Benchmark: batched MVA sweep solving vs the serial per-point path.

The PR gate for the vectorized Bard–Schweitzer core: on each of the
three experiment-shaped sweeps below, one ``LqnSolver.solve_sweep`` call
must be **>= 10x** faster than the serial path it replaced.  The serial
baseline is honest about what the pre-batching experiments actually did:

* **fig2** — the evaluation grid (3 architectures x 9 evaluation
  fractions).  The serial path solved every model *twice* — once for
  ``predict_mrt_ms`` and once for ``predict_throughput`` — so its
  baseline is 54 solves for 27 points.
* **fig6** — the resource-management load sweep's per-server prediction
  grid: every server of the section-9.1 pool (8 AppServS + 4 AppServF +
  4 AppServVF) predicted at 17 load levels, one solve per point — the
  allocator predicts each *managed server*, not each architecture.
* **table1** — the full table-1 pipeline grid: the evaluation points
  (double-solved, as in fig2) plus the hybrid start-up calibration
  points (single-solved), 39 models and 66 serial solves.

Ratios are min-of-``REPS`` wall-clock on both sides, with serial and
sweep repetitions *interleaved* so a transient slowdown on the machine
cannot poison one side's whole sample (deflaked: the minimum of a few
repetitions is far more stable than a single run).  They are measured
inside the test so the gate also holds under ``--benchmark-disable``
in CI.  Accuracy rides along: ``warm_start=False``
sweeps must be bit-identical to serial solves, and the default warm
sweeps must stay within the solver's convergence criterion.

Run as a script to (re)generate the committed artifact::

    PYTHONPATH=src python benchmarks/test_bench_mva_batch.py --bench BENCH_mva.json
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np
import pytest

from repro.experiments.scenario import (
    EVALUATION_FRACTIONS,
    LOWER_CALIBRATION_FRACTIONS,
    SOLVER_OPTIONS,
    UPPER_CALIBRATION_FRACTIONS,
)
from repro.historical.throughput import gradient_from_think_time
from repro.hybrid.model import lqn_max_throughput
from repro.lqn.builder import (
    RequestTypeParameters,
    TradeModelParameters,
    build_trade_model,
)
from repro.lqn.solver import LqnSolver
from repro.servers.catalogue import ALL_APP_SERVERS
from repro.workload.trade import typical_workload

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_mva.json"

GATE_SPEEDUP = 10.0
REPS = 5

# Fixed calibration (the section-5 values the solver tests use) so the
# sweeps here are self-contained — no simulated-testbed warm-up needed.
PARAMS = TradeModelParameters(
    request_types={
        "browse": RequestTypeParameters(
            name="browse",
            app_demand_ms=5.376,
            db_calls=1.14,
            db_cpu_per_call_ms=0.8294,
            db_disk_per_call_ms=1.2,
        ),
        "buy": RequestTypeParameters(
            name="buy",
            app_demand_ms=10.455,
            db_calls=2.0,
            db_cpu_per_call_ms=1.613,
            db_disk_per_call_ms=1.5,
        ),
    }
)

# fig6's load axis spans idle to ~1.7x the max-throughput load, like the
# section-9 sweep's 17 load levels.
FIG6_FRACTIONS = tuple(i / 10 for i in range(1, 18))


def _n_at_max() -> dict[str, float]:
    """Max-throughput load per architecture, from the bottleneck law."""
    gradient = gradient_from_think_time(7000.0)
    out: dict[str, float] = {}
    for arch in ALL_APP_SERVERS:
        probe = build_trade_model(arch, typical_workload(100), PARAMS)
        out[arch.name] = lqn_max_throughput(probe) / gradient
    return out


def _grid(fraction_weights: list[tuple[float, int]]):
    """Build (model, serial_solves) pairs over architectures x fractions."""
    n_at_max = _n_at_max()
    models, weights = [], []
    for arch in ALL_APP_SERVERS:
        for frac, weight in fraction_weights:
            n = max(1, int(round(frac * n_at_max[arch.name])))
            models.append(build_trade_model(arch, typical_workload(n), PARAMS))
            weights.append(weight)
    return models, weights


def _fig6_grid():
    """One model per (managed server, load level) of the section-9 pool."""
    from repro.experiments.scenario import rm_server_pool

    n_at_max = _n_at_max()
    arch_by_name = {arch.name: arch for arch in ALL_APP_SERVERS}
    models, weights = [], []
    for server in rm_server_pool():
        arch = arch_by_name[server.architecture]
        for frac in FIG6_FRACTIONS:
            n = max(1, int(round(frac * n_at_max[arch.name])))
            models.append(build_trade_model(arch, typical_workload(n), PARAMS))
            weights.append(1)
    return models, weights


def _shapes() -> dict[str, tuple[list, list[int]]]:
    evaluation = [(frac, 2) for frac in EVALUATION_FRACTIONS]
    calibration = [
        (frac, 1)
        for frac in (*LOWER_CALIBRATION_FRACTIONS, *UPPER_CALIBRATION_FRACTIONS)
    ]
    return {
        "fig2": _grid(evaluation),
        "fig6": _fig6_grid(),
        "table1": _grid(evaluation + calibration),
    }


def _measure(models: list, weights: list[int]) -> dict[str, float]:
    """Min-of-REPS wall time for the serial loop and the batched sweep.

    Serial and sweep repetitions are interleaved: the sweep side is so
    much faster that a back-to-back block of its repetitions fits inside
    a single transient stall, which would poison every sample on that
    side at once.
    """
    serial_s = sweep_s = float("inf")
    for _ in range(REPS):
        solver = LqnSolver(SOLVER_OPTIONS)
        start = time.perf_counter()
        for model, weight in zip(models, weights):
            for _ in range(weight):
                solver.solve(model)
        serial_s = min(serial_s, time.perf_counter() - start)

        solver = LqnSolver(SOLVER_OPTIONS)
        start = time.perf_counter()
        solver.solve_sweep(models)
        sweep_s = min(sweep_s, time.perf_counter() - start)
    return {
        "points": len(models),
        "serial_solves": sum(weights),
        "serial_s": serial_s,
        "sweep_s": sweep_s,
        "speedup": serial_s / sweep_s,
    }


def run_shapes() -> dict[str, dict[str, float]]:
    """Measure every gated sweep shape (the BENCH_mva.json payload)."""
    return {name: _measure(models, weights) for name, (models, weights) in _shapes().items()}


@pytest.fixture(scope="module")
def shapes():
    return _shapes()


@pytest.fixture(scope="module")
def measured(shapes):
    return {name: _measure(models, weights) for name, (models, weights) in shapes.items()}


def test_bench_mva_batch_speedup_gate(measured, emit):
    """Every experiment-shaped sweep must clear the 10x gate."""
    rows = "\n".join(
        f"  {name:>6}: {m['points']:>2} points / {m['serial_solves']:>2} serial solves  "
        f"serial {m['serial_s'] * 1e3:7.1f} ms   sweep {m['sweep_s'] * 1e3:6.1f} ms   "
        f"{m['speedup']:5.1f}x"
        for name, m in measured.items()
    )
    emit("bench_mva_batch", "Batched MVA sweep vs serial per-point solving:\n" + rows)
    for name, m in measured.items():
        assert m["speedup"] >= GATE_SPEEDUP, (
            f"{name}: {m['speedup']:.1f}x < {GATE_SPEEDUP}x gate"
        )


def test_bench_mva_batch_cold_sweep_is_bit_identical(shapes):
    """warm_start=False sweeps reproduce serial solves bit-for-bit."""
    models, _ = shapes["fig2"]
    solver = LqnSolver(SOLVER_OPTIONS)
    serial = [solver.solve(model) for model in models]
    swept = solver.solve_sweep(models, warm_start=False)
    for a, b in zip(serial, swept):
        assert a.mean_response_ms() == b.mean_response_ms()
        assert a.total_throughput_req_per_s() == b.total_throughput_req_per_s()
        assert a.iterations == b.iterations


def test_bench_mva_batch_warm_sweep_within_criterion(shapes):
    """Warm-started sweeps stay within the solver's convergence criterion."""
    models, _ = shapes["fig6"]
    solver = LqnSolver(SOLVER_OPTIONS)
    serial = [solver.solve(model) for model in models]
    swept = solver.solve_sweep(models, warm_start=True)
    for a, b in zip(serial, swept):
        assert b.mean_response_ms() == pytest.approx(
            a.mean_response_ms(), abs=SOLVER_OPTIONS.convergence_criterion_ms
        )


#: The finite-capacity solve path's allowed tax on capacity-free sweeps:
#: solve_batch_with_loss on an unbounded input must stay within 5% of the
#: raw core (it detects "no capacity stations", calls the core once, and
#: attaches zero loss arrays — nothing else).
LOSS_OVERHEAD_GATE = 1.05
LOSS_REPS = 9


def _unbounded_mixed_batch():
    """A capacity-free sweep shaped like the overload experiment's grid."""
    from repro.lqn.loss import solve_batch_with_loss  # noqa: F401 (import check)
    from repro.lqn.mva import MvaBatchInput, MvaInput, Station

    points = []
    for index in range(64):
        points.append(
            MvaInput(
                stations=[Station("app", servers=2), Station("db"), Station("disk")],
                class_names=["browse", "buy"],
                populations=[10 + index, 5 + index // 2],
                think_times_ms=[7000.0, 7000.0],
                demands=np.array([[5.4, 1.9, 1.4], [10.5, 3.2, 3.0]]),
                open_class_names=["open_browse"],
                open_rates_per_ms=[0.02 + 0.0005 * index],
                open_demands=np.array([[5.4, 1.9, 1.4]]),
            )
        )
    return MvaBatchInput.from_points(points)


def test_bench_loss_path_overhead_on_unbounded_sweeps():
    """Finite-capacity wrapper: < 5% overhead and bitwise-equal results
    when no station carries a capacity bound (min-of-REPS, interleaved)."""
    from repro.lqn.loss import solve_batch_with_loss
    from repro.lqn.mva import solve_batch

    batch = _unbounded_mixed_batch()
    plain_s = wrapped_s = float("inf")
    for _ in range(LOSS_REPS):
        start = time.perf_counter()
        plain = solve_batch(batch)
        plain_s = min(plain_s, time.perf_counter() - start)

        start = time.perf_counter()
        wrapped = solve_batch_with_loss(batch)
        wrapped_s = min(wrapped_s, time.perf_counter() - start)

    assert (wrapped.throughput_per_ms == plain.throughput_per_ms).all()
    assert (wrapped.queue_lengths == plain.queue_lengths).all()
    assert wrapped.open_response_ms == plain.open_response_ms
    assert not wrapped.loss_probability.any()
    assert wrapped_s <= plain_s * LOSS_OVERHEAD_GATE, (
        f"loss path adds {(wrapped_s / plain_s - 1) * 100:.2f}% "
        f"(> {(LOSS_OVERHEAD_GATE - 1) * 100:.0f}% gate) on unbounded sweeps"
    )


def test_bench_mva_batch_sweep_wall_cost(benchmark, shapes):
    """pytest-benchmark timing of the largest gated sweep (table1 shape)."""
    models, _ = shapes["table1"]
    solver = LqnSolver(SOLVER_OPTIONS)
    solutions = benchmark(lambda: solver.solve_sweep(models))
    assert len(solutions) == len(models)


def test_committed_bench_mva_artifact_is_valid():
    """BENCH_mva.json: every published shape documents a >= 10x speedup."""
    data = json.loads(BENCH_PATH.read_text())
    assert data["mode"] == "wall-clock"
    assert data["gate_speedup"] == GATE_SPEEDUP
    assert set(data["shapes"]) == {"fig2", "fig6", "table1"}
    for name, m in data["shapes"].items():
        assert m["speedup"] >= GATE_SPEEDUP, name
        assert m["serial_solves"] >= m["points"] > 0
        assert m["serial_s"] > m["sweep_s"] > 0
        assert m["speedup"] == pytest.approx(m["serial_s"] / m["sweep_s"], rel=1e-6)


def main() -> None:
    """Regenerate the committed BENCH_mva.json artifact."""
    import argparse

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--bench", default=str(BENCH_PATH), help="output path")
    args = parser.parse_args()
    shapes = {}
    for name, m in run_shapes().items():
        serial_s = round(m["serial_s"], 6)
        sweep_s = round(m["sweep_s"], 6)
        shapes[name] = {
            "points": m["points"],
            "serial_solves": m["serial_solves"],
            "serial_s": serial_s,
            "sweep_s": sweep_s,
            "speedup": round(serial_s / sweep_s, 6),
        }
    payload = {
        "mode": "wall-clock",
        "gate_speedup": GATE_SPEEDUP,
        "reps": REPS,
        "solver": {"convergence_criterion_ms": SOLVER_OPTIONS.convergence_criterion_ms},
        "shapes": shapes,
    }
    pathlib.Path(args.bench).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))


if __name__ == "__main__":
    main()
