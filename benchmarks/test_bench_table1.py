"""Benchmark: regenerate Table 1 (historical relationship parameters).

Kernel timed: the full historical-model calibration from stored data points
(relationship 1 fits on both established servers, relationship 2 scaling,
new-server extrapolation) — the recalibration cost section 8.4 cares about.
"""

from repro.experiments import table1
from repro.experiments.scenario import build_historical_model


def test_bench_table1(benchmark, emit, warm_ground_truth):
    benchmark(lambda: build_historical_model(fast=True, with_mix=False))
    emit("table1", table1.run(fast=True).rendered)
