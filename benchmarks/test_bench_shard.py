"""Benchmark: sharded serving scaling and the published baseline gate.

Two jobs:

* regenerate the virtual-time shard sweep at benchmark scale and assert
  the headline scaling property — **≥2x warm-cache throughput at 4
  shards vs 1** (the committed ``BENCH_serving.json`` gate, here
  re-measured rather than re-read);
* sanity-check the committed ``BENCH_serving.json`` itself: the file CI
  publishes must carry the same gate, declare its virtual-time mode and
  cost model, and document a recovered chaos phase.

The sweep is virtual-time (an explicit cost model, a fake clock), so
these numbers are deterministic and machine-independent — this gate
cannot flake on a loaded CI runner.  pytest-benchmark still times the
real wall cost of driving one warm fleet pass through the router.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments import sharded_serving
from repro.experiments.scenario import build_predictors
from repro.service.loadgen import FleetConfig, FleetLoadGenerator
from repro.util.clock import FakeClock

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serving.json"


@pytest.fixture(scope="module")
def historical(warm_ground_truth):
    return build_predictors(fast=True)[0]


@pytest.fixture(scope="module")
def sweep(historical):
    return sharded_serving.run_sweep(4_000, (1, 2, 4, 8), historical)


def test_bench_shard_warm_speedup_gate(sweep, emit):
    """4 warm shards must be at least 2x 1 warm shard (the PR gate)."""
    rows = "\n".join(
        f"  {n} shard(s): warm {sweep[str(n)]['warm']['throughput_rps']:>10.0f} rps "
        f"({sweep[str(n)]['warm_speedup_vs_1']:.2f}x), "
        f"bottleneck={sweep[str(n)]['warm']['bottleneck']}"
        for n in (1, 2, 4, 8)
    )
    emit("bench_shard_sweep", "Virtual-time warm scaling:\n" + rows)
    assert sweep["4"]["warm_speedup_vs_1"] >= 2.0
    # Monotone non-degrading scaling across the published points.
    assert sweep["2"]["warm_speedup_vs_1"] >= 1.0
    assert sweep["8"]["warm_speedup_vs_1"] >= sweep["4"]["warm_speedup_vs_1"] * 0.99


def test_bench_shard_cold_scales_with_shards(sweep):
    """Cold (compute-bound) throughput grows with shard count."""
    cold = [sweep[str(n)]["cold"]["throughput_rps"] for n in (1, 2, 4, 8)]
    assert cold == sorted(cold)
    assert cold[2] >= 2.0 * cold[0]


def test_bench_shard_warm_fleet_wall_cost(benchmark, historical):
    """Wall cost of one warm virtual-time fleet pass (real routing work)."""
    clock = FakeClock()
    cluster = sharded_serving.build_cluster(4, historical, clock=clock)
    config = FleetConfig(users=2_000_000, requests=1_000, seed=2004)
    generator = FleetLoadGenerator(
        cluster, config, on_request=lambda _n, _ok: clock.advance(0.05)
    )
    with cluster:
        generator.run()  # warm every L1 once
        report = benchmark(generator.run)
    assert report.outcomes == {"l1_hit": 1_000}


def test_committed_bench_serving_artifact_is_valid():
    """BENCH_serving.json: mode + cost model declared, gates satisfied."""
    data = json.loads(BENCH_PATH.read_text())
    assert data["mode"] == "virtual-time"
    assert data["fleet"]["users"] >= 1_000_000
    assert set(data["cost_model"]) >= {"route_us", "l1_hit_us", "l2_hit_us", "compute_ms"}
    assert data["shard_counts"] == [1, 2, 4, 8]
    sweep = data["sweep"]
    assert sweep["4"]["warm_speedup_vs_1"] >= 2.0
    for n in ("1", "2", "4", "8"):
        for phase in ("cold", "warm"):
            point = sweep[n][phase]
            assert point["throughput_rps"] > 0
            assert point["errors"] == 0
            assert point["latency"]["p50_s"] <= point["latency"]["p99_s"]
    chaos = data["chaos"]
    assert chaos["breaker"]["opened"] and chaos["breaker"]["recovered"]
    assert chaos["rebalanced"] and chaos["victim_served_after_recovery"]
    assert chaos["errors"] == 0
