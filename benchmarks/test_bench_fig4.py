"""Benchmark: regenerate Figure 4 (heterogeneous-workload predictions).

Kernel timed: relationship-3 calibration from LQN anchors plus the
mix-adjusted historical predictions across both buy fractions.
"""

from repro.experiments import fig4


def test_bench_fig4(benchmark, emit, warm_ground_truth):
    result = benchmark.pedantic(lambda: fig4.run(fast=True), rounds=2, iterations=1)
    emit("fig4", result.rendered)
