"""Benchmark-suite fixtures.

Each benchmark regenerates one of the paper's tables/figures: it times the
computational kernel (calibration, solving, sweeping) with pytest-benchmark
and prints the regenerated rows/series — run with ``-s`` to see them inline;
they are also written to ``benchmarks/output/<experiment>.txt``.

The simulated-testbed measurements behind the experiments are memoised on
disk (``.repro-cache/``), so the first run pays for the simulations and
subsequent runs time only the methods themselves.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def emit():
    """Print a regenerated artefact and persist it under benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(experiment_id: str, rendered: str) -> None:
        print(f"\n{rendered}\n")
        (OUTPUT_DIR / f"{experiment_id}.txt").write_text(rendered + "\n")

    return _emit


@pytest.fixture(scope="session")
def warm_ground_truth():
    """Warm the memoised measurements every experiment shares."""
    from repro.experiments import ground_truth as gt
    from repro.servers.catalogue import ALL_APP_SERVERS

    for arch in ALL_APP_SERVERS:
        gt.benchmarked_max_throughput(arch.name, fast=True)
    gt.lqn_calibration(fast=True)
    return gt
