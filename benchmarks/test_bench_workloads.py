"""Benchmark: distribution-fitting throughput for trace characterization.

The workload-characterization pipeline refits full candidate ladders
(exponential, lognormal, Pareto, H2, empirical — each with KS/AD
diagnostics) over every trace it ingests, and the validation battery
does it twice more on the regenerated trace.  For the CLI and the CI
validation job to stay interactive, ``fit_all`` must sustain a healthy
sample throughput:

* a floor assertion — the full ladder over a 5 000-sample trace fits at
  **> 100 k samples/s** (minimum over repeated batches, so OS noise
  can only inflate a sample, never fail the gate spuriously);
* pytest-benchmark timings of the full ladder and of the single
  best-fit path for the history file.
"""

from __future__ import annotations

import time

import numpy as np

from repro.util.rng import spawn_rng
from repro.workloads.fitting import best_fit, discriminate_tail, fit_all

N_SAMPLES = 5_000

#: Floor on fitted samples per second for the full candidate ladder.
MIN_SAMPLES_PER_S = 100_000.0


def _trace_samples(n: int = N_SAMPLES) -> np.ndarray:
    """A representative heavy-ish think-time sample (lognormal ms)."""
    rng = spawn_rng(2004, "bench:workloads")
    return np.exp(rng.normal(8.3, 0.9, n))


def _min_fit_all_s(samples: np.ndarray, repeats: int = 10) -> float:
    fit_all(samples)  # warm numpy/scipy lazy setup out of the timing
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fit_all(samples)
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_fit_all_throughput_floor():
    """The acceptance gate: the full ladder fits > 100k samples/s."""
    samples = _trace_samples()
    best_s = _min_fit_all_s(samples)
    samples_per_s = len(samples) / best_s

    print(
        f"\nfit_all over {len(samples)} samples: best {best_s * 1e3:.2f} ms "
        f"({samples_per_s / 1e3:.0f}k samples/s)"
    )
    assert samples_per_s > MIN_SAMPLES_PER_S, (
        f"fit_all sustains only {samples_per_s / 1e3:.0f}k samples/s "
        f"(floor: {MIN_SAMPLES_PER_S / 1e3:.0f}k)"
    )


def test_bench_fit_all_ladder(benchmark):
    """pytest-benchmark timing of the full candidate ladder."""
    samples = _trace_samples()
    ranked = benchmark(fit_all, samples)
    assert ranked[0].spec.kind == "lognormal"


def test_bench_best_fit_with_tail_screen(benchmark):
    """The CLI hot path: tail discrimination plus the winning fit."""
    samples = _trace_samples()

    def op():
        discriminate_tail(samples)
        return best_fit(samples)

    assert benchmark(op).spec.kind == "lognormal"
