"""Benchmark: the prediction-serving layer under closed-loop load.

Measures what the serving subsystem buys over raw predictor calls:

* cold-miss vs warm-cache per-call latency for each method (the warm
  path must be at least 10x faster than a cold layered solve — in
  practice it is orders of magnitude faster);
* aggregate service throughput at 1/4/16 load-generator threads for
  all three predictors;
* the full serving experiment report (tables + metrics export).
"""

import itertools

import pytest

from repro.experiments import serving
from repro.experiments.scenario import build_predictors
from repro.service import LoadGenConfig, LoadGenerator, PredictionService, ServiceConfig


@pytest.fixture(scope="module")
def predictors(warm_ground_truth):
    return build_predictors(fast=True)


def _by_name(predictors):
    historical, lqn, hybrid, _ = predictors
    return {"historical": historical, "layered_queuing": lqn, "hybrid": hybrid}


@pytest.mark.parametrize("method", ["historical", "layered_queuing", "hybrid"])
def test_bench_service_cold(benchmark, predictors, method):
    """Cold-cache serving latency: every call is a distinct operating point."""
    service = PredictionService(_by_name(predictors)[method])
    counter = itertools.count(100)
    with service:
        benchmark(lambda: service.predict_mrt_ms("AppServS", next(counter)))


@pytest.mark.parametrize("method", ["historical", "layered_queuing", "hybrid"])
def test_bench_service_warm(benchmark, predictors, method):
    """Warm-cache serving latency: the same operating point, memoized."""
    service = PredictionService(_by_name(predictors)[method])
    with service:
        service.predict_mrt_ms("AppServS", 700)  # warm the entry
        result = benchmark(lambda: service.predict_mrt_ms("AppServS", 700))
        assert result > 0.0
        assert service.cache.stats().hits > 0


def test_bench_service_warm_lqn_at_least_10x_faster_than_cold(predictors):
    """The acceptance floor, asserted from an in-run ratio baseline.

    Both sides of the ratio are minima over repeated measurements taken
    in the same process: the *fastest* cold solve (several distinct
    operating points) over the *fastest* warm batch.  A single cold
    sample is at the mercy of one scheduler hiccup; the min-vs-min ratio
    is stable because OS noise only ever inflates timings.
    """
    import time

    _, lqn, _, _ = predictors
    with PredictionService(lqn) as service:
        cold_samples = []
        for n_clients in (907, 911, 919, 929, 937):
            start = time.perf_counter()
            service.predict_mrt_ms("AppServS", n_clients)
            cold_samples.append(time.perf_counter() - start)
        cold = min(cold_samples)
        warm_samples = []
        batch = 100
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(batch):
                service.predict_mrt_ms("AppServS", 911)
            warm_samples.append((time.perf_counter() - start) / batch)
        warm = min(warm_samples)
    assert cold / warm >= 10.0, (cold_samples, warm_samples)


@pytest.mark.parametrize("threads", [1, 4, 16])
@pytest.mark.parametrize("method", ["historical", "layered_queuing", "hybrid"])
def test_bench_service_throughput(benchmark, predictors, method, threads):
    """Aggregate serving throughput under N closed-loop generator threads."""
    by_name = _by_name(predictors)
    fallback = by_name["historical"] if method != "historical" else None
    service = PredictionService(
        by_name[method], fallback=fallback, config=ServiceConfig(max_workers=8)
    )
    config = LoadGenConfig(
        threads=threads,
        requests_per_thread=max(2, 64 // threads),
        servers=("AppServS",),
        client_range=(100, 1100),
    )
    with service:
        report = benchmark.pedantic(
            lambda: LoadGenerator(service, config).run(), rounds=3, iterations=1
        )
    assert report.errors == 0
    assert report.throughput_rps > 0.0


def test_bench_service_report(benchmark, emit, warm_ground_truth):
    result = benchmark.pedantic(lambda: serving.run(fast=True), rounds=1, iterations=1)
    emit("serving", result.rendered)
    cold, warm = result.data["cold_warm"]["layered_queuing"]
    assert cold / warm >= 10.0
