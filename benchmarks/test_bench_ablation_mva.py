"""Ablation benchmark: exact MVA vs the Bard-Schweitzer approximation.

DESIGN.md calls out the approximate-MVA core as a starred design decision:
exact MVA is O(N) per class and exponential in the number of classes, while
the Bard-Schweitzer fixed point is population-independent.  This bench
quantifies both the speed gap and the accuracy cost at the case study's
operating scale.
"""

import pytest

from repro.lqn.mva import (
    MvaInput,
    Station,
    solve_bard_schweitzer,
    solve_exact_single_class,
)
from repro.util.tables import format_table

import numpy as np

STATIONS = [Station("app_cpu"), Station("db_cpu"), Station("disk")]
DEMANDS = [5.376, 0.945, 1.368]
THINK = 7000.0


def _bs_input(population: int) -> MvaInput:
    return MvaInput(
        stations=STATIONS,
        class_names=["browse"],
        populations=[population],
        think_times_ms=[THINK],
        demands=np.array([DEMANDS]),
    )


@pytest.mark.parametrize("population", [200, 1400, 2800])
def test_bench_exact_mva(benchmark, population):
    benchmark(
        lambda: solve_exact_single_class(STATIONS, DEMANDS, population, THINK)
    )


@pytest.mark.parametrize("population", [200, 1400, 2800])
def test_bench_bard_schweitzer(benchmark, population):
    benchmark(lambda: solve_bard_schweitzer(_bs_input(population)))


def test_bench_mva_accuracy_report(benchmark, emit):
    """Not a speed benchmark: records the approximation's accuracy table."""

    def build_report() -> str:
        rows = []
        for population in (100, 700, 1400, 2100, 2800):
            exact = solve_exact_single_class(STATIONS, DEMANDS, population, THINK)
            approx = solve_bard_schweitzer(_bs_input(population))
            r_exact = float(exact.cycle_response_ms[0])
            r_approx = float(approx.cycle_response_ms[0])
            rows.append(
                (
                    population,
                    r_exact,
                    r_approx,
                    abs(r_approx - r_exact) / r_exact if r_exact else 0.0,
                )
            )
        return format_table(
            ["population", "exact R (ms)", "Bard-Schweitzer R (ms)", "rel. error"],
            rows,
            title="Ablation: exact MVA vs Bard-Schweitzer (case-study demands)",
            precision=4,
        )

    report = benchmark(build_report)
    emit("ablation_mva", report)
