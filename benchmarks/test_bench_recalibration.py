"""Benchmark: regenerate the recalibration (data-budget) study.

Kernel timed: one quick recalibration — re-fitting the historical model
from 2 points per equation at n_s = 50 — the operation a workload manager
performs online (section 8.4 says it must be rapid).
"""

from repro.experiments import recalibration


def test_bench_recalibration(benchmark, emit, warm_ground_truth):
    benchmark.pedantic(
        lambda: recalibration._build_model(50, 2, fast=True), rounds=5, iterations=1
    )
    emit("recalibration", recalibration.run(fast=True).rendered)
