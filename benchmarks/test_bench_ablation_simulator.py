"""Ablation benchmarks for the simulation substrate.

* event-driven processor sharing vs plain FCFS at the application tier
  (DESIGN.md's starred station-model decision) — compares both the cost and
  the response-time behaviour the choice buys;
* raw simulator event rate, the number that bounds every measured curve.
"""

import numpy as np

from repro.servers.catalogue import APP_SERV_F
from repro.simulation.engine import Simulator
from repro.simulation.resources import FifoServer, ProcessorSharingServer
from repro.simulation.system import SimulationConfig, simulate_deployment
from repro.util.rng import spawn_rng
from repro.util.tables import format_table
from repro.workload.trade import typical_workload


def _drive(station, rng, n_jobs=20_000, lam=0.12, mean_service=5.376):
    sim = station.sim
    arrivals = np.cumsum(rng.exponential(1 / lam, n_jobs))
    demands = rng.exponential(mean_service, n_jobs)
    responses = []
    for at, d in zip(arrivals, demands):
        def submit(at=float(at), d=float(d)):
            start = sim.now
            station.submit(d, lambda: responses.append(sim.now - start))

        sim.schedule_at(float(at), submit)
    sim.run_until(float(arrivals[-1]) + 10_000.0)
    return float(np.mean(responses))


def test_bench_station_ps(benchmark):
    def run():
        sim = Simulator()
        ps = ProcessorSharingServer(sim, "cpu", max_concurrency=10**6)
        return _drive(ps, spawn_rng(3, "ps"))

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_bench_station_fcfs(benchmark):
    def run():
        sim = Simulator()
        fifo = FifoServer(sim, "cpu")
        return _drive(fifo, spawn_rng(3, "fcfs"))

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_bench_station_model_report(benchmark, emit):
    """PS vs FCFS mean response under identical offered load (rho = 0.645).

    For exponential service both give the same M/M/1 mean — the choice
    matters for response-time *distributions* and for non-exponential
    demands; the report records the measured means side by side.
    """

    def build_report() -> str:
        sim_ps = Simulator()
        ps = ProcessorSharingServer(sim_ps, "cpu", max_concurrency=10**6)
        mean_ps = _drive(ps, spawn_rng(3, "ps"))
        sim_fifo = Simulator()
        fifo = FifoServer(sim_fifo, "cpu")
        mean_fcfs = _drive(fifo, spawn_rng(3, "fcfs"))
        theory = 5.376 / (1 - 0.12 * 5.376)
        return format_table(
            ["station model", "mean response (ms)", "M/M/1 theory (ms)"],
            [["processor sharing", mean_ps, theory], ["FCFS", mean_fcfs, theory]],
            title="Ablation: application-tier station model (rho=0.645)",
        )

    emit("ablation_station", benchmark.pedantic(build_report, rounds=1, iterations=1))


def test_bench_simulator_event_rate(benchmark, emit):
    """Events per second of the full Trade deployment at saturation."""
    config = SimulationConfig(duration_s=20.0, warmup_s=5.0, seed=3)

    def run():
        return simulate_deployment(APP_SERV_F, typical_workload(1500), config)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    emit(
        "simulator_event_rate",
        f"events processed per run: {result.events_processed}\n"
        f"samples collected: {result.samples}",
    )
