"""Benchmark: regenerate Figure 6 (% server usage vs load).

Kernel timed: same sweep as figure 5 at the paper's highest slack level
(1.1), whose allocations engage the most servers.
"""

from repro.experiments import fig6
from repro.experiments.rm_common import build_rm_setup, default_loads


def test_bench_fig6(benchmark, emit, warm_ground_truth):
    setup = build_rm_setup(fast=True)
    loads = default_loads(fast=True)
    benchmark(lambda: setup.sweep(loads, 1.1))
    emit("fig6", fig6.run(fast=True).rendered)
