"""Benchmark: regenerate the section-7.2 caching study.

Kernel timed: the cache-aware layered fixed point (outer Che/LQN iteration)
— the extension the paper deems non-trivial, and the most expensive single
prediction in the library.
"""

from repro.caching.analysis import solve_lqn_with_cache
from repro.experiments import caching
from repro.experiments import ground_truth as gt
from repro.servers.catalogue import APP_SERV_S
from repro.workload.trade import BROWSE_CLASS, typical_workload


def test_bench_caching(benchmark, emit, warm_ground_truth):
    parameters = gt.lqn_calibration(fast=True).to_model_parameters()
    workload = typical_workload(400)
    capacity = int(0.5 * 400 * BROWSE_CLASS.mean_session_bytes)
    benchmark.pedantic(
        lambda: solve_lqn_with_cache(APP_SERV_S, workload, parameters, capacity),
        rounds=3,
        iterations=1,
    )
    emit("caching", caching.run(fast=True).rendered)
