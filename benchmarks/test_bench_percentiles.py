"""Benchmark: regenerate the section-7.1 percentile predictions.

Kernel timed: percentile extrapolation from mean predictions (distribution
construction + inversion), the per-query cost a percentile-SLA resource
manager would pay.
"""

from repro.distribution.percentile import PercentilePredictor
from repro.experiments import percentiles
from repro.experiments.scenario import build_predictors


def test_bench_percentiles(benchmark, emit, warm_ground_truth):
    historical, _, _, _ = build_predictors(fast=True)
    predictor = PercentilePredictor(
        predict_mean_ms=lambda s, n: historical.predict_mrt_ms(s, n),
        clients_at_max=historical.clients_at_max,
        scale_ms=204.1,
    )

    def kernel():
        total = 0.0
        for n in range(100, 2100, 100):
            total += predictor.predict_percentile_ms("AppServF", n, 0.9)
        return total

    benchmark(kernel)
    emit("percentiles", percentiles.run(fast=True).rendered)
