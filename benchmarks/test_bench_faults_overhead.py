"""Benchmark: the fault injector's disarmed-path overhead budget.

The repro.faults acceptance bar mirrors the tracing one: injection
points left in the hot paths (the LQN solver, the serving cache,
admission and pool) cost **< 2%** of an LQN solve when no plan is
armed.  Disarmed, every site reduces to a single ``INJECTOR.armed``
attribute read guarding the call, so the gate is measured the same way
as the tracer's:

* a microbenchmark of the disarmed guard, multiplied by a conservative
  count of injection sites one solve-backed serving request passes
  through, compared against the fastest measured solve;
* a pytest-benchmark timing of the guard for the history file.

All timings are minima over repeated batches — OS noise only ever
inflates a sample, so the min is the stable in-run baseline.
"""

from __future__ import annotations

import time

from repro.faults import INJECTOR
from repro.lqn.builder import (
    RequestTypeParameters,
    TradeModelParameters,
    build_trade_model,
)
from repro.lqn.solver import LqnSolver, SolverOptions
from repro.servers.catalogue import APP_SERV_S
from repro.workload.trade import typical_workload

PARAMS = TradeModelParameters(
    request_types={
        "browse": RequestTypeParameters(
            name="browse",
            app_demand_ms=5.376,
            db_calls=1.14,
            db_cpu_per_call_ms=0.8294,
            db_disk_per_call_ms=1.2,
        )
    }
)

# A deliberate over-count of the disarmed guards one solve-backed
# serving request passes through: lqn.solve (1), cache get trip+filter
# (2), admission (1), pool (1), historical datastore/predict fallback
# sites (3), doubled for margin.
SITES_PER_SOLVE = 16


def _min_solve_s(repeats: int = 30) -> float:
    model = build_trade_model(APP_SERV_S, typical_workload(400), PARAMS)
    solver = LqnSolver(SolverOptions(convergence_criterion_ms=0.5))
    solver.solve(model)  # warm lazy setup out of the timing
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        solver.solve(model)
        best = min(best, time.perf_counter() - start)
    return best


def _disarmed_guard_cost_s(iterations: int = 50_000, batches: int = 5) -> float:
    """Fastest per-iteration cost of the ``if INJECTOR.armed`` guard."""
    assert not INJECTOR.armed
    injector = INJECTOR
    best = float("inf")
    for _ in range(batches):
        start = time.perf_counter()
        for _ in range(iterations):
            if injector.armed:  # pragma: no cover - disarmed by assertion
                injector.fire("bench")
        best = min(best, (time.perf_counter() - start) / iterations)
    return best


def test_bench_disarmed_overhead_below_2_percent():
    """The acceptance gate: disarmed injection sites cost < 2% per solve."""
    assert not INJECTOR.armed
    min_solve_s = _min_solve_s()
    guard_s = _disarmed_guard_cost_s()
    overhead_fraction = (SITES_PER_SOLVE * guard_s) / min_solve_s

    print(
        f"\nmin solve: {min_solve_s * 1e3:.3f} ms, disarmed guard: "
        f"{guard_s * 1e9:.0f} ns, implied overhead ({SITES_PER_SOLVE} "
        f"sites): {overhead_fraction * 100:.4f}%"
    )
    assert overhead_fraction < 0.02, (
        f"disarmed fault injection costs {overhead_fraction * 100:.3f}% of a "
        f"solve (budget: 2%); guard = {guard_s * 1e9:.0f} ns"
    )


def test_bench_disarmed_guard_microcost(benchmark):
    """pytest-benchmark timing of the disarmed guard fast path."""
    assert not INJECTOR.armed
    injector = INJECTOR

    def op():
        if injector.armed:  # pragma: no cover - disarmed by assertion
            injector.fire("bench")

    benchmark(op)
