"""Benchmark: regenerate Figure 7 (cost metrics, slack 1.1 -> 0).

Kernel timed: a compact slack analysis (three slack levels over the load
grid), the unit of work behind each point pair in the figure.
"""

from repro.experiments import fig7
from repro.experiments.rm_common import build_rm_setup, default_loads


def test_bench_fig7(benchmark, emit, warm_ground_truth):
    setup = build_rm_setup(fast=True)
    loads = default_loads(fast=True)
    benchmark.pedantic(
        lambda: setup.analysis([1.1, 0.6, 0.0], loads), rounds=3, iterations=1
    )
    emit("fig7", fig7.run(fast=True).rendered)
