"""Benchmark: regenerate the sections 4-6 headline accuracy comparison.

Kernel timed: computing all per-method, per-server accuracy aggregates from
a completed evaluation (the evaluation itself is benchmarked in
``test_bench_fig2``; this isolates the metric computation).
"""

import pytest

from repro.experiments import accuracy_summary
from repro.experiments.evaluation import METHODS, evaluate_all_methods


@pytest.fixture(scope="module")
def evaluation(warm_ground_truth):
    return evaluate_all_methods(fast=True)


def test_bench_accuracy(benchmark, emit, evaluation):
    def aggregate():
        return {
            (method, established): (
                evaluation.mrt_accuracy(method, established=established),
                evaluation.throughput_accuracy(method, established=established),
            )
            for method in METHODS
            for established in (True, False)
        }

    benchmark(aggregate)
    emit("accuracy", accuracy_summary.run(fast=True).rendered)
