"""Benchmark: regenerate Table 2 (layered queuing processing times).

Kernel timed: the offline per-request-type calibration procedure of section
5 (two dedicated simulated runs plus the utilisation/throughput arithmetic).
"""

from repro.experiments import table2
from repro.lqn.calibration import calibrate_from_simulator
from repro.servers.catalogue import APP_SERV_F


def test_bench_table2(benchmark, emit, warm_ground_truth):
    benchmark.pedantic(
        lambda: calibrate_from_simulator(
            APP_SERV_F, clients_per_type=200, duration_s=20.0, warmup_s=5.0, seed=9
        ),
        rounds=3,
        iterations=1,
    )
    emit("table2", table2.run(fast=True).rendered)
