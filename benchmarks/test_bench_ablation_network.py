"""Ablation benchmark: the paper's suggested layered-queuing improvement.

Section 5.1: "it is likely that the layered queuing accuracies could be
increased by better modelling of delays such as communication overhead."
This repository implements that extension (a delay task carrying the
client↔server round trip); the bench measures how much accuracy it buys —
turning the paper's conjecture into a result.
"""

from repro.experiments import ground_truth as gt
from repro.experiments.scenario import SOLVER_OPTIONS
from repro.lqn.builder import build_trade_model
from repro.lqn.solver import LqnSolver
from repro.prediction.accuracy import AccuracyReport
from repro.servers.catalogue import APP_SERV_F, APP_SERV_S
from repro.simulation.system import DEFAULT_NETWORK_LATENCY_MS
from repro.util.tables import format_table
from repro.workload.trade import typical_workload

_FRACTIONS = (0.25, 0.45, 0.6, 1.2, 1.5)


def _accuracy(network_delay_ms: float) -> dict[str, float]:
    calibration = gt.lqn_calibration(fast=True)
    parameters = calibration.to_model_parameters(network_delay_ms=network_delay_ms)
    solver = LqnSolver(SOLVER_OPTIONS)
    out: dict[str, float] = {}
    for arch in (APP_SERV_F, APP_SERV_S):
        mx = gt.benchmarked_max_throughput(arch.name, fast=True)
        n_at_max = mx / 0.1425
        report = AccuracyReport(method="lqn", server=arch.name)
        for frac in _FRACTIONS:
            n = max(1, int(frac * n_at_max))
            predicted = solver.solve(
                build_trade_model(arch, typical_workload(n), parameters)
            ).mean_response_ms()
            measured = gt.measured_point(arch.name, n, fast=True).mean_response_ms
            report.add(n, n_at_max, predicted, measured)
        out[arch.name] = report.overall_accuracy
    return out


def test_bench_ablation_network_delay(benchmark, emit, warm_ground_truth):
    # The round trip in the simulated testbed is 2x the one-way mean.
    rtt = 2.0 * DEFAULT_NETWORK_LATENCY_MS

    def build_report() -> str:
        base = _accuracy(0.0)
        extended = _accuracy(rtt)
        rows = [
            (server, f"{100 * base[server]:.1f}%", f"{100 * extended[server]:.1f}%")
            for server in base
        ]
        return format_table(
            ["server", "stock LQN accuracy", f"+{rtt:.0f}ms network task"],
            rows,
            title=(
                "Ablation: layered accuracy with the communication-overhead "
                "extension the paper proposes (section 5.1)"
            ),
        )

    emit("ablation_network", benchmark.pedantic(build_report, rounds=1, iterations=1))
