"""Benchmark: the tracing subsystem's disabled-path overhead budget.

The repro.trace acceptance bar is that instrumentation left in the hot
paths (the layered solver, the serving path) costs **< 2%** of an LQN
solve when tracing is disabled.  Measured two ways:

* a microbenchmark of the disabled ``with TRACER.span(...)`` no-op,
  multiplied by a conservative count of the instrumentation call sites
  one solve passes through, compared against the measured solve time;
* an A/B wall-clock comparison of the same solve loop with tracing
  disabled vs enabled on an in-memory ring sink (reported for context —
  the *enabled* cost is allowed to be real; only disabled must be free).
"""

from __future__ import annotations

import time

from repro.lqn.builder import (
    RequestTypeParameters,
    TradeModelParameters,
    build_trade_model,
)
from repro.lqn.solver import LqnSolver, SolverOptions
from repro.servers.catalogue import APP_SERV_S
from repro.trace import TRACER, RingBufferSink
from repro.workload.trade import typical_workload

PARAMS = TradeModelParameters(
    request_types={
        "browse": RequestTypeParameters(
            name="browse",
            app_demand_ms=5.376,
            db_calls=1.14,
            db_cpu_per_call_ms=0.8294,
            db_disk_per_call_ms=1.2,
        )
    }
)

# A deliberate over-count of the disabled tracer touch points one solve
# passes through (span context managers + enabled-flag guards).
CALLSITES_PER_SOLVE = 16


def _solve_once(solver: LqnSolver, model) -> None:
    solver.solve(model)


def _min_solve_s(solver: LqnSolver, model, repeats: int) -> float:
    """Fastest individual solve: OS noise only inflates samples, so the
    minimum is the stable in-run baseline (means were flaky under load)."""
    _solve_once(solver, model)  # warm any lazy setup out of the timing
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _solve_once(solver, model)
        best = min(best, time.perf_counter() - start)
    return best


def _noop_span_cost_s(iterations: int = 50_000, batches: int = 5) -> float:
    """Fastest per-iteration cost of the disabled span over several batches."""
    assert not TRACER.enabled
    span = TRACER.span
    best = float("inf")
    for _ in range(batches):
        start = time.perf_counter()
        for _ in range(iterations):
            with span("bench"):
                pass
        best = min(best, (time.perf_counter() - start) / iterations)
    return best


def test_bench_disabled_overhead_below_2_percent():
    """The acceptance gate: disabled instrumentation costs < 2% per solve."""
    assert not TRACER.enabled
    model = build_trade_model(APP_SERV_S, typical_workload(400), PARAMS)
    solver = LqnSolver(SolverOptions(convergence_criterion_ms=0.5))

    min_solve_s = _min_solve_s(solver, model, repeats=30)
    noop_s = _noop_span_cost_s()
    overhead_fraction = (CALLSITES_PER_SOLVE * noop_s) / min_solve_s

    print(
        f"\nmin solve: {min_solve_s * 1e3:.3f} ms, disabled span: "
        f"{noop_s * 1e9:.0f} ns, implied overhead ({CALLSITES_PER_SOLVE} "
        f"sites): {overhead_fraction * 100:.4f}%"
    )
    assert overhead_fraction < 0.02, (
        f"disabled tracing costs {overhead_fraction * 100:.3f}% of a solve "
        f"(budget: 2%); noop span = {noop_s * 1e9:.0f} ns"
    )


def test_bench_enabled_vs_disabled_solve_loop():
    """Context numbers: the same solve loop with tracing on vs off."""
    model = build_trade_model(APP_SERV_S, typical_workload(400), PARAMS)
    solver = LqnSolver(SolverOptions(convergence_criterion_ms=0.5))
    repeats = 15

    disabled_s = _min_solve_s(solver, model, repeats)
    sink = RingBufferSink()
    TRACER.enable(sink)
    try:
        enabled_s = _min_solve_s(solver, model, repeats)
    finally:
        TRACER.disable()

    events_per_solve = len(sink.events()) / (repeats + 1)
    print(
        f"\nsolve disabled: {disabled_s * 1e3:.3f} ms, enabled: "
        f"{enabled_s * 1e3:.3f} ms ({events_per_solve:.0f} events/solve)"
    )
    assert sink.events(), "enabled run must have recorded events"


def test_bench_noop_span_microcost(benchmark):
    """pytest-benchmark timing of the disabled span fast path."""
    assert not TRACER.enabled
    span = TRACER.span

    def op():
        with span("bench"):
            pass

    benchmark(op)
