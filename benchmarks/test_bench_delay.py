"""Benchmark: the section-8.5 prediction-delay comparison, measured directly.

Three benchmarks time one prediction of each method at the same operating
point, making the paper's qualitative ranking (historical ~ hybrid <<
layered queuing) a measured artefact of this repository.
"""

import pytest

from repro.experiments import delay
from repro.experiments import ground_truth as gt
from repro.experiments.scenario import build_predictors
from repro.lqn.builder import build_trade_model
from repro.lqn.solver import LqnSolver, SolverOptions
from repro.servers.catalogue import APP_SERV_F
from repro.workload.trade import typical_workload


@pytest.fixture(scope="module")
def predictors(warm_ground_truth):
    return build_predictors(fast=True)


def test_bench_delay_historical(benchmark, predictors):
    historical, _, _, _ = predictors
    benchmark(lambda: historical.predict_mrt_ms("AppServS", 700))


def test_bench_delay_hybrid(benchmark, predictors):
    _, _, hybrid, _ = predictors
    benchmark(lambda: hybrid.predict_mrt_ms("AppServS", 700))


def test_bench_delay_layered(benchmark, predictors):
    _, lqn, _, _ = predictors
    benchmark(lambda: lqn.predict_mrt_ms("AppServS", 700))


def test_bench_delay_layered_tight_criterion(benchmark, warm_ground_truth):
    parameters = gt.lqn_calibration(fast=True).to_model_parameters()
    solver = LqnSolver(SolverOptions(convergence_criterion_ms=0.01))
    model = build_trade_model(APP_SERV_F, typical_workload(1300), parameters)
    benchmark(lambda: solver.solve(model))


def test_bench_delay_report(benchmark, emit, warm_ground_truth):
    result = benchmark.pedantic(lambda: delay.run(fast=True), rounds=1, iterations=1)
    emit("delay", result.rendered)
