"""Benchmark: regenerate Figure 2 (response-time predictions, 3 servers).

Kernel timed: one full prediction sweep — all three calibrated methods
predicting every evaluation point on every architecture (measurements come
from the memoised ground truth, so the timing isolates prediction cost).
"""

import pytest

from repro.experiments import fig2
from repro.experiments.evaluation import evaluate_all_methods


@pytest.fixture(scope="module")
def rendered(warm_ground_truth):
    return fig2.run(fast=True).rendered


def test_bench_fig2(benchmark, emit, rendered):
    benchmark.pedantic(lambda: evaluate_all_methods(fast=True), rounds=2, iterations=1)
    emit("fig2", rendered)
