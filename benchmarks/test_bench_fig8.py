"""Benchmark: regenerate Figure 8 (trade-off zoom, slack 1.1 -> 0.9).

Kernel timed: the fine-grained slack analysis over the zoomed range.
"""

from repro.experiments import fig8
from repro.experiments.rm_common import build_rm_setup, default_loads


def test_bench_fig8(benchmark, emit, warm_ground_truth):
    setup = build_rm_setup(fast=True)
    loads = default_loads(fast=True)
    benchmark.pedantic(
        lambda: setup.analysis([1.1, 1.0, 0.9], loads), rounds=3, iterations=1
    )
    emit("fig8", fig8.run(fast=True).rendered)
