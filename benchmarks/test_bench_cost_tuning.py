"""Benchmark: single-axis cost tuning of the slack parameter.

The paper's closing "current work" implemented: given a slack analysis,
collapsing the two cost metrics through a provider cost model and finding
the optimal slack is nearly free — the expensive part is the slack sweep
itself (benchmarked in test_bench_fig7).
"""

from repro.experiments.fig7 import run_cost_analysis
from repro.experiments.rm_common import build_rm_setup, default_loads
from repro.resource_manager.cost import ProviderCostModel, optimal_slack


def test_bench_cost_tuning(benchmark, emit, warm_ground_truth):
    setup = build_rm_setup(fast=True)
    analysis = setup.analysis([1.1, 0.9, 0.6, 0.3, 0.0], default_loads(fast=True))
    model = ProviderCostModel(2.0, 1.0, breach_surcharge=25.0)
    benchmark(lambda: optimal_slack(analysis, model))
    emit("fig7_cost", run_cost_analysis(fast=True).rendered)
