"""Concurrency coverage for the serving layer and the shared timer.

These tests hammer the thread-shared state the service introduces: the
(previously racy) :class:`PredictionTimer`, cache statistics under
thrash, in-flight coalescing, and degradation under deadline misses.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.prediction.interface import PredictionTimer
from repro.service import (
    AdmissionConfig,
    MetricsRegistry,
    PredictionCache,
    PredictionService,
    ServiceConfig,
    quantize_key,
)
from tests.test_service import StubPredictor


def _hammer(n_threads: int, per_thread: int, work) -> None:
    """Run ``work(thread_index, iteration)`` from many threads at once."""
    barrier = threading.Barrier(n_threads)

    def loop(index: int) -> None:
        barrier.wait()
        for i in range(per_thread):
            work(index, i)

    threads = [threading.Thread(target=loop, args=(t,)) for t in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestPredictionTimerThreadSafety:
    def test_no_lost_updates_under_contention(self):
        timer = PredictionTimer()
        n_threads, per_thread = 8, 2000
        _hammer(n_threads, per_thread, lambda t, i: timer.record(0.001))
        # An unlocked read-modify-write loses updates here; the locked
        # implementation must account for every single record call.
        assert timer.evaluations == n_threads * per_thread
        assert timer.total_time_s == pytest.approx(timer.evaluations * 0.001)
        assert timer.mean_delay_s == pytest.approx(0.001)


class TestCacheThrash:
    def test_stats_consistent_under_thrash(self):
        cache = PredictionCache(max_entries=32)  # smaller than the key space
        n_threads, per_thread = 8, 500

        def work(t: int, i: int) -> None:
            # Half the traffic hits a small hot set (stays resident under
            # LRU), half sweeps a key space larger than the cache.
            operand = i % 8 if i % 2 == 0 else 8 + (t * per_thread + i) % 100
            key = quantize_key("S", "mrt", operand, 0.0)
            hit, _ = cache.get(key)
            if not hit:
                cache.put(key, float(i))

        _hammer(n_threads, per_thread, work)
        stats = cache.stats()
        assert stats.requests == n_threads * per_thread
        assert stats.hits + stats.misses == stats.requests
        assert stats.hits > 0 and stats.misses > 0 and stats.evictions > 0
        assert len(cache) <= 32


class TestMetricsContention:
    def test_counter_and_histogram_account_every_event(self):
        registry = MetricsRegistry()
        n_threads, per_thread = 8, 1000
        _hammer(
            n_threads,
            per_thread,
            lambda t, i: (
                registry.counter("events").inc(),
                registry.histogram("latency").observe(0.001),
            ),
        )
        export = registry.export()
        assert export["events"] == n_threads * per_thread
        assert export["latency.count"] == n_threads * per_thread


class TestServiceUnderConcurrency:
    def test_coalescing_performs_exactly_one_solve(self):
        primary = StubPredictor(delay_s=0.2)
        service = PredictionService(primary, config=ServiceConfig(max_workers=16))
        results: list[float] = []
        lock = threading.Lock()

        def work(t: int, i: int) -> None:
            value = service.predict_mrt_ms("S", 700)
            with lock:
                results.append(value)

        with service:
            _hammer(12, 1, work)
        # Twelve concurrent identical requests, one underlying evaluation.
        assert primary.calls == 1
        assert results == [800.0] * 12
        pool = service.pool.stats()
        assert pool.executed == 1 and pool.coalesced >= 1

    def test_service_stats_consistent_from_many_threads(self):
        service = PredictionService(StubPredictor(), config=ServiceConfig(max_workers=8))
        n_threads, per_thread = 8, 200

        def work(t: int, i: int) -> None:
            service.predict_mrt_ms("S", 100 + (t * per_thread + i) % 50)

        with service:
            _hammer(n_threads, per_thread, work)
            total = n_threads * per_thread
            metrics = service.export_metrics()
            assert metrics["requests"] == total
            assert metrics["latency.count"] == total
            assert service.timer.evaluations == total
            assert metrics["cache.hits"] + metrics["cache.misses"] == metrics["cache.requests"]
            # Only 50 distinct grid cells were requested: everything else
            # was a hit or a coalesced join.
            assert service.primary.calls <= 50 + metrics["pool.coalesced"]
            assert metrics["cache.hit_rate"] > 0.5

    def test_fallback_on_timeout_returns_historical_answer_and_counts(self):
        primary = StubPredictor(delay_s=0.5, name="slow-lqn")
        fallback = StubPredictor(name="historical")
        config = ServiceConfig(
            max_workers=4, admission=AdmissionConfig(timeout_s=0.05)
        )
        results: list[float] = []
        lock = threading.Lock()
        service = PredictionService(primary, fallback=fallback, config=config)

        def work(t: int, i: int) -> None:
            value = service.predict_mrt_ms("S", 400 + t)
            with lock:
                results.append(value)

        with service:
            _hammer(4, 1, work)
            metrics = service.export_metrics()
        # Every caller got the fallback's (historical) answer...
        assert sorted(results) == [500.0, 501.0, 502.0, 503.0]
        assert all(r == 100.0 + 400 + t for t, r in enumerate(sorted(results)))
        # ...and the degradation counters say so.
        assert metrics["degraded"] == 4
        assert metrics["degraded.timeout"] == 4
        assert metrics["timeouts"] == 4

    def test_abandoned_solve_still_populates_cache(self):
        primary = StubPredictor(delay_s=0.2, name="slow")
        fallback = StubPredictor(name="fast")
        config = ServiceConfig(admission=AdmissionConfig(timeout_s=0.05))
        with PredictionService(primary, fallback=fallback, config=config) as service:
            service.predict_mrt_ms("S", 300)  # times out, degrades
            time.sleep(0.4)  # the abandoned solve finishes in the pool
            service.predict_mrt_ms("S", 300)  # now a cache hit
            assert service.cache.stats().hits == 1
            assert primary.calls == 1
