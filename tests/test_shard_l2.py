"""Tests for the cross-shard shared L2 cache (repro.service.shard.l2).

The L2's coherence contract is TTL-only, so the TTL boundary semantics
must match :class:`~repro.service.cache.PredictionCache` *exactly* —
an entry aged exactly ``ttl_s`` is still a hit, one instant older is a
miss — and everything is driven on a FakeClock so the boundary is
tested at the boundary, not near it.
"""

from __future__ import annotations

import threading

from repro.service.cache import quantize_key
from repro.service.shard.l2 import SharedL2Cache
from repro.util.clock import FakeClock


def _key(operand: float, server: str = "AppServS"):
    return quantize_key(server, "mrt", operand, 0.0)


def test_put_get_roundtrip_and_stats() -> None:
    """A stored value comes back; hits/misses/puts are counted."""
    clock = FakeClock()
    l2 = SharedL2Cache(clock=clock.monotonic_s)
    hit, value = l2.get(_key(10.0))
    assert not hit and value is None
    l2.put(_key(10.0), 123.0)
    hit, value = l2.get(_key(10.0))
    assert hit and value == 123.0
    stats = l2.stats()
    assert (stats.requests, stats.hits, stats.misses, stats.puts) == (2, 1, 1, 1)
    assert stats.hit_rate == 0.5


def test_ttl_boundary_matches_l1_semantics() -> None:
    """Exactly at TTL is a hit; past TTL is a miss + expiration."""
    clock = FakeClock()
    l2 = SharedL2Cache(ttl_s=10.0, clock=clock.monotonic_s)
    l2.put(_key(1.0), 1.0)
    clock.advance(10.0)  # age == ttl: still fresh, as in PredictionCache
    hit, _ = l2.get(_key(1.0))
    assert hit
    clock.advance(0.001)  # age > ttl: stale
    hit, _ = l2.get(_key(1.0))
    assert not hit
    assert l2.stats().expirations == 1
    assert len(l2) == 0  # the expired entry was removed, not retained


def test_eviction_drops_oldest_first() -> None:
    """On overflow the oldest entries (by store time) are evicted."""
    clock = FakeClock()
    l2 = SharedL2Cache(max_entries=3, clock=clock.monotonic_s)
    for i in range(3):
        l2.put(_key(float(i)), float(i))
        clock.advance(1.0)
    l2.put(_key(99.0), 99.0)  # overflow: key 0 (oldest) must go
    assert len(l2) == 3
    hit, _ = l2.get(_key(0.0))
    assert not hit
    hit, value = l2.get(_key(99.0))
    assert hit and value == 99.0
    assert l2.stats().evictions == 1


def test_invalidate_by_server_is_selective() -> None:
    """invalidate(server) drops only that server's entries, cluster-wide."""
    clock = FakeClock()
    l2 = SharedL2Cache(clock=clock.monotonic_s)
    l2.put(_key(1.0, "alpha"), 1.0)
    l2.put(_key(2.0, "alpha"), 2.0)
    l2.put(_key(1.0, "beta"), 3.0)
    assert l2.invalidate("alpha") == 2
    assert not l2.get(_key(1.0, "alpha"))[0]
    assert l2.get(_key(1.0, "beta"))[0]
    assert l2.invalidate() == 1  # no server: drop everything left
    assert len(l2) == 0
    assert l2.stats().invalidated == 3


def test_shared_store_has_shared_values_and_local_stats() -> None:
    """Two accessors of one store see each other's values, not counters."""
    clock = FakeClock()
    store: dict = {}
    lock = threading.Lock()
    writer = SharedL2Cache(store=store, lock=lock, clock=clock.monotonic_s)
    reader = SharedL2Cache(store=store, lock=lock, clock=clock.monotonic_s)
    writer.put(_key(5.0), 42.0)
    hit, value = reader.get(_key(5.0))
    assert hit and value == 42.0
    # Traffic accounting stays per-accessor (shards count their own).
    assert writer.stats().puts == 1 and writer.stats().requests == 0
    assert reader.stats().requests == 1 and reader.stats().puts == 0


def test_refreshed_entry_restarts_its_ttl() -> None:
    """A re-put entry ages from the new store time, not the first."""
    clock = FakeClock()
    l2 = SharedL2Cache(ttl_s=5.0, clock=clock.monotonic_s)
    l2.put(_key(1.0), 1.0)
    clock.advance(4.0)
    l2.put(_key(1.0), 2.0)  # refresh
    clock.advance(4.0)  # 8s since first put, 4s since refresh
    hit, value = l2.get(_key(1.0))
    assert hit and value == 2.0
