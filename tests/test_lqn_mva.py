"""Tests for the MVA cores: exact recursion vs closed forms, and the
Bard-Schweitzer approximation vs the exact recursion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lqn.mva import (
    MvaInput,
    Station,
    StationKind,
    solve_bard_schweitzer,
    solve_exact_single_class,
)
from repro.util.errors import ValidationError


def machine_repairman_throughput(n: int, z: float, d: float) -> float:
    """Exact closed-form throughput of the M/M/1 machine-repairman model
    (n customers, think z, single exponential server with demand d),
    computed from the birth-death stationary distribution."""
    # p(k) proportional to (n!/(n-k)!) * (d/z)^k for k customers at server.
    weights = []
    for k in range(n + 1):
        w = 1.0
        for i in range(k):
            w *= (n - i) * d / z
        weights.append(w)
    total = sum(weights)
    p = [w / total for w in weights]
    utilisation = 1.0 - p[0]
    return utilisation / d


class TestExactMva:
    def test_single_customer_no_queueing(self):
        solution = solve_exact_single_class(
            [Station("cpu")], [10.0], population=1, think_time_ms=90.0
        )
        assert solution.cycle_response_ms[0] == pytest.approx(10.0)
        assert solution.throughput_per_ms[0] == pytest.approx(1.0 / 100.0)

    def test_matches_machine_repairman_closed_form(self):
        n, z, d = 8, 50.0, 10.0
        solution = solve_exact_single_class(
            [Station("cpu")], [d], population=n, think_time_ms=z
        )
        expected = machine_repairman_throughput(n, z, d)
        assert solution.throughput_per_ms[0] == pytest.approx(expected, rel=1e-9)

    def test_delay_station_adds_no_queueing(self):
        solution = solve_exact_single_class(
            [Station("net", kind=StationKind.DELAY)], [10.0], population=50, think_time_ms=0.0
        )
        assert solution.cycle_response_ms[0] == pytest.approx(10.0)

    def test_asymptotic_throughput_bounded_by_bottleneck(self):
        solution = solve_exact_single_class(
            [Station("cpu")], [10.0], population=500, think_time_ms=100.0
        )
        assert solution.throughput_per_ms[0] == pytest.approx(0.1, rel=1e-3)
        assert solution.utilisation[0] <= 1.0 + 1e-9

    def test_multiserver_faster_than_single(self):
        single = solve_exact_single_class(
            [Station("cpu")], [10.0], population=20, think_time_ms=50.0
        )
        multi = solve_exact_single_class(
            [Station("cpu", servers=4)], [10.0], population=20, think_time_ms=50.0
        )
        assert multi.cycle_response_ms[0] < single.cycle_response_ms[0]

    def test_multiserver_low_load_equals_demand(self):
        solution = solve_exact_single_class(
            [Station("cpu", servers=4)], [10.0], population=1, think_time_ms=1000.0
        )
        assert solution.cycle_response_ms[0] == pytest.approx(10.0)

    def test_multiserver_saturation_scales_with_servers(self):
        solution = solve_exact_single_class(
            [Station("cpu", servers=4)], [10.0], population=2000, think_time_ms=100.0
        )
        # capacity = m/D = 0.4 per ms
        assert solution.throughput_per_ms[0] == pytest.approx(0.4, rel=0.01)

    def test_zero_population(self):
        solution = solve_exact_single_class(
            [Station("cpu")], [10.0], population=0, think_time_ms=10.0
        )
        assert solution.throughput_per_ms[0] == 0.0

    def test_rejects_surrogate_stations(self):
        with pytest.raises(ValidationError):
            solve_exact_single_class(
                [Station("s", waiting_only=True)], [1.0], population=1
            )


def single_class_input(demands, population, think, stations=None) -> MvaInput:
    stations = stations or [Station(f"s{i}") for i in range(len(demands))]
    return MvaInput(
        stations=stations,
        class_names=["c"],
        populations=[population],
        think_times_ms=[think],
        demands=np.array([demands], dtype=float),
    )


class TestBardSchweitzer:
    @pytest.mark.parametrize("population", [1, 4, 16, 64, 256])
    def test_close_to_exact_single_class(self, population):
        demands = [10.0, 3.0]
        think = 70.0
        exact = solve_exact_single_class(
            [Station("a"), Station("b")], demands, population, think
        )
        approx = solve_bard_schweitzer(single_class_input(demands, population, think))
        assert approx.throughput_per_ms[0] == pytest.approx(
            exact.throughput_per_ms[0], rel=0.05
        )
        assert approx.cycle_response_ms[0] == pytest.approx(
            exact.cycle_response_ms[0], rel=0.15
        )

    def test_littles_law_holds(self):
        inp = single_class_input([10.0, 3.0], 50, 100.0)
        solution = solve_bard_schweitzer(inp)
        x = solution.throughput_per_ms[0]
        # N = X * (R + Z)
        assert x * (solution.cycle_response_ms[0] + 100.0) == pytest.approx(50, rel=1e-6)

    def test_utilisation_never_exceeds_one(self):
        inp = single_class_input([10.0], 10_000, 10.0)
        solution = solve_bard_schweitzer(inp)
        assert solution.utilisation[0] <= 1.0 + 1e-6

    def test_multiclass_throughput_split(self):
        inp = MvaInput(
            stations=[Station("cpu")],
            class_names=["a", "b"],
            populations=[50, 100],
            think_times_ms=[1000.0, 1000.0],
            demands=np.array([[2.0], [2.0]]),
        )
        solution = solve_bard_schweitzer(inp)
        # Identical per-client behaviour: class throughput proportional to
        # population.
        ratio = solution.throughput_per_ms[1] / solution.throughput_per_ms[0]
        assert ratio == pytest.approx(2.0, rel=0.02)

    def test_heavier_class_sees_longer_response(self):
        inp = MvaInput(
            stations=[Station("cpu")],
            class_names=["light", "heavy"],
            populations=[50, 50],
            think_times_ms=[1000.0, 1000.0],
            demands=np.array([[2.0], [8.0]]),
        )
        solution = solve_bard_schweitzer(inp)
        assert solution.cycle_response_ms[1] > solution.cycle_response_ms[0]

    def test_zero_population_class_ignored(self):
        inp = MvaInput(
            stations=[Station("cpu")],
            class_names=["a", "b"],
            populations=[50, 0],
            think_times_ms=[100.0, 100.0],
            demands=np.array([[5.0], [5.0]]),
        )
        solution = solve_bard_schweitzer(inp)
        assert solution.throughput_per_ms[1] == 0.0
        assert solution.throughput_per_ms[0] > 0.0

    def test_empty_network(self):
        inp = MvaInput(
            stations=[Station("cpu")],
            class_names=["a"],
            populations=[0],
            think_times_ms=[100.0],
            demands=np.array([[5.0]]),
        )
        solution = solve_bard_schweitzer(inp)
        assert solution.throughput_per_ms[0] == 0.0

    def test_hidden_demand_loads_station_but_not_response(self):
        base = single_class_input([10.0], 50, 500.0)
        loaded = MvaInput(
            stations=[Station("cpu"), Station("other")],
            class_names=["c"],
            populations=[50],
            think_times_ms=[500.0],
            demands=np.array([[10.0, 0.0]]),
            hidden_demands=np.array([[0.0, 5.0]]),
        )
        base_solution = solve_bard_schweitzer(base)
        loaded_solution = solve_bard_schweitzer(loaded)
        # Hidden work occupies the other station...
        assert loaded_solution.utilisation[1] > 0.0
        # ...but does not lengthen the response path directly: residence at
        # the hidden station is not counted.
        assert loaded_solution.residence_ms[0, 1] == 0.0

    def test_waiting_only_station_uncongested_adds_nothing(self):
        with_pool = MvaInput(
            stations=[Station("cpu"), Station("pool", servers=50, waiting_only=True)],
            class_names=["c"],
            populations=[30],
            think_times_ms=[1000.0],
            demands=np.array([[5.0, 12.0]]),
        )
        without = single_class_input([5.0], 30, 1000.0)
        a = solve_bard_schweitzer(with_pool)
        b = solve_bard_schweitzer(without)
        assert a.cycle_response_ms[0] == pytest.approx(b.cycle_response_ms[0], rel=0.02)

    def test_waiting_only_station_congested_adds_waiting(self):
        """A single-thread software resource serialises its holders."""
        inp = MvaInput(
            stations=[Station("cpu"), Station("lock", servers=1, waiting_only=True)],
            class_names=["c"],
            populations=[20],
            think_times_ms=[100.0],
            demands=np.array([[2.0, 10.0]]),
        )
        solution = solve_bard_schweitzer(inp)
        # With 20 clients contending for a 10ms critical section, waiting
        # dominates: response far exceeds the raw 2ms CPU demand.
        assert solution.cycle_response_ms[0] > 50.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            MvaInput(
                stations=[Station("cpu")],
                class_names=["a"],
                populations=[1],
                think_times_ms=[0.0],
                demands=np.zeros((2, 1)),
            )

    def test_negative_demand_rejected(self):
        with pytest.raises(ValidationError):
            MvaInput(
                stations=[Station("cpu")],
                class_names=["a"],
                populations=[1],
                think_times_ms=[0.0],
                demands=np.array([[-1.0]]),
            )

    @settings(max_examples=30, deadline=None)
    @given(
        population=st.integers(min_value=1, max_value=300),
        think=st.floats(min_value=0.0, max_value=10_000.0),
        demand=st.floats(min_value=0.1, max_value=50.0),
    )
    def test_throughput_bounded_by_bottleneck_and_population(self, population, think, demand):
        inp = single_class_input([demand], population, think)
        solution = solve_bard_schweitzer(inp)
        x = solution.throughput_per_ms[0]
        assert x <= 1.0 / demand + 1e-9
        if think > 0:
            assert x <= population / think + 1e-9
        assert x >= 0.0

    @settings(max_examples=20, deadline=None)
    @given(
        n1=st.integers(min_value=1, max_value=100),
        n2=st.integers(min_value=1, max_value=100),
    )
    def test_response_monotone_in_population(self, n1, n2):
        if n1 > n2:
            n1, n2 = n2, n1
        r1 = solve_bard_schweitzer(single_class_input([5.0], n1, 100.0)).cycle_response_ms[0]
        r2 = solve_bard_schweitzer(single_class_input([5.0], n2, 100.0)).cycle_response_ms[0]
        assert r2 >= r1 - 1e-6
