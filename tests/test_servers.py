"""Unit tests for the server catalogue and max-throughput benchmarking."""

import pytest

from repro.servers.architecture import DatabaseArchitecture, ServerArchitecture
from repro.servers.benchmarking import measure_max_throughput, request_speed_ratio
from repro.servers.catalogue import (
    ALL_APP_SERVERS,
    APP_SERV_F,
    APP_SERV_S,
    APP_SERV_VF,
    ESTABLISHED_SERVERS,
    NEW_SERVERS,
    PAPER_MAX_THROUGHPUTS,
    architecture,
)
from repro.util.errors import ValidationError


class TestArchitecture:
    def test_speed_scaling(self):
        arch = ServerArchitecture(name="x", cpu_speed=2.0)
        assert arch.scaled_demand_ms(10.0) == 5.0

    def test_heap_bytes(self):
        arch = ServerArchitecture(name="x", cpu_speed=1.0, heap_mb=128)
        assert arch.heap_bytes() == 128 * 1024 * 1024

    def test_as_new_flag(self):
        assert APP_SERV_F.as_new().established is False
        assert APP_SERV_F.established is True

    def test_invalid_speed_rejected(self):
        with pytest.raises(ValidationError):
            ServerArchitecture(name="x", cpu_speed=0.0)

    def test_database_architecture_defaults(self):
        db = DatabaseArchitecture(name="db", cpu_speed=1.0)
        assert db.max_concurrency == 20


class TestCatalogue:
    def test_speed_ratios_derive_from_paper_throughputs(self):
        assert APP_SERV_S.cpu_speed == pytest.approx(86 / 186)
        assert APP_SERV_F.cpu_speed == 1.0
        assert APP_SERV_VF.cpu_speed == pytest.approx(320 / 186)

    def test_heap_sizes(self):
        assert APP_SERV_S.heap_mb == 128
        assert APP_SERV_F.heap_mb == 256

    def test_groups(self):
        assert set(ALL_APP_SERVERS) == set(ESTABLISHED_SERVERS) | set(NEW_SERVERS)
        assert APP_SERV_S in NEW_SERVERS
        assert APP_SERV_F in ESTABLISHED_SERVERS

    def test_lookup(self):
        assert architecture("AppServVF") is APP_SERV_VF

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            architecture("AppServX")

    def test_paper_throughputs_recorded(self):
        assert PAPER_MAX_THROUGHPUTS["AppServF"] == 186.0


class TestBenchmarking:
    @pytest.mark.slow
    def test_measured_max_throughput_matches_design(self):
        result = measure_max_throughput(
            APP_SERV_F, duration_s=30.0, warmup_s=8.0, seed=3
        )
        assert result.max_throughput_req_per_s == pytest.approx(186.0, rel=0.06)
        assert result.runs >= 2

    @pytest.mark.slow
    def test_speed_ratio_close_to_catalogue(self):
        ratio = request_speed_ratio(
            APP_SERV_S, APP_SERV_F, duration_s=25.0, warmup_s=6.0, seed=3
        )
        assert ratio == pytest.approx(86 / 186, rel=0.08)
