"""Tests for the hybrid prediction method."""

import pytest

from repro.hybrid.model import (
    AdvancedHybridModel,
    BasicHybridModel,
    lqn_max_throughput,
)
from repro.lqn.builder import RequestTypeParameters, TradeModelParameters, build_trade_model
from repro.servers.catalogue import APP_SERV_F, APP_SERV_S, APP_SERV_VF
from repro.util.errors import CalibrationError
from repro.workload.trade import mixed_workload, typical_workload

PARAMS = TradeModelParameters(
    request_types={
        "browse": RequestTypeParameters(
            name="browse",
            app_demand_ms=5.376,
            db_calls=1.14,
            db_cpu_per_call_ms=0.8294,
            db_disk_per_call_ms=1.2,
        ),
        "buy": RequestTypeParameters(
            name="buy",
            app_demand_ms=10.455,
            db_calls=2.0,
            db_cpu_per_call_ms=1.613,
            db_disk_per_call_ms=1.5,
        ),
    }
)


class TestLqnMaxThroughput:
    def test_bottleneck_is_app_cpu(self):
        model = build_trade_model(APP_SERV_F, typical_workload(100), PARAMS)
        assert lqn_max_throughput(model) == pytest.approx(1000.0 / 5.376, rel=1e-6)

    def test_scales_with_architecture(self):
        model = build_trade_model(APP_SERV_S, typical_workload(100), PARAMS)
        assert lqn_max_throughput(model) == pytest.approx(
            (86 / 186) * 1000.0 / 5.376, rel=1e-6
        )

    def test_mix_lowers_max_throughput(self):
        typical = lqn_max_throughput(
            build_trade_model(APP_SERV_F, typical_workload(100), PARAMS)
        )
        mixed = lqn_max_throughput(
            build_trade_model(APP_SERV_F, mixed_workload(100, 0.25), PARAMS)
        )
        assert mixed < typical


@pytest.fixture(scope="module")
def advanced():
    return AdvancedHybridModel.build(PARAMS, [APP_SERV_S, APP_SERV_F, APP_SERV_VF])


class TestAdvancedHybrid:
    def test_all_targets_modelled_as_established(self, advanced):
        # Advanced hybrid: every target has directly calibrated equations —
        # relationship 2 is not used for them.
        assert set(advanced.historical.server_calibrations) == {
            "AppServS",
            "AppServF",
            "AppServVF",
        }

    def test_startup_cost_recorded(self, advanced):
        assert advanced.report.startup_delay_s > 0.0
        # 2 points per equation x 2 equations x 3 servers + 2 mix solves.
        assert advanced.report.lqn_solves == 14
        assert advanced.report.data_points == 12

    def test_predictions_follow_lqn_shape(self, advanced):
        from repro.lqn.solver import LqnSolver

        solver = LqnSolver()
        n = 600
        lqn = solver.solve(
            build_trade_model(APP_SERV_F, typical_workload(n), PARAMS)
        ).mean_response_ms()
        hybrid = advanced.predict_mrt_ms("AppServF", n)
        assert hybrid == pytest.approx(lqn, rel=0.4)

    def test_mix_model_calibrated(self, advanced):
        assert advanced.historical.mix_model is not None
        mixed = advanced.predict_mrt_ms("AppServS", 300, buy_fraction=0.25)
        typical = advanced.predict_mrt_ms("AppServS", 300, buy_fraction=0.0)
        assert mixed > typical

    def test_capacity_closed_form(self, advanced):
        capacity = advanced.max_clients("AppServS", 500.0)
        assert 0 < capacity
        assert advanced.predict_mrt_ms("AppServS", capacity) <= 500.0 * 1.01

    def test_throughput_prediction(self, advanced):
        assert advanced.predict_throughput("AppServF", 400) == pytest.approx(
            400 / 7.03, rel=0.05
        )

    def test_more_points_allowed(self):
        model = AdvancedHybridModel.build(
            PARAMS, [APP_SERV_F], points_per_equation=4, calibrate_mix=False
        )
        assert model.report.per_server_points["AppServF"] == 8

    def test_needs_targets(self):
        with pytest.raises(Exception):
            AdvancedHybridModel.build(PARAMS, [])


class TestBasicHybrid:
    def test_new_server_via_relationship2(self):
        basic = BasicHybridModel.build(PARAMS, [APP_SERV_F, APP_SERV_VF])
        assert "AppServS" not in basic.historical.server_models
        basic.predict_new_server("AppServS", 86.0)
        assert basic.predict_mrt_ms("AppServS", 200) > 0.0

    def test_single_established_cannot_extrapolate(self):
        basic = BasicHybridModel.build(PARAMS, [APP_SERV_F])
        with pytest.raises(CalibrationError):
            basic.predict_new_server("AppServS", 86.0)

    def test_basic_and_advanced_agree_on_established(self, advanced):
        basic = BasicHybridModel.build(PARAMS, [APP_SERV_F, APP_SERV_VF])
        n = 500
        assert basic.predict_mrt_ms("AppServF", n) == pytest.approx(
            advanced.predict_mrt_ms("AppServF", n), rel=0.05
        )
