"""Cross-cutting property-based tests on core invariants.

These complement the per-module suites with randomized checks of the laws
the whole reproduction rests on: queueing conservation in the solver,
allocation-algorithm safety, historical-model monotonicity, and the
simulator's closed-workload identities.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.historical.relationships import (
    LowerEquation,
    PiecewiseResponseModel,
    UpperEquation,
)
from repro.lqn.mva import MvaInput, Station, StationKind, solve_bard_schweitzer
from repro.prediction.interface import PredictionTimer
from repro.resource_manager.allocation import ManagedServer, allocate
from repro.resource_manager.sla import ClassWorkload
from repro.util.rng import spawn_rng


# ---------------------------------------------------------------------------
# MVA conservation laws under random closed networks
# ---------------------------------------------------------------------------

network_strategy = st.tuples(
    st.integers(min_value=1, max_value=4),  # stations
    st.integers(min_value=1, max_value=3),  # classes
    st.integers(min_value=0, max_value=200),  # base population
    st.floats(min_value=10.0, max_value=10_000.0),  # think time
)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(network_strategy, st.integers(min_value=0, max_value=2**31))
def test_mva_conservation_laws(config, seed):
    n_stations, n_classes, base_pop, think = config
    rng = spawn_rng(seed, "test-properties")
    demands = rng.uniform(0.1, 20.0, size=(n_classes, n_stations))
    populations = [int(base_pop * rng.uniform(0.2, 1.0)) for _ in range(n_classes)]
    inp = MvaInput(
        stations=[Station(f"s{i}") for i in range(n_stations)],
        class_names=[f"c{i}" for i in range(n_classes)],
        populations=populations,
        think_times_ms=[think] * n_classes,
        demands=demands,
    )
    solution = solve_bard_schweitzer(inp)

    for c in range(n_classes):
        x = solution.throughput_per_ms[c]
        r = solution.cycle_response_ms[c]
        n = populations[c]
        if n == 0:
            assert x == 0.0
            continue
        # Little's law over the whole loop: N = X * (R + Z).
        assert x * (r + think) == pytest.approx(n, rel=1e-6)
        # Throughput bounded by the class bottleneck and by N/Z.
        bottleneck = 1.0 / demands[c].max()
        assert x <= bottleneck + 1e-9
        assert x <= n / think + 1e-9
        # Response at least the total demand.
        assert r >= demands[c].sum() - 1e-9
    # Utilisations valid.
    assert (solution.utilisation <= 1.0 + 1e-6).all()
    assert (solution.utilisation >= -1e-12).all()
    # Queue lengths conserve the population.
    total_queue = solution.queue_lengths.sum()
    total_thinking = sum(
        solution.throughput_per_ms[c] * think for c in range(n_classes)
    )
    assert total_queue + total_thinking == pytest.approx(sum(populations), rel=1e-6)


@settings(max_examples=25, deadline=None)
@given(
    st.floats(min_value=0.1, max_value=20.0),
    st.floats(min_value=0.001, max_value=0.04),
    st.integers(min_value=1, max_value=100),
)
def test_mixed_network_open_response_at_least_demand(demand, rate, population):
    if rate * demand >= 0.95:  # keep comfortably stable
        rate = 0.9 / demand
    inp = MvaInput(
        stations=[Station("cpu")],
        class_names=["c"],
        populations=[population],
        think_times_ms=[1000.0],
        demands=np.array([[5.0]]),
        open_class_names=["o"],
        open_rates_per_ms=[rate],
        open_demands=np.array([[demand]]),
    )
    solution = solve_bard_schweitzer(inp)
    assert solution.open_response_ms["o"] >= demand - 1e-9


# ---------------------------------------------------------------------------
# Allocation-algorithm safety under random pools and workloads
# ---------------------------------------------------------------------------


class _CapacityPredictor:
    """Step predictor with per-architecture capacities."""

    def __init__(self, capacities):
        self.capacities = capacities
        self.name = "cap"
        self.timer = PredictionTimer()

    def predict_mrt_ms(self, server, n_clients, *, buy_fraction=0.0):
        return 1.0 if n_clients <= self.capacities[server] else 1e12

    def predict_throughput(self, server, n_clients, *, buy_fraction=0.0):
        return min(n_clients, self.capacities[server]) * 0.14

    def max_clients(self, server, rt_goal_ms, *, buy_fraction=0.0):
        return self.capacities[server]


pool_strategy = st.lists(
    st.integers(min_value=10, max_value=500), min_size=1, max_size=6
)
classes_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=800),
        st.floats(min_value=50.0, max_value=1000.0),
    ),
    min_size=1,
    max_size=4,
)


@settings(max_examples=40, deadline=None)
@given(pool_strategy, classes_strategy, st.floats(min_value=0.0, max_value=2.0))
def test_allocation_invariants(capacities, class_specs, slack):
    servers = [
        ManagedServer(name=f"s{i}", architecture=f"s{i}", max_throughput_req_per_s=c * 0.14)
        for i, c in enumerate(capacities)
    ]
    caps = {f"s{i}": c for i, c in enumerate(capacities)}
    classes = [
        ClassWorkload(name=f"c{i}", n_clients=n, rt_goal_ms=goal)
        for i, (n, goal) in enumerate(class_specs)
    ]
    allocation = allocate(classes, servers, _CapacityPredictor(caps), slack=slack)

    # 1. No server exceeds its predicted capacity.
    for server_name, alloc in allocation.per_server.items():
        assert sum(alloc.values()) <= caps[server_name]
    # 2. Every inflated client is either placed or reported unallocated.
    inflated_total = sum(int(round(c.n_clients * slack)) for c in classes)
    assert allocation.total_allocated() + allocation.total_unallocated() == inflated_total
    # 3. Nothing is negative.
    assert all(
        count >= 0 for alloc in allocation.per_server.values() for count in alloc.values()
    )
    # 4. Priority safety: if a tighter-goal class lost clients, every
    #    laxer-goal class must have been unable to free capacity — weaker
    #    check: the laxest class is the first to be starved entirely when
    #    demand exceeds the pool.
    if allocation.total_unallocated() > 0 and len(classes) > 1:
        ordered = sorted(classes, key=lambda c: c.rt_goal_ms)
        tightest = ordered[0]
        if allocation.unallocated.get(tightest.name, 0) > 0:
            # If even the tightest class is starved, the pool must be full.
            pool_capacity = sum(caps.values())
            assert allocation.total_allocated() >= min(pool_capacity, inflated_total) - len(
                classes
            ) * 1  # rounding slop


# ---------------------------------------------------------------------------
# Historical piecewise model invariants under random calibrations
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    st.floats(min_value=1.0, max_value=200.0),  # c_L
    st.floats(min_value=1e-5, max_value=3e-3),  # lambda_L
    st.floats(min_value=0.5, max_value=20.0),  # lambda_U
    st.floats(min_value=100.0, max_value=4000.0),  # n_at_max
)
def test_piecewise_model_monotone_and_invertible(c_l, lam_l, lam_u, n_at_max):
    lower = LowerEquation(c_l=c_l, lambda_l=lam_l)
    # Anchor the upper equation so the transition is increasing.
    upper_at_anchor = lower.predict_ms(0.66 * n_at_max) * 3.0
    c_u = upper_at_anchor - lam_u * 1.1 * n_at_max
    model = PiecewiseResponseModel.assemble(
        "s", lower, UpperEquation(lambda_u=lam_u, c_u=c_u), n_at_max
    )
    grid = np.linspace(0.0, 2.5 * n_at_max, 60)
    values = [model.predict_ms(float(n)) for n in grid]
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
    # max_clients never promises a violating capacity.
    for goal in (values[5] * 1.1, values[30] * 1.05, values[-1] * 0.9):
        capacity = model.max_clients(float(goal))
        if capacity > 0:
            assert model.predict_ms(capacity) <= goal * 1.02
