"""The ``python -m repro.analysis project`` gate: exit codes and formats."""

import json
import shutil
import time
from pathlib import Path

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "analysis_fixtures"
REPO = Path(__file__).parent.parent


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        code = main(["project", str(FIXTURES / "project_clean"), "--no-baseline"])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_deadlock_fixture_exits_one(self, capsys):
        code = main(["project", str(FIXTURES / "project_deadlock"), "--no-baseline"])
        assert code == 1
        assert "REPRO-DEADLOCK001" in capsys.readouterr().out

    def test_pass_selection_can_blank_a_bad_tree(self, capsys):
        code = main(
            [
                "project",
                str(FIXTURES / "project_blocking"),
                "--no-baseline",
                "--pass",
                "deadlock",
            ]
        )
        assert code == 0

    def test_baseline_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "project-baseline.json"
        assert (
            main(
                [
                    "project",
                    str(FIXTURES / "project_blocking"),
                    "--baseline",
                    str(baseline),
                    "--write-baseline",
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "project",
                    str(FIXTURES / "project_blocking"),
                    "--baseline",
                    str(baseline),
                ]
            )
            == 0
        )

    def test_no_baseline_conflicts_with_baseline(self, tmp_path, capsys):
        import pytest

        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "project",
                    str(FIXTURES / "project_clean"),
                    "--baseline",
                    str(tmp_path / "b.json"),
                    "--no-baseline",
                ]
            )
        assert excinfo.value.code == 2


class TestFormats:
    def test_json_format_is_machine_readable(self, capsys):
        code = main(
            [
                "project",
                str(FIXTURES / "project_entropy"),
                "--no-baseline",
                "--format",
                "json",
            ]
        )
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["new"] == 3
        assert all(f["rule_id"] == "REPRO-ENTROPY001" for f in doc["findings"])
        assert any(f.get("witness") for f in doc["findings"])

    def test_sarif_format_has_runs_and_codeflows(self, capsys):
        code = main(
            [
                "project",
                str(FIXTURES / "project_blocking"),
                "--no-baseline",
                "--format",
                "sarif",
            ]
        )
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert {r["ruleId"] for r in results} == {"REPRO-BLOCK001"}
        assert any("codeFlows" in r for r in results)


class TestRepositoryGate:
    """The acceptance contract CI enforces on this very repo."""

    def test_src_is_clean_under_committed_baseline_within_budget(self, capsys):
        start = time.perf_counter()
        code = main(["project", str(REPO / "src")])
        elapsed = time.perf_counter() - start
        assert code == 0
        assert elapsed < 10.0

    def test_seeded_deadlock_fails_the_gate(self, tmp_path, capsys):
        """Copy the tree, smuggle in an AB-BA cycle, and the gate must trip."""
        shutil.copy(REPO / "pyproject.toml", tmp_path / "pyproject.toml")
        shutil.copy(
            REPO / ".analysis-project-baseline.json",
            tmp_path / ".analysis-project-baseline.json",
        )
        shutil.copytree(REPO / "src", tmp_path / "src")
        shutil.copy(
            FIXTURES / "project_deadlock" / "ab.py",
            tmp_path / "src" / "repro" / "service" / "seeded_ab.py",
        )
        code = main(["project", str(tmp_path / "src")])
        assert code == 1
        assert "REPRO-DEADLOCK001" in capsys.readouterr().out
