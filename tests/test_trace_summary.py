"""Tests for trace summarization and the ``python -m repro.trace`` CLI."""

from __future__ import annotations

import json

from repro.trace import (
    JsonlSink,
    RingBufferSink,
    Tracer,
    render_summary,
    summarize_events,
)
from repro.trace.cli import main as trace_cli
from repro.util.clock import FakeClock


def build_trace(clock, tracer):
    """Two solves (40 ms, 100 ms) each holding a 30/80 ms inner stage."""
    for outer_s, inner_s in ((0.04, 0.03), (0.1, 0.08)):
        with tracer.span("solve"):
            clock.advance(outer_s - inner_s)
            with tracer.span("iterate"):
                clock.advance(inner_s)


class TestSummarize:
    def test_counts_totals_and_self_vs_child_time(self):
        clock = FakeClock()
        sink = RingBufferSink()
        tracer = Tracer(clock=clock, sinks=(sink,))
        build_trace(clock, tracer)
        summary = summarize_events(sink.events())

        solve = summary.spans["solve"]
        iterate = summary.spans["iterate"]
        assert solve.count == iterate.count == 2
        assert round(solve.total_ms, 6) == 140.0
        assert round(iterate.total_ms, 6) == 110.0
        # Self time excludes the nested stage; the stage is all self time.
        assert round(solve.self_ms, 6) == 30.0
        assert round(solve.child_ms, 6) == 110.0
        assert round(iterate.self_ms, 6) == 110.0

    def test_exact_percentiles(self):
        clock = FakeClock()
        sink = RingBufferSink()
        tracer = Tracer(clock=clock, sinks=(sink,))
        for ms in (10, 20, 30, 40, 50):
            with tracer.span("op"):
                clock.advance(ms / 1000.0)
        op = summarize_events(sink.events()).spans["op"]
        # Nearest-rank over the 5 sorted durations.
        assert round(op.percentile_ms(0.50), 6) == 30.0
        assert round(op.percentile_ms(0.95), 6) == 50.0
        assert round(op.percentile_ms(0.0), 6) == 10.0

    def test_critical_path_descends_longest_children(self):
        clock = FakeClock()
        sink = RingBufferSink()
        tracer = Tracer(clock=clock, sinks=(sink,))
        build_trace(clock, tracer)
        steps = summarize_events(sink.events()).critical_path
        assert [s.name for s in steps] == ["solve", "iterate"]
        assert round(steps[0].dur_ms, 6) == 100.0  # the longer root
        assert round(steps[1].dur_ms, 6) == 80.0
        assert steps[0].depth == 0 and steps[1].depth == 1

    def test_render_mentions_every_span_and_the_path(self):
        clock = FakeClock()
        sink = RingBufferSink()
        tracer = Tracer(clock=clock, sinks=(sink,))
        build_trace(clock, tracer)
        text = render_summary(summarize_events(sink.events()), source="unit")
        assert "solve" in text and "iterate" in text
        assert "p95" in text and "Critical path" in text


class TestCli:
    def jsonl(self, tmp_path):
        clock = FakeClock()
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            tracer = Tracer(clock=clock, sinks=(sink,))
            build_trace(clock, tracer)
        return path

    def test_summarize_reports_stats(self, tmp_path, capsys):
        path = self.jsonl(tmp_path)
        assert trace_cli(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "solve" in out and "p50" in out and "p95" in out

    def test_export_writes_loadable_chrome_trace(self, tmp_path, capsys):
        path = self.jsonl(tmp_path)
        out_path = tmp_path / "out.json"
        assert trace_cli(["export", str(path), "-o", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["traceEvents"]
        assert {e["ph"] for e in payload["traceEvents"]} == {"B", "E"}

    def test_missing_file_is_a_usage_error(self, tmp_path, capsys):
        assert trace_cli(["summarize", str(tmp_path / "absent.jsonl")]) == 2
        assert "absent.jsonl" in capsys.readouterr().err

    def test_unparsable_file_is_a_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json}\n")
        assert trace_cli(["summarize", str(bad)]) == 2
