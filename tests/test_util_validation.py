"""Unit tests for repro.util.validation."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.errors import ValidationError
from repro.util.validation import (
    check_finite,
    check_fraction,
    check_non_empty,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probabilities_sum_to_one,
    check_unique,
    require,
)


class TestRequire:
    def test_passes_silently_when_true(self):
        require(True, "never raised")

    def test_raises_with_message_when_false(self):
        with pytest.raises(ValidationError, match="boom"):
            require(False, "boom")

    def test_raised_error_is_value_error(self):
        with pytest.raises(ValueError):
            require(False, "compat")


class TestCheckFinite:
    def test_returns_float_value(self):
        assert check_finite(3, "x") == 3.0
        assert isinstance(check_finite(3, "x"), float)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ValidationError, match="finite"):
            check_finite(bad, "x")

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_finite("hello", "x")

    def test_rejects_none(self):
        with pytest.raises(ValidationError):
            check_finite(None, "x")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.5, "x") == 0.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, -1e-300])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValidationError, match="> 0"):
            check_positive(bad, "x")

    def test_error_message_names_parameter(self):
        with pytest.raises(ValidationError, match="speed"):
            check_positive(-1, "speed")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match=">= 0"):
            check_non_negative(-0.1, "x")


class TestCheckFraction:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, ok):
        assert check_fraction(ok, "p") == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, 2.0])
    def test_rejects_outside(self, bad):
        with pytest.raises(ValidationError):
            check_fraction(bad, "p")


class TestIntChecks:
    def test_positive_int_accepts_one(self):
        assert check_positive_int(1, "n") == 1

    @pytest.mark.parametrize("bad", [0, -1])
    def test_positive_int_rejects(self, bad):
        with pytest.raises(ValidationError):
            check_positive_int(bad, "n")

    def test_positive_int_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "n")

    def test_positive_int_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.0, "n")

    def test_non_negative_int_accepts_zero(self):
        assert check_non_negative_int(0, "n") == 0

    def test_non_negative_int_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative_int(-1, "n")


class TestCollections:
    def test_non_empty_accepts_list(self):
        assert check_non_empty([1], "xs") == [1]

    def test_non_empty_rejects_empty(self):
        with pytest.raises(ValidationError, match="empty"):
            check_non_empty([], "xs")

    def test_unique_accepts_distinct(self):
        check_unique(["a", "b"], "name")

    def test_unique_rejects_duplicates(self):
        with pytest.raises(ValidationError, match="duplicate"):
            check_unique(["a", "a"], "name")


class TestProbabilities:
    def test_accepts_exact_distribution(self):
        check_probabilities_sum_to_one([0.25, 0.75], "p")

    def test_accepts_within_tolerance(self):
        check_probabilities_sum_to_one([1 / 3, 1 / 3, 1 / 3], "p")

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            check_probabilities_sum_to_one([0.5, 0.4], "p")

    def test_rejects_negative_entries(self):
        with pytest.raises(ValidationError):
            check_probabilities_sum_to_one([-0.5, 1.5], "p")

    @given(st.lists(st.floats(min_value=0.001, max_value=1.0), min_size=1, max_size=10))
    def test_normalised_lists_always_pass(self, raw):
        total = sum(raw)
        check_probabilities_sum_to_one([v / total for v in raw], "p")


@given(st.floats(allow_nan=False, allow_infinity=False))
def test_check_finite_accepts_every_finite_float(value):
    assert check_finite(value, "x") == value


@given(st.floats(min_value=1e-12, max_value=1e12))
def test_positive_accepts_positive_range(value):
    assert check_positive(value, "x") == value


def test_nan_never_passes_fraction():
    with pytest.raises(ValidationError):
        check_fraction(math.nan, "p")
