"""End-to-end tests of the span instrumentation in each layer.

Every test attaches a ring sink to the *global* ``TRACER`` (that is
what the instrumented code emits to) and detaches it in ``finally``, so
a failure can never leak an enabled tracer into other tests.
"""

from __future__ import annotations

import sys
import types

import pytest

from repro.lqn.builder import (
    RequestTypeParameters,
    TradeModelParameters,
    build_trade_model,
)
from repro.lqn.solver import LqnSolver, SolverOptions
from repro.prediction.interface import PredictionTimer
from repro.servers.catalogue import APP_SERV_S
from repro.service.admission import AdmissionConfig
from repro.service.service import PredictionService, ServiceConfig
from repro.simulation.engine import EVENT_TRACE_SAMPLE, Simulator
from repro.trace import TRACER, RingBufferSink
from repro.trace.events import BEGIN, END, INSTANT
from repro.util.errors import CalibrationError
from repro.workload.trade import typical_workload

PARAMS = TradeModelParameters(
    request_types={
        "browse": RequestTypeParameters(
            name="browse",
            app_demand_ms=5.376,
            db_calls=1.14,
            db_cpu_per_call_ms=0.8294,
            db_disk_per_call_ms=1.2,
        )
    }
)


@pytest.fixture
def sink():
    """Attach a fresh ring sink to the global tracer for one test."""
    ring = RingBufferSink()
    TRACER.enable(ring)
    try:
        yield ring
    finally:
        TRACER.disable()


def spans_named(events, name):
    return [e for e in events if e.name == name and e.kind == END]


class TestSolverInstrumentation:
    def test_solve_emits_span_tree_and_iteration_instants(self, sink):
        model = build_trade_model(APP_SERV_S, typical_workload(200), PARAMS)
        LqnSolver(SolverOptions(convergence_criterion_ms=0.5)).solve(model)
        events = sink.events()

        (solve,) = spans_named(events, "lqn.solve")
        assert solve.attributes["classes"] >= 1
        assert solve.attributes["stations"] >= 1
        assert solve.attributes["iterations"] >= 1
        # The stage spans nest under the solve span.
        for stage in ("lqn.flatten", "lqn.build_network", "lqn.iterate"):
            (end,) = spans_named(events, stage)
            assert end.parent_id == solve.span_id

        iterations = [e for e in events if e.name == "lqn.mva.iteration"]
        assert iterations, "expected sampled per-MVA-iteration instants"
        assert all(e.kind == INSTANT for e in iterations)
        assert any(e.attributes["iteration"] == 1 for e in iterations)
        assert all("delta" in e.attributes for e in iterations)

    def test_sweep_emits_batch_span_tree_and_convergence_instants(self, sink):
        models = [
            build_trade_model(APP_SERV_S, typical_workload(n), PARAMS)
            for n in (100, 200, 300, 400, 500, 600)
        ]
        solver = LqnSolver(SolverOptions(convergence_criterion_ms=0.5))
        solver.solve_sweep(models)
        events = sink.events()

        (sweep,) = spans_named(events, "lqn.sweep")
        assert sweep.attributes["models"] == len(models)
        assert sweep.attributes["groups"] == 1  # one shared structure
        (iterate,) = spans_named(events, "lqn.iterate")
        assert iterate.parent_id == sweep.span_id
        assert iterate.attributes["points"] == len(models)

        stages = [e for e in events if e.name == "lqn.solve.stage"]
        assert stages and all(e.kind == INSTANT for e in stages)
        assert all(e.attributes["active"] >= 1 for e in stages)

        iterations = [e for e in events if e.name == "lqn.mva.iteration"]
        assert iterations, "expected sampled batch-convergence instants"
        assert any(e.attributes["iteration"] == 1 for e in iterations)
        # Each instant reports the batch residual and the straggler count.
        assert all("delta" in e.attributes for e in iterations)
        assert all(1 <= e.attributes["active"] <= len(models) for e in iterations)

    def test_untraced_solve_emits_nothing(self):
        assert not TRACER.enabled
        model = build_trade_model(APP_SERV_S, typical_workload(200), PARAMS)
        ring = RingBufferSink()  # never attached
        LqnSolver().solve(model)
        assert ring.events() == []


class _Stub:
    def __init__(self, *, fail=False):
        self.name = "stub"
        self.timer = PredictionTimer()
        self.fail = fail

    def predict_mrt_ms(self, server, n_clients, *, buy_fraction=0.0):
        if self.fail:
            raise CalibrationError("always transient (stub)")
        return 123.0

    def predict_throughput(self, server, n_clients, *, buy_fraction=0.0):
        return 1.0

    def max_clients(self, server, rt_goal_ms, *, buy_fraction=0.0):
        return 9


class TestServiceInstrumentation:
    def test_request_span_links_cache_admission_and_pool_execution(self, sink):
        with PredictionService(_Stub(), config=ServiceConfig(max_workers=1)) as svc:
            svc.predict_mrt_ms("S", 500)  # miss: runs on the pool
            svc.predict_mrt_ms("S", 500)  # hit
        events = sink.events()

        miss, hit = spans_named(events, "service.request")
        assert miss.attributes["outcome"] == "computed"
        assert hit.attributes["outcome"] == "cache_hit"

        (execute,) = spans_named(events, "service.execute")
        assert execute.parent_id == miss.span_id  # nests across the pool

        cache_marks = [e for e in events if e.name == "service.cache"]
        assert [m.attributes["hit"] for m in cache_marks] == [False, True]
        admitted = [e for e in events if e.name == "service.admission"]
        assert [a.attributes["admitted"] for a in admitted] == [True]

    def test_degradation_emits_fallback_events(self, sink):
        config = ServiceConfig(
            max_workers=1,
            admission=AdmissionConfig(max_retries=0, backoff_initial_s=0.0),
        )
        with PredictionService(
            _Stub(fail=True), fallback=_Stub(), config=config
        ) as svc:
            assert svc.predict_mrt_ms("S", 700) == 123.0
        events = sink.events()

        (request,) = spans_named(events, "service.request")
        assert request.attributes["outcome"] == "degraded.error"
        (mark,) = [e for e in events if e.name == "service.fallback"]
        assert mark.attributes == {"reason": "error", "available": True}
        (call,) = spans_named(events, "service.fallback_call")
        assert call.parent_id == request.span_id


class TestHistoricalInstrumentation:
    def build_model(self):
        from repro.historical.datastore import HistoricalDataPoint, HistoricalDataStore
        from repro.historical.model import HistoricalModel

        mx = {"F": 186.0, "VF": 320.0}
        store = HistoricalDataStore()
        for server, max_tput in mx.items():
            for frac in (0.35, 0.66, 1.15, 1.6):
                n = int(frac * max_tput / 0.14)
                store.add(
                    HistoricalDataPoint(
                        server=server,
                        n_clients=n,
                        mean_response_ms=8.0 * (1.0 + 0.002 * n),
                        throughput_req_per_s=min(0.14 * n, max_tput),
                        n_samples=50,
                    )
                )
        return HistoricalModel.calibrate(
            store,
            mx,
            mix_observations=[(0.0, 186.0), (0.25, 160.0)],
            mix_server="F",
        )

    def test_mix_miss_refits_and_hit_is_an_instant(self, sink):
        model = self.build_model()
        model.predict_mrt_ms("F", 100, buy_fraction=0.1)  # cold: refit span
        model.predict_mrt_ms("F", 100, buy_fraction=0.1)  # warm: cache instant
        events = sink.events()

        predicts = spans_named(events, "historical.predict")
        assert [p.attributes["op"] for p in predicts] == ["mrt", "mrt"]
        (refit,) = spans_named(events, "historical.mix_refit")
        assert refit.parent_id == predicts[0].span_id
        assert refit.attributes["buy_fraction"] == 0.1
        (hit,) = [e for e in events if e.name == "historical.mix_cache"]
        assert hit.kind == INSTANT
        assert hit.attributes["hit"] is True
        assert hit.span_id == predicts[1].span_id

    def test_calibrate_span_counts_servers(self, sink):
        self.build_model()
        (calibrate,) = spans_named(sink.events(), "historical.calibrate")
        assert calibrate.attributes["servers"] == 2


class TestHybridInstrumentation:
    def test_predict_reports_which_sub_model_served(self, sink):
        from repro.hybrid.model import AdvancedHybridModel, HybridCalibrationReport

        class _Hist:
            def predict_mrt_ms(self, server, n, *, buy_fraction=0.0):
                return 42.0

        hybrid = AdvancedHybridModel(
            historical=_Hist(), report=HybridCalibrationReport(), parameters=None
        )
        assert hybrid.predict_mrt_ms("F", 100) == 42.0
        (mark,) = [e for e in sink.events() if e.name == "hybrid.predict"]
        assert mark.kind == INSTANT
        assert mark.attributes == {"op": "mrt", "served_by": "historical"}


class TestSimulationInstrumentation:
    def test_run_until_span_and_sampled_event_instants(self, sink):
        sim = Simulator()
        count = EVENT_TRACE_SAMPLE + 50

        def nop():
            pass

        for i in range(count):
            sim.schedule(float(i) * 0.001, nop)
        sim.run_until(10.0)
        events = sink.events()

        (run,) = spans_named(events, "sim.run_until")
        assert run.attributes == {"end_time_ms": 10.0}
        samples = [e for e in events if e.name == "sim.events"]
        assert len(samples) == 1  # one marker per EVENT_TRACE_SAMPLE events
        assert samples[0].attributes["processed"] == EVENT_TRACE_SAMPLE
        (counter,) = [e for e in events if e.name == "sim.events_processed"]
        assert counter.value == float(count)


class TestRunnerInstrumentation:
    def test_each_experiment_gets_a_root_span(self, sink, monkeypatch):
        from repro.experiments import runner

        module = types.ModuleType("repro.experiments._fake_traced")
        module.run = lambda fast=False: "ok"
        monkeypatch.setitem(sys.modules, module.__name__, module)
        monkeypatch.setitem(runner.EXPERIMENTS, "_fake", module.__name__)

        assert runner.run_experiment("_fake", fast=True) == "ok"
        (root,) = spans_named(sink.events(), "experiment")
        assert root.attributes == {"id": "_fake", "fast": True}
        assert root.parent_id == 0
