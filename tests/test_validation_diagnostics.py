"""Tests for the calibration QA diagnostics."""

import pytest

from repro.historical.datastore import HistoricalDataPoint, HistoricalDataStore
from repro.historical.model import HistoricalModel
from repro.historical.relationships import LowerEquation, UpperEquation
from repro.historical.scaling import ServerCalibration
from repro.historical.throughput import ThroughputModel
from repro.prediction.validation import diagnose_historical_model

MX = {"F": 186.0, "VF": 320.0}


def consistent_model() -> HistoricalModel:
    """A model whose relationship-2 fits are exact (two servers -> fits
    interpolate), so diagnostics should be clean."""
    store = HistoricalDataStore()
    for server, mx in MX.items():
        n_star = mx / 0.14
        for frac, mrt in ((0.35, 15.0), (0.66, 25.0), (1.15, 600.0), (1.6, 3000.0)):
            store.add(
                HistoricalDataPoint(
                    server=server,
                    n_clients=int(frac * n_star),
                    mean_response_ms=mrt * (186.0 / mx) ** 0.3,
                    throughput_req_per_s=min(0.14 * frac * n_star, mx),
                    n_samples=50,
                )
            )
    return HistoricalModel.calibrate(store, MX)


class TestDiagnostics:
    def test_consistent_model_is_healthy(self):
        diagnostics = diagnose_historical_model(consistent_model())
        assert diagnostics.healthy, diagnostics.warnings
        # Two-server fits interpolate exactly: residuals ~ 0.
        assert diagnostics.max_residual < 1e-6

    def test_single_server_model_warns_about_relationship2(self):
        model = HistoricalModel(
            throughput_model=ThroughputModel(gradient=0.14, max_throughput={"F": 186.0})
        )
        model.server_calibrations["F"] = ServerCalibration(
            server="F",
            max_throughput_req_per_s=186.0,
            lower=LowerEquation(c_l=10.0, lambda_l=1e-3),
            upper=UpperEquation(lambda_u=5.4, c_u=-6900.0),
        )
        diagnostics = diagnose_historical_model(model)
        assert not diagnostics.healthy
        assert any("relationship 2" in w for w in diagnostics.warnings)

    def test_non_growing_lower_equation_flagged(self):
        model = consistent_model()
        model.server_calibrations["F"] = ServerCalibration(
            server="F",
            max_throughput_req_per_s=186.0,
            lower=LowerEquation(c_l=10.0, lambda_l=-1e-4),
            upper=UpperEquation(lambda_u=5.4, c_u=-6900.0),
        )
        diagnostics = diagnose_historical_model(model)
        assert any("does not grow" in w for w in diagnostics.warnings)

    def test_flat_upper_slope_flagged(self):
        model = consistent_model()
        model.server_calibrations["F"] = ServerCalibration(
            server="F",
            max_throughput_req_per_s=186.0,
            lower=LowerEquation(c_l=10.0, lambda_l=1e-3),
            upper=UpperEquation(lambda_u=0.01, c_u=5.0),  # << 1000/186
        )
        diagnostics = diagnose_historical_model(model)
        assert any("implausibly flat" in w for w in diagnostics.warnings)

    def test_inverted_upper_slope_flagged(self):
        model = consistent_model()
        model.server_calibrations["F"] = ServerCalibration(
            server="F",
            max_throughput_req_per_s=186.0,
            lower=LowerEquation(c_l=10.0, lambda_l=1e-3),
            upper=UpperEquation(lambda_u=-1.0, c_u=5.0),
        )
        diagnostics = diagnose_historical_model(model)
        assert any("inverted" in w for w in diagnostics.warnings)

    def test_real_scenario_calibration_is_diagnosable(self, lqn_calibration_fast):
        """The hybrid model built from LQN data should pass the QA gate —
        its pseudo-data is noise-free."""
        from repro.hybrid.model import AdvancedHybridModel
        from repro.servers.catalogue import APP_SERV_F, APP_SERV_VF

        hybrid = AdvancedHybridModel.build(
            lqn_calibration_fast.to_model_parameters(),
            [APP_SERV_F, APP_SERV_VF],
            calibrate_mix=False,
        )
        diagnostics = diagnose_historical_model(hybrid.historical)
        assert diagnostics.max_residual < 0.05
        assert diagnostics.healthy, diagnostics.warnings
