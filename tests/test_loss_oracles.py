"""Closed-form-anchored loss oracles for the finite-capacity system model.

Every loss number the repo can produce is checked against an oracle that
was derived *independently* of the implementation under test:

* the analytic layer (:mod:`repro.lqn.loss`, log-domain birth-death
  softmax) against the textbook factorial/geometric M/M/1/K and M/M/c/K
  closed forms, at ``ANALYTIC_TOL = 1e-9`` relative, across the low /
  knee / overload utilisation bands (hypothesis-driven);
* the K -> infinity degeneration, **bitwise**: a huge-but-finite
  capacity must reproduce the unbounded solver's output exactly (``==``,
  not approx) at the closed-form, batch-core and LQN-solver layers;
* the stochastic layer (:mod:`repro.simulation.resources`) against the
  same closed forms — and, for balking, against a directly-solved
  birth-death chain — within confidence-interval-width tolerances
  (seeded Poisson runs, so the checks are deterministic in CI);
* the historical layer (:class:`repro.historical.loss.LossRateModel`)
  against the synthetic relationship it claims to fit (hypothesis);
* the unbounded-saturation bugfix: open overload on an unbounded queue
  warns, a ``queue_capacity`` bound converts the overload into measured
  loss and silences the warning.
"""

from __future__ import annotations

import math
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.historical.loss import SATURATION_LOSS_THRESHOLD, LossRateModel
from repro.lqn.builder import (
    RequestTypeParameters,
    TradeModelParameters,
    build_trade_model,
)
from repro.lqn.loss import (
    effective_throughput,
    mm1k_loss_probability,
    mmck_loss_probability,
    mmck_loss_quantities,
    mmck_mean_in_system,
    mmck_state_probabilities,
    solve_batch_with_loss,
)
from repro.lqn.mva import MvaBatchInput, MvaInput, Station, solve_batch
from repro.lqn.solver import LqnSolver
from repro.servers.catalogue import APP_SERV_S
from repro.simulation.engine import Simulator
from repro.simulation.resources import FifoServer, ProcessorSharingServer
from repro.simulation.system import SimulatedDeployment, SimulationConfig
from repro.util.errors import CalibrationError, SimulationSaturationWarning
from repro.util.rng import spawn_rng
from repro.workload.trade import browse_class

#: Relative tolerance for analytic-vs-closed-form agreement (the issue's
#: acceptance bar): both sides are exact formulas, so only float noise
#: separates them.
ANALYTIC_TOL = 1e-9

#: A capacity so large that any stable load's blocking probability
#: underflows to exact 0.0 — the K -> infinity degeneration.
HUGE_CAPACITY = 10**5

PARAMS = TradeModelParameters(
    request_types={
        "browse": RequestTypeParameters(
            name="browse",
            app_demand_ms=5.376,
            db_calls=1.14,
            db_cpu_per_call_ms=0.8294,
            db_disk_per_call_ms=1.2,
        )
    }
)

# -- independent closed-form references --------------------------------------


def reference_mm1k_loss(rho: float, capacity: int) -> float:
    """Textbook geometric M/M/1/K blocking: (1-rho)·rho^K / (1-rho^(K+1))."""
    if rho == 1.0:
        return 1.0 / (capacity + 1)
    return (1.0 - rho) * rho**capacity / (1.0 - rho ** (capacity + 1))


def reference_mmck_distribution(a: float, c: int, capacity: int) -> list[float]:
    """Textbook Erlang form of M/M/c/K: a^n/n! up to c, geometric beyond."""
    weights = []
    for n in range(capacity + 1):
        if n <= c:
            weights.append(a**n / math.factorial(n))
        else:
            weights.append(a**c / math.factorial(c) * (a / c) ** (n - c))
    total = sum(weights)
    return [w / total for w in weights]


def reference_birth_death_loss(
    arrival_rate: float, service_rate: float, servers: int, capacity: int, admit
) -> float:
    """Shed fraction of a general birth-death admission chain (by PASTA).

    ``admit(n)`` is the probability an arrival finding ``n`` in system is
    admitted (0 at ``n == capacity``); service completes at rate
    ``min(n, servers)·service_rate``.  Solved by direct detailed-balance
    recursion — no shared code with the implementation under test.
    """
    p = [1.0]
    for n in range(capacity):
        p.append(p[-1] * arrival_rate * admit(n) / (min(n + 1, servers) * service_rate))
    total = sum(p)
    p = [x / total for x in p]
    return sum(p[n] * (1.0 - (admit(n) if n < capacity else 0.0)) for n in range(capacity + 1))


# Utilisation bands of the issue's acceptance grid.  The knee band stops
# short of rho == 1 and the overload band starts past it because the
# *geometric reference* is ill-conditioned at rho ~ 1 (catastrophic
# cancellation in 1 - rho^(K+1)); rho == 1.0 itself is pinned exactly.
RHO_LOW = st.floats(0.01, 0.66)
RHO_KNEE = st.floats(0.66, 0.999)
RHO_OVERLOAD = st.floats(1.001, 3.0)
RHO_ALL = st.one_of(RHO_LOW, RHO_KNEE, RHO_OVERLOAD)


class TestClosedFormsAgainstTextbook:
    @settings(deadline=None)
    @given(rho=RHO_ALL, capacity=st.integers(1, 80))
    def test_mm1k_loss_matches_geometric_form(self, rho, capacity):
        ours = mm1k_loss_probability(rho, capacity)
        reference = reference_mm1k_loss(rho, capacity)
        assert math.isclose(ours, reference, rel_tol=ANALYTIC_TOL)

    @settings(deadline=None)
    @given(capacity=st.integers(1, 200))
    def test_mm1k_critical_load_is_uniform(self, capacity):
        # rho == 1: every state equally likely, P_K = 1/(K+1) *exactly*.
        assert mm1k_loss_probability(1.0, capacity) == 1.0 / (capacity + 1)

    @settings(deadline=None)
    @given(rho=RHO_ALL, servers=st.integers(1, 8), extra=st.integers(0, 40))
    def test_mmck_distribution_matches_erlang_form(self, rho, servers, extra):
        capacity = servers + extra
        a = rho * servers
        ours = mmck_state_probabilities(a, servers, capacity)
        reference = reference_mmck_distribution(a, servers, capacity)
        assert ours.shape == (capacity + 1,)
        assert math.isclose(float(ours.sum()), 1.0, rel_tol=1e-12)
        for n in range(capacity + 1):
            assert math.isclose(
                float(ours[n]), reference[n], rel_tol=ANALYTIC_TOL, abs_tol=1e-250
            ), n

    @settings(deadline=None)
    @given(rho=RHO_ALL, servers=st.integers(1, 8), extra=st.integers(0, 40))
    def test_mmck_moments_match_erlang_form(self, rho, servers, extra):
        capacity = servers + extra
        a = rho * servers
        reference = reference_mmck_distribution(a, servers, capacity)
        loss = mmck_loss_probability(a, servers, capacity)
        assert math.isclose(loss, reference[-1], rel_tol=ANALYTIC_TOL, abs_tol=1e-250)
        mean_n = mmck_mean_in_system(a, servers, capacity)
        assert math.isclose(
            mean_n,
            sum(n * p for n, p in enumerate(reference)),
            rel_tol=ANALYTIC_TOL,
            abs_tol=1e-250,
        )
        # Flow balance: carried work == a·(1 - P_K), an exact chain identity.
        carried = float(mmck_loss_quantities(a, servers, capacity).carried_erlangs)
        assert math.isclose(carried, a * (1.0 - loss), rel_tol=1e-6, abs_tol=1e-250)

    def test_empty_load_edge(self):
        p = mmck_state_probabilities(0.0, 3, 10)
        assert p[0] == 1.0
        assert not p[1:].any()
        assert mmck_loss_probability(0.0, 3, 10) == 0.0

    def test_loss_monotone_in_load_and_capacity(self):
        losses = [mmck_loss_probability(a, 2, 10) for a in (0.5, 1.0, 2.0, 4.0, 8.0)]
        assert losses == sorted(losses)
        by_capacity = [mm1k_loss_probability(0.9, k) for k in (2, 5, 10, 30)]
        assert by_capacity == sorted(by_capacity, reverse=True)

    def test_effective_throughput_is_the_carried_rate(self):
        assert effective_throughput(100.0, 0.25) == 75.0
        assert effective_throughput(0.0, 0.9) == 0.0


class TestKInfinityDegeneratesBitwise:
    """A huge capacity must be *indistinguishable* from no capacity."""

    @settings(deadline=None, max_examples=25)
    @given(rho=st.floats(0.05, 0.9), servers=st.integers(1, 4))
    def test_closed_form_underflows_to_exact_zero(self, rho, servers):
        assert mmck_loss_probability(rho * servers, servers, HUGE_CAPACITY) == 0.0

    def test_batch_core_is_bit_identical(self):
        def point(demand_ms: float, capacity: int | None) -> MvaInput:
            return MvaInput(
                stations=[Station("cpu", capacity=capacity), Station("disk")],
                class_names=["c"],
                populations=[15],
                think_times_ms=[800.0],
                demands=np.array([[4.0, 2.0]]),
                open_class_names=["o"],
                open_rates_per_ms=[0.05],
                open_demands=np.array([[demand_ms, 1.0]]),
            )

        demands = (3.0, 6.0, 9.0)
        bounded = MvaBatchInput.from_points([point(d, HUGE_CAPACITY) for d in demands])
        unbounded = MvaBatchInput.from_points([point(d, None) for d in demands])
        with_loss = solve_batch_with_loss(bounded)
        plain = solve_batch(unbounded)
        assert (with_loss.throughput_per_ms == plain.throughput_per_ms).all()
        assert (with_loss.queue_lengths == plain.queue_lengths).all()
        assert with_loss.open_response_ms == plain.open_response_ms
        assert not with_loss.loss_probability.any()

    def test_lqn_solver_is_bit_identical(self):
        open_workload = {browse_class(): 30.0}
        bounded = LqnSolver().solve(
            build_trade_model(
                APP_SERV_S,
                {},
                PARAMS,
                open_workload=open_workload,
                app_queue_capacity=HUGE_CAPACITY,
            )
        )
        unbounded = LqnSolver().solve(
            build_trade_model(APP_SERV_S, {}, PARAMS, open_workload=open_workload)
        )
        assert bounded.response_ms == unbounded.response_ms
        assert bounded.throughput_req_per_s == unbounded.throughput_req_per_s
        assert bounded.loss_probability["open_browse"] == 0.0


# -- the stochastic layer vs the same closed forms ---------------------------


def _run_poisson_loss(
    station_factory, *, rho, servers, service_ms=10.0, n_arrivals=20_000, seed=42
):
    """Drive one station with a seeded Poisson/exponential load to drain."""
    sim = Simulator()
    station = station_factory(sim)
    rng = spawn_rng(seed, "poisson-loss")
    arrival_gaps = rng.exponential(service_ms / (rho * servers), n_arrivals)
    services = rng.exponential(service_ms, n_arrivals)
    for at, work in zip(np.cumsum(arrival_gaps), services):
        sim.schedule(float(at), lambda w=float(work): station.submit(w, lambda: None))
    sim.run_until(float(np.cumsum(arrival_gaps)[-1]) + 1e7)
    stats = station.stats
    assert stats.arrivals == n_arrivals
    assert station.total_in_system == 0  # drained
    return stats


def _ci_tolerance(p: float, n: int) -> float:
    """~5-sigma binomial half-width, floored for transient/correlation slack."""
    return max(0.012, 5.0 * math.sqrt(max(p * (1.0 - p), 1e-6) / n))


class TestSimulatedLossMatchesClosedForm:
    @pytest.mark.parametrize("rho", [0.5, 0.95, 1.5])
    def test_fifo_mm1k(self, rho):
        capacity = 8
        stats = _run_poisson_loss(
            lambda sim: FifoServer(sim, "fifo", capacity=capacity),
            rho=rho,
            servers=1,
        )
        expected = mm1k_loss_probability(rho, capacity)
        assert stats.balks == 0
        assert abs(stats.loss_rate() - expected) <= _ci_tolerance(
            expected, stats.arrivals
        ), (stats.loss_rate(), expected)

    @pytest.mark.parametrize("rho", [0.9, 1.4])
    def test_fifo_mmck_multi_server(self, rho):
        servers, capacity = 3, 12
        stats = _run_poisson_loss(
            lambda sim: FifoServer(sim, "fifo3", servers=servers, capacity=capacity),
            rho=rho,
            servers=servers,
        )
        expected = mmck_loss_probability(rho * servers, servers, capacity)
        assert abs(stats.loss_rate() - expected) <= _ci_tolerance(
            expected, stats.arrivals
        ), (stats.loss_rate(), expected)

    @pytest.mark.parametrize("rho", [0.8, 1.3])
    def test_processor_sharing_occupancy_chain_is_mm1k(self, rho):
        # With one core the PS station's total completion rate is
        # occupancy-independent, so its occupancy chain — hence its loss —
        # is exactly M/M/1/K even though the discipline differs.
        capacity = 8
        stats = _run_poisson_loss(
            lambda sim: ProcessorSharingServer(
                sim, "ps", max_concurrency=4, capacity=capacity
            ),
            rho=rho,
            servers=1,
        )
        expected = mm1k_loss_probability(rho, capacity)
        assert abs(stats.loss_rate() - expected) <= _ci_tolerance(
            expected, stats.arrivals
        ), (stats.loss_rate(), expected)

    def test_balk_curve_matches_birth_death_chain(self):
        capacity, rho = 10, 1.2

        def balk_probability(n: int) -> float:
            return min(1.0, 0.15 * max(0, n - 3))

        stats = _run_poisson_loss(
            lambda sim: FifoServer(
                sim,
                "balky",
                capacity=capacity,
                balk_fn=balk_probability,
                rng=spawn_rng(7, "balk"),
            ),
            rho=rho,
            servers=1,
        )
        expected = reference_birth_death_loss(
            arrival_rate=rho,
            service_rate=1.0,
            servers=1,
            capacity=capacity,
            admit=lambda n: 1.0 - balk_probability(n),
        )
        assert stats.balks > 0 and stats.drops > 0  # both shed paths exercised
        observed = stats.loss_rate()
        assert abs(observed - expected) <= _ci_tolerance(expected, stats.arrivals), (
            observed,
            expected,
        )

    def test_below_capacity_no_loss_at_all(self):
        capacity = 200
        stats = _run_poisson_loss(
            lambda sim: FifoServer(sim, "roomy", capacity=capacity),
            rho=0.5,
            servers=1,
            n_arrivals=5_000,
        )
        assert mm1k_loss_probability(0.5, capacity) < 1e-9  # analytic: ~0
        assert stats.drops == 0 and stats.balks == 0  # stochastic: exactly 0

    def test_capacity_bound_is_exact_under_a_burst(self):
        sim = Simulator()
        station = FifoServer(sim, "burst", capacity=6)
        admitted = sum(station.submit(1000.0, lambda: None) for _ in range(11))
        assert admitted == 6
        assert station.total_in_system == 6
        assert station.stats.drops == 5


# -- the historical layer vs the relationship it fits ------------------------


@st.composite
def _loss_observations(draw):
    """Synthetic (offered, loss) pairs lying exactly on loss = 1 - C/x."""
    capacity = draw(st.floats(10.0, 1000.0))
    fractions = draw(
        st.lists(st.floats(0.05, 4.0), min_size=1, max_size=15).filter(
            lambda fs: any(1.0 - 1.0 / f >= SATURATION_LOSS_THRESHOLD for f in fs)
        )
    )
    observations = [
        (capacity * f, max(0.0, 1.0 - 1.0 / f)) for f in fractions
    ]
    return capacity, observations


class TestLossRateModelProperties:
    @settings(deadline=None)
    @given(_loss_observations())
    def test_calibration_recovers_the_capacity(self, case):
        capacity, observations = case
        model = LossRateModel.calibrate("s", observations)
        assert math.isclose(
            model.carried_capacity_req_per_s, capacity, rel_tol=1e-9
        )

    @settings(deadline=None)
    @given(_loss_observations(), st.floats(0.1, 5000.0))
    def test_predictions_are_sane(self, case, offered):
        _, observations = case
        model = LossRateModel.calibrate("s", observations)
        loss = model.predict_loss_rate(offered)
        assert 0.0 <= loss < 1.0
        carried = model.predict_carried_req_per_s(offered)
        assert math.isclose(
            carried,
            min(offered, model.carried_capacity_req_per_s),
            rel_tol=1e-12,
        )
        # Monotone: more offered load never means less loss.
        assert model.predict_loss_rate(offered * 1.5) >= loss

    @settings(deadline=None)
    @given(_loss_observations())
    def test_refit_equals_pooled_calibration(self, case):
        _, observations = case
        saturated_prefix = any(
            loss >= SATURATION_LOSS_THRESHOLD for _, loss in observations[:-1]
        )
        if len(observations) < 2 or not saturated_prefix:
            return
        base = LossRateModel.calibrate("s", observations[:-1])
        refitted = base.refit(observations[-1:])
        pooled = LossRateModel.calibrate("s", observations)
        assert refitted.carried_capacity_req_per_s == pooled.carried_capacity_req_per_s
        assert refitted.observations == pooled.observations

    def test_unsaturated_observations_cannot_calibrate(self):
        with pytest.raises(CalibrationError):
            LossRateModel.calibrate("s", [(50.0, 0.0), (80.0, 0.004)])


# -- the unbounded-saturation bugfix (warn, then bound-and-measure) ----------


def _overload_deployment(rate: float, queue_capacity: int | None):
    return SimulatedDeployment(
        placements={APP_SERV_S.name: (APP_SERV_S, {})},
        config=SimulationConfig(
            duration_s=10.0, warmup_s=2.0, seed=3, queue_capacity=queue_capacity
        ),
        open_arrivals={APP_SERV_S.name: {browse_class(): rate}},
    )


class TestSaturationWarning:
    OVERLOAD_RATE = 300.0  # AppServS saturates near 85 req/s browse

    def test_unbounded_open_overload_warns(self):
        with pytest.warns(SimulationSaturationWarning, match="no steady state"):
            _overload_deployment(self.OVERLOAD_RATE, None).run()

    def test_queue_capacity_converts_overload_into_loss_and_silences(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", SimulationSaturationWarning)
            result = _overload_deployment(self.OVERLOAD_RATE, 60).run()
        assert result.loss_rate > 0.3
        assert result.dropped_requests > 0

    def test_stable_open_load_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", SimulationSaturationWarning)
            result = _overload_deployment(30.0, None).run()
        assert result.loss_rate == 0.0
