"""Distribution specs, MLE fitters, diagnostics: deterministic unit checks."""

import numpy as np
import pytest

from repro.util.errors import ValidationError
from repro.util.rng import spawn_rng
from repro.workloads.diagnostics import (
    empirical_cv2,
    exponentiality,
    ks_p_value,
    ks_statistic,
)
from repro.workloads.dists import (
    DistributionSpec,
    empirical_spec,
    exponential_spec,
    hyperexponential_spec,
    lognormal_spec,
    pareto_spec,
)
from repro.workloads.fitting import (
    best_fit,
    discriminate_tail,
    fit_all,
    fit_exponential,
    fit_hyperexponential,
    fit_lognormal,
    fit_pareto,
)

RNG = spawn_rng(7, "test:workloads:fitting")


class TestDistributionSpec:
    def test_json_round_trip(self):
        spec = hyperexponential_spec(0.7, 1000.0, 9000.0)
        again = DistributionSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_moments(self):
        assert exponential_spec(7000.0).mean_ms == pytest.approx(7000.0)
        assert exponential_spec(7000.0).cv2 == 1.0
        log = lognormal_spec(np.log(7000.0) - 0.5, 1.0)
        assert log.mean_ms == pytest.approx(7000.0, rel=1e-9)
        assert log.cv2 == pytest.approx(np.e - 1.0)
        assert pareto_spec(1000.0, 3.0).mean_ms == pytest.approx(1500.0)
        assert pareto_spec(1000.0, 3.0).cv2 == pytest.approx(1.0 / 3.0)
        assert pareto_spec(1000.0, 0.9).mean_ms == float("inf")
        assert pareto_spec(1000.0, 1.5).cv2 == float("inf")

    def test_quantile_inverts_cdf(self):
        q = np.array([0.1, 0.5, 0.9])
        for spec in (
            exponential_spec(5000.0),
            lognormal_spec(8.0, 0.8),
            pareto_spec(800.0, 2.5),
            hyperexponential_spec(0.6, 2000.0, 12000.0),
        ):
            x = spec.quantile(q)
            np.testing.assert_allclose(spec.cdf(x), q, atol=1e-6)

    def test_sampling_is_deterministic_per_stream(self):
        spec = lognormal_spec(8.0, 1.0)
        a = spec.sample(spawn_rng(3, "s"), 16)
        b = spec.sample(spawn_rng(3, "s"), 16)
        assert np.array_equal(a, b)

    def test_empirical_spec_tracks_sample_quantiles(self):
        samples = RNG.exponential(5000.0, 4000)
        spec = empirical_spec(samples)
        assert spec.mean_ms == pytest.approx(float(np.mean(samples)), rel=0.05)
        assert float(spec.quantile(0.5)) == pytest.approx(
            float(np.median(samples)), rel=0.05
        )

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ValidationError):
            exponential_spec(-1.0)
        with pytest.raises(ValidationError):
            pareto_spec(0.0, 2.0)
        with pytest.raises(ValidationError):
            DistributionSpec.make("gamma", {"k": 2.0})


class TestFitters:
    def test_exponential_recovers_mean(self):
        samples = spawn_rng(11, "exp").exponential(7000.0, 6000)
        fit = fit_exponential(samples)
        assert fit.spec.mean_ms == pytest.approx(float(np.mean(samples)))
        assert fit.gof.verdict in ("good", "marginal")

    def test_lognormal_recovers_log_moments(self):
        rng = spawn_rng(11, "log")
        samples = np.exp(rng.normal(8.0, 0.7, 6000))
        fit = fit_lognormal(samples)
        params = fit.spec.param_dict()
        assert params["mu"] == pytest.approx(8.0, abs=0.05)
        assert params["sigma"] == pytest.approx(0.7, abs=0.05)

    def test_pareto_recovers_shape(self):
        spec = pareto_spec(1000.0, 2.5)
        samples = spec.sample(spawn_rng(11, "par"), 6000)
        fit = fit_pareto(samples)
        params = fit.spec.param_dict()
        assert params["alpha"] == pytest.approx(2.5, rel=0.1)
        assert params["xm"] == pytest.approx(1000.0, rel=0.01)

    def test_hyperexponential_matches_first_two_moments(self):
        spec = hyperexponential_spec(0.9, 1000.0, 20000.0)
        samples = spec.sample(spawn_rng(11, "h2"), 8000)
        fit = fit_hyperexponential(samples)
        assert fit.spec.mean_ms == pytest.approx(float(np.mean(samples)), rel=1e-6)
        assert fit.spec.cv2 == pytest.approx(empirical_cv2(samples), rel=1e-6)

    def test_hyperexponential_degrades_to_exponential_for_low_cv2(self):
        samples = np.full(100, 500.0) + spawn_rng(1, "c").normal(0.0, 5.0, 100)
        fit = fit_hyperexponential(samples)
        params = fit.spec.param_dict()
        assert params["p"] == 0.5
        assert params["lam1"] == params["lam2"]

    def test_fit_needs_two_positive_samples(self):
        with pytest.raises(ValidationError):
            fit_exponential(np.array([5.0]))
        with pytest.raises(ValidationError):
            fit_exponential(np.array([-1.0, -2.0]))

    def test_fit_all_ranks_true_family_first(self):
        samples = np.exp(spawn_rng(13, "rank").normal(8.5, 1.0, 5000))
        ranked = fit_all(samples)
        assert ranked[0].spec.kind == "lognormal"
        assert ranked[-1].spec.kind == "empirical"
        aics = [fit.aic for fit in ranked[:-1]]
        assert aics == sorted(aics)

    def test_best_fit_falls_back_to_empirical(self):
        # A bimodal sample no single parametric family fits well.
        rng = spawn_rng(13, "bimodal")
        samples = np.concatenate(
            [rng.normal(100.0, 1.0, 3000), rng.normal(9000.0, 1.0, 3000)]
        )
        samples = samples[samples > 0]
        assert best_fit(samples).spec.kind == "empirical"


class TestDiagnostics:
    def test_ks_statistic_zero_for_perfect_grid(self):
        spec = exponential_spec(1000.0)
        grid = spec.quantile(np.arange(0.5, 2000.0) / 2000.0)
        assert ks_statistic(grid, spec) < 0.005

    def test_ks_p_value_bounds(self):
        assert ks_p_value(0.0, 100) == 1.0
        assert ks_p_value(0.5, 1000) < 1e-6

    def test_exponentiality_accepts_exponential(self):
        samples = spawn_rng(17, "expo").exponential(7000.0, 4000)
        verdict = exponentiality(samples)
        assert verdict.is_exponential
        assert verdict.cv2_band[0] < verdict.cv2 < verdict.cv2_band[1]

    def test_exponentiality_rejects_heavy_tail(self):
        samples = np.exp(spawn_rng(17, "heavy").normal(8.0, 1.4, 4000))
        kind, verdict = discriminate_tail(samples)
        assert kind == "heavy-tailed"
        assert not verdict.is_exponential

    def test_exponentiality_rejects_regular_arrivals(self):
        samples = np.full(400, 7000.0) + spawn_rng(17, "reg").normal(0.0, 10.0, 400)
        kind, verdict = discriminate_tail(samples)
        assert kind == "other"
        assert verdict.cv2 < verdict.cv2_band[0]

    def test_gof_payload_is_json_ready(self):
        samples = spawn_rng(17, "json").exponential(5000.0, 500)
        fit = fit_exponential(samples)
        payload = fit.to_dict()
        assert set(payload) == {"spec", "log_likelihood", "n_samples", "aic", "gof"}
        assert len(payload["gof"]["qq_deciles"]) == 9
