"""Tests for the transient (warm-up) model — the section-8.2 capability the
historical method has and the other two lack."""

import math

import numpy as np
import pytest

from repro.historical.transient import TransientModel, bucketed_response_curve
from repro.util.errors import CalibrationError


def synthetic_curve(steady=1000.0, amplitude=-800.0, tau=20_000.0, points=30):
    times = np.linspace(1000.0, 120_000.0, points)
    values = steady + amplitude * np.exp(-times / tau)
    return times, values


class TestBucketing:
    def test_buckets_average_samples(self):
        times = [0.0, 100.0, 2100.0, 2900.0]
        values = [10.0, 20.0, 30.0, 50.0]
        centres, means = bucketed_response_curve(times, values, bucket_ms=2000.0)
        assert list(centres) == [1000.0, 3000.0]
        assert list(means) == [15.0, 40.0]

    def test_empty_buckets_dropped(self):
        times = [0.0, 9000.0]
        values = [10.0, 20.0]
        centres, means = bucketed_response_curve(times, values, bucket_ms=2000.0)
        assert len(centres) == 2

    def test_relative_to_trace_start(self):
        times = [50_000.0, 50_100.0]
        values = [10.0, 20.0]
        centres, _ = bucketed_response_curve(times, values, bucket_ms=1000.0)
        assert list(centres) == [500.0]

    def test_empty_trace_rejected(self):
        with pytest.raises(CalibrationError):
            bucketed_response_curve([], [])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(CalibrationError):
            bucketed_response_curve([1.0], [1.0, 2.0])


class TestTransientModel:
    def test_fit_recovers_synthetic_parameters(self):
        times, values = synthetic_curve()
        model = TransientModel.fit(times, values, steady_state_ms=1000.0)
        assert model.steady_state_ms == pytest.approx(1000.0)
        assert model.amplitude_ms == pytest.approx(-800.0, rel=0.01)
        assert model.tau_ms == pytest.approx(20_000.0, rel=0.01)

    def test_fit_estimates_steady_state_from_tail(self):
        times, values = synthetic_curve()
        model = TransientModel.fit(times, values)
        assert model.steady_state_ms == pytest.approx(1000.0, rel=0.02)

    def test_predict_interpolates(self):
        times, values = synthetic_curve()
        model = TransientModel.fit(times, values, steady_state_ms=1000.0)
        t = 30_000.0
        expected = 1000.0 - 800.0 * math.exp(-t / 20_000.0)
        assert model.predict_ms(t) == pytest.approx(expected, rel=0.01)

    def test_settling_time(self):
        model = TransientModel(steady_state_ms=1000.0, amplitude_ms=-800.0, tau_ms=20_000.0)
        settle = model.time_to_settle_ms(tolerance=0.05)
        # |amplitude| * exp(-t/tau) == 0.05 * steady at the settle time.
        assert abs(model.predict_ms(settle) - 1000.0) == pytest.approx(50.0, rel=0.01)

    def test_is_steady(self):
        model = TransientModel(steady_state_ms=1000.0, amplitude_ms=-800.0, tau_ms=20_000.0)
        settle = model.time_to_settle_ms()
        assert not model.is_steady(settle * 0.5)
        assert model.is_steady(settle * 1.01)

    def test_overshoot_direction_supported(self):
        # Response *decreasing* toward steady state (positive amplitude).
        times = np.linspace(1000.0, 120_000.0, 30)
        values = 1000.0 + 600.0 * np.exp(-times / 15_000.0)
        model = TransientModel.fit(times, values, steady_state_ms=1000.0)
        assert model.amplitude_ms == pytest.approx(600.0, rel=0.01)

    def test_already_steady_trace(self):
        times = np.linspace(0.0, 100_000.0, 20)
        values = np.full(20, 500.0)
        model = TransientModel.fit(times, values)
        assert model.time_to_settle_ms() == 0.0
        assert model.predict_ms(0.0) == pytest.approx(500.0)

    def test_too_few_points_rejected(self):
        with pytest.raises(CalibrationError):
            TransientModel.fit([1.0, 2.0], [1.0, 2.0])

    def test_growing_divergence_rejected(self):
        times = np.linspace(1000.0, 60_000.0, 20)
        values = 100.0 + 0.05 * times  # never settles
        with pytest.raises(CalibrationError, match="decay"):
            TransientModel.fit(times, values, steady_state_ms=100.0)


class TestSimulatorTrace:
    @pytest.mark.slow
    def test_saturated_server_settles_like_the_model(self):
        """End to end: trace a cold saturated server, fit, check the fit
        describes the curve better than assuming instant steady state."""
        from repro.servers.catalogue import APP_SERV_F
        from repro.simulation.system import SimulationConfig, simulate_deployment
        from repro.workload.trade import typical_workload

        config = SimulationConfig(
            duration_s=90.0, warmup_s=0.001, seed=9, capture_trace=True
        )
        result = simulate_deployment(APP_SERV_F, typical_workload(1700), config)
        assert result.trace is not None and len(result.trace) > 1000
        times = [t for t, _, _ in result.trace]
        values = [v for _, _, v in result.trace]
        centres, means = bucketed_response_curve(times, values, bucket_ms=4000.0)
        model = TransientModel.fit(centres, means)
        # Early in the run the system is far from steady state (the fitted
        # settle time is well past the first buckets)...
        assert not model.is_steady(4000.0)
        assert model.time_to_settle_ms() > 10_000.0
        # ...and by the end of the trace the fit has converged to the tail.
        late = float(means[-4:].mean())
        assert model.predict_ms(centres[-1]) == pytest.approx(late, rel=0.35)
        # The measured curve really was transient: the early buckets deviate
        # far more from the steady state than the late ones.
        early_dev = float(np.abs(means[:4] - model.steady_state_ms).mean())
        late_dev = float(np.abs(means[-4:] - model.steady_state_ms).mean())
        assert early_dev > 2 * late_dev

    def test_trace_disabled_by_default(self, tiny_config):
        from repro.servers.catalogue import APP_SERV_F
        from repro.simulation.system import simulate_deployment
        from repro.workload.trade import typical_workload

        result = simulate_deployment(APP_SERV_F, typical_workload(50), tiny_config)
        assert result.trace is None
