"""Tests for open (constant-rate) workload support — section 8.1's
"some or all clients sending requests at a constant rate" variation —
across the MVA core, the LQN solver/builder, and the simulator."""

import numpy as np
import pytest

from repro.lqn.builder import RequestTypeParameters, TradeModelParameters, build_trade_model
from repro.lqn.model import Entry, LqnModel, Processor, Scheduling, Task
from repro.lqn.mva import MvaInput, Station, StationKind, solve_bard_schweitzer
from repro.lqn.solver import LqnSolver
from repro.servers.catalogue import APP_SERV_F
from repro.simulation.system import SimulatedDeployment, SimulationConfig
from repro.util.errors import ValidationError
from repro.workload.trade import browse_class, typical_workload

PARAMS = TradeModelParameters(
    request_types={
        "browse": RequestTypeParameters(
            name="browse",
            app_demand_ms=5.376,
            db_calls=1.14,
            db_cpu_per_call_ms=0.8294,
            db_disk_per_call_ms=1.2,
        )
    }
)


def pure_open_input(rate_per_ms: float, demand_ms: float) -> MvaInput:
    return MvaInput(
        stations=[Station("cpu")],
        class_names=[],
        populations=[],
        think_times_ms=[],
        demands=np.zeros((0, 1)),
        open_class_names=["o"],
        open_rates_per_ms=[rate_per_ms],
        open_demands=np.array([[demand_ms]]),
    )


class TestMixedMva:
    def test_pure_open_matches_mm1(self):
        # rho = 0.5 -> R = D / (1 - rho) = 2D.
        solution = solve_bard_schweitzer(pure_open_input(0.05, 10.0))
        assert solution.open_response_ms["o"] == pytest.approx(20.0)
        assert solution.utilisation[0] == pytest.approx(0.5)

    def test_open_delay_station_is_pure_latency(self):
        inp = MvaInput(
            stations=[Station("net", kind=StationKind.DELAY)],
            class_names=[],
            populations=[],
            think_times_ms=[],
            demands=np.zeros((0, 1)),
            open_class_names=["o"],
            open_rates_per_ms=[0.5],
            open_demands=np.array([[10.0]]),
        )
        assert solve_bard_schweitzer(inp).open_response_ms["o"] == pytest.approx(10.0)

    def test_unstable_open_load_rejected(self):
        with pytest.raises(ValidationError, match="unstable"):
            solve_bard_schweitzer(pure_open_input(0.2, 10.0))

    def test_open_load_slows_closed_class(self):
        def closed_with_open(rate: float) -> float:
            inp = MvaInput(
                stations=[Station("cpu")],
                class_names=["c"],
                populations=[20],
                think_times_ms=[500.0],
                demands=np.array([[5.0]]),
                open_class_names=["o"],
                open_rates_per_ms=[rate],
                open_demands=np.array([[10.0]]),
            )
            return float(solve_bard_schweitzer(inp).cycle_response_ms[0])

        assert closed_with_open(0.05) > closed_with_open(0.001)

    def test_closed_load_slows_open_class(self):
        def open_with_closed(population: int) -> float:
            inp = MvaInput(
                stations=[Station("cpu")],
                class_names=["c"],
                populations=[population],
                think_times_ms=[500.0],
                demands=np.array([[5.0]]),
                open_class_names=["o"],
                open_rates_per_ms=[0.02],
                open_demands=np.array([[10.0]]),
            )
            return solve_bard_schweitzer(inp).open_response_ms["o"]

        assert open_with_closed(50) > open_with_closed(1)

    def test_utilisation_sums_open_and_closed(self):
        inp = MvaInput(
            stations=[Station("cpu")],
            class_names=["c"],
            populations=[10],
            think_times_ms=[1000.0],
            demands=np.array([[5.0]]),
            open_class_names=["o"],
            open_rates_per_ms=[0.04],
            open_demands=np.array([[10.0]]),
        )
        solution = solve_bard_schweitzer(inp)
        closed_util = float(solution.throughput_per_ms[0] * 5.0)
        assert solution.utilisation[0] == pytest.approx(closed_util + 0.4, rel=0.02)


class TestLqnOpenClasses:
    def test_task_validation(self):
        with pytest.raises(ValidationError):
            Task(
                name="t",
                processor="p",
                entries=(Entry("e", 1.0),),
                open_arrival_rate_per_s=5.0,  # non-reference cannot be open
            )

    def test_is_open_reference(self):
        task = Task(
            name="t",
            processor="p",
            entries=(Entry("e", 1.0),),
            is_reference=True,
            open_arrival_rate_per_s=5.0,
        )
        assert task.is_open_reference

    def test_builder_adds_open_source(self):
        sc = browse_class()
        model = build_trade_model(
            APP_SERV_F, typical_workload(100), PARAMS, open_workload={sc: 50.0}
        )
        assert "open_browse" in model.tasks
        assert model.tasks["open_browse"].is_open_reference

    def test_solver_reports_open_class(self):
        sc = browse_class()
        model = build_trade_model(
            APP_SERV_F, typical_workload(100), PARAMS, open_workload={sc: 50.0}
        )
        solution = LqnSolver().solve(model)
        assert solution.throughput_req_per_s["open_browse"] == pytest.approx(50.0)
        assert solution.response_ms["open_browse"] > 0.0

    def test_pure_open_model_solves(self):
        sc = browse_class()
        model = build_trade_model(
            APP_SERV_F, {}, PARAMS, open_workload={sc: 100.0}
        )
        solution = LqnSolver().solve(model)
        # rho_app = 100 * 5.376ms = 0.54; R exceeds the raw demand.
        assert solution.response_ms["open_browse"] > 5.376
        assert solution.processor_utilisation["app_cpu"] == pytest.approx(0.538, abs=0.01)

    def test_open_and_closed_utilisations_combine(self):
        sc = browse_class()
        closed_only = LqnSolver().solve(
            build_trade_model(APP_SERV_F, typical_workload(300), PARAMS)
        )
        mixed = LqnSolver().solve(
            build_trade_model(
                APP_SERV_F, typical_workload(300), PARAMS, open_workload={sc: 80.0}
            )
        )
        assert mixed.processor_utilisation["app_cpu"] > (
            closed_only.processor_utilisation["app_cpu"] + 0.3
        )


class TestSimulatedOpenArrivals:
    @pytest.fixture(scope="class")
    def mixed_run(self):
        sc = browse_class()
        deployment = SimulatedDeployment(
            placements={"AppServF": (APP_SERV_F, {sc: 300})},
            config=SimulationConfig(duration_s=40.0, warmup_s=10.0, seed=6),
            open_arrivals={"AppServF": {sc: 100.0}},
        )
        return deployment.run()

    def test_open_throughput_matches_arrival_rate(self, mixed_run):
        assert mixed_run.per_class_throughput["open_browse"] == pytest.approx(
            100.0, rel=0.06
        )

    def test_open_class_reported_separately(self, mixed_run):
        assert set(mixed_run.per_class_mean_ms) == {"browse", "open_browse"}

    def test_open_load_raises_utilisation(self, mixed_run):
        # 300 closed clients alone would be ~43 req/s (util ~0.23); the open
        # 100 req/s roughly triples the utilisation.
        assert mixed_run.app_cpu_utilisation["AppServF"] > 0.6

    def test_lqn_matches_simulated_utilisation(self, mixed_run):
        sc = browse_class()
        model = build_trade_model(
            APP_SERV_F, typical_workload(300), PARAMS, open_workload={sc: 100.0}
        )
        solution = LqnSolver().solve(model)
        assert solution.processor_utilisation["app_cpu"] == pytest.approx(
            mixed_run.app_cpu_utilisation["AppServF"], abs=0.05
        )

    def test_open_arrivals_need_placed_server(self):
        sc = browse_class()
        deployment = SimulatedDeployment(
            placements={"AppServF": (APP_SERV_F, {sc: 10})},
            config=SimulationConfig(duration_s=5.0, warmup_s=1.0, seed=6),
            open_arrivals={"ghost": {sc: 10.0}},
        )
        with pytest.raises(ValidationError):
            deployment.run()
