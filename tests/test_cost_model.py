"""Tests for the provider cost model and optimal-slack search (the paper's
section-9.1 'current work')."""

import pytest

from repro.resource_manager.cost import ProviderCostModel, cost_curve, optimal_slack
from repro.resource_manager.slack import LoadPointMetrics, SlackAnalysis, SlackSweepResult
from repro.util.errors import ValidationError


def analysis_with(points: dict[float, tuple[float, float]]) -> SlackAnalysis:
    """Build a SlackAnalysis whose (failures, usage) averages are given."""
    analysis = SlackAnalysis()
    analysis.reference_loads = [1000]
    for slack, (failures, usage) in points.items():
        sweep = SlackSweepResult(slack=slack)
        sweep.points.append(
            LoadPointMetrics(
                total_clients=1000,
                slack=slack,
                sla_failure_pct=failures,
                server_usage_pct=usage,
            )
        )
        analysis.sweeps[slack] = sweep
    return analysis


class TestProviderCostModel:
    def test_linear_combination(self):
        model = ProviderCostModel(2.0, 3.0)
        assert model.cost(10.0, 5.0) == pytest.approx(2 * 10 + 3 * 5)

    def test_breach_surcharge_applies_above_threshold(self):
        model = ProviderCostModel(1.0, 1.0, breach_surcharge=100.0, breach_threshold_pct=0.5)
        assert model.cost(0.4, 0.0) == pytest.approx(0.4)
        assert model.cost(0.6, 0.0) == pytest.approx(100.6)

    def test_zero_failures_never_surcharged(self):
        model = ProviderCostModel(1.0, 1.0, breach_surcharge=100.0)
        assert model.cost(0.0, 50.0) == pytest.approx(50.0)

    def test_negative_rates_rejected(self):
        with pytest.raises(ValidationError):
            ProviderCostModel(-1.0, 1.0)


class TestCostCurve:
    @pytest.fixture
    def analysis(self):
        # failures rise and usage falls as slack drops.
        return analysis_with(
            {1.1: (0.0, 60.0), 1.0: (1.0, 55.0), 0.5: (30.0, 40.0), 0.0: (100.0, 0.0)}
        )

    def test_curve_sorted_by_decreasing_slack(self, analysis):
        curve = cost_curve(analysis, ProviderCostModel(1.0, 1.0))
        assert [s for s, _ in curve] == [1.1, 1.0, 0.5, 0.0]

    def test_penalty_heavy_prefers_high_slack(self, analysis):
        winners, _ = optimal_slack(analysis, ProviderCostModel(100.0, 1.0))
        assert winners == [1.1]

    def test_hardware_heavy_prefers_low_slack(self, analysis):
        winners, _ = optimal_slack(analysis, ProviderCostModel(0.01, 1.0))
        assert winners == [0.0]

    def test_balanced_interior_optimum(self, analysis):
        winners, cost = optimal_slack(analysis, ProviderCostModel(1.0, 1.0))
        assert winners == [1.0]
        assert cost == pytest.approx(56.0)

    def test_ties_reported_together(self):
        analysis = analysis_with({1.0: (10.0, 10.0), 0.5: (10.0, 10.0)})
        winners, _ = optimal_slack(analysis, ProviderCostModel(1.0, 1.0))
        assert winners == [1.0, 0.5]

    def test_empty_analysis_rejected(self):
        with pytest.raises(ValidationError):
            cost_curve(SlackAnalysis(), ProviderCostModel(1.0, 1.0))


class TestCostExperiment:
    @pytest.mark.slow
    def test_optimum_moves_with_cost_posture(self):
        from repro.experiments.fig7 import run_cost_analysis

        result = run_cost_analysis(fast=True)
        heavy = result.data["penalty-heavy (10:1)"]["optimal"]
        lean = result.data["hardware-lean (1:10)"]["optimal"]
        assert max(heavy) > max(lean)
