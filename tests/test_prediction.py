"""Tests for the cross-method prediction API: accuracy metric, method
profiles, and the predictor wrappers."""

import pytest

from repro.prediction.accuracy import (
    AccuracyReport,
    accuracy,
    mean_accuracy,
    paper_overall_accuracy,
    region_of,
)
from repro.prediction.comparison import (
    METHOD_PROFILES,
    MeasuredQuantities,
    evaluation_matrix,
)
from repro.util.errors import ValidationError


class TestAccuracyMetric:
    def test_perfect_prediction(self):
        assert accuracy(100.0, 100.0) == 1.0

    def test_ten_percent_error(self):
        assert accuracy(90.0, 100.0) == pytest.approx(0.9)
        assert accuracy(110.0, 100.0) == pytest.approx(0.9)

    def test_can_be_negative(self):
        # The paper's figure 3 discussion allows accuracy below zero.
        assert accuracy(300.0, 100.0) == pytest.approx(-1.0)

    def test_zero_actual_rejected(self):
        with pytest.raises(ValidationError):
            accuracy(10.0, 0.0)

    def test_mean_accuracy(self):
        assert mean_accuracy([(90.0, 100.0), (100.0, 100.0)]) == pytest.approx(0.95)

    def test_mean_accuracy_empty_rejected(self):
        with pytest.raises(ValidationError):
            mean_accuracy([])

    def test_paper_overall(self):
        assert paper_overall_accuracy(0.8, 0.9) == pytest.approx(0.85)


class TestRegions:
    def test_lower_region(self):
        assert region_of(100, 1000.0) == "lower"
        assert region_of(659, 1000.0) == "lower"

    def test_transition_region(self):
        assert region_of(660, 1000.0) == "transition"
        assert region_of(1100, 1000.0) == "transition"

    def test_upper_region(self):
        assert region_of(1101, 1000.0) == "upper"


class TestAccuracyReport:
    def test_bucketing_and_aggregation(self):
        report = AccuracyReport(method="m", server="s")
        report.add(100, 1000.0, 90.0, 100.0)  # lower: 0.9
        report.add(2000, 1000.0, 100.0, 100.0)  # upper: 1.0
        report.add(800, 1000.0, 50.0, 100.0)  # transition: excluded
        assert report.lower_accuracy == pytest.approx(0.9)
        assert report.upper_accuracy == pytest.approx(1.0)
        assert report.overall_accuracy == pytest.approx(0.95)

    def test_all_points_accuracy_includes_transition(self):
        report = AccuracyReport(method="m", server="s")
        report.add(100, 1000.0, 100.0, 100.0)
        report.add(800, 1000.0, 50.0, 100.0)
        assert report.all_points_accuracy() == pytest.approx(0.75)

    def test_empty_region_raises(self):
        report = AccuracyReport(method="m", server="s")
        report.add(100, 1000.0, 90.0, 100.0)
        with pytest.raises(ValidationError):
            _ = report.upper_accuracy


class TestComparison:
    def test_profiles_cover_three_methods(self):
        assert set(METHOD_PROFILES) == {"historical", "layered_queuing", "hybrid"}

    def test_section_8_findings_encoded(self):
        assert METHOD_PROFILES["historical"].can_model_caching is True
        assert METHOD_PROFILES["layered_queuing"].can_model_caching is False
        assert METHOD_PROFILES["hybrid"].can_model_caching is False
        assert METHOD_PROFILES["historical"].can_predict_percentiles_directly is True
        assert METHOD_PROFILES["layered_queuing"].can_predict_percentiles_directly is False

    def test_matrix_merges_measured_quantities(self):
        rows = evaluation_matrix(
            {"historical": MeasuredQuantities(mrt_accuracy_established=0.891)}
        )
        by_method = {row["method"]: row for row in rows}
        assert by_method["historical"]["mrt_accuracy_established"] == 0.891
        assert by_method["hybrid"]["mrt_accuracy_established"] is None

    def test_matrix_without_measurements(self):
        rows = evaluation_matrix()
        assert len(rows) == 3


class TestPredictorWrappers:
    @pytest.fixture(scope="class")
    def predictors(self, lqn_calibration_fast):
        from repro.hybrid.model import AdvancedHybridModel
        from repro.prediction.interface import HybridPredictor, LqnPredictor
        from repro.servers.catalogue import ALL_APP_SERVERS, APP_SERV_F

        params = lqn_calibration_fast.to_model_parameters()
        lqn = LqnPredictor(params, {a.name: a for a in ALL_APP_SERVERS})
        hybrid = HybridPredictor.from_parameters(params, [APP_SERV_F])
        return lqn, hybrid

    def test_lqn_predictor_timed(self, predictors):
        lqn, _ = predictors
        before = lqn.timer.evaluations
        lqn.predict_mrt_ms("AppServF", 200)
        assert lqn.timer.evaluations == before + 1
        assert lqn.timer.total_time_s > 0.0

    def test_lqn_unknown_server(self, predictors):
        lqn, _ = predictors
        from repro.util.errors import CalibrationError

        with pytest.raises(CalibrationError):
            lqn.predict_mrt_ms("Mystery", 100)

    def test_hybrid_startup_recorded(self, predictors):
        _, hybrid = predictors
        assert hybrid.timer.startup_delay_s > 0.0

    def test_hybrid_prediction_much_faster_than_lqn(self, predictors):
        lqn, hybrid = predictors
        import time

        start = time.perf_counter()
        for _ in range(50):
            hybrid.predict_mrt_ms("AppServF", 500)
        hybrid_time = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(5):
            lqn.predict_mrt_ms("AppServF", 500)
        lqn_time = (time.perf_counter() - start) * 10  # per-50 equivalent
        assert hybrid_time < lqn_time / 10

    def test_lqn_and_hybrid_agree_roughly(self, predictors):
        lqn, hybrid = predictors
        a = lqn.predict_mrt_ms("AppServF", 400)
        b = hybrid.predict_mrt_ms("AppServF", 400)
        assert a == pytest.approx(b, rel=0.5)

    def test_lqn_max_clients_searches(self, predictors):
        lqn, _ = predictors
        solves_before = lqn.solver.solve_count
        capacity = lqn.max_clients("AppServF", 100.0)
        assert capacity > 0
        assert lqn.solver.solve_count - solves_before > 3

    def test_mean_delay_property(self, predictors):
        lqn, _ = predictors
        lqn.predict_mrt_ms("AppServF", 100)
        assert lqn.timer.mean_delay_s > 0.0
