"""Acceptance tests for the chaos experiment: determinism, the error-rate
ceiling, and breaker recovery."""

import json

import pytest

from repro.experiments.chaos import TICK_S, default_fault_plan, main, run
from repro.faults import INJECTOR


@pytest.fixture(scope="module")
def chaos_results():
    """Two complete fast chaos runs (the determinism comparison pair)."""
    return run(fast=True), run(fast=True)


def test_chaos_run_is_bit_identical_under_fixed_seed(chaos_results):
    first, second = chaos_results
    dump = lambda r: json.dumps(r.data, sort_keys=True)  # noqa: E731
    assert dump(first) == dump(second)
    assert first.rendered == second.rendered


def test_chaos_error_rate_within_documented_ceiling(chaos_results):
    data = chaos_results[0].data
    assert data["within_ceiling"]
    assert data["error_rate"] <= data["error_rate_ceiling"]
    # With the historical fallback registered nothing may fail outright.
    assert data["errors"] == 0


def test_chaos_breaker_opens_and_recovers(chaos_results):
    breaker = chaos_results[0].data["breaker"]
    assert breaker["opened"]
    assert breaker["recovered"]
    assert breaker["time_to_recover_s"] > 0.0
    assert breaker["transitions"][0][1:] == ["closed", "open"]
    assert breaker["transitions"][-1][2] == "closed"
    # The brownout window ends at half the run; recovery happens after it.
    assert breaker["reclosed_at_s"] >= chaos_results[0].data["fault_window_s"][1]


def test_chaos_faults_were_actually_injected(chaos_results):
    data = chaos_results[0].data
    assert data["injected"]["solver-errors"] > 0
    assert data["injected"]["cache-expiry"] > 0
    assert data["degraded"]["total"] > 0
    # The trip is consulted on would-be hits only, so every fired trip
    # forcibly expired exactly one present entry (the cache has no TTL
    # here, so no other expirations occur).
    assert data["service"]["cache_expirations"] == data["injected"]["cache-expiry"]


def test_chaos_leaves_the_global_injector_disarmed(chaos_results):
    assert not INJECTOR.armed


def test_default_fault_plan_shape():
    plan = default_fault_plan((1.0, 2.0), seed=5)
    assert plan.error_rate_ceiling == 0.0
    assert set(plan.sites()) == {
        "lqn.solve",
        "service.cache.expire",
        "service.pool",
    }
    for spec in plan.specs:
        assert spec.time_window == (1.0, 2.0)


def test_chaos_registered_in_experiment_runner():
    from repro.experiments.runner import EXPERIMENTS

    assert EXPERIMENTS["chaos"] == "repro.experiments.chaos"


def test_chaos_cli_writes_sorted_json(tmp_path, capsys):
    out = tmp_path / "report.json"
    assert main(["--fast", "--json", str(out)]) == 0
    data = json.loads(out.read_text())
    assert data["within_ceiling"] is True
    assert out.read_text() == json.dumps(data, sort_keys=True, indent=2) + "\n"
    assert "Chaos run" in capsys.readouterr().out
    assert TICK_S == data["tick_s"]
