"""Unit tests for repro.util.rng (seeded stream management)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.errors import ValidationError
from repro.util.rng import RngStreams, spawn_rng


class TestSpawnRng:
    def test_same_seed_and_name_reproduce(self):
        a = spawn_rng(42, "x").random(10)
        b = spawn_rng(42, "x").random(10)
        assert np.array_equal(a, b)

    def test_different_names_are_independent(self):
        a = spawn_rng(42, "x").random(10)
        b = spawn_rng(42, "y").random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = spawn_rng(1, "x").random(10)
        b = spawn_rng(2, "x").random(10)
        assert not np.array_equal(a, b)

    def test_rejects_negative_seed(self):
        with pytest.raises(ValidationError):
            spawn_rng(-1, "x")

    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
    def test_spawn_is_deterministic_for_any_inputs(self, seed, name):
        assert spawn_rng(seed, name).random() == spawn_rng(seed, name).random()


class TestRngStreams:
    def test_get_returns_same_generator_object(self):
        streams = RngStreams(1)
        assert streams.get("a") is streams.get("a")

    def test_get_different_names_different_generators(self):
        streams = RngStreams(1)
        assert streams.get("a") is not streams.get("b")

    def test_streams_match_spawn_rng(self):
        assert RngStreams(9).get("svc").random() == spawn_rng(9, "svc").random()

    def test_common_random_numbers_property(self):
        """Adding a new stream must not perturb existing streams."""
        solo = RngStreams(5)
        values_solo = solo.get("think").random(5)

        multi = RngStreams(5)
        multi.get("other")  # created first, must not affect 'think'
        values_multi = multi.get("think").random(5)
        assert np.array_equal(values_solo, values_multi)

    def test_fork_namespaces_children(self):
        parent = RngStreams(5)
        child_a = parent.fork("rep1").get("x").random(3)
        child_b = parent.fork("rep2").get("x").random(3)
        assert not np.array_equal(child_a, child_b)

    def test_fork_is_deterministic(self):
        a = RngStreams(5).fork("rep1").get("x").random(3)
        b = RngStreams(5).fork("rep1").get("x").random(3)
        assert np.array_equal(a, b)

    def test_names_lists_created_streams(self):
        streams = RngStreams(1)
        streams.get("b")
        streams.get("a")
        assert streams.names() == ["a", "b"]
