"""Tests for the workload-manager routing policies, including a simulator
cross-check that prediction-enhanced routing beats the naive baseline."""

import pytest

from repro.prediction.interface import PredictionTimer
from repro.resource_manager.allocation import ManagedServer
from repro.resource_manager.routing import (
    route_equal_response_times,
    route_proportional_to_capacity,
    route_round_robin,
)
from repro.util.errors import ValidationError


class LinearPredictor:
    """mrt = base + n / capacity-ish: monotone, architecture-dependent."""

    def __init__(self, params):
        self.params = params  # arch -> (base_ms, per_client_ms)
        self.name = "linear"
        self.timer = PredictionTimer()

    def predict_mrt_ms(self, server, n_clients, *, buy_fraction=0.0):
        base, slope = self.params[server]
        return base + slope * n_clients

    def predict_throughput(self, server, n_clients, *, buy_fraction=0.0):
        return n_clients * 0.14

    def max_clients(self, server, rt_goal_ms, *, buy_fraction=0.0):
        base, slope = self.params[server]
        return max(0, int((rt_goal_ms - base) / slope))


def pool():
    return [
        ManagedServer(name="fast", architecture="fast", max_throughput_req_per_s=320.0),
        ManagedServer(name="slow", architecture="slow", max_throughput_req_per_s=86.0),
    ]


PARAMS = {"fast": (8.0, 0.05), "slow": (20.0, 0.20)}


class TestProportional:
    def test_split_follows_capacity(self):
        decision = route_proportional_to_capacity(406, pool(), LinearPredictor(PARAMS))
        assert decision.per_server["fast"] == pytest.approx(320, abs=2)
        assert decision.per_server["slow"] == pytest.approx(86, abs=2)
        assert decision.total == 406

    def test_zero_clients(self):
        decision = route_proportional_to_capacity(0, pool(), LinearPredictor(PARAMS))
        assert decision.total == 0
        assert decision.worst_predicted_mrt_ms() == 0.0

    def test_needs_servers(self):
        with pytest.raises(ValidationError):
            route_proportional_to_capacity(10, [], LinearPredictor(PARAMS))


class TestRoundRobin:
    def test_even_split(self):
        decision = route_round_robin(100, pool(), LinearPredictor(PARAMS))
        assert decision.per_server == {"fast": 50, "slow": 50}

    def test_remainder_distributed(self):
        decision = route_round_robin(101, pool(), LinearPredictor(PARAMS))
        assert decision.total == 101
        assert sorted(decision.per_server.values()) == [50, 51]


class TestEqualResponseTimes:
    def test_balances_predictions(self):
        predictor = LinearPredictor(PARAMS)
        decision = route_equal_response_times(400, pool(), predictor)
        predictions = [v for s, v in decision.predicted_mrt_ms.items() if decision.per_server[s] > 0]
        assert max(predictions) - min(predictions) < 5.0

    def test_beats_round_robin_on_worst_case(self):
        predictor = LinearPredictor(PARAMS)
        balanced = route_equal_response_times(400, pool(), predictor)
        naive = route_round_robin(400, pool(), predictor)
        assert balanced.worst_predicted_mrt_ms() < naive.worst_predicted_mrt_ms()

    def test_conserves_clients(self):
        decision = route_equal_response_times(397, pool(), LinearPredictor(PARAMS))
        assert decision.total == 397
        assert all(v >= 0 for v in decision.per_server.values())


class TestAgainstSimulator:
    @pytest.mark.slow
    def test_predicted_routing_beats_round_robin_in_simulation(self):
        """Route a real workload across AppServS+AppServVF both ways and
        measure: the prediction-balanced split should give a lower measured
        mean response time than the naive even split."""
        from repro.experiments import ground_truth as gt
        from repro.prediction.interface import HybridPredictor
        from repro.servers.catalogue import APP_SERV_S, APP_SERV_VF
        from repro.simulation.system import SimulatedDeployment, SimulationConfig
        from repro.workload.trade import browse_class

        parameters = gt.lqn_calibration(fast=True).to_model_parameters()
        predictor = HybridPredictor.from_parameters(
            parameters, [APP_SERV_S, APP_SERV_VF]
        )
        servers = [
            ManagedServer(name="S", architecture="AppServS", max_throughput_req_per_s=86.0),
            ManagedServer(name="VF", architecture="AppServVF", max_throughput_req_per_s=320.0),
        ]
        total = 2400  # enough to saturate S under an even split
        archs = {"S": APP_SERV_S, "VF": APP_SERV_VF}

        def simulate(split):
            sc = browse_class()
            deployment = SimulatedDeployment(
                placements={
                    name: (archs[name], {sc: count}) for name, count in split.items()
                },
                config=SimulationConfig(duration_s=30.0, warmup_s=8.0, seed=19),
            )
            return deployment.run().mean_response_ms

        smart = route_equal_response_times(total, servers, predictor)
        naive = route_round_robin(total, servers, predictor)
        assert simulate(smart.per_server) < 0.5 * simulate(naive.per_server)
