"""Tests for the repro.trace core: tracer, spans, sinks, Chrome export."""

from __future__ import annotations

import contextvars
import json
import threading

from repro.trace import (
    TRACER,
    JsonlSink,
    RingBufferSink,
    TraceEvent,
    Tracer,
    chrome_trace_events,
    load_events_jsonl,
    write_chrome_trace,
)
from repro.trace.events import BEGIN, COUNTER, END, INSTANT
from repro.util.clock import FakeClock


def traced(clock=None):
    """A fresh enabled tracer + ring sink (never the global TRACER)."""
    sink = RingBufferSink()
    tracer = Tracer(clock=clock or FakeClock(), sinks=(sink,))
    return tracer, sink


class TestDisabledFastPath:
    def test_global_tracer_defaults_disabled(self):
        assert not TRACER.enabled

    def test_disabled_span_is_the_shared_noop(self):
        # Receiver deliberately not named "tracer": REPRO-TRC001 would flag
        # these with-less span() calls, which are the very thing under test.
        t = Tracer(clock=FakeClock())
        a = t.span("x", attr=1)
        b = t.span("y")
        assert a is b  # one shared instance: no allocation per call
        with a as opened:
            opened.set_attribute("k", "v")  # discarded, no error
        assert a.span_id == 0

    def test_disabled_instants_and_counters_emit_nothing(self):
        sink = RingBufferSink()
        tracer = Tracer(clock=FakeClock())
        tracer.instant("i", k=1)
        tracer.counter("c", 2.0)
        assert sink.events() == []

    def test_disable_closes_and_returns_sinks(self):
        tracer, sink = traced()
        with tracer.span("x"):
            pass
        detached = tracer.disable()
        assert detached == [sink]
        assert not tracer.enabled
        tracer.instant("dropped")
        assert [e.name for e in sink.events()] == ["x", "x"]

    def test_detach_removes_one_sink_and_keeps_recording(self):
        first, second = RingBufferSink(), RingBufferSink()
        tracer = Tracer(clock=FakeClock(), sinks=(first, second))
        tracer.instant("both")
        tracer.detach(first)
        tracer.instant("second-only")
        assert [e.name for e in first.events()] == ["both"]
        assert [e.name for e in second.events()] == ["both", "second-only"]
        assert tracer.enabled
        tracer.detach(first)  # already gone: no-op
        tracer.detach(second)  # last sink out: tracer disables itself
        assert not tracer.enabled


class TestSpans:
    def test_span_emits_begin_and_end_with_duration(self):
        clock = FakeClock()
        tracer, sink = traced(clock)
        with tracer.span("solve", model="trade") as span:
            clock.advance(0.25)
            span.set_attribute("iterations", 7)
        begin, end = sink.events()
        assert (begin.kind, end.kind) == (BEGIN, END)
        assert begin.name == end.name == "solve"
        assert begin.span_id == end.span_id > 0
        assert end.dur_us == 250_000.0
        assert end.attributes == {"model": "trade", "iterations": 7}

    def test_nesting_links_parent_ids(self):
        tracer, sink = traced()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None
        inner_begin = [e for e in sink.events() if e.kind == BEGIN][1]
        assert inner_begin.name == "inner"
        assert inner_begin.parent_id == outer.span_id

    def test_exception_records_error_attribute_and_still_ends(self):
        tracer, sink = traced()
        try:
            with tracer.span("risky"):
                raise ValueError("boom")
        except ValueError:
            pass
        end = [e for e in sink.events() if e.kind == END][0]
        assert end.attributes["error"] == "ValueError"
        assert tracer.current_span() is None

    def test_end_is_idempotent(self):
        tracer, sink = traced()
        with tracer.span("once") as handle:
            pass
        handle.end()  # second close: no duplicate END event
        assert [e.kind for e in sink.events()] == [BEGIN, END]

    def test_instant_attaches_to_current_span(self):
        tracer, sink = traced()
        with tracer.span("outer") as outer:
            tracer.instant("tick", delta=0.5)
        instant = [e for e in sink.events() if e.kind == INSTANT][0]
        assert instant.span_id == outer.span_id
        assert instant.attributes == {"delta": 0.5}

    def test_counter_event(self):
        tracer, sink = traced()
        tracer.counter("queue_depth", 3)
        event = sink.events()[0]
        assert (event.kind, event.value) == (COUNTER, 3.0)

    def test_copied_context_nests_across_threads(self):
        """The service's pool-submission pattern: copy_context at submit."""
        tracer, sink = traced()
        with tracer.span("request") as request:
            ctx = contextvars.copy_context()

            def task():
                with tracer.span("execute"):
                    pass

            worker = threading.Thread(target=lambda: ctx.run(task))
            worker.start()
            worker.join()
        execute_begin = [e for e in sink.events() if e.name == "execute"][0]
        assert execute_begin.parent_id == request.span_id
        assert execute_begin.thread_id != 0


class TestSinks:
    def test_ring_buffer_bounds_and_counts_drops(self):
        sink = RingBufferSink(capacity=3)
        tracer = Tracer(clock=FakeClock(), sinks=(sink,))
        for i in range(5):
            tracer.instant(f"e{i}")
        assert [e.name for e in sink.events()] == ["e2", "e3", "e4"]
        assert sink.dropped == 2
        sink.clear()
        assert sink.events() == []
        assert sink.dropped == 2  # the drop counter survives a clear()

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        clock = FakeClock()
        with JsonlSink(path) as sink:
            tracer = Tracer(clock=clock, sinks=(sink,))
            with tracer.span("solve", n=400):
                clock.advance(0.01)
                tracer.instant("tick")
        events = list(load_events_jsonl(path))
        assert [e.kind for e in events] == [BEGIN, INSTANT, END]
        assert events[-1].attributes == {"n": 400}
        assert all(isinstance(e, TraceEvent) for e in events)


class TestChromeExport:
    def test_export_is_valid_trace_event_json(self, tmp_path):
        clock = FakeClock()
        tracer, sink = traced(clock)
        with tracer.span("outer"):
            clock.advance(0.002)
            tracer.instant("mark")
            tracer.counter("depth", 2)
        path = tmp_path / "trace_chrome.json"
        count = write_chrome_trace(sink.events(), path)
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        phases = [e["ph"] for e in payload["traceEvents"]]
        assert count == len(phases) == 4
        assert sorted(phases) == ["B", "C", "E", "i"]
        for entry in payload["traceEvents"]:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(entry)

    def test_end_timestamp_is_begin_plus_duration(self):
        clock = FakeClock()
        tracer, sink = traced(clock)
        with tracer.span("solve"):
            clock.advance(0.5)
        begin_json, end_json = chrome_trace_events(sink.events())
        assert end_json["ts"] - begin_json["ts"] == 500_000.0
