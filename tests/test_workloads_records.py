"""RecordSet normalization: ordering, think-time extraction, mix, rates."""

import numpy as np
import pytest

from repro.util.errors import ValidationError
from repro.workloads.records import RecordSet, RequestRecord, classify_request_type


def _record(at_ms, op="quote", client="c0", service=None):
    return RequestRecord(
        arrival_ms=at_ms, operation=op, client_id=client, service_ms=service
    )


class TestRequestRecord:
    def test_rejects_negative_arrival(self):
        with pytest.raises(ValidationError):
            _record(-1.0)

    def test_rejects_empty_operation(self):
        with pytest.raises(ValidationError):
            RequestRecord(arrival_ms=0.0, operation="", client_id="c0")

    def test_rejects_negative_service(self):
        with pytest.raises(ValidationError):
            _record(0.0, service=-5.0)


class TestClassify:
    def test_trade_operations_map_to_browse_and_buy(self):
        assert classify_request_type("quote") == "browse"
        assert classify_request_type("buy") == "buy"
        assert classify_request_type("register_login") == "buy"

    def test_unknown_operations_classify_as_themselves(self):
        assert classify_request_type("checkout_v2") == "checkout_v2"


class TestRecordSet:
    def test_construction_sorts_by_arrival(self):
        rs = RecordSet([_record(30.0), _record(10.0), _record(20.0)])
        assert [r.arrival_ms for r in rs.records] == [10.0, 20.0, 30.0]

    def test_empty_set_is_rejected(self):
        with pytest.raises(ValidationError):
            RecordSet([])

    def test_interarrival_and_duration(self):
        rs = RecordSet([_record(0.0), _record(15.0), _record(45.0)])
        assert rs.duration_ms == 45.0
        assert list(rs.interarrival_ms()) == [15.0, 30.0]

    def test_think_times_are_per_client_gaps(self):
        rs = RecordSet(
            [
                _record(0.0, client="a"),
                _record(100.0, client="b"),
                _record(300.0, client="a"),
                _record(350.0, client="b"),
            ]
        )
        # a: 300-0, b: 350-100 — never the cross-client 100-0 gap.
        assert sorted(rs.think_times_ms()) == [250.0, 300.0]

    def test_service_time_is_subtracted_when_known(self):
        rs = RecordSet(
            [_record(0.0, client="a", service=40.0), _record(300.0, client="a")]
        )
        assert list(rs.think_times_ms()) == [260.0]

    def test_non_positive_think_samples_are_dropped(self):
        rs = RecordSet(
            [_record(0.0, client="a", service=500.0), _record(300.0, client="a")]
        )
        assert rs.think_times_ms().size == 0

    def test_type_and_operation_fractions(self):
        rs = RecordSet(
            [_record(0.0, op="quote"), _record(1.0, op="quote"), _record(2.0, op="buy")]
        )
        assert rs.operation_fractions() == {"buy": 1 / 3, "quote": 2 / 3}
        assert rs.type_fractions() == {"browse": 2 / 3, "buy": 1 / 3}

    def test_binned_rates(self):
        rs = RecordSet([_record(t * 1000.0) for t in range(10)])
        rates = rs.binned_rates_req_per_s(5.0)
        assert rates.shape == (2,)
        assert float(np.sum(rates)) * 5.0 == 10.0

    def test_statistics_payload_is_json_ready(self):
        rs = RecordSet([_record(0.0, client="a"), _record(7000.0, client="a")])
        stats = rs.statistics()
        assert stats.n_requests == 2
        assert stats.n_clients == 1
        assert stats.think_mean_ms == 7000.0
        payload = stats.to_dict()
        assert payload["type_fractions"] == {"browse": 1.0}
        assert payload["duration_s"] == 7.0
