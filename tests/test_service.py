"""Tests for the prediction-serving subsystem (cache, pool, admission,
metrics, facade) using fast deterministic stub predictors."""

from __future__ import annotations

import threading
import time

import pytest

from repro.prediction.interface import PredictionTimer, Predictor
from repro.service import (
    AdmissionConfig,
    AdmissionController,
    CoalescingPool,
    LatencyHistogram,
    LoadGenConfig,
    LoadGenerator,
    MetricsRegistry,
    PredictionCache,
    PredictionService,
    PredictionTimeoutError,
    ServiceConfig,
    ServiceSaturatedError,
    call_with_retries,
    quantize_key,
)
from repro.util.errors import CalibrationError, ValidationError


class StubPredictor:
    """A deterministic, optionally slow/flaky stand-in for a real method."""

    def __init__(self, *, delay_s: float = 0.0, fail_first: int = 0, name: str = "stub"):
        self.name = name
        self.timer = PredictionTimer()
        self.delay_s = delay_s
        self.fail_first = fail_first
        self.calls = 0
        self._lock = threading.Lock()

    def _tick(self) -> None:
        with self._lock:
            self.calls += 1
            remaining = self.fail_first
            if remaining > 0:
                self.fail_first -= 1
        if self.delay_s:
            time.sleep(self.delay_s)
        if remaining > 0:
            raise CalibrationError("transient (stub)")

    def predict_mrt_ms(self, server, n_clients, *, buy_fraction=0.0):
        self._tick()
        return 100.0 + float(int(n_clients)) + 1000.0 * buy_fraction

    def predict_throughput(self, server, n_clients, *, buy_fraction=0.0):
        self._tick()
        return float(int(n_clients)) * 0.14

    def max_clients(self, server, rt_goal_ms, *, buy_fraction=0.0):
        self._tick()
        return int(rt_goal_ms) * 2


class TestQuantization:
    def test_nearby_floats_share_a_key(self):
        a = quantize_key("S", "mrt", 500.2, 0.101)
        b = quantize_key("S", "mrt", 499.9, 0.099)
        assert a == b

    def test_distinct_operating_points_do_not(self):
        assert quantize_key("S", "mrt", 500, 0.0) != quantize_key("S", "mrt", 501, 0.0)
        assert quantize_key("S", "mrt", 500, 0.0) != quantize_key("S", "tput", 500, 0.0)
        assert quantize_key("S", "mrt", 500, 0.0) != quantize_key("F", "mrt", 500, 0.0)

    def test_steps_must_be_positive(self):
        with pytest.raises(ValidationError):
            quantize_key("S", "mrt", 500, 0.0, operand_step=0.0)


class TestPredictionCache:
    def test_hit_miss_accounting(self):
        cache = PredictionCache(max_entries=8)
        key = quantize_key("S", "mrt", 500, 0.0)
        hit, _ = cache.get(key)
        assert not hit
        cache.put(key, 123.0)
        hit, value = cache.get(key)
        assert hit and value == 123.0
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.requests) == (1, 1, 2)

    def test_lru_eviction_order(self):
        cache = PredictionCache(max_entries=2)
        k1, k2, k3 = (quantize_key("S", "mrt", n, 0.0) for n in (1, 2, 3))
        cache.put(k1, 1.0)
        cache.put(k2, 2.0)
        cache.get(k1)  # freshen k1 so k2 is LRU
        cache.put(k3, 3.0)
        assert cache.get(k1)[0] and cache.get(k3)[0]
        assert not cache.get(k2)[0]
        assert cache.stats().evictions == 1

    def test_ttl_expiry_with_injected_clock(self):
        now = [0.0]
        cache = PredictionCache(max_entries=8, ttl_s=10.0, clock=lambda: now[0])
        key = quantize_key("S", "mrt", 500, 0.0)
        cache.put(key, 1.0)
        now[0] = 5.0
        assert cache.get(key)[0]
        now[0] = 20.0
        assert not cache.get(key)[0]
        assert cache.stats().expirations == 1
        assert len(cache) == 0

    def test_invalidate_one_server(self):
        cache = PredictionCache()
        cache.put(quantize_key("S", "mrt", 1, 0.0), 1.0)
        cache.put(quantize_key("S", "mrt", 2, 0.0), 2.0)
        cache.put(quantize_key("F", "mrt", 1, 0.0), 3.0)
        assert cache.invalidate("S") == 2
        assert len(cache) == 1
        assert cache.invalidate() == 1
        assert cache.stats().invalidated == 3


class TestMetrics:
    def test_histogram_percentiles_bracket_observations(self):
        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.observe(0.001)
        histogram.observe(1.0)
        assert 0.0003 < histogram.quantile(0.5) < 0.003
        assert histogram.quantile(1.0) == pytest.approx(1.0)
        assert histogram.percentiles()["p99_s"] < 1.1

    def test_histogram_subsumes_timer_accounting(self):
        histogram = LatencyHistogram()
        histogram.observe(0.5)
        histogram.observe(1.5)
        assert histogram.count == 2
        assert histogram.total_s == pytest.approx(2.0)
        assert histogram.mean_s == pytest.approx(1.0)

    def test_empty_histogram_quantile_is_zero(self):
        assert LatencyHistogram().quantile(0.99) == 0.0

    def test_registry_shares_instruments_and_exports(self):
        registry = MetricsRegistry()
        registry.counter("x").inc(3)
        assert registry.counter("x").value == 3
        registry.gauge("g").set(7.0)
        registry.histogram("h").observe(0.01)
        export = registry.export()
        assert export["x"] == 3 and export["g"] == 7.0
        assert export["h.count"] == 1 and export["h.p95_s"] > 0.0


class TestCoalescingPool:
    def test_concurrent_identical_work_executes_once(self):
        pool = CoalescingPool(max_workers=8)
        calls = []
        release = threading.Event()

        def work():
            calls.append(1)
            release.wait(timeout=5.0)
            return 42

        futures = [pool.submit("k", work) for _ in range(8)]
        release.set()
        assert all(f.result(timeout=5.0) == 42 for f in futures)
        assert len(calls) == 1
        stats = pool.stats()
        assert stats.submitted == 8 and stats.coalesced == 7 and stats.executed == 1
        pool.shutdown()

    def test_distinct_keys_do_not_coalesce(self):
        with CoalescingPool(max_workers=2) as pool:
            futures = [pool.submit(i, lambda i=i: i * 2) for i in range(4)]
            assert [f.result(timeout=5.0) for f in futures] == [0, 2, 4, 6]
            assert pool.stats().coalesced == 0

    def test_submit_or_join_reports_which_call_started_the_work(self):
        pool = CoalescingPool(max_workers=2)
        release = threading.Event()
        first, started_first = pool.submit_or_join(
            "k", lambda: release.wait(timeout=5.0)
        )
        second, started_second = pool.submit_or_join("k", lambda: None)
        release.set()
        assert started_first and not started_second
        assert second is first  # the join returned the in-flight future
        first.result(timeout=5.0)
        pool.shutdown()

    def test_key_released_after_completion(self):
        with CoalescingPool(max_workers=2) as pool:
            pool.submit("k", lambda: 1).result(timeout=5.0)
            for _ in range(100):
                if pool.inflight_count() == 0:
                    break
                time.sleep(0.01)
            assert pool.inflight_count() == 0
            # A later submission for the same key runs fresh.
            assert pool.submit("k", lambda: 2).result(timeout=5.0) == 2


class TestAdmission:
    def test_bounded_budget(self):
        admission = AdmissionController(AdmissionConfig(max_pending=2))
        assert admission.try_enter() and admission.try_enter()
        assert not admission.try_enter()
        assert admission.rejected_total == 1
        admission.exit()
        assert admission.try_enter()
        assert admission.admitted_total == 3

    def test_exit_without_enter_rejected(self):
        admission = AdmissionController()
        with pytest.raises(ValidationError):
            admission.exit()

    def test_retries_transient_then_succeeds(self):
        attempts = []
        sleeps = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise CalibrationError("transient")
            return "ok"

        config = AdmissionConfig(max_retries=2, backoff_initial_s=0.01, backoff_multiplier=4.0)
        result = call_with_retries(flaky, config, sleep=sleeps.append)
        assert result == "ok" and len(attempts) == 3
        assert sleeps == [0.01, 0.04]  # exponential backoff schedule

    def test_retry_budget_exhausted_raises(self):
        config = AdmissionConfig(max_retries=1, backoff_initial_s=0.0)

        def always_fails():
            raise CalibrationError("permanent")

        with pytest.raises(CalibrationError):
            call_with_retries(always_fails, config, sleep=lambda s: None)

    def test_non_transient_errors_not_retried(self):
        attempts = []

        def boom():
            attempts.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            call_with_retries(boom, AdmissionConfig(max_retries=5), sleep=lambda s: None)
        assert len(attempts) == 1


class TestPredictionService:
    def test_satisfies_predictor_protocol(self):
        with PredictionService(StubPredictor()) as service:
            assert isinstance(service, Predictor)

    def test_cache_hit_skips_primary(self):
        with PredictionService(StubPredictor()) as service:
            a = service.predict_mrt_ms("S", 500)
            b = service.predict_mrt_ms("S", 500.3)  # same grid cell
            assert a == b and service.primary.calls == 1
            assert service.cache.stats().hits == 1

    def test_all_three_operations_cached_independently(self):
        with PredictionService(StubPredictor()) as service:
            assert service.predict_mrt_ms("S", 500) == 600.0
            assert service.predict_throughput("S", 500) == pytest.approx(70.0)
            assert service.max_clients("S", 500.0) == 1000
            assert service.primary.calls == 3
            service.max_clients("S", 500.0)
            assert service.primary.calls == 3

    def test_timer_records_service_level_delays(self):
        with PredictionService(StubPredictor()) as service:
            service.predict_mrt_ms("S", 500)
            service.predict_mrt_ms("S", 500)
            assert service.timer.evaluations == 2
            assert service.timer.mean_delay_s > 0.0

    def test_invalidate_forces_recompute(self):
        with PredictionService(StubPredictor()) as service:
            service.predict_mrt_ms("S", 500)
            assert service.invalidate("S") == 1
            service.predict_mrt_ms("S", 500)
            assert service.primary.calls == 2

    def test_transient_errors_retried_to_success(self):
        primary = StubPredictor(fail_first=2)
        config = ServiceConfig(
            admission=AdmissionConfig(max_retries=2, backoff_initial_s=0.0)
        )
        with PredictionService(primary, config=config) as service:
            assert service.predict_mrt_ms("S", 500) == 600.0
            assert service.export_metrics()["retries"] == 2

    def test_persistent_transient_error_degrades_to_fallback(self):
        primary = StubPredictor(fail_first=100)
        fallback = StubPredictor(name="fb")
        config = ServiceConfig(admission=AdmissionConfig(max_retries=1, backoff_initial_s=0.0))
        with PredictionService(primary, fallback=fallback, config=config) as service:
            assert service.predict_mrt_ms("S", 500) == 600.0
            metrics = service.export_metrics()
            assert metrics["degraded.error"] == 1 and fallback.calls == 1

    def test_persistent_error_without_fallback_raises(self):
        primary = StubPredictor(fail_first=100)
        config = ServiceConfig(admission=AdmissionConfig(max_retries=0, backoff_initial_s=0.0))
        with PredictionService(primary, config=config) as service:
            with pytest.raises(CalibrationError):
                service.predict_mrt_ms("S", 500)

    def test_timeout_degrades_to_fallback(self):
        primary = StubPredictor(delay_s=0.5)
        fallback = StubPredictor(name="fb")
        config = ServiceConfig(admission=AdmissionConfig(timeout_s=0.05))
        with PredictionService(primary, fallback=fallback, config=config) as service:
            value = service.predict_mrt_ms("S", 500)
            assert value == 600.0  # the historical-style fallback's answer
            metrics = service.export_metrics()
            assert metrics["degraded.timeout"] == 1
            assert metrics["timeouts"] == 1
            assert fallback.calls == 1

    def test_timeout_without_fallback_raises(self):
        primary = StubPredictor(delay_s=0.5)
        config = ServiceConfig(admission=AdmissionConfig(timeout_s=0.05))
        with PredictionService(primary, config=config) as service:
            with pytest.raises(PredictionTimeoutError):
                service.predict_mrt_ms("S", 500)

    def test_saturation_degrades_immediately(self):
        primary = StubPredictor(delay_s=0.3)
        fallback = StubPredictor(name="fb")
        config = ServiceConfig(
            max_workers=1,
            admission=AdmissionConfig(max_pending=1, timeout_s=5.0),
        )
        with PredictionService(primary, fallback=fallback, config=config) as service:
            blocker = threading.Thread(
                target=lambda: service.predict_mrt_ms("S", 100), daemon=True
            )
            blocker.start()
            for _ in range(100):  # wait until the slow request holds the slot
                if service.admission.pending == 1:
                    break
                time.sleep(0.005)
            value = service.predict_mrt_ms("S", 200)
            blocker.join(timeout=5.0)
            assert value == 300.0
            assert service.export_metrics()["degraded.saturated"] == 1

    def test_saturation_without_fallback_raises(self):
        primary = StubPredictor(delay_s=0.3)
        config = ServiceConfig(max_workers=1, admission=AdmissionConfig(max_pending=1))
        with PredictionService(primary, config=config) as service:
            blocker = threading.Thread(
                target=lambda: service.predict_mrt_ms("S", 100), daemon=True
            )
            blocker.start()
            for _ in range(100):
                if service.admission.pending == 1:
                    break
                time.sleep(0.005)
            with pytest.raises(ServiceSaturatedError):
                service.predict_mrt_ms("S", 200)
            blocker.join(timeout=5.0)

    def test_clients_at_max_delegates(self):
        primary = StubPredictor()
        primary.clients_at_max = lambda server: 1234.0
        with PredictionService(primary) as service:
            assert service.clients_at_max("S") == 1234.0
        with PredictionService(StubPredictor()) as service:
            with pytest.raises(AttributeError):
                service.clients_at_max("S")

    def test_metrics_export_has_latency_percentiles(self):
        with PredictionService(StubPredictor()) as service:
            for n in range(20):
                service.predict_mrt_ms("S", 100 + n)
            metrics = service.export_metrics()
            assert metrics["latency.count"] == 20
            assert metrics["latency.p50_s"] > 0.0
            assert metrics["latency.p99_s"] >= metrics["latency.p50_s"]
            assert metrics["requests"] == 20


class TestResourceManagerOnService:
    """The acceptance seam: Algorithm 1 and the runtime evaluation take a
    ``Predictor``; a ``PredictionService`` must slot in unchanged."""

    def test_algorithm1_and_runtime_run_on_the_service_unchanged(self):
        from repro.resource_manager.allocation import allocate
        from repro.resource_manager.runtime import evaluate_runtime
        from repro.resource_manager.sla import ClassWorkload
        from tests.test_resource_manager import CAPS, StepPredictor, servers_pool

        classes = [
            ClassWorkload(name="tight", n_clients=200, rt_goal_ms=150.0),
            ClassWorkload(name="lax", n_clients=300, rt_goal_ms=600.0),
        ]
        with PredictionService(StepPredictor(CAPS)) as service:
            allocation = allocate(classes, servers_pool(), service)
            outcome = evaluate_runtime(allocation, classes, servers_pool(), service)
            assert sum(v for a in allocation.per_server.values() for v in a.values()) == 500
            assert outcome.total_clients == 500
            assert outcome.sla_failure_pct == 0.0
            # The service actually served (and memoized) the model queries.
            metrics = service.export_metrics()
            assert metrics["requests"] > 0
            assert metrics["cache.hit_rate"] > 0.0

    def test_delay_experiment_style_timing_loop_works(self):
        # experiments/delay.py times predictors through _time_predictions-
        # style closures; the service supports the same call shape.
        with PredictionService(StubPredictor()) as service:
            for i in range(20):
                service.predict_mrt_ms("AppServS", 400 + i % 700)
            assert service.timer.evaluations == 20
            assert service.timer.mean_delay_s > 0.0


class TestLoadGenerator:
    def test_closed_loop_counts_and_metrics(self):
        with PredictionService(StubPredictor()) as service:
            report = LoadGenerator(
                service,
                LoadGenConfig(
                    threads=4,
                    requests_per_thread=25,
                    servers=("S",),
                    client_range=(100, 200),
                    operation_weights=(("mrt", 0.6), ("throughput", 0.3), ("capacity", 0.1)),
                ),
            ).run()
            assert report.requests == 100 and report.errors == 0
            assert report.per_thread_requests == [25, 25, 25, 25]
            assert report.throughput_rps > 0.0
            assert report.metrics["latency.count"] == 100

    def test_reproducible_across_runs(self):
        def run_once():
            service = PredictionService(StubPredictor())
            with service:
                LoadGenerator(
                    service,
                    LoadGenConfig(threads=2, requests_per_thread=30, servers=("S",), seed=7),
                ).run()
                return service.primary.calls  # distinct operating points hit

        assert run_once() == run_once()

    def test_invalid_config_rejected(self):
        with pytest.raises(ValidationError):
            LoadGenConfig(threads=0)
        with pytest.raises(ValidationError):
            LoadGenConfig(operation_weights=(("bogus", 1.0),))
