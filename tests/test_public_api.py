"""Smoke tests over the package's public API surface."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_flow():
    """The README quickstart must keep working end-to-end."""
    calibration = repro.calibrate_from_simulator(
        repro.APP_SERV_F, clients_per_type=150, duration_s=20.0, warmup_s=5.0, seed=4
    )
    predictor = repro.HybridPredictor.from_parameters(
        calibration.to_model_parameters(),
        [repro.APP_SERV_S, repro.APP_SERV_F, repro.APP_SERV_VF],
    )
    prediction = predictor.predict_mrt_ms("AppServS", 500)
    assert prediction > 0.0


def test_subpackages_importable():
    import repro.analysis
    import repro.caching
    import repro.distribution
    import repro.experiments
    import repro.historical
    import repro.hybrid
    import repro.lqn
    import repro.prediction
    import repro.resource_manager
    import repro.servers
    import repro.service
    import repro.simulation
    import repro.util
    import repro.workload  # noqa: F401


def test_experiment_registry_complete():
    from repro.experiments.runner import EXPERIMENTS

    expected = {
        "table1",
        "table2",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig7_cost",
        "accuracy",
        "percentiles",
        "caching",
        "delay",
        "recalibration",
        "serving",
        "tracing",
        "chaos",
        "workloads",
        "sharded_serving",
        "overload",
    }
    assert set(EXPERIMENTS) == expected


def test_runner_list_mode(capsys):
    from repro.experiments.runner import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "fig8" in out


def test_runner_unknown_experiment():
    import pytest

    from repro.experiments.runner import run_experiment

    with pytest.raises(KeyError):
        run_experiment("fig99")


def test_report_generator(tmp_path):
    from repro.experiments.report import generate_report, main

    report, timings = generate_report(fast=True, experiment_ids=["table2"])
    assert "Regenerated results" in report
    assert "table2" in report and "```" in report
    assert set(timings) == {"table2"}

    out = tmp_path / "digest.md"
    assert main([str(out), "--only", "table2"]) == 0
    assert out.exists() and "table2" in out.read_text()


def test_report_unknown_id_rejected():
    import pytest

    from repro.experiments.report import generate_report

    with pytest.raises(KeyError):
        generate_report(experiment_ids=["fig99"])
