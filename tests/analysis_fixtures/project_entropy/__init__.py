"""Known-bad specimens for the REPRO-ENTROPY001 whole-program pass."""
