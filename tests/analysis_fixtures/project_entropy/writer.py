"""Entropy flowing into artifact writers — golden-file poison.

``publish`` writes a payload whose ``generated`` field comes from
``time.time()`` two calls away; ``leaky_order`` serializes labels in
set-hash order.  Either one makes a byte-diffed golden flap.
"""

import json
import time
from pathlib import Path


def stamp():
    return time.time()


def publish(target: Path):
    payload = {"generated": stamp()}
    target.write_text(json.dumps(payload))


def leaky_order(rows, out_path):
    labels = list({row[0] for row in rows})
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(labels, fh)
