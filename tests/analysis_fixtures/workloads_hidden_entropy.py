"""Fixture: workload sampling through hidden entropy (REPRO-DIST001 positive).

Both defects this rule exists for, in their natural habitat: a sampler
that cannot be handed a generator, and a SciPy draw off the global RNG.
"""

import scipy.stats


def sample_think_times(mean_ms, n):
    """Sampler with no rng parameter: entropy can only come from globals."""
    dist = scipy.stats.expon(scale=mean_ms)
    return dist.rvs(size=n)
