"""Lint-rule fixtures: deliberately defective (and clean) snippets.

These files are *data* for ``repro.analysis`` — each exercises one rule,
positively or negatively.  They are named so pytest never collects them,
and their known findings live in the committed ``.analysis-baseline.json``
(which is how the baseline workflow itself stays exercised in CI: the
analyzer must flag exactly these, and the baseline must suppress them).
"""
