"""Untyped receiver: dynamic dispatch over-approximates to both ``ship``s."""


class Freighter:
    def ship(self, cargo):
        return ["freight", cargo]


class Courier:
    def ship(self, cargo):
        return ["courier", cargo]


def send(carrier, cargo):
    return carrier.ship(cargo)
