"""Decorated functions keep their identity and their outgoing edges."""

import functools


def logged(fn):
    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        return fn(*args, **kwargs)

    return wrapper


@logged
def compute(x):
    return helper(x)


def helper(x):
    return x + 1
