"""Mutual and direct recursion — the fixpoint must converge, not spin."""


def even(n):
    if n == 0:
        return True
    return odd(n - 1)


def odd(n):
    if n == 0:
        return False
    return even(n - 1)


def loop(n):
    return loop(n - 1) if n else 0
