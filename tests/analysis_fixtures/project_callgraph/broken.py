def broken(:
    pass
