"""Adversarial call-graph shapes: cycles, decorators, dispatch, breakage."""
