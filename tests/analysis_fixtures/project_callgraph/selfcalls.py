"""``self.m()`` resolves through the MRO plus subclass overrides."""


class Base:
    def run(self):
        return self.step()

    def step(self):
        return 0


class Child(Base):
    def step(self):
        return 1
