"""REPRO-RNG001 positive fixture: RNG use that bypasses the stream registry.

Three flavours the rule must flag — a stdlib value import, a bare
``random.*`` call and a module-level ``np.random.*`` call — plus one it
must not: a type-only annotation import from ``numpy.random``.
"""

from __future__ import annotations

import random

import numpy as np
from numpy.random import Generator


def unseeded_think_time(mean_ms: float) -> float:
    """Draw a think time from process-global, unseeded generators."""
    jitter = random.random()
    sample = np.random.exponential(mean_ms)
    return sample * (0.5 + jitter)


def annotated(rng: Generator) -> float:
    """Type-only Generator import is fine; drawing from it is too."""
    return float(rng.random())
