"""The disciplined versions of everything the bad fixtures do wrong.

Consistent lock order, blocking work outside the lock, sorted set
serialization, and a seeded generator: the three passes must report
nothing here.
"""

import json
import threading
import time
from pathlib import Path

_ALPHA_LOCK = threading.Lock()
_BETA_LOCK = threading.Lock()


def transfer():
    with _ALPHA_LOCK:
        with _BETA_LOCK:
            return True


def audit():
    with _ALPHA_LOCK:
        with _BETA_LOCK:
            return False


def compute():
    return 42


def paced():
    with _ALPHA_LOCK:
        value = compute()
    slow_work()
    return value


def slow_work():
    time.sleep(0.001)


def write_sorted(items, target: Path):
    labels = sorted(set(items))
    target.write_text(json.dumps(labels))
