"""Specimens every whole-program pass must leave alone (zero findings)."""
