"""REPRO-API001 positive fixture: ``__all__`` drift in both directions.

``ghost`` is exported but never defined (error); ``stray`` is public but
unexported (warning); ``_private`` must not be flagged.
"""

from __future__ import annotations

__all__ = ["exported", "ghost"]


def exported() -> int:
    """Defined and exported: consistent."""
    return 1


def stray() -> int:
    """Public but missing from __all__: silent API drift."""
    return 2


def _private() -> int:
    """Underscore-private: exempt from the export contract."""
    return 3
