"""REPRO-LOCK001 negative fixture: the same timer, correctly locked.

Identical shape to ``racy_timer.py`` but every access to the guarded
accumulators holds the lock — the rule must stay silent here.
"""

from __future__ import annotations

import threading

__all__ = ["SafeTimer"]


class SafeTimer:
    """Cumulative delay accounting with all accesses lock-guarded."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.evaluations = 0
        self.total_time_s = 0.0

    def record(self, elapsed_s: float) -> None:
        """Add one evaluation's wall-clock time under the lock."""
        with self._lock:
            self.evaluations += 1
            self.total_time_s += elapsed_s

    @property
    def mean_delay_s(self) -> float:
        """Mean per-prediction delay (s), read under the lock."""
        with self._lock:
            return self.total_time_s / self.evaluations if self.evaluations else 0.0
