"""Negative fixture for REPRO-TRC001: the sanctioned span idiom."""

from repro.trace import TRACER


def solve_traced(model):
    with TRACER.span("solve", kind="lqn") as span:
        result = model.solve()
        span.set_attribute("ok", True)
        return result
