"""Positive fixture for REPRO-TRC001: a hand-driven span lifecycle.

If ``model.solve()`` raises, ``span.end()`` on the success path is
skipped and the span leaks — exactly the defect the rule patrols.
"""

from repro.trace import TRACER


def solve_traced(model):
    span = TRACER.span("solve", kind="lqn")  # REPRO-TRC001: not a with item
    span.begin()  # REPRO-TRC001: bare lifecycle call
    result = model.solve()
    span.end()  # REPRO-TRC001: skipped if solve() raised
    return result
