"""REPRO-MUT001 positive fixture: defaults sharing state across calls.

A list literal and a ``dict()`` call default must both be flagged; the
``None`` sentinel and immutable tuple must not.
"""

from __future__ import annotations

__all__ = ["accumulate", "tagged", "fine"]


def accumulate(value: float, into: list = []) -> list:
    """Append into a default list shared by every call."""
    into.append(value)
    return into


def tagged(name: str, labels: dict = dict()) -> dict:
    """Mutate a default dict shared by every call."""
    labels[name] = True
    return labels


def fine(value: float, into: list | None = None, shape: tuple = ()) -> list:
    """The sanctioned pattern: None sentinel, immutable default."""
    out = [] if into is None else into
    out.append(value)
    return out
