"""REPRO-FLT001 positive fixture ("solver" in the path puts it in scope).

One exact equality and one exact inequality against float literals in
tolerance-sensitive-looking code; both must be flagged.  The integer
comparison must not be.
"""

from __future__ import annotations

__all__ = ["converged", "step"]


def converged(residual: float) -> bool:
    """Exact zero test on a least-squares residual (the classic bug)."""
    return residual == 0.0


def step(delta: float, iterations: int) -> bool:
    """Exact float inequality plus a benign integer comparison."""
    return delta != 1.0 and iterations == 0
