"""Non-reentrant lock re-acquired through a helper: guaranteed hang.

``Counter.bump`` holds the plain ``threading.Lock`` and calls
``self._audit``, which acquires the same lock again.  A ``Lock`` (unlike
``RLock``) does not nest, so the second ``with`` blocks forever.
"""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def bump(self):
        with self._lock:
            self._audit()

    def _audit(self):
        with self._lock:
            self.total += 1
