"""AB-BA lock-order cycle crossing a dynamic-dispatch edge.

``Left.forward`` takes ``Left._lock`` then (through the typed
``self.right`` field) ``Right._lock``; ``Right.backward`` takes
``Right._lock`` then reaches ``Left.forward`` through an untyped
``peer`` parameter that only dynamic dispatch can connect.  Two threads
running ``forward`` and ``backward`` concurrently deadlock.
"""

import threading


class Left:
    def __init__(self):
        self._lock = threading.Lock()
        self.right = Right()

    def forward(self):
        with self._lock:
            self.right.grab()

    def grab(self):
        with self._lock:
            return "left"


class Right:
    def __init__(self):
        self._lock = threading.Lock()

    def grab(self):
        with self._lock:
            return "right"

    def backward(self, peer):
        with self._lock:
            self._delegate(peer)

    def _delegate(self, peer):
        peer.forward()
