"""Known-bad specimens for the REPRO-DEADLOCK001 whole-program pass."""
