"""REPRO-LOCK001 positive fixture: the serving layer's original timer race.

This reproduces the defect pattern the lock-discipline rule was written
to catch: a timer whose reader takes the lock while ``record`` mutates
the same accumulators bare, losing updates under contention.  The rule
must flag both ``+=`` lines in :meth:`RacyTimer.record`.
"""

from __future__ import annotations

import threading

__all__ = ["RacyTimer"]


class RacyTimer:
    """Cumulative delay accounting with an unguarded read-modify-write."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.evaluations = 0
        self.total_time_s = 0.0

    def record(self, elapsed_s: float) -> None:
        """Add one evaluation's wall-clock time (racy: no lock held)."""
        self.evaluations += 1
        self.total_time_s += elapsed_s

    @property
    def mean_delay_s(self) -> float:
        """Mean per-prediction delay (s) — reads under the lock."""
        with self._lock:
            return self.total_time_s / self.evaluations if self.evaluations else 0.0
