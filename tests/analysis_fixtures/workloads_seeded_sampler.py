"""Fixture: disciplined workload sampling (REPRO-DIST001 negative).

The sampler takes the generator explicitly and the SciPy draw pins its
``random_state`` — a (spec, seed) pair reproduces byte-identically.
"""

import scipy.stats


def sample_think_times(rng, mean_ms, n):
    """Sampler handed a spawn_rng stream: reproducible under a seed."""
    dist = scipy.stats.expon(scale=mean_ms)
    return dist.rvs(size=n, random_state=rng)
