"""Known-bad specimens for the REPRO-BLOCK001 whole-program pass."""
