"""Synthetic replay of the circuit-breaker probe-slot leak pattern.

The real bug this models: a breaker consulted its fault injector and
submitted probe work to a pool *while still holding its own lock*, so a
slow injector filter (or a pool at capacity) stalled every caller of the
breaker — and a probe that errored before release leaked the slot.  The
fix moved the injector consultation and the submit outside the lock;
REPRO-BLOCK001 exists so the pattern cannot quietly come back.
"""

import threading


class FaultInjector:
    def fire(self, site):
        return False


INJECTOR = FaultInjector()


class ProbePool:
    def submit(self, fn):
        return fn()


class LeakyBreaker:
    """Everything wrong at once: injector, submit and result under lock."""

    def __init__(self, pool):
        self._lock = threading.Lock()
        self._pool = pool
        self._probing = False

    def allow(self):
        with self._lock:
            if INJECTOR.fire("breaker.allow"):
                return False
            self._probing = True
            fut = self._pool.submit(lambda: True)
            return fut.result()


class Throttler:
    """Interprocedural variant: the sleep hides one call away."""

    def __init__(self):
        self._lock = threading.Lock()
        self._interval = 0.01

    def tick(self):
        with self._lock:
            self._backoff()

    def _backoff(self):
        import time

        time.sleep(self._interval)
