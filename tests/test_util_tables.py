"""Unit tests for repro.util.tables (text table rendering)."""

import pytest

from repro.util.tables import format_kv, format_series, format_table


class TestFormatTable:
    def test_headers_and_rows_rendered(self):
        out = format_table(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in out and "b" in out
        assert "1" in out and "4" in out

    def test_title_rendered_with_underline(self):
        out = format_table(["a"], [[1]], title="My Table")
        lines = out.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_column_widths_align(self):
        out = format_table(["col", "x"], [["long-value", 1]])
        header, sep, row = out.splitlines()
        assert len(header) == len(sep) == len(row)

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_precision(self):
        out = format_table(["x"], [[1.23456]], precision=2)
        assert "1.23" in out
        assert "1.2345" not in out

    def test_small_floats_use_scientific(self):
        out = format_table(["x"], [[4e-06]], precision=3)
        assert "e-06" in out

    def test_nan_rendered(self):
        out = format_table(["x"], [[float("nan")]])
        assert "nan" in out

    def test_empty_rows_ok(self):
        out = format_table(["a", "b"], [])
        assert "a" in out

    def test_bools_rendered_verbatim(self):
        out = format_table(["x"], [[True]])
        assert "True" in out


class TestFormatSeries:
    def test_series_rendered_against_x(self):
        out = format_series("n", [1.0, 2.0], {"y": [10.0, 20.0]})
        assert "n" in out and "y" in out
        assert "10" in out and "20" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            format_series("n", [1.0, 2.0], {"y": [10.0]})

    def test_multiple_series(self):
        out = format_series("n", [1.0], {"a": [1.0], "b": [2.0]})
        assert "a" in out and "b" in out


class TestFormatKv:
    def test_pairs_rendered(self):
        out = format_kv({"key": 1.5, "other": "text"})
        assert "key" in out and "1.5" in out and "text" in out

    def test_alignment(self):
        out = format_kv({"a": 1, "longer": 2})
        lines = out.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty_dict(self):
        assert format_kv({}) == ""
