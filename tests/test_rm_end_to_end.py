"""End-to-end validation of the resource manager against the simulator.

The paper evaluates Algorithm 1 analytically (the historical model stands in
for the real system).  This test goes one step further: it takes an actual
allocation, *simulates* the resulting multi-server deployment (all app
servers sharing the one database), and checks that the SLA promises made by
the allocator hold in the simulated system.
"""

import pytest

from repro.experiments.rm_common import build_rm_setup
from repro.experiments.scenario import rm_workload_for
from repro.resource_manager.allocation import allocate
from repro.servers.catalogue import architecture
from repro.simulation.system import SimulatedDeployment, SimulationConfig
from repro.workload.trade import browse_class, buy_class

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def simulated_outcome():
    setup = build_rm_setup(fast=True)
    total = 4000
    classes = rm_workload_for(total)
    allocation = allocate(classes, setup.servers, setup.predictor, slack=1.1)

    # Materialise the allocation as a simulated deployment.  Service classes
    # are rebuilt with their SLA goals and priorities (tightest goal = most
    # urgent, matching the allocator's ordering).
    class_objects = {
        "buy": buy_class(name="buy", rt_goal_ms=150.0, priority=0),
        "browse_hi": browse_class(name="browse_hi", rt_goal_ms=300.0, priority=1),
        "browse_lo": browse_class(name="browse_lo", rt_goal_ms=600.0, priority=2),
    }
    server_by_name = {s.name: s for s in setup.servers}
    placements = {}
    for server_name, alloc in allocation.per_server.items():
        arch = architecture(server_by_name[server_name].architecture)
        workload = {
            class_objects[class_name]: int(round(count / 1.1))  # real clients
            for class_name, count in alloc.items()
            if count > 0
        }
        if workload:
            placements[server_name] = (arch, workload)

    deployment = SimulatedDeployment(
        placements=placements,
        config=SimulationConfig(duration_s=40.0, warmup_s=10.0, seed=31),
    )
    return allocation, class_objects, deployment.run()


class TestAllocationHoldsInSimulation:
    def test_no_clients_rejected_by_allocator(self, simulated_outcome):
        allocation, _, _ = simulated_outcome
        assert allocation.total_unallocated() == 0

    def test_all_classes_served(self, simulated_outcome):
        _, class_objects, result = simulated_outcome
        assert set(result.per_class_mean_ms) == set(class_objects)

    def test_sla_goals_hold_in_simulation(self, simulated_outcome):
        """The allocator promised every class its goal; the simulated system
        should deliver (with slack 1.1 absorbing model error)."""
        _, class_objects, result = simulated_outcome
        for name, service_class in class_objects.items():
            measured = result.per_class_mean_ms[name]
            assert measured <= service_class.rt_goal_ms, (
                f"{name}: simulated {measured:.1f}ms exceeds the "
                f"{service_class.rt_goal_ms:.0f}ms goal"
            )

    def test_throughput_consistent_with_population(self, simulated_outcome):
        allocation, _, result = simulated_outcome
        real_clients = round(allocation.total_allocated() / 1.1)
        # Closed-workload law at low response times: X ~ N / think.
        expected = real_clients / 7.03
        assert result.throughput_req_per_s == pytest.approx(expected, rel=0.1)

    def test_shared_database_not_saturated(self, simulated_outcome):
        _, _, result = simulated_outcome
        assert result.db_cpu_utilisation < 0.9
        assert result.db_disk_utilisation < 0.9
