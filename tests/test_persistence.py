"""Round-trip tests for LQN model serialisation and historical-data CSV."""

import json

import pytest

from repro.historical.datastore import HistoricalDataPoint, HistoricalDataStore
from repro.historical.persistence import load_store_csv, save_store_csv
from repro.lqn.builder import RequestTypeParameters, TradeModelParameters, build_trade_model
from repro.lqn.model import CallKind, Entry, LqnModel, Processor, Task
from repro.lqn.serialization import (
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.lqn.solver import LqnSolver
from repro.servers.catalogue import APP_SERV_F
from repro.util.errors import CalibrationError, ModelError
from repro.workload.trade import mixed_workload

PARAMS = TradeModelParameters(
    request_types={
        "browse": RequestTypeParameters(
            name="browse",
            app_demand_ms=5.376,
            db_calls=1.14,
            db_cpu_per_call_ms=0.8294,
            db_disk_per_call_ms=1.2,
        ),
        "buy": RequestTypeParameters(
            name="buy",
            app_demand_ms=10.455,
            db_calls=2.0,
            db_cpu_per_call_ms=1.613,
            db_disk_per_call_ms=1.5,
        ),
    }
)


class TestLqnSerialization:
    @pytest.fixture
    def model(self) -> LqnModel:
        return build_trade_model(APP_SERV_F, mixed_workload(200, 0.25), PARAMS)

    def test_round_trip_preserves_structure(self, model):
        rebuilt = model_from_dict(model_to_dict(model))
        assert set(rebuilt.tasks) == set(model.tasks)
        assert set(rebuilt.processors) == set(model.processors)
        for name, task in model.tasks.items():
            assert rebuilt.tasks[name] == task

    def test_round_trip_preserves_solution(self, model):
        rebuilt = model_from_dict(model_to_dict(model))
        solver = LqnSolver()
        original = solver.solve(model)
        again = solver.solve(rebuilt)
        assert again.response_ms == pytest.approx(original.response_ms)

    def test_json_file_round_trip(self, model, tmp_path):
        path = save_model(model, tmp_path / "trade.lqn.json")
        assert path.exists()
        rebuilt = load_model(path)
        assert set(rebuilt.tasks) == set(model.tasks)

    def test_document_is_plain_json(self, model):
        json.dumps(model_to_dict(model))  # must not raise

    def test_wrong_format_rejected(self):
        with pytest.raises(ModelError, match="format"):
            model_from_dict({"format": "other"})

    def test_wrong_version_rejected(self):
        with pytest.raises(ModelError, match="version"):
            model_from_dict({"format": "repro-lqn", "version": 99})

    def test_invalid_model_rejected_on_load(self):
        data = {
            "format": "repro-lqn",
            "version": 1,
            "processors": [{"name": "p"}],
            "tasks": [
                {
                    "name": "t",
                    "processor": "p",
                    "entries": [
                        {"name": "e", "demand_ms": 1.0, "calls": [{"target": "missing", "mean_calls": 1.0}]}
                    ],
                    "is_reference": True,
                }
            ],
        }
        with pytest.raises(ModelError):
            model_from_dict(data)

    def test_call_kinds_preserved(self):
        model = LqnModel()
        model.add_processor(Processor(name="cl"))
        model.add_processor(Processor(name="p"))
        model.add_task(
            Task(name="w", processor="p", entries=(Entry("work", 5.0),), multiplicity=10)
        )
        from repro.lqn.model import Call

        model.add_task(
            Task(
                name="clients",
                processor="cl",
                entries=(
                    Entry(
                        "cycle",
                        0.0,
                        calls=(Call("work", 1.0, kind=CallKind.ASYNCHRONOUS),),
                    ),
                ),
                is_reference=True,
                multiplicity=5,
                think_time_ms=100.0,
            )
        )
        rebuilt = model_from_dict(model_to_dict(model))
        call = rebuilt.entry("cycle").calls[0]
        assert call.kind is CallKind.ASYNCHRONOUS


class TestHistoricalCsv:
    @pytest.fixture
    def store(self) -> HistoricalDataStore:
        store = HistoricalDataStore()
        store.add(HistoricalDataPoint("F", 100, 12.5, 14.2, 50))
        store.add(HistoricalDataPoint("F", 1500, 980.25, 186.0, 200, buy_fraction=0.25))
        store.add(HistoricalDataPoint("VF", 200, 9.0, 28.0, 50))
        return store

    def test_round_trip(self, store, tmp_path):
        path = save_store_csv(store, tmp_path / "history.csv")
        loaded = load_store_csv(path)
        assert len(loaded) == len(store)
        assert loaded.all_points() == store.all_points()

    def test_floats_round_trip_exactly(self, store, tmp_path):
        path = save_store_csv(store, tmp_path / "history.csv")
        loaded = load_store_csv(path)
        original = store.for_server("F", buy_fraction=0.25)[0]
        reloaded = loaded.for_server("F", buy_fraction=0.25)[0]
        assert reloaded.mean_response_ms == original.mean_response_ms

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CalibrationError, match="no historical data"):
            load_store_csv(tmp_path / "nope.csv")

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(CalibrationError, match="header"):
            load_store_csv(path)

    def test_bad_row_rejected(self, tmp_path):
        from repro.historical.persistence import CSV_COLUMNS

        path = tmp_path / "bad.csv"
        path.write_text(",".join(CSV_COLUMNS) + "\nF,notanumber,1,1,1,0\n")
        with pytest.raises(CalibrationError):
            load_store_csv(path)

    def test_empty_store_round_trips(self, tmp_path):
        path = save_store_csv(HistoricalDataStore(), tmp_path / "empty.csv")
        assert len(load_store_csv(path)) == 0
