"""Unit tests for the measurement collectors."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simulation.metrics import MetricsCollector, ResponseTimeStats
from repro.util.errors import ValidationError


class TestResponseTimeStats:
    def test_empty_stats_are_nan(self):
        stats = ResponseTimeStats()
        assert math.isnan(stats.mean)
        assert math.isnan(stats.std)
        assert math.isnan(stats.percentile(0.9))
        assert math.isnan(stats.fraction_below(100.0))

    def test_mean_and_count(self):
        stats = ResponseTimeStats()
        for v in (1.0, 2.0, 3.0):
            stats.record(v)
        assert stats.count == 3
        assert stats.mean == pytest.approx(2.0)

    def test_std_is_sample_std(self):
        stats = ResponseTimeStats()
        for v in (1.0, 3.0):
            stats.record(v)
        assert stats.std == pytest.approx(np.std([1.0, 3.0], ddof=1))

    def test_percentile(self):
        stats = ResponseTimeStats()
        for v in range(1, 101):
            stats.record(float(v))
        assert stats.percentile(0.5) == pytest.approx(50.5)

    def test_fraction_below(self):
        stats = ResponseTimeStats()
        for v in (1.0, 2.0, 3.0, 4.0):
            stats.record(v)
        assert stats.fraction_below(2.0) == pytest.approx(0.5)

    def test_rejects_negative_sample(self):
        with pytest.raises(ValidationError):
            ResponseTimeStats().record(-1.0)

    def test_confidence_halfwidth_shrinks_with_n(self):
        small = ResponseTimeStats(samples=[1.0, 2.0, 3.0, 4.0])
        big = ResponseTimeStats(samples=[1.0, 2.0, 3.0, 4.0] * 100)
        assert big.confidence_halfwidth() < small.confidence_halfwidth()

    def test_as_array_is_copy(self):
        stats = ResponseTimeStats(samples=[1.0])
        arr = stats.as_array()
        arr[0] = 99.0
        assert stats.samples[0] == 1.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_percentile_bounded_by_extremes(self, values):
        stats = ResponseTimeStats()
        for v in values:
            stats.record(v)
        assert min(values) <= stats.percentile(0.5) <= max(values)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=2, max_size=50))
    def test_cdf_monotone(self, values):
        stats = ResponseTimeStats(samples=list(values))
        lo, hi = min(values), max(values)
        assert stats.fraction_below(lo) <= stats.fraction_below(hi)


class TestMetricsCollector:
    def test_warmup_completions_not_recorded(self):
        collector = MetricsCollector()
        collector.record("browse", 10.0)
        assert collector.overall.count == 0
        assert collector.warmup_completions == 1

    def test_measuring_window(self):
        collector = MetricsCollector()
        collector.start_measuring(1000.0)
        collector.record("browse", 10.0)
        collector.record("buy", 20.0)
        collector.stop_measuring(3000.0)
        assert collector.window_ms == 2000.0
        assert collector.overall.count == 2
        assert collector.class_names() == ["browse", "buy"]

    def test_per_class_separation(self):
        collector = MetricsCollector()
        collector.start_measuring(0.0)
        collector.record("a", 10.0)
        collector.record("b", 30.0)
        collector.stop_measuring(1000.0)
        assert collector.for_class("a").mean == pytest.approx(10.0)
        assert collector.for_class("b").mean == pytest.approx(30.0)
        assert collector.overall.mean == pytest.approx(20.0)

    def test_unknown_class_returns_empty_stats(self):
        collector = MetricsCollector()
        assert collector.for_class("nope").count == 0

    def test_throughput(self):
        collector = MetricsCollector()
        collector.start_measuring(0.0)
        for _ in range(100):
            collector.record("a", 1.0)
        collector.stop_measuring(2000.0)
        assert collector.throughput_req_per_s() == pytest.approx(50.0)
        assert collector.throughput_req_per_s("a") == pytest.approx(50.0)

    def test_recording_stops_after_window(self):
        collector = MetricsCollector()
        collector.start_measuring(0.0)
        collector.stop_measuring(10.0)
        collector.record("a", 5.0)
        assert collector.overall.count == 0
