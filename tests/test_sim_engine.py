"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulation.engine import Simulator
from repro.simulation.events import EventPriority
from repro.util.errors import SimulationError


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(5.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run_until(10.0)
        assert order == ["early", "late"]

    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run_until(10.0)
        assert seen == [3.5]

    def test_clock_lands_exactly_on_end_time(self):
        sim = Simulator()
        sim.run_until(42.0)
        assert sim.now == 42.0

    def test_events_beyond_end_time_not_fired(self):
        sim = Simulator()
        fired = []
        sim.schedule(100.0, lambda: fired.append(1))
        sim.run_until(50.0)
        assert fired == []
        sim.run_until(150.0)
        assert fired == [1]

    def test_simultaneous_events_fire_in_priority_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("arrival"), priority=EventPriority.ARRIVAL)
        sim.schedule(1.0, lambda: order.append("departure"), priority=EventPriority.DEPARTURE)
        sim.run_until(2.0)
        assert order == ["departure", "arrival"]

    def test_simultaneous_same_priority_fifo(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("first"))
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run_until(2.0)
        assert order == ["first", "second"]

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("chained"))

        sim.schedule(1.0, first)
        sim.run_until(10.0)
        assert order == ["first", "chained"]

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run_until(2.0)
        assert sim.events_processed == 5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        sim.run_until(2.0)
        assert fired == []

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        event = sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending_events() == 1


class TestErrors:
    def test_negative_delay_rejected(self):
        with pytest.raises(Exception):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_run_until_past_rejected(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run_until(1.0, max_events=100)

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested():
            sim.run_until(5.0)

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError, match="re-entrant"):
            sim.run_until(2.0)
