"""Tests for per-class response-time deviation factors (section 4.3)."""

import pytest

from repro.historical.class_deviation import ClassDeviationModel, demand_ratio_factor
from repro.servers.catalogue import APP_SERV_F, APP_SERV_S
from repro.simulation.system import SimulationConfig, simulate_deployment
from repro.util.errors import CalibrationError
from repro.workload.trade import BROWSE_CLASS, BUY_CLASS, mixed_workload


class TestDemandRatioFactor:
    def test_pure_workload_factor_is_one(self):
        assert demand_ratio_factor(BROWSE_CLASS, {BROWSE_CLASS: 100}) == pytest.approx(1.0)

    def test_buy_factor_above_one_in_mixed_load(self):
        workload = {BROWSE_CLASS: 75, BUY_CLASS: 25}
        assert demand_ratio_factor(BUY_CLASS, workload) > 1.0
        assert demand_ratio_factor(BROWSE_CLASS, workload) < 1.0

    def test_factors_mix_to_one(self):
        workload = {BROWSE_CLASS: 75, BUY_CLASS: 25}
        mixed = 0.75 * demand_ratio_factor(BROWSE_CLASS, workload) + 0.25 * (
            demand_ratio_factor(BUY_CLASS, workload)
        )
        assert mixed == pytest.approx(1.0)

    def test_empty_workload_rejected(self):
        with pytest.raises(Exception):
            demand_ratio_factor(BROWSE_CLASS, {})


class TestClassDeviationModel:
    @pytest.fixture(scope="class")
    def calibrated(self):
        model = ClassDeviationModel()
        for seed, n in ((3, 400), (4, 700)):
            config = SimulationConfig(duration_s=35.0, warmup_s=8.0, seed=seed)
            model.observe(
                simulate_deployment(APP_SERV_F, mixed_workload(n, 0.25), config)
            )
        return model

    def test_buy_factor_above_browse(self, calibrated):
        assert calibrated.factor("buy") > calibrated.factor("browse")

    def test_factors_stable_across_observations(self, calibrated):
        """The paper's premise: the deviation is a property of the request
        mix, roughly constant across loads."""
        assert calibrated.factor_spread("browse") < 0.15
        assert calibrated.factor_spread("buy") < 0.4

    def test_measured_factor_tracks_demand_ratio(self, calibrated):
        workload = mixed_workload(100, 0.25)
        estimated = demand_ratio_factor(BUY_CLASS, workload)
        assert calibrated.factor("buy") == pytest.approx(estimated, rel=0.3)

    def test_prediction_scales_mean(self, calibrated):
        predicted = calibrated.predict_class_mrt_ms("buy", 100.0)
        assert predicted == pytest.approx(100.0 * calibrated.factor("buy"))

    def test_unknown_class_rejected(self, calibrated):
        with pytest.raises(CalibrationError):
            calibrated.factor("mystery")

    def test_cross_architecture_stability(self, calibrated):
        """Factor measured on the new server matches the established one."""
        config = SimulationConfig(duration_s=35.0, warmup_s=8.0, seed=5)
        other = ClassDeviationModel()
        other.observe(
            simulate_deployment(APP_SERV_S, mixed_workload(300, 0.25), config)
        )
        assert other.factor("buy") == pytest.approx(calibrated.factor("buy"), rel=0.2)
