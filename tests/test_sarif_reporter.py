"""SARIF 2.1.0 reporter: structure, determinism, and the pinned golden."""

import json
from pathlib import Path

from repro.analysis import render_sarif
from repro.analysis.findings import Finding, Severity

GOLDEN = Path(__file__).parent / "goldens" / "analysis_sarif.json"


def sample_findings():
    return [
        Finding(
            rule_id="REPRO-BLOCK001",
            rule_name="blocking-under-lock",
            severity=Severity.ERROR,
            path="src/repro/service/pool.py",
            line=100,
            message="blocking call 'submit' while holding '_lock'",
            symbol="repro.service.pool.CoalescingPool.submit_or_join",
            witness=(
                "repro.service.pool.CoalescingPool.submit_or_join",
                "repro.service.pool.CoalescingPool._admit",
            ),
        ),
        Finding(
            rule_id="REPRO-RNG001",
            rule_name="rng-discipline",
            severity=Severity.WARNING,
            path="src/repro/workload.py",
            line=12,
            message="bare random.random() in seeded code",
        ),
    ]


class TestStructure:
    def test_rules_are_sorted_and_indexed(self):
        doc = json.loads(render_sarif(sample_findings()))
        driver = doc["runs"][0]["tool"]["driver"]
        assert [r["id"] for r in driver["rules"]] == [
            "REPRO-BLOCK001",
            "REPRO-RNG001",
        ]
        for result in doc["runs"][0]["results"]:
            rule = driver["rules"][result["ruleIndex"]]
            assert rule["id"] == result["ruleId"]

    def test_fingerprint_and_location_ride_along(self):
        doc = json.loads(render_sarif(sample_findings()))
        result = doc["runs"][0]["results"][0]
        assert result["partialFingerprints"]["reproAnalysis/v1"] == (
            sample_findings()[0].fingerprint()
        )
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/service/pool.py"
        assert location["region"]["startLine"] == 100

    def test_witness_becomes_a_code_flow(self):
        doc = json.loads(render_sarif(sample_findings()))
        with_flow, without_flow = doc["runs"][0]["results"]
        steps = with_flow["codeFlows"][0]["threadFlows"][0]["locations"]
        assert [s["location"]["message"]["text"] for s in steps] == list(
            sample_findings()[0].witness
        )
        assert "codeFlows" not in without_flow

    def test_suppressed_count_is_recorded(self):
        doc = json.loads(render_sarif([], suppressed=7))
        run = doc["runs"][0]
        assert run["results"] == []
        assert run["properties"]["suppressedByBaseline"] == 7


class TestGolden:
    def test_rendering_is_deterministic(self):
        assert render_sarif(sample_findings()) == render_sarif(sample_findings())

    def test_matches_the_committed_golden_document(self):
        assert render_sarif(sample_findings()) + "\n" == GOLDEN.read_text()
