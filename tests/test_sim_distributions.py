"""Unit tests for the random-variate samplers."""

import numpy as np
import pytest

from repro.simulation.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    HyperExponential,
)
from repro.util.errors import ValidationError
from repro.util.rng import spawn_rng


@pytest.fixture
def rng():
    return spawn_rng(123, "dist-tests")


class TestDeterministic:
    def test_always_same_value(self):
        d = Deterministic(5.0)
        assert [d.sample() for _ in range(3)] == [5.0, 5.0, 5.0]

    def test_mean(self):
        assert Deterministic(5.0).mean == 5.0

    def test_zero_allowed(self):
        assert Deterministic(0.0).sample() == 0.0

    def test_sample_many(self):
        assert np.all(Deterministic(2.0).sample_many(4) == 2.0)


class TestExponential:
    def test_mean_property(self, rng):
        assert Exponential(7000.0, rng).mean == 7000.0

    def test_empirical_mean_converges(self, rng):
        samples = Exponential(10.0, rng).sample_many(200_000)
        assert np.mean(samples) == pytest.approx(10.0, rel=0.02)

    def test_empirical_cv_is_one(self, rng):
        samples = Exponential(10.0, rng).sample_many(200_000)
        assert np.std(samples) / np.mean(samples) == pytest.approx(1.0, rel=0.02)

    def test_samples_positive(self, rng):
        assert np.all(Exponential(3.0, rng).sample_many(1000) >= 0.0)

    def test_rejects_non_positive_mean(self, rng):
        with pytest.raises(ValidationError):
            Exponential(0.0, rng)


class TestErlang:
    def test_mean_preserved(self, rng):
        samples = Erlang(10.0, 4, rng).sample_many(200_000)
        assert np.mean(samples) == pytest.approx(10.0, rel=0.02)

    def test_variance_reduced_vs_exponential(self, rng):
        # Erlang-k has CV^2 = 1/k.
        samples = Erlang(10.0, 4, rng).sample_many(200_000)
        cv2 = (np.std(samples) / np.mean(samples)) ** 2
        assert cv2 == pytest.approx(0.25, rel=0.05)

    def test_k_one_is_exponential(self, rng):
        samples = Erlang(10.0, 1, rng).sample_many(100_000)
        cv2 = (np.std(samples) / np.mean(samples)) ** 2
        assert cv2 == pytest.approx(1.0, rel=0.05)

    def test_rejects_bad_k(self, rng):
        with pytest.raises(ValidationError):
            Erlang(10.0, 0, rng)


class TestHyperExponential:
    def test_mean_formula(self, rng):
        h = HyperExponential(0.3, 2.0, 20.0, rng)
        assert h.mean == pytest.approx(0.3 * 2.0 + 0.7 * 20.0)

    def test_empirical_mean(self, rng):
        h = HyperExponential(0.5, 2.0, 20.0, rng)
        samples = np.array([h.sample() for _ in range(100_000)])
        assert np.mean(samples) == pytest.approx(h.mean, rel=0.03)

    def test_variance_exceeds_exponential(self, rng):
        h = HyperExponential(0.5, 1.0, 50.0, rng)
        samples = np.array([h.sample() for _ in range(100_000)])
        cv2 = (np.std(samples) / np.mean(samples)) ** 2
        assert cv2 > 1.1

    def test_rejects_bad_probability(self, rng):
        with pytest.raises(ValidationError):
            HyperExponential(1.5, 1.0, 2.0, rng)
