"""Tests for the simulator-backed LQN calibration procedure."""

import pytest

from repro.lqn.calibration import LqnCalibration, calibrate_from_simulator
from repro.servers.catalogue import APP_SERV_F
from repro.util.errors import CalibrationError


class TestCalibration:
    def test_recovers_design_demands(self, lqn_calibration_fast):
        """The offline procedure should recover the workload's true demands
        (browse 5.376ms app, 1.14 db calls at 0.8294ms) within sampling noise."""
        browse = lqn_calibration_fast.request_types["browse"].parameters
        assert browse.app_demand_ms == pytest.approx(5.376, rel=0.08)
        assert browse.db_calls == pytest.approx(1.14, rel=0.05)
        assert browse.db_cpu_per_call_ms == pytest.approx(0.8294, rel=0.12)
        assert browse.db_disk_per_call_ms == pytest.approx(1.2, rel=0.12)

    def test_recovers_buy_demands(self, lqn_calibration_fast):
        buy = lqn_calibration_fast.request_types["buy"].parameters
        assert buy.app_demand_ms == pytest.approx(10.455, rel=0.12)
        assert buy.db_calls == pytest.approx(2.0, rel=0.05)

    def test_reference_metadata(self, lqn_calibration_fast):
        assert lqn_calibration_fast.reference_server == "AppServF"
        assert lqn_calibration_fast.reference_speed == 1.0
        assert lqn_calibration_fast.calibration_time_s > 0.0

    def test_parameter_table_layout(self, lqn_calibration_fast):
        table = lqn_calibration_fast.parameter_table()
        assert [row[0] for row in table] == ["browse", "buy"]
        assert all(len(row) == 3 for row in table)

    def test_to_model_parameters(self, lqn_calibration_fast):
        params = lqn_calibration_fast.to_model_parameters()
        assert set(params.request_types) == {"browse", "buy"}
        assert params.reference_speed == 1.0

    def test_saturating_load_is_backed_off(self):
        """Calibrating with a saturating client count must not produce a
        saturated measurement (the load is halved until util <= 0.9)."""
        calibration = calibrate_from_simulator(
            APP_SERV_F,
            request_types=("browse",),
            clients_per_type=4000,  # way past saturation
            duration_s=25.0,
            warmup_s=6.0,
            seed=3,
        )
        crt = calibration.request_types["browse"]
        assert crt.measured_app_utilisation <= 0.9
        assert crt.clients_used < 4000

    def test_unknown_request_type_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate_from_simulator(
                APP_SERV_F,
                request_types=("mystery",),
                clients_per_type=50,
                duration_s=10.0,
                warmup_s=2.0,
            )

    def test_empty_calibration_round_trips(self):
        calibration = LqnCalibration(reference_server="AppServF", reference_speed=1.0)
        assert calibration.parameter_table() == []
