"""TTL-expiry boundary behaviour of the prediction cache, on a fake clock.

Pins the contract ``age > ttl_s`` (strict): an entry *exactly* at its
TTL is still served, one tick past it is recomputed.  Also pins LRU
eviction ordering when distinct raw operands quantize onto the same
grid cell — a refresh of the shared cell must protect it from eviction.
"""

from __future__ import annotations

import threading

from repro.prediction.interface import PredictionTimer
from repro.service.cache import PredictionCache, quantize_key
from repro.service.service import PredictionService, ServiceConfig
from repro.util.clock import FakeClock


class CountingPredictor:
    """Deterministic predictor that counts how often it actually computes."""

    def __init__(self):
        self.name = "counting"
        self.timer = PredictionTimer()
        self.calls = 0
        self._lock = threading.Lock()

    def predict_mrt_ms(self, server, n_clients, *, buy_fraction=0.0):
        with self._lock:
            self.calls += 1
        return 100.0 + float(int(n_clients))

    def predict_throughput(self, server, n_clients, *, buy_fraction=0.0):
        with self._lock:
            self.calls += 1
        return float(int(n_clients)) * 0.1

    def max_clients(self, server, rt_goal_ms, *, buy_fraction=0.0):
        with self._lock:
            self.calls += 1
        return 900


class TestTtlBoundary:
    def test_entry_exactly_at_ttl_is_still_a_hit(self):
        clock = FakeClock()
        cache = PredictionCache(max_entries=8, ttl_s=10.0, clock=clock.monotonic_s)
        key = quantize_key("S", "mrt", 500, 0.0)
        cache.put(key, 1.5)
        clock.advance(10.0)  # age == ttl: the contract is strictly >
        hit, value = cache.get(key)
        assert (hit, value) == (True, 1.5)
        assert cache.stats().expirations == 0

    def test_entry_just_past_ttl_expires_and_counts(self):
        clock = FakeClock()
        cache = PredictionCache(max_entries=8, ttl_s=10.0, clock=clock.monotonic_s)
        key = quantize_key("S", "mrt", 500, 0.0)
        cache.put(key, 1.5)
        clock.advance(10.0 + 1e-9)
        hit, value = cache.get(key)
        assert (hit, value) == (False, None)
        stats = cache.stats()
        assert stats.expirations == 1 and stats.misses == 1
        assert len(cache) == 0  # the expired entry was dropped, not kept

    def test_put_refreshes_the_stored_at_time(self):
        clock = FakeClock()
        cache = PredictionCache(max_entries=8, ttl_s=10.0, clock=clock.monotonic_s)
        key = quantize_key("S", "mrt", 500, 0.0)
        cache.put(key, 1.0)
        clock.advance(8.0)
        cache.put(key, 2.0)  # re-put restarts the TTL window
        clock.advance(8.0)  # 16 s after the first put, 8 s after the second
        hit, value = cache.get(key)
        assert (hit, value) == (True, 2.0)


class TestEvictionOrderingUnderQuantizedKeys:
    def test_quantized_aliases_share_one_entry_and_its_lru_slot(self):
        clock = FakeClock()
        cache = PredictionCache(max_entries=2, ttl_s=None, clock=clock.monotonic_s)
        # 500.2 and 499.9 land on the same grid cell; 600 and 700 differ.
        shared_a = quantize_key("S", "mrt", 500.2, 0.0)
        shared_b = quantize_key("S", "mrt", 499.9, 0.0)
        assert shared_a == shared_b
        other = quantize_key("S", "mrt", 600, 0.0)
        third = quantize_key("S", "mrt", 700, 0.0)

        cache.put(shared_a, 1.0)
        cache.put(other, 2.0)
        # Touch the shared cell through its alias: now `other` is the LRU.
        assert cache.get(shared_b) == (True, 1.0)
        cache.put(third, 3.0)  # capacity 2: must evict `other`, not the cell
        assert cache.get(shared_a) == (True, 1.0)
        assert cache.get(other) == (False, None)
        assert cache.stats().evictions == 1

    def test_expired_entry_frees_its_slot_for_new_cells(self):
        clock = FakeClock()
        cache = PredictionCache(max_entries=2, ttl_s=5.0, clock=clock.monotonic_s)
        k1 = quantize_key("S", "mrt", 100, 0.0)
        k2 = quantize_key("S", "mrt", 200, 0.0)
        cache.put(k1, 1.0)
        clock.advance(6.0)
        cache.put(k2, 2.0)
        assert cache.get(k1) == (False, None)  # expired on access
        cache.put(quantize_key("S", "mrt", 300, 0.0), 3.0)
        # k1's expiry already freed a slot, so k2 was never evicted.
        assert cache.get(k2) == (True, 2.0)
        assert cache.stats().evictions == 0


class TestServiceClockWiring:
    def test_service_ttl_runs_on_the_injected_clock(self):
        clock = FakeClock()
        predictor = CountingPredictor()
        with PredictionService(
            predictor,
            config=ServiceConfig(max_workers=1, cache_ttl_s=30.0),
            clock=clock,
        ) as service:
            assert service.predict_mrt_ms("S", 500) == 600.0
            clock.advance(30.0)  # exactly at TTL: still served from cache
            assert service.predict_mrt_ms("S", 500) == 600.0
            assert predictor.calls == 1
            clock.advance(0.001)  # now past it: recomputed
            assert service.predict_mrt_ms("S", 500) == 600.0
            assert predictor.calls == 2
            assert service.export_metrics()["cache.expirations"] == 1.0
