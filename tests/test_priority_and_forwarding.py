"""Tests for the remaining section-8.1/§5 system-model variations:
priority thread queuing (simulator) and forwarding calls (LQN)."""

import pytest

from repro.lqn.model import Call, CallKind, Entry, LqnModel, Processor, Scheduling, Task
from repro.lqn.solver import LqnSolver
from repro.servers.catalogue import APP_SERV_S
from repro.simulation.engine import Simulator
from repro.simulation.resources import ThreadPool
from repro.simulation.system import SimulationConfig, simulate_deployment
from repro.workload.trade import browse_class


class TestPriorityThreadPool:
    def test_default_priorities_are_fifo(self):
        sim = Simulator()
        pool = ThreadPool(sim, "t", capacity=1)
        order = []
        pool.acquire(lambda: order.append("holder"))
        pool.acquire(lambda: order.append("first"))
        pool.acquire(lambda: order.append("second"))
        pool.release()
        pool.release()
        assert order == ["holder", "first", "second"]

    def test_urgent_waiter_jumps_queue(self):
        sim = Simulator()
        pool = ThreadPool(sim, "t", capacity=1)
        order = []
        pool.acquire(lambda: order.append("holder"))
        pool.acquire(lambda: order.append("normal"), priority=1)
        pool.acquire(lambda: order.append("urgent"), priority=0)
        pool.release()
        pool.release()
        assert order == ["holder", "urgent", "normal"]

    def test_fifo_within_priority_level(self):
        sim = Simulator()
        pool = ThreadPool(sim, "t", capacity=1)
        order = []
        pool.acquire(lambda: order.append("holder"))
        pool.acquire(lambda: order.append("a"), priority=2)
        pool.acquire(lambda: order.append("b"), priority=2)
        pool.release()
        pool.release()
        assert order == ["holder", "a", "b"]

    @pytest.mark.slow
    def test_priority_class_sees_lower_response_at_saturation(self):
        """With a saturated server, the high-priority class's requests wait
        less in the thread queue than the low-priority class's."""
        hi = browse_class(name="hi", priority=0)
        lo = browse_class(name="lo", priority=1)
        config = SimulationConfig(duration_s=40.0, warmup_s=10.0, seed=13)
        result = simulate_deployment(APP_SERV_S, {hi: 500, lo: 500}, config)
        assert result.per_class_mean_ms["hi"] < result.per_class_mean_ms["lo"] * 0.8


def forwarding_model(kind: CallKind) -> LqnModel:
    """clients -> frontend -> (kind) backend, with a single-thread frontend
    so the frontend's holding time is the binding constraint."""
    model = LqnModel()
    model.add_processor(Processor(name="cl", scheduling=Scheduling.DELAY))
    model.add_processor(Processor(name="front_cpu"))
    model.add_processor(Processor(name="back_cpu"))
    model.add_task(
        Task(
            name="backend",
            processor="back_cpu",
            entries=(Entry("back_work", demand_ms=8.0),),
            multiplicity=100,
        )
    )
    model.add_task(
        Task(
            name="frontend",
            processor="front_cpu",
            entries=(
                Entry("front_work", demand_ms=2.0, calls=(Call("back_work", 1.0, kind=kind),)),
            ),
            multiplicity=1,  # a single worker: holding time gates throughput
        )
    )
    model.add_task(
        Task(
            name="clients",
            processor="cl",
            entries=(Entry("cycle", 0.0, calls=(Call("front_work", 1.0),)),),
            multiplicity=12,
            is_reference=True,
            think_time_ms=200.0,
        )
    )
    model.validate()
    return model


class TestForwardingCalls:
    def test_forwarded_work_stays_on_response_path(self):
        solver = LqnSolver()
        forwarded = solver.solve(forwarding_model(CallKind.FORWARDING))
        asynchronous = solver.solve(forwarding_model(CallKind.ASYNCHRONOUS))
        # Forwarding keeps the backend's 8ms on the client's response; the
        # async variant does not.
        assert forwarded.response_ms["clients"] > asynchronous.response_ms["clients"] + 5.0

    def test_forwarding_releases_the_callers_thread(self):
        solver = LqnSolver()
        synchronous = solver.solve(forwarding_model(CallKind.SYNCHRONOUS))
        forwarded = solver.solve(forwarding_model(CallKind.FORWARDING))
        # The single frontend thread holds 32ms per request when blocking
        # synchronously but only ~2ms when forwarding, so the forwarding
        # system sustains a much lower response under the same load: the
        # thread-queue wait collapses.
        assert forwarded.response_ms["clients"] < synchronous.response_ms["clients"] * 0.75

    def test_forwarding_loads_backend_like_sync(self):
        solver = LqnSolver()
        synchronous = solver.solve(forwarding_model(CallKind.SYNCHRONOUS))
        forwarded = solver.solve(forwarding_model(CallKind.FORWARDING))
        assert forwarded.processor_utilisation["back_cpu"] == pytest.approx(
            synchronous.processor_utilisation["back_cpu"], rel=0.5
        )

    def test_serialization_round_trips_forwarding(self):
        from repro.lqn.serialization import model_from_dict, model_to_dict

        model = forwarding_model(CallKind.FORWARDING)
        rebuilt = model_from_dict(model_to_dict(model))
        call = rebuilt.entry("front_work").calls[0]
        assert call.kind is CallKind.FORWARDING
