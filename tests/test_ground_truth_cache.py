"""Tests for the memoised ground-truth measurement layer."""

import os

import pytest

from repro.experiments import ground_truth as gt


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the disk cache at a temp dir and clear the memory cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    gt.clear_memory_cache()
    yield tmp_path
    gt.clear_memory_cache()


class TestMeasuredPointCache:
    def test_memoised_in_process(self, isolated_cache):
        a = gt.measured_point("AppServF", 60, fast=True)
        b = gt.measured_point("AppServF", 60, fast=True)
        assert a is b  # same object: memory cache hit

    def test_disk_cache_survives_memory_clear(self, isolated_cache):
        a = gt.measured_point("AppServF", 60, fast=True)
        files_before = list((isolated_cache / ".repro-cache").glob("*.pkl"))
        assert files_before
        gt.clear_memory_cache()
        b = gt.measured_point("AppServF", 60, fast=True)
        assert a is not b
        assert b.mean_response_ms == a.mean_response_ms  # loaded from disk

    def test_different_parameters_different_entries(self, isolated_cache):
        a = gt.measured_point("AppServF", 60, fast=True)
        b = gt.measured_point("AppServF", 80, fast=True)
        assert a is not b

    def test_disk_cache_disabled_by_env(self, isolated_cache, monkeypatch):
        monkeypatch.setenv("REPRO_NO_DISK_CACHE", "1")
        gt.measured_point("AppServF", 60, fast=True)
        assert not (isolated_cache / ".repro-cache").exists()

    def test_seed_offset_changes_run(self, isolated_cache):
        a = gt.measured_point("AppServF", 60, fast=True)
        b = gt.measured_point("AppServF", 60, fast=True, seed_offset=5)
        assert a.mean_response_ms != b.mean_response_ms


class TestDerivedCaches:
    def test_benchmarked_max_throughput_cached_and_sane(self, isolated_cache):
        first = gt.benchmarked_max_throughput("AppServF", fast=True)
        second = gt.benchmarked_max_throughput("AppServF", fast=True)
        assert first == second
        assert first == pytest.approx(186.0, rel=0.08)

    def test_mix_observations_ordered(self, isolated_cache):
        observations = gt.lqn_mix_observations(fast=True)
        assert [b for b, _ in observations] == [0.0, 0.25]
        assert observations[1][1] < observations[0][1]
