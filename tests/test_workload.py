"""Unit tests for the synthesized Trade workload."""

import numpy as np
import pytest

from repro.util.errors import ValidationError
from repro.util.rng import spawn_rng
from repro.workload.operations import TRADE_OPERATIONS, Operation, operation
from repro.workload.service_class import OperationMix, ScriptedSession, ServiceClass
from repro.workload.trade import (
    BROWSE_CLASS,
    BUY_CLASS,
    BUY_SESSION_LENGTH,
    browse_class,
    buy_class,
    mixed_workload,
    typical_workload,
)


class TestOperations:
    def test_lookup_known_operation(self):
        assert operation("quote").name == "quote"

    def test_lookup_unknown_raises_with_candidates(self):
        with pytest.raises(KeyError, match="quote"):
            operation("nonexistent")

    def test_all_operations_have_valid_request_types(self):
        assert {op.request_type for op in TRADE_OPERATIONS.values()} == {"browse", "buy"}

    def test_db_totals(self):
        buy = operation("buy")
        assert buy.db_cpu_total_ms == pytest.approx(buy.db_calls * buy.db_cpu_per_call_ms)
        assert buy.db_disk_total_ms == pytest.approx(buy.db_calls * buy.db_disk_per_call_ms)

    def test_invalid_request_type_rejected(self):
        with pytest.raises(ValidationError):
            Operation("bad", "unknown", 1.0, 1.0, 1.0, 1.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValidationError):
            Operation("bad", "browse", -1.0, 1.0, 1.0, 1.0)


class TestCalibrationTargets:
    """The class aggregates encode the paper's published numbers."""

    def test_browse_app_demand_gives_186_req_s_on_f(self):
        # 1000 / 5.376 = 186.01 req/s — the paper's AppServF max throughput.
        assert BROWSE_CLASS.mean_app_demand_ms() == pytest.approx(5.376, abs=1e-9)

    def test_browse_db_calls_match_paper(self):
        assert BROWSE_CLASS.mean_db_calls() == pytest.approx(1.14, abs=1e-9)

    def test_buy_db_calls_match_paper(self):
        assert BUY_CLASS.mean_db_calls() == pytest.approx(2.0, abs=1e-9)

    def test_buy_browse_cpu_ratio_matches_table2(self):
        ratio = BUY_CLASS.mean_app_demand_ms() / BROWSE_CLASS.mean_app_demand_ms()
        assert ratio == pytest.approx(8.761 / 4.505, rel=0.01)

    def test_buy_db_cpu_per_call_matches_table2(self):
        assert BUY_CLASS.mean_db_cpu_per_call_ms() == pytest.approx(1.613, abs=0.01)

    def test_browse_db_cpu_per_call_matches_table2(self):
        assert BROWSE_CLASS.mean_db_cpu_per_call_ms() == pytest.approx(0.8294, abs=1e-6)


class TestOperationMix:
    def test_probabilities_must_sum_to_one(self):
        ops = (operation("quote"), operation("home"))
        with pytest.raises(ValidationError):
            OperationMix(operations=ops, probabilities=(0.5, 0.4))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            OperationMix(operations=(operation("quote"),), probabilities=(0.5, 0.5))

    def test_next_operation_respects_probabilities(self):
        mix = OperationMix(
            operations=(operation("quote"), operation("home")),
            probabilities=(0.8, 0.2),
        )
        rng = spawn_rng(3, "mix")
        draws = [mix.next_operation(rng, i).name for i in range(5000)]
        assert np.mean([d == "quote" for d in draws]) == pytest.approx(0.8, abs=0.02)

    def test_weighted_means(self):
        mix = OperationMix(
            operations=(operation("quote"), operation("portfolio")),
            probabilities=(0.5, 0.5),
        )
        expected = 0.5 * operation("quote").app_demand_ms + 0.5 * operation("portfolio").app_demand_ms
        assert mix.mean_app_demand_ms() == pytest.approx(expected)


class TestScriptedSession:
    def test_session_length(self):
        assert BUY_CLASS.behaviour.session_length == BUY_SESSION_LENGTH == 12

    def test_script_order(self):
        session = BUY_CLASS.behaviour
        assert session.operation_at(0).name == "register_login"
        for i in range(1, 11):
            assert session.operation_at(i).name == "buy"
        assert session.operation_at(11).name == "logoff"

    def test_script_wraps_around(self):
        session = BUY_CLASS.behaviour
        assert session.operation_at(12).name == "register_login"

    def test_next_operation_ignores_rng(self):
        session = BUY_CLASS.behaviour
        rng = spawn_rng(3, "script")
        assert session.next_operation(rng, 1).name == "buy"

    def test_empty_session_rejected(self):
        with pytest.raises(ValidationError):
            ScriptedSession(prologue=(), body=(), body_repeats=0, epilogue=())

    def test_mean_app_demand_averages_script(self):
        session = BUY_CLASS.behaviour
        ops = [session.operation_at(i) for i in range(12)]
        expected = sum(op.app_demand_ms for op in ops) / 12
        assert session.mean_app_demand_ms() == pytest.approx(expected)


class TestServiceClass:
    def test_think_time_default_seven_seconds(self):
        assert BROWSE_CLASS.think_time_ms == 7000.0

    def test_with_goal_copies(self):
        constrained = BROWSE_CLASS.with_goal(300.0, name="browse_hi")
        assert constrained.rt_goal_ms == 300.0
        assert constrained.name == "browse_hi"
        assert BROWSE_CLASS.rt_goal_ms is None

    def test_request_type_fractions_browse_pure(self):
        assert BROWSE_CLASS.request_type_fractions() == {"browse": pytest.approx(1.0)}

    def test_request_type_fractions_buy_pure(self):
        assert BUY_CLASS.request_type_fractions() == {"buy": pytest.approx(1.0)}

    def test_total_demand_is_sum_of_tiers(self):
        expected = (
            BROWSE_CLASS.mean_app_demand_ms()
            + BROWSE_CLASS.mean_db_calls()
            * (
                BROWSE_CLASS.mean_db_cpu_per_call_ms()
                + BROWSE_CLASS.mean_db_disk_per_call_ms()
            )
        )
        assert BROWSE_CLASS.mean_total_demand_ms() == pytest.approx(expected)


class TestWorkloadBuilders:
    def test_typical_workload_is_all_browse(self):
        workload = typical_workload(100)
        assert workload == {BROWSE_CLASS: 100}

    def test_mixed_workload_split(self):
        workload = mixed_workload(100, 0.25)
        assert workload[BUY_CLASS] == 25
        assert workload[BROWSE_CLASS] == 75

    def test_mixed_workload_zero_buy_collapses(self):
        workload = mixed_workload(100, 0.0)
        assert BUY_CLASS not in workload

    def test_mixed_workload_all_buy(self):
        workload = mixed_workload(100, 1.0)
        assert BROWSE_CLASS not in workload
        assert workload[BUY_CLASS] == 100

    def test_mixed_workload_zero_clients(self):
        assert mixed_workload(0, 0.5) == {BROWSE_CLASS: 0}

    def test_custom_think_time(self):
        cls = browse_class(think_time_s=3.0)
        assert cls.think_time_ms == 3000.0

    def test_custom_buys_per_session(self):
        cls = buy_class(buys_per_session=5)
        assert cls.behaviour.session_length == 7
