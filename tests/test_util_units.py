"""Unit tests for repro.util.units."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.errors import ValidationError
from repro.util.units import (
    MS_PER_S,
    ms_to_s,
    per_ms_to_per_s,
    per_s_to_per_ms,
    s_to_ms,
    throughput_req_per_s,
)


def test_constants():
    assert MS_PER_S == 1000.0


def test_seconds_round_trip():
    assert ms_to_s(s_to_ms(7.0)) == pytest.approx(7.0)


def test_s_to_ms_value():
    assert s_to_ms(7.0) == 7000.0


def test_rate_round_trip():
    assert per_ms_to_per_s(per_s_to_per_ms(186.0)) == pytest.approx(186.0)


def test_rate_conversion_direction():
    # 186 requests per second is 0.186 requests per millisecond.
    assert per_s_to_per_ms(186.0) == pytest.approx(0.186)


class TestThroughput:
    def test_basic(self):
        # 100 completions over 2 seconds => 50 req/s
        assert throughput_req_per_s(100, 2000.0) == pytest.approx(50.0)

    def test_zero_duration_gives_zero(self):
        assert throughput_req_per_s(10, 0.0) == 0.0

    def test_zero_completions(self):
        assert throughput_req_per_s(0, 1000.0) == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValidationError):
            throughput_req_per_s(10, -1.0)

    def test_negative_completions_rejected(self):
        with pytest.raises(ValidationError):
            throughput_req_per_s(-1, 1000.0)


@given(st.floats(min_value=1e-6, max_value=1e6))
def test_time_conversions_are_inverse(x):
    assert ms_to_s(s_to_ms(x)) == pytest.approx(x, rel=1e-12)


@given(
    st.integers(min_value=0, max_value=10**9),
    st.floats(min_value=1.0, max_value=1e9),
)
def test_throughput_non_negative(completions, duration):
    assert throughput_req_per_s(completions, duration) >= 0.0
