"""Unit tests for repro.faults: plans, triggers, injector verbs, scoping."""

import pytest

from repro.faults import (
    INJECTOR,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    inject,
)
from repro.util.clock import FakeClock
from repro.util.errors import ConvergenceError, ValidationError


def _plan(*specs, seed=0, **kwargs):
    return FaultPlan(name="t", specs=tuple(specs), seed=seed, **kwargs)


# -- FaultSpec / FaultPlan validation -----------------------------------------


def test_spec_defaults_name_from_site_and_kind():
    spec = FaultSpec(site="lqn.solve", kind=FaultKind.ERROR)
    assert spec.name == "lqn.solve:error"


def test_spec_rejects_empty_site_and_bad_triggers():
    with pytest.raises(ValidationError):
        FaultSpec(site="", kind=FaultKind.ERROR)
    with pytest.raises(ValidationError):
        FaultSpec(site="s", kind=FaultKind.LATENCY)  # needs delay_s > 0
    with pytest.raises(ValidationError):
        FaultSpec(site="s", kind=FaultKind.CORRUPT)  # needs corrupt callable
    with pytest.raises(ValidationError):
        FaultSpec(site="s", kind=FaultKind.ERROR, every_nth=0)
    with pytest.raises(ValidationError):
        FaultSpec(site="s", kind=FaultKind.ERROR, on_calls=(0,))
    with pytest.raises(ValidationError):
        FaultSpec(site="s", kind=FaultKind.ERROR, call_window=(0, 5))
    with pytest.raises(ValidationError):
        FaultSpec(site="s", kind=FaultKind.ERROR, probability=1.5)
    with pytest.raises(ValidationError):
        FaultSpec(site="s", kind=FaultKind.ERROR, time_window=(2.0, 1.0))


def test_plan_rejects_duplicate_spec_names_and_empty_specs():
    spec = FaultSpec(site="s", kind=FaultKind.ERROR)
    with pytest.raises(ValidationError):
        _plan(spec, spec)
    with pytest.raises(ValidationError):
        FaultPlan(name="t", specs=())


def test_plan_indexes_by_site_and_describes_itself():
    a = FaultSpec(site="a", kind=FaultKind.ERROR, name="x")
    b = FaultSpec(site="b", kind=FaultKind.TRIP, name="y", every_nth=2)
    plan = _plan(a, b, seed=7)
    assert plan.for_site("a") == (a,)
    assert plan.for_site("nowhere") == ()
    assert plan.sites() == ["a", "b"]
    described = plan.describe()
    assert described["seed"] == 7
    assert [s["name"] for s in described["specs"]] == ["x", "y"]


# -- trigger semantics --------------------------------------------------------


def _fires(injector, site, n):
    """Consult ``site`` ``n`` times; return the boolean fire pattern."""
    pattern = []
    for _ in range(n):
        try:
            injector.fire(site)
            pattern.append(False)
        except Exception:
            pattern.append(True)
    return pattern


def test_unconditional_spec_fires_every_call():
    injector = FaultInjector()
    with inject(_plan(FaultSpec(site="s", kind=FaultKind.ERROR)), injector=injector):
        assert _fires(injector, "s", 3) == [True, True, True]


def test_every_nth_and_on_calls_and_call_window():
    injector = FaultInjector()
    plan = _plan(
        FaultSpec(site="nth", kind=FaultKind.ERROR, every_nth=3),
        FaultSpec(site="exact", kind=FaultKind.ERROR, on_calls=(2, 5)),
        FaultSpec(site="window", kind=FaultKind.ERROR, call_window=(3, 4)),
        FaultSpec(site="open", kind=FaultKind.ERROR, call_window=(4, None)),
    )
    with inject(plan, injector=injector):
        assert _fires(injector, "nth", 6) == [False, False, True, False, False, True]
        assert _fires(injector, "exact", 6) == [False, True, False, False, True, False]
        assert _fires(injector, "window", 6) == [False, False, True, True, False, False]
        assert _fires(injector, "open", 6) == [False, False, False, True, True, True]


def test_time_window_follows_the_injected_clock():
    clock = FakeClock()
    injector = FaultInjector()
    plan = _plan(
        FaultSpec(site="s", kind=FaultKind.ERROR, time_window=(1.0, 2.0))
    )
    with inject(plan, injector=injector, clock=clock):
        assert _fires(injector, "s", 1) == [False]  # t=0
        clock.advance(1.0)
        assert _fires(injector, "s", 1) == [True]  # t=1 (inclusive start)
        clock.advance(1.0)
        assert _fires(injector, "s", 1) == [False]  # t=2 (exclusive end)


def test_probability_trigger_is_deterministic_per_seed():
    def pattern(seed):
        injector = FaultInjector()
        plan = _plan(
            FaultSpec(site="s", kind=FaultKind.ERROR, probability=0.5), seed=seed
        )
        with inject(plan, injector=injector):
            return _fires(injector, "s", 32)

    first = pattern(11)
    assert pattern(11) == first  # same seed: same schedule
    assert pattern(12) != first  # different seed: different schedule
    assert any(first) and not all(first)  # p=0.5 actually mixes


def test_conjunctive_trigger_ands_all_conditions():
    injector = FaultInjector()
    plan = _plan(
        FaultSpec(site="s", kind=FaultKind.ERROR, every_nth=2, call_window=(3, 6))
    )
    with inject(plan, injector=injector):
        # every 2nd call AND inside calls 3..6 -> calls 4 and 6 only.
        assert _fires(injector, "s", 8) == [
            False, False, False, True, False, True, False, False,
        ]


# -- injector verbs -----------------------------------------------------------


def test_fire_raises_configured_error_type_with_spec_name():
    injector = FaultInjector()
    plan = _plan(
        FaultSpec(
            site="s", kind=FaultKind.ERROR, error=ConvergenceError, message="boom"
        )
    )
    with inject(plan, injector=injector):
        with pytest.raises(ConvergenceError, match=r"boom \[s:error\]"):
            injector.fire("s")


def test_fire_default_error_is_injected_fault_error():
    injector = FaultInjector()
    with inject(_plan(FaultSpec(site="s", kind=FaultKind.ERROR)), injector=injector):
        with pytest.raises(InjectedFaultError):
            injector.fire("s")


def test_fire_applies_latency_before_error_via_injected_sleep():
    clock = FakeClock()
    injector = FaultInjector()
    plan = _plan(
        FaultSpec(site="s", kind=FaultKind.LATENCY, name="slow", delay_s=2.5),
        FaultSpec(site="s", kind=FaultKind.ERROR, name="dead"),
    )
    with inject(plan, injector=injector, clock=clock, sleep=clock.advance):
        with pytest.raises(InjectedFaultError):
            injector.fire("s")
        assert clock.monotonic_s() == pytest.approx(2.5)  # slept, then raised


def test_fire_advances_every_error_spec_counter():
    """Like trips(), fire() consults every ERROR spec on every call, so a
    later spec's schedule never depends on an earlier spec's outcome."""
    injector = FaultInjector()
    plan = _plan(
        FaultSpec(site="s", kind=FaultKind.ERROR, name="first", on_calls=(1,)),
        FaultSpec(site="s", kind=FaultKind.ERROR, name="second", every_nth=2),
    )
    with inject(plan, injector=injector):
        # Call 1: "first" fires (and wins); "second" still counts it.
        # Call 2: "second"'s own 2nd consultation -> fires.  Call 4: again.
        assert _fires(injector, "s", 4) == [True, True, False, True]
        assert injector.injected_counts() == {"first": 1, "second": 2}


def test_fire_first_firing_error_spec_wins():
    injector = FaultInjector()
    plan = _plan(
        FaultSpec(site="s", kind=FaultKind.ERROR, name="a", error=ConvergenceError),
        FaultSpec(site="s", kind=FaultKind.ERROR, name="b"),
    )
    with inject(plan, injector=injector):
        with pytest.raises(ConvergenceError):  # "a" raises, not "b"
            injector.fire("s")
        # Both triggers fired (injected counts are consultations that
        # passed, as for TRIP specs), but only the first raised.
        assert injector.injected_counts() == {"a": 1, "b": 1}


def test_trips_and_filter_verbs():
    injector = FaultInjector()
    plan = _plan(
        FaultSpec(site="t", kind=FaultKind.TRIP, every_nth=2),
        FaultSpec(site="c", kind=FaultKind.CORRUPT, corrupt=lambda v: v * 10),
    )
    with inject(plan, injector=injector):
        assert [injector.trips("t") for _ in range(4)] == [False, True, False, True]
        assert injector.filter("c", 7) == 70
        assert injector.filter("elsewhere", 7) == 7


def test_corrupt_chain_applies_in_spec_order():
    injector = FaultInjector()
    plan = _plan(
        FaultSpec(site="c", kind=FaultKind.CORRUPT, name="a", corrupt=lambda v: v + 1),
        FaultSpec(site="c", kind=FaultKind.CORRUPT, name="b", corrupt=lambda v: v * 2),
    )
    with inject(plan, injector=injector):
        assert injector.filter("c", 3) == 8  # (3 + 1) * 2


# -- arming lifecycle ---------------------------------------------------------


def test_disarmed_injector_is_inert():
    injector = FaultInjector()
    assert not injector.armed
    injector.fire("anything")  # no-op
    assert not injector.trips("anything")
    assert injector.filter("anything", 42) == 42
    assert injector.plan is None
    assert injector.injected_counts() == {}
    assert injector.disarm() == {}


def test_disarm_reports_injection_counts():
    injector = FaultInjector()
    plan = _plan(FaultSpec(site="s", kind=FaultKind.ERROR, name="x", every_nth=2))
    injector.arm(plan)
    _fires(injector, "s", 5)
    assert injector.injected_counts() == {"x": 2}
    assert injector.disarm() == {"x": 2}
    assert not injector.armed


def test_rearming_resets_counters():
    injector = FaultInjector()
    plan = _plan(FaultSpec(site="s", kind=FaultKind.ERROR, name="x", on_calls=(1,)))
    injector.arm(plan)
    assert _fires(injector, "s", 2) == [True, False]
    injector.arm(plan)  # fresh session: call counters restart
    assert _fires(injector, "s", 2) == [True, False]
    injector.disarm()


def test_inject_context_manager_disarms_on_error():
    injector = FaultInjector()
    plan = _plan(FaultSpec(site="s", kind=FaultKind.ERROR))
    with pytest.raises(RuntimeError):
        with inject(plan, injector=injector):
            raise RuntimeError("escaping the block")
    assert not injector.armed


def test_global_injector_is_disarmed_by_default():
    assert not INJECTOR.armed


# -- the wired injection sites ------------------------------------------------


def test_lqn_solver_site_fires():
    from repro.lqn.builder import (
        RequestTypeParameters,
        TradeModelParameters,
        build_trade_model,
    )
    from repro.lqn.solver import LqnSolver
    from repro.servers.catalogue import APP_SERV_F
    from repro.workload.trade import typical_workload

    params = TradeModelParameters(
        request_types={
            "browse": RequestTypeParameters(
                name="browse",
                app_demand_ms=5.4,
                db_calls=1.1,
                db_cpu_per_call_ms=0.8,
                db_disk_per_call_ms=1.2,
            )
        }
    )
    model = build_trade_model(APP_SERV_F, typical_workload(50), params)
    solver = LqnSolver()
    plan = _plan(
        FaultSpec(site="lqn.solve", kind=FaultKind.ERROR, error=ConvergenceError)
    )
    with inject(plan):
        with pytest.raises(ConvergenceError):
            solver.solve(model)
    solver.solve(model)  # disarmed again: solves normally


def test_cache_sites_force_expiry_and_corrupt_values():
    from repro.service.cache import PredictionCache, quantize_key

    cache = PredictionCache()
    key = quantize_key("srv", "mrt", 100.0, 0.0)
    cache.put(key, 5.0)

    with inject(_plan(FaultSpec(site="service.cache.expire", kind=FaultKind.TRIP))):
        hit, _ = cache.get(key)
    assert not hit  # present entry forcibly expired
    assert cache.stats().expirations == 1

    cache.put(key, 5.0)
    plan = _plan(
        FaultSpec(
            site="service.cache.value", kind=FaultKind.CORRUPT, corrupt=lambda v: -v
        )
    )
    with inject(plan):
        hit, value = cache.get(key)
    assert hit and value == -5.0
    hit, value = cache.get(key)
    assert hit and value == 5.0  # stored entry itself was never mutated


def test_cache_expire_trip_is_consulted_on_would_be_hits_only():
    from repro.service.cache import PredictionCache, quantize_key

    cache = PredictionCache()
    key = quantize_key("srv", "mrt", 100.0, 0.0)
    spec = FaultSpec(site="service.cache.expire", kind=FaultKind.TRIP, name="exp")
    with inject(_plan(spec)) as injector:
        hit, _ = cache.get(key)  # plain miss: nothing to forcibly expire
        assert not hit
        assert injector.injected_counts() == {"exp": 0}
        cache.put(key, 5.0)
        hit, _ = cache.get(key)  # would-be hit: the trip fires and drops it
        assert not hit
        assert injector.injected_counts() == {"exp": 1}
        hit, _ = cache.get(key)  # the dropped entry is a plain miss again
        assert not hit
        assert injector.injected_counts() == {"exp": 1}
    stats = cache.stats()
    # The injected count matches entries actually forcibly expired.
    assert stats.expirations == 1 and stats.misses == 3 and stats.hits == 0


def test_admission_site_forces_rejection():
    from repro.service.admission import AdmissionController

    controller = AdmissionController()
    with inject(_plan(FaultSpec(site="service.admission", kind=FaultKind.TRIP))):
        assert not controller.try_enter()
    assert controller.rejected_total == 1
    assert controller.try_enter()  # disarmed: admits again
    controller.exit()


def test_pool_site_raises_through_the_future():
    from repro.service.pool import CoalescingPool

    with CoalescingPool(max_workers=1) as pool:
        with inject(_plan(FaultSpec(site="service.pool", kind=FaultKind.ERROR))):
            future = pool.submit("k", lambda: 42)
            with pytest.raises(InjectedFaultError):
                future.result(timeout=5)
        assert pool.submit("k2", lambda: 42).result(timeout=5) == 42
