"""Tests for relationship 1: lower/upper/transition equations."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.historical.datastore import HistoricalDataPoint
from repro.historical.relationships import (
    LowerEquation,
    PiecewiseResponseModel,
    TransitionRelationship,
    UpperEquation,
)
from repro.util.errors import CalibrationError


def point(server, n, mrt, tput=100.0, n_samples=50):
    return HistoricalDataPoint(
        server=server,
        n_clients=n,
        mean_response_ms=mrt,
        throughput_req_per_s=tput,
        n_samples=n_samples,
    )


class TestLowerEquation:
    def test_predict(self):
        eq = LowerEquation(c_l=10.0, lambda_l=0.001)
        assert eq.predict_ms(0) == pytest.approx(10.0)
        assert eq.predict_ms(1000) == pytest.approx(10.0 * math.e)

    def test_invert_is_inverse(self):
        eq = LowerEquation(c_l=10.0, lambda_l=0.002)
        assert eq.invert(eq.predict_ms(750.0)) == pytest.approx(750.0)

    def test_invert_flat_equation(self):
        eq = LowerEquation(c_l=10.0, lambda_l=0.0)
        assert eq.invert(20.0) == math.inf
        assert eq.invert(5.0) == 0.0

    def test_fit_from_two_points(self):
        eq = LowerEquation.fit([point("s", 100, 12.0), point("s", 500, 30.0)])
        assert eq.predict_ms(100) == pytest.approx(12.0, rel=1e-9)
        assert eq.predict_ms(500) == pytest.approx(30.0, rel=1e-9)

    def test_fit_needs_two_points(self):
        with pytest.raises(CalibrationError):
            LowerEquation.fit([point("s", 100, 12.0)])

    @settings(max_examples=25)
    @given(
        c=st.floats(min_value=1.0, max_value=500.0),
        lam=st.floats(min_value=1e-5, max_value=5e-3),
        mrt=st.floats(min_value=1.0, max_value=1e5),
    )
    def test_invert_round_trip_property(self, c, lam, mrt):
        eq = LowerEquation(c_l=c, lambda_l=lam)
        n = eq.invert(mrt)
        assert eq.predict_ms(n) == pytest.approx(mrt, rel=1e-6)


class TestUpperEquation:
    def test_predict_linear(self):
        eq = UpperEquation(lambda_u=5.0, c_u=-6000.0)
        assert eq.predict_ms(1400) == pytest.approx(1000.0)

    def test_invert(self):
        eq = UpperEquation(lambda_u=5.0, c_u=-6000.0)
        assert eq.invert(1000.0) == pytest.approx(1400.0)

    def test_fit_exact(self):
        eq = UpperEquation.fit([point("s", 1500, 500.0), point("s", 2000, 3000.0)])
        assert eq.predict_ms(1500) == pytest.approx(500.0)
        assert eq.predict_ms(2000) == pytest.approx(3000.0)

    def test_fit_needs_two_points(self):
        with pytest.raises(CalibrationError):
            UpperEquation.fit([point("s", 1500, 500.0)])


class TestTransition:
    def test_through_anchors(self):
        tr = TransitionRelationship.through(660.0, 30.0, 1100.0, 500.0)
        assert tr.predict_ms(660.0) == pytest.approx(30.0)
        assert tr.predict_ms(1100.0) == pytest.approx(500.0)

    def test_monotone_between_anchors(self):
        tr = TransitionRelationship.through(660.0, 30.0, 1100.0, 500.0)
        values = [tr.predict_ms(n) for n in range(660, 1101, 10)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_invert(self):
        tr = TransitionRelationship.through(660.0, 30.0, 1100.0, 500.0)
        assert tr.invert(tr.predict_ms(900.0)) == pytest.approx(900.0)

    def test_reversed_anchors_rejected(self):
        with pytest.raises(Exception):
            TransitionRelationship.through(1100.0, 30.0, 660.0, 500.0)


class TestPiecewiseModel:
    @pytest.fixture
    def model(self):
        lower = LowerEquation(c_l=10.0, lambda_l=0.001)
        upper = UpperEquation(lambda_u=5.0, c_u=-6000.0)
        return PiecewiseResponseModel.assemble("s", lower, upper, n_at_max=1300.0)

    def test_lower_region_uses_lower_equation(self, model):
        n = 400.0  # below 0.66 * 1300 = 858
        assert model.predict_ms(n) == pytest.approx(model.lower.predict_ms(n))

    def test_upper_region_uses_upper_equation(self, model):
        n = 2000.0  # above 1.1 * 1300 = 1430
        assert model.predict_ms(n) == pytest.approx(model.upper.predict_ms(n))

    def test_transition_region_uses_transition(self, model):
        n = 1000.0
        assert model.predict_ms(n) == pytest.approx(model.transition.predict_ms(n))

    def test_continuity_at_boundaries(self, model):
        n1, n2 = model.transition.n_start, model.transition.n_end
        assert model.predict_ms(n1 - 1e-9) == pytest.approx(model.predict_ms(n1 + 1e-9), rel=1e-3)
        assert model.predict_ms(n2 - 1e-9) == pytest.approx(model.predict_ms(n2 + 1e-9), rel=1e-3)

    def test_monotone_over_full_range(self, model):
        values = [model.predict_ms(float(n)) for n in range(0, 3000, 25)]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_max_clients_inverse_of_predict(self, model):
        for goal in (15.0, 100.0, 2000.0):
            capacity = model.max_clients(goal)
            assert model.predict_ms(capacity) <= goal * 1.001
            assert model.predict_ms(capacity + 2) >= goal * 0.98

    def test_max_clients_zero_when_unreachable(self, model):
        assert model.max_clients(1.0) == 0

    def test_degenerate_transition_falls_back(self):
        # An upper equation below the lower equation at the anchors would
        # produce a decreasing transition; assemble() must keep it sane.
        lower = LowerEquation(c_l=100.0, lambda_l=0.002)
        upper = UpperEquation(lambda_u=0.001, c_u=0.0)
        model = PiecewiseResponseModel.assemble("s", lower, upper, n_at_max=1000.0)
        assert model.transition.predict_ms(800.0) > 0.0

    @settings(max_examples=25, deadline=None)
    @given(goal=st.floats(min_value=11.0, max_value=1e4))
    def test_max_clients_never_violates_goal(self, goal):
        model = PiecewiseResponseModel.assemble(
            "s",
            LowerEquation(c_l=10.0, lambda_l=0.001),
            UpperEquation(lambda_u=5.0, c_u=-6000.0),
            n_at_max=1300.0,
        )
        capacity = model.max_clients(goal)
        if capacity > 0:
            assert model.predict_ms(capacity) <= goal * 1.01
