"""Property tests for the consistent-hash ring (repro.service.shard.ring).

Two quantitative properties carry the sharded design:

* **Uniformity** — routed key counts must pass a chi-square bound
  against the ring's exact arc-share expectations (a valid multinomial
  null: keys hash uniformly into the 64-bit space and each shard owns
  ``shares()`` of it), and those shares must sit near the ideal ``1/N``
  within the classic ``O(1/sqrt(vnodes))`` virtual-node bound.  A
  companion test shows the balance bound *fails* with one token per
  shard, so it is known to have teeth.
* **Resharding stability** — adding or removing one shard remaps at
  most about ``1/N`` of the key space (the new/removed shard's share
  plus binomial slack), and every moved key moves to/from exactly that
  shard.  This is *the* reason the router consistent-hashes instead of
  ``hash(key) % N``, where nearly everything remaps.

Hypothesis runs are derandomized so CI is deterministic; keys are
realistic ``ring_key`` strings built from quantized cache keys — the
exact objects the router hashes in production.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.cache import quantize_key
from repro.service.shard.ring import (
    ConsistentHashRing,
    NoShardAvailableError,
    ring_key,
)

#: Chi-square critical values at alpha=0.001 by degrees of freedom.
CHI2_CRIT_001 = {1: 10.83, 2: 13.82, 3: 16.27, 7: 24.32, 8: 26.12, 9: 27.88}

#: Virtual-node balance bound: each shard's hash-space share must sit
#: within ``BALANCE_SIGMA / sqrt(vnodes)`` (relative) of the ideal 1/N.
#: A shard's share is a sum of ``vnodes`` near-exponential arc lengths,
#: so its relative deviation is ~1/sqrt(vnodes); 4 sigma of slack keeps
#: the bound deterministic-safe while vnodes=1 (relative deviation ~1)
#: still violates it — demonstrated below.
BALANCE_SIGMA = 4.0


def _keys(count: int) -> list[str]:
    """``count`` realistic ring keys over distinct quantized cells."""
    out = []
    for i in range(count):
        key = quantize_key(
            f"server{i % 5}", "mrt" if i % 3 else "throughput", float(i), 0.0
        )
        out.append(ring_key(key))
    return out


@settings(max_examples=20, deadline=None, derandomize=True)
@given(
    n_shards=st.sampled_from([2, 3, 4, 8]),
    n_keys=st.integers(min_value=2000, max_value=4000),
)
def test_routed_keys_match_arc_shares(n_shards: int, n_keys: int) -> None:
    """Chi-square of routed counts against the ring's exact share null."""
    shards = tuple(f"s{i}" for i in range(n_shards))
    ring = ConsistentHashRing(shards, vnodes=64)
    shares = ring.shares()
    assert abs(sum(shares.values()) - 1.0) < 1e-9
    counts = {shard: 0 for shard in shards}
    for key in _keys(n_keys):
        counts[ring.route(key)] += 1
    chi2 = sum(
        (counts[shard] - n_keys * shares[shard]) ** 2 / (n_keys * shares[shard])
        for shard in shards
    )
    assert chi2 < CHI2_CRIT_001[n_shards - 1], (
        f"chi2={chi2:.1f} over {counts} vs shares {shares} exceeds the bound"
    )


@settings(max_examples=20, deadline=None, derandomize=True)
@given(n_shards=st.sampled_from([2, 4, 8, 16]))
def test_vnode_shares_are_balanced(n_shards: int) -> None:
    """Every share is within the O(1/sqrt(vnodes)) band around 1/N."""
    vnodes = 64
    shards = tuple(f"s{i}" for i in range(n_shards))
    shares = ConsistentHashRing(shards, vnodes=vnodes).shares()
    ideal = 1.0 / n_shards
    band = BALANCE_SIGMA / math.sqrt(vnodes)
    for shard, share in shares.items():
        assert abs(share - ideal) <= ideal * band, (
            f"{shard} owns {share:.4f}, ideal {ideal:.4f} ± {ideal * band:.4f}"
        )


def test_balance_bound_has_teeth_without_vnodes() -> None:
    """With vnodes=1 the same band is violated — imbalance is detected."""
    shards = tuple(f"s{i}" for i in range(8))
    shares = ConsistentHashRing(shards, vnodes=1).shares()
    ideal = 1.0 / len(shards)
    band = BALANCE_SIGMA / math.sqrt(64)
    assert any(abs(share - ideal) > ideal * band for share in shares.values())


@settings(max_examples=20, deadline=None, derandomize=True)
@given(n_shards=st.integers(min_value=2, max_value=9))
def test_adding_one_shard_remaps_at_most_its_share(n_shards: int) -> None:
    """Growing N → N+1 moves ≤ the new shard's share (+ slack), all to it."""
    shards = tuple(f"s{i}" for i in range(n_shards))
    before = ConsistentHashRing(shards, vnodes=64)
    after = ConsistentHashRing(shards + ("snew",), vnodes=64)
    keys = _keys(3000)
    moved = 0
    for key in keys:
        old, new = before.route(key), after.route(key)
        if old != new:
            moved += 1
            # Consistency: a key may only move TO the new shard.
            assert new == "snew", f"{key!r} moved {old}->{new}, not to the new shard"
    # The moved fraction is a binomial sample of the new shard's exact
    # arc share, which itself sits within the vnode balance band of
    # 1/(N+1) — so the remap stays at the "1/N + epsilon" the sharding
    # story promises.
    share = after.shares()["snew"]
    assert share <= (1.0 / (n_shards + 1)) * (1.0 + BALANCE_SIGMA / 8.0)
    slack = 4.0 * math.sqrt(share * (1.0 - share) / len(keys))
    assert moved / len(keys) <= share + slack


@settings(max_examples=20, deadline=None, derandomize=True)
@given(n_shards=st.integers(min_value=2, max_value=9))
def test_removing_one_shard_remaps_only_its_keys(n_shards: int) -> None:
    """Shrinking N+1 → N moves exactly the removed shard's keys, nowhere else."""
    shards = tuple(f"s{i}" for i in range(n_shards + 1))
    before = ConsistentHashRing(shards, vnodes=64)
    after = ConsistentHashRing(shards, vnodes=64)
    after.remove(shards[0])
    for key in _keys(3000):
        old, new = before.route(key), after.route(key)
        if old != shards[0]:
            assert new == old, f"{key!r} moved {old}->{new} though {shards[0]} left"


def test_skip_reroutes_to_successor_and_back() -> None:
    """Skipping a shard moves only its keys; unskipping restores them."""
    ring = ConsistentHashRing(("a", "b", "c"), vnodes=64)
    keys = _keys(600)
    owner = {key: ring.route(key) for key in keys}
    skipped = frozenset({"b"})
    for key in keys:
        rerouted = ring.route(key, skip=skipped)
        if owner[key] == "b":
            assert rerouted in ("a", "c")
        else:
            assert rerouted == owner[key]
    for key in keys:  # recovery: original ownership restored exactly
        assert ring.route(key) == owner[key]


def test_all_shards_skipped_raises() -> None:
    """An empty effective ring is an explicit error, not a hang."""
    ring = ConsistentHashRing(("a", "b"), vnodes=8)
    with pytest.raises(NoShardAvailableError):
        ring.route("anykey", skip=frozenset({"a", "b"}))


def test_route_is_deterministic_across_instances() -> None:
    """Two independently built rings agree on every key (blake2b, not hash())."""
    first = ConsistentHashRing(("a", "b", "c", "d"), vnodes=64)
    second = ConsistentHashRing(("d", "c", "b", "a"), vnodes=64)
    for key in _keys(500):
        assert first.route(key) == second.route(key)


def test_preference_lists_distinct_live_shards() -> None:
    """preference(key, n) yields n distinct shards starting at the owner."""
    ring = ConsistentHashRing(("a", "b", "c", "d"), vnodes=32)
    for key in _keys(100):
        prefs = ring.preference(key, 3)
        assert len(prefs) == 3
        assert len(set(prefs)) == 3
        assert prefs[0] == ring.route(key)
