"""Tests for trace generation, CSV persistence and simulator replay."""

import pytest

from repro.servers.catalogue import APP_SERV_F, DB_SERVER
from repro.simulation.appserver import AppServerSim
from repro.simulation.database import DatabaseServerSim
from repro.simulation.engine import Simulator
from repro.simulation.metrics import MetricsCollector
from repro.util.errors import ValidationError
from repro.util.rng import RngStreams
from repro.workload.generators import (
    TraceEntry,
    TraceReplaySource,
    generate_trace,
    load_trace_csv,
    save_trace_csv,
)
from repro.workload.trade import browse_class, buy_class


class TestGenerateTrace:
    def test_rate_approximately_honoured(self):
        trace = generate_trace(browse_class(), 100.0, 30.0, seed=1)
        assert len(trace) == pytest.approx(3000, rel=0.1)

    def test_arrivals_sorted_and_within_duration(self):
        trace = generate_trace(browse_class(), 50.0, 10.0, seed=1)
        times = [e.arrival_ms for e in trace]
        assert times == sorted(times)
        assert all(0.0 <= t < 10_000.0 for t in times)

    def test_operations_come_from_the_class(self):
        trace = generate_trace(browse_class(), 50.0, 10.0, seed=1)
        names = {e.operation for e in trace}
        assert "quote" in names
        assert "buy" not in names

    def test_scripted_class_follows_per_client_script(self):
        trace = generate_trace(buy_class(), 50.0, 30.0, seed=1, n_clients=5)
        first_by_client = {}
        for entry in trace:
            first_by_client.setdefault(entry.client_id, entry.operation)
        # Every client's first scripted request is register_login.
        assert set(first_by_client.values()) == {"register_login"}

    def test_deterministic_by_seed(self):
        a = generate_trace(browse_class(), 50.0, 5.0, seed=3)
        b = generate_trace(browse_class(), 50.0, 5.0, seed=3)
        assert a == b

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValidationError):
            TraceEntry(arrival_ms=-1.0, operation="quote", client_id="x")


class TestTraceCsv:
    def test_round_trip(self, tmp_path):
        trace = generate_trace(browse_class(), 80.0, 5.0, seed=2)
        path = save_trace_csv(trace, tmp_path / "trace.csv")
        assert load_trace_csv(path) == trace

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError):
            load_trace_csv(tmp_path / "nope.csv")

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y\n")
        with pytest.raises(ValidationError, match="header"):
            load_trace_csv(path)

    def test_unknown_operation_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("arrival_ms,operation,client_id\n1.0,teleport,c\n")
        with pytest.raises(KeyError):
            load_trace_csv(path)

    def test_unsorted_arrivals_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "arrival_ms,operation,client_id\n5.0,quote,c\n1.0,quote,c\n"
        )
        with pytest.raises(ValidationError, match="non-decreasing"):
            load_trace_csv(path)


class TestTraceReplay:
    def _replay(self, trace, run_until_ms):
        sim = Simulator()
        streams = RngStreams(5)
        db = DatabaseServerSim(sim, DB_SERVER)
        server = AppServerSim(sim, APP_SERV_F, db, streams.get("svc"))
        metrics = MetricsCollector()
        metrics.start_measuring(0.0)
        source = TraceReplaySource(sim, trace, server, metrics)
        source.start()
        sim.run_until(run_until_ms)
        return source, metrics

    def test_every_entry_injected(self):
        trace = generate_trace(browse_class(), 60.0, 10.0, seed=4)
        source, metrics = self._replay(trace, 20_000.0)
        assert source.injected == len(trace)
        assert metrics.for_class("trace").count == len(trace)

    def test_replay_throughput_matches_trace_rate(self):
        trace = generate_trace(browse_class(), 120.0, 30.0, seed=4)
        _, metrics = self._replay(trace, 40_000.0)
        metrics.stop_measuring(30_000.0)
        assert metrics.throughput_req_per_s("trace") == pytest.approx(120.0, rel=0.1)

    def test_replay_response_times_sane(self):
        trace = generate_trace(browse_class(), 60.0, 10.0, seed=4)
        _, metrics = self._replay(trace, 20_000.0)
        # Light load, no network: responses near the raw demand (~8ms).
        assert 5.0 < metrics.for_class("trace").mean < 25.0

    def test_saved_trace_replays_identically(self, tmp_path):
        trace = generate_trace(browse_class(), 60.0, 5.0, seed=4)
        reloaded = load_trace_csv(save_trace_csv(trace, tmp_path / "t.csv"))
        a, _ = self._replay(trace, 10_000.0)
        b, _ = self._replay(reloaded, 10_000.0)
        assert a.injected == b.injected
