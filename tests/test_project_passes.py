"""The three whole-program passes against their known-bad specimens."""

from pathlib import Path

from repro.analysis.project import ProjectAnalyzer, ProjectConfig, analyze_project

FIXTURES = Path(__file__).parent / "analysis_fixtures"


def findings_for(package: str, config: ProjectConfig | None = None):
    return ProjectAnalyzer(config).analyze_paths([FIXTURES / package])


class TestDeadlockPass:
    def test_ab_ba_cycle_reported_with_both_locks(self):
        found = [
            f
            for f in findings_for("project_deadlock")
            if "lock-order cycle" in f.message
        ]
        assert len(found) == 1
        finding = found[0]
        assert finding.rule_id == "REPRO-DEADLOCK001"
        assert "ab.Left._lock" in finding.message
        assert "ab.Right._lock" in finding.message

    def test_cycle_message_contains_witnessing_call_chain(self):
        (finding,) = [
            f
            for f in findings_for("project_deadlock")
            if "lock-order cycle" in f.message
        ]
        assert finding.witness
        # The dynamic-dispatch leg of the cycle is spelled out in full.
        assert "ab.Right.backward -> ab.Right._delegate -> ab.Left.forward" in (
            finding.message
        )

    def test_helper_reacquisition_of_plain_lock_is_self_deadlock(self):
        found = [
            f
            for f in findings_for("project_deadlock")
            if "self_deadlock.Counter._lock" in f.message
        ]
        assert len(found) == 1
        assert "self-deadlock" in found[0].message
        assert found[0].witness == (
            "self_deadlock.Counter.bump",
            "self_deadlock.Counter._audit",
        )


class TestBlockingPass:
    def test_probe_slot_leak_pattern_fully_flagged(self):
        """The synthetic replay of the breaker probe-slot leak: injector
        consultation, pool submit and future join all under the lock."""
        found = [
            f
            for f in findings_for("project_blocking")
            if f.symbol == "probe_leak.LeakyBreaker.allow"
        ]
        descs = sorted(f.message.split("'")[1] for f in found)
        assert descs == [
            "fut.result",
            "probe_leak.FaultInjector.fire",
            "self._pool.submit",
        ]
        assert all("LeakyBreaker._lock" in f.message for f in found)

    def test_interprocedural_sleep_carries_witness_chain(self):
        (finding,) = [
            f
            for f in findings_for("project_blocking")
            if f.symbol == "probe_leak.Throttler.tick"
        ]
        assert "time.sleep" in finding.message
        assert finding.witness == (
            "probe_leak.Throttler.tick",
            "probe_leak.Throttler._backoff",
        )
        assert "probe_leak.Throttler.tick -> probe_leak.Throttler._backoff" in (
            finding.message
        )


class TestEntropyPass:
    def test_time_reaches_writer_through_helper(self):
        found = [
            f
            for f in findings_for("project_entropy")
            if f.symbol == "writer.publish"
        ]
        assert len(found) == 1
        assert "time.time" in found[0].message
        assert found[0].witness == ("writer.publish", "writer.stamp")

    def test_set_order_reaches_json_dump(self):
        found = [
            f
            for f in findings_for("project_entropy")
            if f.symbol == "writer.leaky_order"
        ]
        assert len(found) == 2
        assert any("open(mode='w')" in f.message for f in found)
        assert any("'json.dump'" in f.message for f in found)
        assert all("hash order" in f.message for f in found)

    def test_entropy_neutral_module_suppresses_the_flow(self):
        config = ProjectConfig(entropy_neutral_modules=("writer",))
        assert findings_for("project_entropy", config) == []


class TestCleanAndSelection:
    def test_clean_fixture_produces_zero_findings(self):
        assert findings_for("project_clean") == []

    def test_pass_selection_restricts_rules(self):
        config = ProjectConfig(passes=("deadlock",))
        found = findings_for("project_blocking", config)
        assert found == []

    def test_analyze_project_runs_all_passes_at_once(self):
        found = analyze_project(
            [
                FIXTURES / "project_deadlock",
                FIXTURES / "project_blocking",
                FIXTURES / "project_entropy",
            ]
        )
        assert {f.rule_id for f in found} == {
            "REPRO-DEADLOCK001",
            "REPRO-BLOCK001",
            "REPRO-ENTROPY001",
        }

    def test_witness_extends_the_fingerprint(self):
        (finding,) = [
            f
            for f in findings_for("project_blocking")
            if f.symbol == "probe_leak.Throttler.tick"
        ]
        stripped = type(finding)(
            rule_id=finding.rule_id,
            rule_name=finding.rule_name,
            severity=finding.severity,
            path=finding.path,
            line=finding.line,
            message=finding.message,
            symbol=finding.symbol,
        )
        assert stripped.fingerprint() != finding.fingerprint()
