"""Unit tests for the LQN model definition and validation."""

import pytest

from repro.lqn.model import (
    Call,
    CallKind,
    Entry,
    LqnModel,
    Processor,
    Scheduling,
    Task,
)
from repro.util.errors import ModelError, ValidationError


def two_tier_model() -> LqnModel:
    """client -> app -> db, the minimal paper topology."""
    model = LqnModel()
    model.add_processor(Processor(name="clients_p", scheduling=Scheduling.DELAY))
    model.add_processor(Processor(name="app_cpu"))
    model.add_processor(Processor(name="db_cpu"))
    model.add_task(
        Task(
            name="db",
            processor="db_cpu",
            entries=(Entry(name="db_read", demand_ms=1.0),),
            multiplicity=20,
        )
    )
    model.add_task(
        Task(
            name="app",
            processor="app_cpu",
            entries=(
                Entry(
                    name="serve",
                    demand_ms=5.0,
                    calls=(Call(target_entry="db_read", mean_calls=1.14),),
                ),
            ),
            multiplicity=50,
        )
    )
    model.add_task(
        Task(
            name="clients",
            processor="clients_p",
            entries=(
                Entry(name="cycle", demand_ms=0.0, calls=(Call("serve", 1.0),)),
            ),
            multiplicity=100,
            is_reference=True,
            think_time_ms=7000.0,
        )
    )
    return model


class TestConstruction:
    def test_valid_model_validates(self):
        two_tier_model().validate()

    def test_duplicate_processor_rejected(self):
        model = LqnModel()
        model.add_processor(Processor(name="p"))
        with pytest.raises(ModelError, match="duplicate"):
            model.add_processor(Processor(name="p"))

    def test_duplicate_task_rejected(self):
        model = LqnModel()
        model.add_processor(Processor(name="p"))
        model.add_task(Task(name="t", processor="p", entries=(Entry("e", 1.0),)))
        with pytest.raises(ModelError, match="duplicate"):
            model.add_task(Task(name="t", processor="p", entries=(Entry("e2", 1.0),)))

    def test_duplicate_entry_rejected(self):
        model = LqnModel()
        model.add_processor(Processor(name="p"))
        model.add_task(Task(name="t", processor="p", entries=(Entry("e", 1.0),)))
        with pytest.raises(ModelError, match="duplicate entry"):
            model.add_task(Task(name="t2", processor="p", entries=(Entry("e", 1.0),)))

    def test_entry_calling_same_target_twice_rejected(self):
        with pytest.raises(ModelError, match="twice"):
            Entry(name="e", demand_ms=1.0, calls=(Call("x", 1.0), Call("x", 2.0)))

    def test_task_without_entries_rejected(self):
        with pytest.raises(ValidationError):
            Task(name="t", processor="p", entries=())

    def test_non_reference_task_with_think_time_rejected(self):
        with pytest.raises(ValidationError):
            Task(name="t", processor="p", entries=(Entry("e", 1.0),), think_time_ms=5.0)


class TestValidation:
    def test_unknown_processor_detected(self):
        model = LqnModel()
        model.add_processor(Processor(name="p", scheduling=Scheduling.DELAY))
        model.add_task(
            Task(name="t", processor="missing", entries=(Entry("e", 1.0),), is_reference=True)
        )
        with pytest.raises(ModelError, match="unknown processor"):
            model.validate()

    def test_dangling_call_detected(self):
        model = two_tier_model()
        model.tasks["app"] = Task(
            name="app",
            processor="app_cpu",
            entries=(Entry(name="serve", demand_ms=5.0, calls=(Call("nowhere", 1.0),)),),
        )
        with pytest.raises(ModelError, match="unknown entry"):
            model.validate()

    def test_no_reference_task_detected(self):
        model = LqnModel()
        model.add_processor(Processor(name="p"))
        model.add_task(Task(name="t", processor="p", entries=(Entry("e", 1.0),)))
        with pytest.raises(ModelError, match="reference"):
            model.validate()

    def test_call_to_reference_task_rejected(self):
        model = two_tier_model()
        model.tasks["db"] = Task(
            name="db",
            processor="db_cpu",
            entries=(Entry(name="db_read", demand_ms=1.0, calls=(Call("cycle", 1.0),)),),
        )
        with pytest.raises(ModelError, match="reference task"):
            model.validate()

    def test_cycle_detected(self):
        model = LqnModel()
        model.add_processor(Processor(name="cl", scheduling=Scheduling.DELAY))
        model.add_processor(Processor(name="p"))
        model.add_task(
            Task(
                name="a",
                processor="p",
                entries=(Entry("ea", 1.0, calls=(Call("eb", 1.0),)),),
            )
        )
        model.add_task(
            Task(
                name="b",
                processor="p",
                entries=(Entry("eb", 1.0, calls=(Call("ea", 1.0),)),),
            )
        )
        model.add_task(
            Task(
                name="c",
                processor="cl",
                entries=(Entry("ec", 0.0, calls=(Call("ea", 1.0),)),),
                is_reference=True,
            )
        )
        with pytest.raises(ModelError, match="cycle"):
            model.validate()

    def test_self_call_rejected(self):
        model = LqnModel()
        model.add_processor(Processor(name="cl", scheduling=Scheduling.DELAY))
        model.add_processor(Processor(name="p"))
        model.add_task(
            Task(
                name="a",
                processor="p",
                entries=(
                    Entry("e1", 1.0, calls=(Call("e2", 1.0),)),
                    Entry("e2", 1.0),
                ),
            )
        )
        model.add_task(
            Task(
                name="c",
                processor="cl",
                entries=(Entry("ec", 0.0, calls=(Call("e1", 1.0),)),),
                is_reference=True,
            )
        )
        with pytest.raises(ModelError, match="own task"):
            model.validate()

    def test_unreachable_task_detected(self):
        model = two_tier_model()
        model.add_task(
            Task(name="orphan", processor="db_cpu", entries=(Entry("oe", 1.0),))
        )
        with pytest.raises(ModelError, match="unreachable"):
            model.task_layers()


class TestLayers:
    def test_layering_orders_by_call_depth(self):
        layers = two_tier_model().task_layers()
        names = [[t.name for t in layer] for layer in layers]
        assert names == [["clients"], ["app"], ["db"]]

    def test_lookups(self):
        model = two_tier_model()
        assert model.entry("db_read").demand_ms == 1.0
        assert model.entry_owner("serve").name == "app"
        assert model.entry_owner("missing") is None
        with pytest.raises(ModelError):
            model.entry("missing")

    def test_reference_and_server_partition(self):
        model = two_tier_model()
        assert [t.name for t in model.reference_tasks()] == ["clients"]
        assert sorted(t.name for t in model.server_tasks()) == ["app", "db"]
