"""Quality gate: every public item in the library carries documentation.

The deliverables require doc comments on every public item; this meta-test
walks the installed package and enforces it, so documentation debt fails CI
instead of accumulating.
"""

import importlib
import inspect
import pkgutil

import repro


def _public_members(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    for name in names:
        obj = vars(module).get(name)
        if obj is None:
            continue
        # Only enforce on things defined inside this package.
        defined_in = getattr(obj, "__module__", None)
        if defined_in is None or not str(defined_in).startswith("repro"):
            continue
        yield name, obj


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in _walk_modules() if not (m.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_documented():
    missing: list[str] = []
    for module in _walk_modules():
        for name, obj in _public_members(module):
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (inspect.getdoc(obj) or "").strip():
                    missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {sorted(set(missing))}"


def test_every_public_method_documented():
    missing: list[str] = []
    for module in _walk_modules():
        for name, obj in _public_members(module):
            if not inspect.isclass(obj):
                continue
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                unwrapped = method
                if isinstance(method, (classmethod, staticmethod)):
                    unwrapped = method.__func__
                if isinstance(method, property):
                    unwrapped = method.fget
                if not inspect.isfunction(unwrapped):
                    continue
                if unwrapped.__module__ and not unwrapped.__module__.startswith("repro"):
                    continue
                if not (inspect.getdoc(unwrapped) or "").strip():
                    missing.append(f"{module.__name__}.{name}.{method_name}")
    assert not missing, f"undocumented public methods: {sorted(set(missing))}"
