"""Tests for mergeable metrics snapshots (repro.service.metrics).

The satellite these tests pin down: percentile export must not drift
between a merged snapshot and a single registry that saw the union of
observations.  Percentiles do not average — merging per-shard p99s is
wrong by construction — so the snapshots merge raw bucket counts and
recompute quantiles through the one shared estimator
(:func:`~repro.service.metrics.bucket_quantile`).  The key assertions
here are *exact equality*, not approximate closeness: merged must equal
union bucket-for-bucket and quantile-for-quantile.
"""

from __future__ import annotations

import pytest

from repro.service.metrics import (
    LatencyHistogram,
    MetricsRegistry,
    MetricsSnapshot,
    bucket_quantile,
    merge_snapshots,
)
from repro.util.rng import spawn_rng


def _populated_registry(name: str, samples) -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("requests").inc(len(samples))
    registry.counter(f"only.{name}").inc(3)
    registry.gauge("pending").set(float(len(samples) % 7))
    histogram = registry.histogram("latency")
    for sample in samples:
        histogram.observe(sample)
    return registry


def _samples(stream: str, count: int) -> list[float]:
    rng = spawn_rng(2004, stream)
    # Latencies spanning µs to seconds — many distinct buckets.
    return [float(10.0 ** (rng.uniform(-6.0, 0.5))) for _ in range(count)]


def test_merged_quantiles_equal_union_registry_exactly() -> None:
    """merge(shards).quantile == union-registry.quantile, exactly."""
    per_shard = [_samples(f"shard{i}", 400 + 50 * i) for i in range(4)]
    shards = [_populated_registry(f"s{i}", s) for i, s in enumerate(per_shard)]
    union = _populated_registry("union", [x for s in per_shard for x in s])

    merged = merge_snapshots(shard.snapshot() for shard in shards)
    union_hist = union.snapshot().histograms["latency"]
    merged_hist = merged.histograms["latency"]

    assert merged_hist.counts == union_hist.counts  # bucket-for-bucket
    assert merged_hist.count == union_hist.count
    assert merged_hist.max_s == union_hist.max_s
    for q in (0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999):
        assert merged_hist.quantile(q) == union_hist.quantile(q), f"q={q} drifted"
    assert merged_hist.mean_s == pytest.approx(union_hist.mean_s, rel=1e-12)


def test_merge_is_associative_and_identity_safe() -> None:
    """(a+b)+c == a+(b+c); merging one snapshot is that snapshot."""
    a, b, c = (
        _populated_registry(n, _samples(n, 200)).snapshot() for n in ("a", "b", "c")
    )
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert left.counters == right.counters
    assert left.gauges == right.gauges
    for name in left.histograms:
        assert left.histograms[name].counts == right.histograms[name].counts
        assert left.histograms[name].quantile(0.99) == right.histograms[
            name
        ].quantile(0.99)
    only = merge_snapshots([a])
    assert only.counters == a.counters
    assert only.histograms["latency"].counts == a.histograms["latency"].counts
    empty = merge_snapshots([])
    assert empty.counters == {} and empty.histograms == {}


def test_counters_sum_and_disjoint_keys_survive() -> None:
    """Counters add; keys present in only one snapshot are preserved."""
    a = _populated_registry("a", _samples("a2", 10)).snapshot()
    b = _populated_registry("b", _samples("b2", 20)).snapshot()
    merged = a.merge(b)
    assert merged.counters["requests"] == 30
    assert merged.counters["only.a"] == 3 and merged.counters["only.b"] == 3
    assert merged.gauges["pending"] == a.gauges["pending"] + b.gauges["pending"]


def test_snapshot_export_matches_live_registry_export() -> None:
    """registry.export() and registry.snapshot().export() are identical."""
    registry = _populated_registry("x", _samples("x", 300))
    assert registry.export() == registry.snapshot().export()


def test_jsonable_roundtrip_preserves_quantiles() -> None:
    """to_jsonable/from_jsonable is lossless (the worker-IPC path)."""
    snapshot = _populated_registry("w", _samples("w", 250)).snapshot()
    restored = MetricsSnapshot.from_jsonable(snapshot.to_jsonable())
    assert restored.counters == snapshot.counters
    assert restored.gauges == snapshot.gauges
    for name, histogram in snapshot.histograms.items():
        other = restored.histograms[name]
        assert other.counts == histogram.counts
        assert other.quantile(0.95) == histogram.quantile(0.95)


def test_merge_rejects_mismatched_bucket_bounds() -> None:
    """Histograms with different bounds cannot be merged silently."""
    first = LatencyHistogram((0.1, 1.0)).snapshot()
    second = LatencyHistogram((0.2, 2.0)).snapshot()
    with pytest.raises(Exception):
        first.merge(second)


def test_bucket_quantile_interpolates_and_handles_overflow() -> None:
    """The shared estimator: interpolation in-bucket, max_s for overflow."""
    bounds = (1.0, 2.0, 4.0)
    # 10 observations in (1,2], none elsewhere; overflow bucket empty.
    counts = (0, 10, 0, 0)
    assert bucket_quantile(bounds, counts, 10, 2.0, 0.0) == pytest.approx(1.0)
    assert bucket_quantile(bounds, counts, 10, 2.0, 1.0) == pytest.approx(2.0)
    mid = bucket_quantile(bounds, counts, 10, 2.0, 0.5)
    assert 1.0 < mid < 2.0
    # All mass in the overflow bucket: the observed max is the answer.
    overflow = (0, 0, 0, 5)
    assert bucket_quantile(bounds, overflow, 5, 7.5, 0.99) == 7.5
