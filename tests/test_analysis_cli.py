"""Exit-code contract of the ``python -m repro.analysis`` gate."""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main

FIXTURES = Path(__file__).parent / "analysis_fixtures"


class TestExitCodes:
    def test_findings_exit_one(self, capsys):
        assert main([str(FIXTURES)]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "REPRO-LOCK001" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("def f(x):\n    return x\n")
        assert main([str(tmp_path)]) == EXIT_CLEAN
        assert "clean" in capsys.readouterr().out

    def test_baseline_suppression_exits_zero(self, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        assert (
            main([str(FIXTURES), "--baseline", str(baseline), "--write-baseline"])
            == EXIT_CLEAN
        )
        capsys.readouterr()
        assert main([str(FIXTURES), "--baseline", str(baseline)]) == EXIT_CLEAN
        assert "suppressed by baseline" in capsys.readouterr().out

    def test_missing_path_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["no/such/dir"])
        assert exc.value.code == EXIT_USAGE

    def test_unknown_rule_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main([str(FIXTURES), "--rule", "no-such-rule"])
        assert exc.value.code == EXIT_USAGE

    def test_unreadable_baseline_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main([str(FIXTURES), "--baseline", str(tmp_path / "absent.json")])
        assert exc.value.code == EXIT_USAGE

    def test_write_baseline_requires_baseline_path(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main([str(FIXTURES), "--write-baseline"])
        assert exc.value.code == EXIT_USAGE


class TestSelectionAndFormats:
    def test_rule_selection_by_name(self, capsys):
        assert main([str(FIXTURES), "--rule", "float-equality"]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "REPRO-FLT001" in out
        assert "REPRO-LOCK001" not in out

    def test_rule_selection_by_id(self, capsys):
        assert main([str(FIXTURES), "--rule", "REPRO-MUT001"]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "REPRO-MUT001" in out
        assert "REPRO-RNG001" not in out

    def test_json_format_parses(self, capsys):
        assert main([str(FIXTURES), "--format", "json"]) == EXIT_FINDINGS
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "repro.analysis"
        assert doc["new"] == len(doc["findings"]) > 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in (
            "REPRO-LOCK001",
            "REPRO-RNG001",
            "REPRO-FLT001",
            "REPRO-MUT001",
            "REPRO-API001",
        ):
            assert rule_id in out


class TestRepoGate:
    def test_src_is_clean_without_any_baseline(self, capsys):
        """ISSUE acceptance: the shipped source carries zero findings."""
        repo = Path(__file__).parent.parent
        assert main([str(repo / "src")]) == EXIT_CLEAN
