"""Per-rule behaviour of the repro.analysis code linter.

Each rule is driven with inline positive and negative snippets through
:meth:`AnalysisEngine.analyze_source`, plus the committed fixture files
under ``tests/analysis_fixtures/`` (whose expected findings double as
the committed baseline's contents).
"""

from pathlib import Path
from textwrap import dedent

from repro.analysis import AnalysisEngine, Severity
from repro.analysis.rules.base import resolve_rules

FIXTURES = Path(__file__).parent / "analysis_fixtures"


def findings_for(rule_name: str, source: str, path: str = "src/repro/module.py"):
    engine = AnalysisEngine(resolve_rules([rule_name]))
    return engine.analyze_source(dedent(source), path)


class TestLockDiscipline:
    def test_pr1_race_fixture_is_flagged(self):
        """The serving layer's original timer race must be re-flagged."""
        engine = AnalysisEngine(resolve_rules(["lock-discipline"]))
        found = engine.analyze_file(FIXTURES / "racy_timer.py")
        assert [f.rule_id for f in found] == ["REPRO-LOCK001"] * 2
        assert {f.symbol for f in found} == {"RacyTimer.record"}
        assert {f.severity for f in found} == {Severity.ERROR}
        assert any("evaluations" in f.message for f in found)
        assert any("total_time_s" in f.message for f in found)

    def test_locked_twin_is_silent(self):
        engine = AnalysisEngine(resolve_rules(["lock-discipline"]))
        assert engine.analyze_file(FIXTURES / "safe_timer.py") == []

    def test_constructor_writes_are_exempt(self):
        found = findings_for(
            "lock-discipline",
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1
            """,
        )
        assert found == []

    def test_bare_read_of_write_guarded_attr_is_flagged(self):
        found = findings_for(
            "lock-discipline",
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1

                def peek(self):
                    return self.count
            """,
        )
        assert [f.symbol for f in found] == ["C.peek"]
        assert "read here" in found[0].message

    def test_read_only_attr_outside_lock_is_fine(self):
        """Reads of an attr that is only ever *read* under the lock are safe
        (immutable config consulted both inside and outside a section)."""
        found = findings_for(
            "lock-discipline",
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.bounds = (1, 2, 3)
                    self.total = 0

                def observe(self, x):
                    with self._lock:
                        self.total += self.bounds[0] + x

                def describe(self):
                    return len(self.bounds)
            """,
        )
        assert found == []

    def test_nested_function_under_lock_does_not_count_as_guarded(self):
        """A closure defined under the lock runs after release."""
        found = findings_for(
            "lock-discipline",
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.pending = 0

                def submit(self):
                    with self._lock:
                        def later():
                            self.pending += 1
                        return later
            """,
        )
        assert found == []

    def test_write_through_subscript_counts_as_write(self):
        found = findings_for(
            "lock-discipline",
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.cache = {}

                def put(self, k, v):
                    with self._lock:
                        self.cache[k] = v

                def put_unlocked(self, k, v):
                    self.cache[k] = v
            """,
        )
        assert [f.symbol for f in found] == ["C.put_unlocked"]

    def test_unlocked_class_is_out_of_scope(self):
        found = findings_for(
            "lock-discipline",
            """
            class C:
                def __init__(self):
                    self.count = 0

                def bump(self):
                    self.count += 1
            """,
        )
        assert found == []


class TestRngDiscipline:
    def test_stdlib_and_numpy_module_calls_flagged(self):
        engine = AnalysisEngine(resolve_rules(["rng-discipline"]))
        found = engine.analyze_file(FIXTURES / "bare_random.py")
        assert {f.symbol for f in found} == {"random.random", "np.random.exponential"}

    def test_numpy_random_alias_flagged(self):
        found = findings_for(
            "rng-discipline",
            """
            import numpy.random as npr

            def draw():
                return npr.normal()
            """,
        )
        assert [f.symbol for f in found] == ["npr.normal"]

    def test_type_only_import_allowed(self):
        found = findings_for(
            "rng-discipline",
            """
            from numpy.random import Generator

            def use(rng: Generator) -> float:
                return float(rng.random())
            """,
        )
        assert found == []

    def test_from_random_import_flagged(self):
        found = findings_for(
            "rng-discipline",
            "from random import choice\n",
        )
        assert [f.rule_id for f in found] == ["REPRO-RNG001"]

    def test_sanctioned_construction_site_exempt(self):
        found = findings_for(
            "rng-discipline",
            """
            import numpy as np

            def spawn(seed):
                return np.random.default_rng(seed)
            """,
            path="src/repro/util/rng.py",
        )
        assert found == []


class TestFloatEquality:
    def test_fixture_comparisons_flagged(self):
        engine = AnalysisEngine(resolve_rules(["float-equality"]))
        found = engine.analyze_file(FIXTURES / "solver_float_eq.py")
        assert [f.symbol for f in found] == ["==", "!="]

    def test_integer_comparison_not_flagged(self):
        found = findings_for(
            "float-equality",
            "def f(n):\n    return n == 0\n",
            path="src/repro/lqn/solver.py",
        )
        assert found == []

    def test_out_of_scope_module_exempt(self):
        found = findings_for(
            "float-equality",
            "def f(x):\n    return x == 0.0\n",
            path="src/repro/util/tables.py",
        )
        assert found == []

    def test_test_modules_exempt(self):
        found = findings_for(
            "float-equality",
            "def f(x):\n    return x == 0.0\n",
            path="tests/test_lqn_solver.py",
        )
        assert found == []


class TestMutableDefaults:
    def test_fixture_defaults_flagged(self):
        engine = AnalysisEngine(resolve_rules(["mutable-default-args"]))
        found = engine.analyze_file(FIXTURES / "mutable_default.py")
        assert [f.symbol for f in found] == ["accumulate", "tagged"]

    def test_keyword_only_and_lambda_defaults_flagged(self):
        found = findings_for(
            "mutable-default-args",
            """
            def f(*, acc={}):
                return acc

            g = lambda xs=[]: xs
            """,
        )
        assert [f.symbol for f in found] == ["f", "<lambda>"]

    def test_none_sentinel_and_immutables_fine(self):
        found = findings_for(
            "mutable-default-args",
            "def f(a=None, b=(), c=0, d='x'):\n    return a, b, c, d\n",
        )
        assert found == []


class TestPublicApi:
    def test_fixture_drift_both_directions(self):
        engine = AnalysisEngine(resolve_rules(["public-api"]))
        found = engine.analyze_file(FIXTURES / "api_drift.py")
        by_symbol = {f.symbol: f for f in found}
        assert set(by_symbol) == {"ghost", "stray"}
        assert by_symbol["ghost"].severity is Severity.ERROR
        assert by_symbol["stray"].severity is Severity.WARNING

    def test_module_without_all_is_skipped(self):
        found = findings_for(
            "public-api",
            "def public():\n    return 1\n",
        )
        assert found == []

    def test_dynamic_all_stands_down(self):
        found = findings_for(
            "public-api",
            """
            __all__ = [n for n in ('a', 'b')]

            def public():
                return 1
            """,
        )
        assert found == []

    def test_star_import_disables_undefined_export_half(self):
        found = findings_for(
            "public-api",
            """
            from os.path import *

            __all__ = ['join', 'basename']
            """,
        )
        assert found == []

    def test_reexports_count_as_definitions(self):
        found = findings_for(
            "public-api",
            """
            from repro.util.errors import ValidationError

            __all__ = ['ValidationError']
            """,
        )
        assert found == []


class TestTraceDiscipline:
    def test_bare_span_fixture_findings(self):
        engine = AnalysisEngine(resolve_rules(["trace-discipline"]))
        found = engine.analyze_file(FIXTURES / "bare_span.py")
        assert [f.rule_id for f in found] == ["REPRO-TRC001"] * 3
        assert [f.symbol for f in found] == [
            "TRACER.span",
            "span.begin",
            "span.end",
        ]
        assert {f.severity for f in found} == {Severity.ERROR}

    def test_managed_span_fixture_is_silent(self):
        engine = AnalysisEngine(resolve_rules(["trace-discipline"]))
        assert engine.analyze_file(FIXTURES / "managed_span.py") == []

    def test_with_block_span_is_the_sanctioned_idiom(self):
        found = findings_for(
            "trace-discipline",
            """
            from repro.trace import TRACER

            def f(model):
                with TRACER.span("solve") as span:
                    span.set_attribute("ok", True)
                    return model.solve()
            """,
        )
        assert found == []

    def test_stored_span_call_is_flagged(self):
        found = findings_for(
            "trace-discipline",
            """
            from repro.trace import TRACER

            def f():
                handle = TRACER.span("solve")
                return handle
            """,
        )
        assert [f.symbol for f in found] == ["TRACER.span"]

    def test_instance_tracer_attribute_is_flagged(self):
        found = findings_for(
            "trace-discipline",
            """
            class C:
                def f(self):
                    s = self._tracer.span("work")
                    return s
            """,
        )
        assert [f.symbol for f in found] == ["_tracer.span"]

    def test_lifecycle_chained_off_span_call_is_flagged(self):
        found = findings_for(
            "trace-discipline",
            """
            from repro.trace import TRACER

            def f():
                TRACER.span("solve").begin()
            """,
        )
        # The span(...) call is a with-less open AND begin() drives it bare.
        assert {f.symbol for f in found} == {"TRACER.span", "span.begin"}

    def test_regex_match_end_is_not_a_span(self):
        found = findings_for(
            "trace-discipline",
            """
            import re

            def f(text):
                m = re.search(r"x+", text)
                return m.end() if m else -1
            """,
        )
        assert found == []

    def test_tracer_package_is_exempt(self):
        found = findings_for(
            "trace-discipline",
            """
            def close(span):
                span.end()
            """,
            path="src/repro/trace/tracer.py",
        )
        assert found == []


class TestDistDiscipline:
    def test_hidden_entropy_fixture_is_flagged_twice(self):
        """Both defect shapes: rng-less sampler and bare .rvs draw."""
        engine = AnalysisEngine(resolve_rules(["dist-discipline"]))
        found = engine.analyze_file(FIXTURES / "workloads_hidden_entropy.py")
        assert [f.rule_id for f in found] == ["REPRO-DIST001"] * 2
        assert {f.symbol for f in found} == {"sample_think_times", "rvs"}
        assert {f.severity for f in found} == {Severity.ERROR}

    def test_seeded_twin_is_silent(self):
        engine = AnalysisEngine(resolve_rules(["dist-discipline"]))
        assert engine.analyze_file(FIXTURES / "workloads_seeded_sampler.py") == []

    def test_sampler_without_rng_is_flagged(self):
        found = findings_for(
            "dist-discipline",
            """
            def sample(n):
                return [0.0] * n
            """,
            path="src/repro/workloads/dists.py",
        )
        assert [f.symbol for f in found] == ["sample"]

    def test_sampler_method_with_rng_is_silent(self):
        found = findings_for(
            "dist-discipline",
            """
            class Spec:
                def sample(self, rng, n):
                    return rng.exponential(1.0, n)
            """,
            path="src/repro/workloads/dists.py",
        )
        assert found == []

    def test_rvs_with_random_state_is_silent(self):
        found = findings_for(
            "dist-discipline",
            """
            def draw(dist, rng, n):
                return dist.rvs(size=n, random_state=rng)
            """,
            path="src/repro/workloads/fitting.py",
        )
        assert found == []

    def test_out_of_scope_paths_are_exempt(self):
        """The simulator's distribution layer is REPRO-RNG001's beat."""
        found = findings_for(
            "dist-discipline",
            """
            def sample(self):
                return self._draw()
            """,
            path="src/repro/simulation/distributions.py",
        )
        assert found == []
