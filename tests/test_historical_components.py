"""Tests for the historical method's supporting components: data store,
throughput relationship, relationship 2 (scaling) and relationship 3 (mix)."""

import math

import pytest

from repro.historical.datastore import HistoricalDataPoint, HistoricalDataStore
from repro.historical.mix import BuyMixModel
from repro.historical.relationships import LowerEquation, UpperEquation
from repro.historical.scaling import MaxThroughputScaling, ServerCalibration
from repro.historical.throughput import ThroughputModel, gradient_from_think_time
from repro.util.errors import CalibrationError, ValidationError


def dp(server, n, mrt, tput, buy=0.0):
    return HistoricalDataPoint(
        server=server,
        n_clients=n,
        mean_response_ms=mrt,
        throughput_req_per_s=tput,
        n_samples=50,
        buy_fraction=buy,
    )


class TestDataStore:
    def test_add_and_query(self):
        store = HistoricalDataStore()
        store.add(dp("F", 100, 12.0, 14.0))
        store.add(dp("F", 500, 20.0, 70.0))
        store.add(dp("VF", 100, 9.0, 14.0))
        assert len(store) == 3
        assert store.servers() == ["F", "VF"]
        assert [p.n_clients for p in store.for_server("F")] == [100, 500]

    def test_query_sorted_by_clients(self):
        store = HistoricalDataStore()
        store.add(dp("F", 500, 20.0, 70.0))
        store.add(dp("F", 100, 12.0, 14.0))
        assert [p.n_clients for p in store.for_server("F")] == [100, 500]

    def test_mix_filtering(self):
        store = HistoricalDataStore()
        store.add(dp("F", 100, 12.0, 14.0, buy=0.0))
        store.add(dp("F", 100, 15.0, 13.0, buy=0.25))
        assert len(store.for_server("F", buy_fraction=0.0)) == 1
        assert len(store.for_server("F", buy_fraction=0.25)) == 1
        assert len(store.for_server("F", buy_fraction=None)) == 2

    def test_range_filtering(self):
        store = HistoricalDataStore()
        for n in (100, 500, 900):
            store.add(dp("F", n, 10.0, 14.0))
        assert len(store.for_server("F", min_clients=200, max_clients=800)) == 1

    def test_invalid_point_rejected(self):
        with pytest.raises(ValidationError):
            HistoricalDataPoint("F", 10, -1.0, 10.0, 50)

    def test_subsample_from_simulation(self, tiny_config):
        from repro.servers.catalogue import APP_SERV_F
        from repro.simulation.system import simulate_deployment
        from repro.workload.trade import typical_workload

        result = simulate_deployment(APP_SERV_F, typical_workload(150), tiny_config)
        store = HistoricalDataStore()
        point_full = store.add_from_simulation("F", 150, result)
        point_sub = store.add_from_simulation("F", 150, result, n_samples=20, seed=1)
        assert point_full.n_samples == result.samples
        assert point_sub.n_samples == 20
        # Sub-sampled mean is near but (almost surely) not equal to the full mean.
        assert point_sub.mean_response_ms == pytest.approx(
            point_full.mean_response_ms, rel=0.5
        )

    def test_subsample_deterministic_per_seed(self, tiny_config):
        from repro.servers.catalogue import APP_SERV_F
        from repro.simulation.system import simulate_deployment
        from repro.workload.trade import typical_workload

        result = simulate_deployment(APP_SERV_F, typical_workload(150), tiny_config)
        store = HistoricalDataStore()
        a = store.add_from_simulation("F", 150, result, n_samples=20, seed=1)
        b = store.add_from_simulation("F", 150, result, n_samples=20, seed=1)
        assert a.mean_response_ms == b.mean_response_ms


class TestThroughputModel:
    def test_gradient_from_think_time_is_paper_value(self):
        # 7 s think time -> m = 1/7 = 0.1428..., the paper's 0.14.
        assert gradient_from_think_time(7000.0) == pytest.approx(0.1428, abs=0.001)

    def test_prediction_ramps_then_flattens(self):
        model = ThroughputModel(gradient=0.14, max_throughput={"F": 186.0})
        assert model.predict_throughput("F", 100) == pytest.approx(14.0)
        assert model.predict_throughput("F", 10_000) == 186.0

    def test_clients_at_max(self):
        model = ThroughputModel(gradient=0.14, max_throughput={"F": 186.0})
        assert model.clients_at_max("F") == pytest.approx(186.0 / 0.14)

    def test_calibrate_pools_pre_saturation_points(self):
        points = {
            "F": [dp("F", 100, 10.0, 14.0), dp("F", 500, 12.0, 70.0), dp("F", 3000, 5000.0, 186.0)],
            "VF": [dp("VF", 100, 8.0, 14.0)],
        }
        model = ThroughputModel.calibrate(points, {"F": 186.0, "VF": 320.0})
        assert model.gradient == pytest.approx(0.14, abs=0.003)

    def test_calibrate_requires_max_throughputs(self):
        with pytest.raises(CalibrationError):
            ThroughputModel.calibrate({"F": [dp("F", 100, 10.0, 14.0)]}, {})

    def test_unknown_server_raises(self):
        model = ThroughputModel(gradient=0.14, max_throughput={})
        with pytest.raises(CalibrationError):
            model.predict_throughput("X", 10)

    def test_scalability_curve_vectorised(self):
        model = ThroughputModel(gradient=0.14, max_throughput={"F": 186.0})
        curve = model.scalability_curve("F", [100, 2000])
        assert curve[0] == pytest.approx(14.0)
        assert curve[1] == 186.0

    def test_accuracy_versus(self):
        model = ThroughputModel(gradient=0.14, max_throughput={"F": 186.0})
        points = {"F": [dp("F", 100, 10.0, 14.0)]}
        assert model.accuracy_versus(points) == pytest.approx(0.0, abs=0.01)


class TestScaling:
    @pytest.fixture
    def calibrations(self):
        return [
            ServerCalibration(
                server="F",
                max_throughput_req_per_s=186.0,
                lower=LowerEquation(c_l=8.5, lambda_l=1.0e-3),
                upper=UpperEquation(lambda_u=5.4, c_u=-6900.0),
            ),
            ServerCalibration(
                server="VF",
                max_throughput_req_per_s=320.0,
                lower=LowerEquation(c_l=7.5, lambda_l=5.8e-4),
                upper=UpperEquation(lambda_u=3.1, c_u=-7000.0),
            ),
        ]

    def test_interpolates_calibration_points_exactly(self, calibrations):
        scaling = MaxThroughputScaling.calibrate(calibrations)
        # Two calibrations: the fits pass through both points.
        assert scaling.predict_c_l(186.0) == pytest.approx(8.5, rel=1e-6)
        assert scaling.predict_lambda_l(320.0) == pytest.approx(5.8e-4, rel=1e-6)

    def test_lambda_u_inverse_proportionality(self, calibrations):
        scaling = MaxThroughputScaling.calibrate(calibrations)
        # lambda_u * mx is constant: predictions scale as 1/mx.
        assert scaling.predict_lambda_u(100.0) == pytest.approx(
            scaling.predict_lambda_u(200.0) * 2.0
        )

    def test_c_u_constant(self, calibrations):
        scaling = MaxThroughputScaling.calibrate(calibrations)
        assert scaling.predict_c_u(86.0) == scaling.predict_c_u(320.0)
        assert scaling.predict_c_u(86.0) == pytest.approx(-6950.0)

    def test_new_server_extrapolation_sensible(self, calibrations):
        scaling = MaxThroughputScaling.calibrate(calibrations)
        lower, upper = scaling.predict_equations(86.0)
        # Slower server: larger lambda_L (steeper growth), larger lambda_U.
        assert lower.lambda_l > 1.0e-3
        assert upper.lambda_u > 5.4

    def test_needs_two_calibrations(self, calibrations):
        with pytest.raises(CalibrationError):
            MaxThroughputScaling.calibrate(calibrations[:1])

    def test_non_positive_lambda_rejected(self, calibrations):
        bad = ServerCalibration(
            server="X",
            max_throughput_req_per_s=100.0,
            lower=LowerEquation(c_l=5.0, lambda_l=-1e-4),
            upper=UpperEquation(lambda_u=1.0, c_u=0.0),
        )
        with pytest.raises(CalibrationError, match="positive"):
            MaxThroughputScaling.calibrate([calibrations[0], bad])


class TestMixModel:
    def test_calibrate_from_paper_anchors(self):
        # The paper's AppServF anchors: 189 req/s at 0% buy, 158 at 25%.
        model = BuyMixModel.calibrate("F", [(0.0, 189.0), (0.25, 158.0)])
        assert model.established_max_throughput(0.0) == pytest.approx(189.0)
        assert model.established_max_throughput(0.25) == pytest.approx(158.0)
        assert model.slope < 0  # buys are heavier

    def test_equation_5_scaling(self):
        model = BuyMixModel.calibrate("F", [(0.0, 189.0), (0.25, 158.0)])
        # mx_N(b) = mx_E(b) * mx_N(0) / mx_E(0), paper equation 5.
        scaled = model.scaled_max_throughput(0.25, 86.0)
        assert scaled == pytest.approx(158.0 * 86.0 / 189.0)

    def test_scaling_at_zero_buy_returns_new_max(self):
        model = BuyMixModel.calibrate("F", [(0.0, 189.0), (0.25, 158.0)])
        assert model.scaled_max_throughput(0.0, 86.0) == pytest.approx(86.0)

    def test_interpolation_is_linear(self):
        model = BuyMixModel.calibrate("F", [(0.0, 189.0), (0.25, 158.0)])
        mid = model.established_max_throughput(0.125)
        assert mid == pytest.approx((189.0 + 158.0) / 2)

    def test_needs_two_observations(self):
        with pytest.raises(CalibrationError):
            BuyMixModel.calibrate("F", [(0.0, 189.0)])

    def test_non_positive_extrapolation_rejected(self):
        model = BuyMixModel.calibrate("F", [(0.0, 10.0), (0.25, 1.0)])
        with pytest.raises(CalibrationError):
            model.established_max_throughput(1.0)
