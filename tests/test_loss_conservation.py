"""Conservation laws for the loss-aware simulation layer.

Finite capacity turns "every arrival is eventually served" into an
accounting problem: a request now ends in exactly one of *completed*,
*dropped* (station's decision), *balked* (client's decision) or *still
in system*.  These tests pin the ledger — per station at any instant,
per request class at drain, and across every view the deployment-level
metrics expose — using the shared ``assert_station_conserved`` fixture
from ``conftest``.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import spawn_rng

from repro.servers.catalogue import APP_SERV_S, DB_SERVER
from repro.simulation.appserver import AppServerSim
from repro.simulation.database import DatabaseServerSim
from repro.simulation.engine import Simulator
from repro.simulation.resources import FifoServer, ProcessorSharingServer, ThreadPool
from repro.simulation.system import SimulatedDeployment, SimulationConfig
from repro.workload.operations import operation
from repro.workload.trade import browse_class


def _poisson_load(sim, station, *, n, rate_per_ms, service_ms, seed):
    """Schedule ``n`` Poisson arrivals with exponential service demands."""
    rng = spawn_rng(seed, "poisson-load")
    arrivals = np.cumsum(rng.exponential(1.0 / rate_per_ms, n))
    services = rng.exponential(service_ms, n)
    for at, work in zip(arrivals, services):
        sim.schedule(float(at), lambda w=float(work): station.submit(w, lambda: None))
    return float(arrivals[-1])


class TestStationConservation:
    def test_fifo_with_drops_and_balks_at_any_instant(self, assert_station_conserved):
        sim = Simulator()
        station = FifoServer(
            sim,
            "fifo",
            capacity=6,
            balk_fn=lambda n: 0.3 if n >= 3 else 0.0,
            rng=spawn_rng(5, "balk"),
        )
        horizon = _poisson_load(
            sim, station, n=4000, rate_per_ms=0.15, service_ms=10.0, seed=11
        )
        # Probe the invariant *while* the station churns, not just at the end.
        for probe_ms in np.linspace(horizon * 0.1, horizon * 0.9, 7):
            sim.schedule(
                float(probe_ms), lambda: assert_station_conserved(station, "mid-run")
            )
        sim.run_until(horizon + 1e6)
        assert station.total_in_system == 0  # drained
        assert station.stats.drops > 0 and station.stats.balks > 0
        assert_station_conserved(station, "at drain")

    def test_processor_sharing_with_capacity(self, assert_station_conserved):
        sim = Simulator()
        station = ProcessorSharingServer(sim, "ps", max_concurrency=4, capacity=7)
        horizon = _poisson_load(
            sim, station, n=4000, rate_per_ms=0.13, service_ms=10.0, seed=13
        )
        for probe_ms in np.linspace(horizon * 0.2, horizon * 0.8, 5):
            sim.schedule(
                float(probe_ms), lambda: assert_station_conserved(station, "mid-run")
            )
        sim.run_until(horizon + 1e6)
        assert station.stats.drops > 0
        assert_station_conserved(station, "at drain")

    def test_thread_pool_with_queue_capacity(self, assert_station_conserved):
        sim = Simulator()
        pool = ThreadPool(sim, "pool", capacity=3, queue_capacity=8)
        rng = spawn_rng(17, "pool-load")

        def request(hold_ms: float) -> None:
            pool.acquire(lambda: sim.schedule(hold_ms, pool.release))

        arrivals = np.cumsum(rng.exponential(2.0, 2000))
        for at, hold in zip(arrivals, rng.exponential(8.0, 2000)):
            sim.schedule(float(at), lambda h=float(hold): request(h))
        for probe_ms in np.linspace(arrivals[-1] * 0.2, arrivals[-1] * 0.8, 5):
            sim.schedule(
                float(probe_ms), lambda: assert_station_conserved(pool, "mid-run")
            )
        sim.run_until(float(arrivals[-1]) + 1e6)
        assert pool.stats.drops > 0
        assert pool.total_in_system == 0
        assert_station_conserved(pool, "at drain")


class TestPerClassConservationAtDrain:
    def test_app_server_accounts_for_every_request_per_class(
        self, assert_station_conserved
    ):
        """Offered == served + dropped per class once the server drains."""
        sim = Simulator()
        database = DatabaseServerSim(sim, DB_SERVER)
        server = AppServerSim(
            sim,
            APP_SERV_S,
            database,
            spawn_rng(23, "appserver"),
            queue_capacity=55,
        )
        rng = spawn_rng(29, "inject")
        classes = {"browse": ("home", 500), "buy": ("buy", 250)}
        ledger = {name: {"served": 0, "dropped": 0} for name in classes}

        def inject(class_name: str, op_name: str, index: int, at_ms: float) -> None:
            entry = ledger[class_name]
            sim.schedule(
                at_ms,
                lambda: server.handle(
                    f"{class_name}/{index}",
                    operation(op_name),
                    lambda: entry.__setitem__("served", entry["served"] + 1),
                    dropped_cb=lambda: entry.__setitem__(
                        "dropped", entry["dropped"] + 1
                    ),
                ),
            )

        # ~214 req/s offered against a ~86 req/s server: the accept queue
        # fills, so a visible share of each class is shed.
        for class_name, (op_name, count) in classes.items():
            arrivals = np.cumsum(rng.exponential(7.0, count))
            for index, at in enumerate(arrivals):
                inject(class_name, op_name, index, float(at))

        sim.run_until(1e9)  # long past the last arrival: fully drained

        for class_name, (_, count) in classes.items():
            entry = ledger[class_name]
            assert entry["served"] + entry["dropped"] == count, (class_name, entry)
            assert entry["served"] > 0
        assert sum(e["dropped"] for e in ledger.values()) > 0

        # Per-server ledgers close too, at every station on the path.
        assert server.threads.total_in_system == 0
        for station in (server.threads, server.cpu, database.cpu, database.disk):
            assert_station_conserved(station, "post-drain")
        total = sum(count for _, count in classes.values())
        assert server.threads.stats.arrivals == total
        assert server.threads.stats.drops == sum(
            e["dropped"] for e in ledger.values()
        )


class TestDeploymentDropBookkeeping:
    def test_every_metrics_view_counts_the_same_drops(self):
        """Per-class, per-server and total drop counts must be one number."""
        result = SimulatedDeployment(
            placements={APP_SERV_S.name: (APP_SERV_S, {})},
            config=SimulationConfig(
                duration_s=12.0, warmup_s=3.0, seed=19, queue_capacity=60
            ),
            open_arrivals={APP_SERV_S.name: {browse_class(): 140.0}},
        ).run()
        assert result.dropped_requests > 0
        assert sum(result.per_class_drops.values()) == result.dropped_requests
        assert sum(result.per_server_drops.values()) == result.dropped_requests
        offered = result.dropped_requests + result.samples
        assert result.loss_rate == result.dropped_requests / offered
        for name, drops in result.per_class_drops.items():
            class_offered = drops + result.per_class_stats[name].count
            assert result.per_class_loss_rate[name] == drops / class_offered
