"""Engine mechanics: file collection, fingerprints, baseline, reporters."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisEngine,
    Severity,
    apply_baseline,
    collect_python_files,
    load_baseline,
    render_json,
    render_text,
    write_baseline,
)
from repro.analysis.findings import Finding
from repro.util.errors import ValidationError

FIXTURES = Path(__file__).parent / "analysis_fixtures"


class TestCollection:
    def test_fixture_directory_collected_recursively(self):
        names = {p.name for p in collect_python_files([FIXTURES])}
        assert {"racy_timer.py", "safe_timer.py", "bare_random.py"} <= names

    def test_single_file_accepted(self):
        files = collect_python_files([FIXTURES / "racy_timer.py"])
        assert [p.name for p in files] == ["racy_timer.py"]

    def test_hidden_and_cache_dirs_skipped(self, tmp_path):
        (tmp_path / "keep.py").write_text("x = 1\n")
        for skipped in (".hidden", "__pycache__", "build"):
            d = tmp_path / skipped
            d.mkdir()
            (d / "drop.py").write_text("x = 1\n")
        assert [p.name for p in collect_python_files([tmp_path])] == ["keep.py"]

    def test_hidden_files_skipped_not_just_hidden_dirs(self, tmp_path):
        """Regression: the hidden check once looked only at parent parts,
        so `.hidden.py` itself slipped through collection."""
        (tmp_path / "keep.py").write_text("x = 1\n")
        (tmp_path / ".hidden.py").write_text("x = 1\n")
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / ".sneaky.py").write_text("x = 1\n")
        (sub / "fine.py").write_text("x = 1\n")
        names = [p.name for p in collect_python_files([tmp_path])]
        assert sorted(names) == ["fine.py", "keep.py"]

    def test_missing_path_raises(self):
        with pytest.raises(ValidationError, match="no such file"):
            collect_python_files(["no/such/path"])


class TestDisplayPaths:
    def test_paths_anchor_to_project_root_not_cwd(self, tmp_path, monkeypatch):
        """Regression: paths were relativized against cwd, so running the
        gate from a subdirectory produced fingerprints that missed every
        baseline entry written from the repo root."""
        from repro.analysis.engine import display_path, find_project_root

        (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        mod = pkg / "mod.py"
        mod.write_text("x = 1\n")

        monkeypatch.chdir(pkg)
        assert find_project_root(mod) == tmp_path
        assert display_path(Path("mod.py")) == "pkg/mod.py"
        monkeypatch.chdir(tmp_path)
        assert display_path(pkg / "mod.py") == "pkg/mod.py"

    def test_paths_fall_back_to_cwd_without_a_project_root(self, tmp_path, monkeypatch):
        pkg = tmp_path / "loose"
        pkg.mkdir()
        (pkg / "mod.py").write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        from repro.analysis.engine import display_path

        assert display_path(pkg / "mod.py") == "loose/mod.py"


class TestEngine:
    def test_syntax_error_becomes_a_finding(self):
        found = AnalysisEngine().analyze_source("def broken(:\n", "src/repro/x.py")
        assert [f.rule_id for f in found] == ["REPRO-SYNTAX"]
        assert found[0].severity is Severity.ERROR

    def test_findings_are_sorted_and_stable(self):
        engine = AnalysisEngine()
        found = engine.analyze_paths([FIXTURES])
        assert found == sorted(found, key=lambda f: f.sort_key())
        assert found == engine.analyze_paths([FIXTURES])

    def test_full_default_registry_covers_all_fixture_rules(self):
        found = AnalysisEngine().analyze_paths([FIXTURES])
        assert {f.rule_id for f in found} == {
            "REPRO-LOCK001",
            "REPRO-RNG001",
            "REPRO-FLT001",
            "REPRO-MUT001",
            "REPRO-API001",
            "REPRO-TRC001",
            "REPRO-DIST001",
            # project_callgraph/broken.py is deliberately unparsable.
            "REPRO-SYNTAX",
        }


class TestFingerprints:
    def test_fingerprint_is_line_independent(self):
        """Inserting lines above a finding must not invalidate the baseline."""
        engine = AnalysisEngine()
        src = "import random\n\ndef f():\n    return random.random()\n"
        shifted = "\n\n" + src
        a = engine.analyze_source(src, "src/repro/x.py")
        b = engine.analyze_source(shifted, "src/repro/x.py")
        assert a[0].line != b[0].line
        assert a[0].fingerprint() == b[0].fingerprint()

    def test_fingerprint_depends_on_path_and_rule(self):
        f1 = Finding("R1", "r", Severity.ERROR, "a.py", 1, "m")
        f2 = Finding("R1", "r", Severity.ERROR, "b.py", 1, "m")
        f3 = Finding("R2", "r", Severity.ERROR, "a.py", 1, "m")
        assert len({f1.fingerprint(), f2.fingerprint(), f3.fingerprint()}) == 3


class TestBaseline:
    def test_round_trip_suppresses_everything(self, tmp_path):
        engine = AnalysisEngine()
        found = engine.analyze_paths([FIXTURES])
        assert found
        path = tmp_path / "baseline.json"
        assert write_baseline(found, path) == len(found)
        new, suppressed = apply_baseline(found, load_baseline(path))
        assert new == []
        assert suppressed == len(found)

    def test_new_findings_survive_the_baseline(self, tmp_path):
        engine = AnalysisEngine()
        found = engine.analyze_paths([FIXTURES])
        path = tmp_path / "baseline.json"
        write_baseline(found[:-1], path)
        new, suppressed = apply_baseline(found, load_baseline(path))
        assert new == [found[-1]]
        assert suppressed == len(found) - 1

    def test_counts_cap_duplicate_fingerprints(self):
        finding = Finding("R1", "r", Severity.ERROR, "a.py", 1, "m")
        twice = [finding, finding]
        new, suppressed = apply_baseline(twice, {finding.fingerprint(): 1})
        assert suppressed == 1
        assert new == [finding]

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(ValidationError, match="baseline"):
            load_baseline(tmp_path / "absent.json")

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ValidationError):
            load_baseline(path)

    def test_committed_baseline_matches_fixture_findings(self):
        """The repo's own gate: src+tests must be clean under the committed
        baseline, which exists solely to carry the fixture findings."""
        repo = Path(__file__).parent.parent
        engine = AnalysisEngine()
        found = engine.analyze_paths([repo / "src", repo / "tests"])
        new, suppressed = apply_baseline(
            found, load_baseline(repo / ".analysis-baseline.json")
        )
        assert new == []
        assert suppressed == len(found) > 0


class TestReporters:
    def test_text_summarises_severities_and_suppression(self):
        f = Finding("R1", "r", Severity.ERROR, "a.py", 3, "boom", symbol="S")
        text = render_text([f], suppressed=2)
        assert "a.py:3" in text and "R1" in text and "[S]" in text
        assert "1 new finding(s): 1 error(s), 0 warning(s)" in text
        assert "2 suppressed" in text

    def test_text_clean(self):
        assert "clean" in render_text([], suppressed=0)

    def test_json_is_machine_readable(self):
        f = Finding("R1", "r", Severity.WARNING, "a.py", 3, "boom")
        doc = json.loads(render_json([f], suppressed=1))
        assert doc["new"] == 1
        assert doc["warnings"] == 1
        assert doc["errors"] == 0
        assert doc["suppressed"] == 1
        assert doc["findings"][0]["rule_id"] == "R1"
        assert doc["findings"][0]["line"] == 3
