"""Cross-method consistency oracle: the three calibrated prediction methods
must agree with each other within documented tolerances.

The paper's comparison (fig 2) rests on all three methods modelling the
*same* system; if a refactor silently breaks one method's calibration,
its accuracy-vs-measured numbers shift — but slowly, and only in the
experiments.  These tests are the fast tripwire: they need no simulated
measurements at all, just the mutual agreement the methods' shared
subject matter implies.

The tolerances are empirical, measured on the seeded fast calibration,
and deliberately banded the way fig 2 behaves:

===========  =================  =====================================
band         load fractions     what holds there
===========  =================  =====================================
low          f <= 0.66          every method tracks the same gentle
                                curve; LQN and hybrid are near-equal
                                (hybrid defers to LQN off-transition),
                                and historical-vs-LQN closeness is a
                                per-server property of how each curve
                                was obtained (see HIST_LQN_RTOL_LOW)
knee         0.66 < f < 1.10    the methods genuinely diverge (the
                                knee is fig 2's whole story); only
                                order-of-magnitude agreement holds
saturated    f >= 1.10          all methods climb the same linear
                                ramp; relative disagreement shrinks
                                as load grows
===========  =================  =====================================

Throughput needs no banding: the linear-ramp-with-cap shape is shared
by construction, so 5 % covers the whole range.
"""

from __future__ import annotations

import pytest

from repro.experiments.scenario import EVALUATION_FRACTIONS, build_predictors
from repro.servers.catalogue import ESTABLISHED_SERVERS, NEW_SERVERS

# -- the documented tolerance table (relative difference, |a-b|/max) ---------

#: LQN vs hybrid, away from the knee: the hybrid defers to the LQN curve.
LQN_HYBRID_RTOL_LOW = 0.15
LQN_HYBRID_RTOL_SATURATED = 0.10
#: Historical vs LQN below the knee, per server.  The two curves come from
#: different sources — the historical exponential is fitted to (noisy)
#: measured points per server, the LQN scales CPU demands calibrated on the
#: reference architecture — so their low-load offset is a per-server
#: property: small on AppServS (whose relationship-2 curve inherits the
#: fleet-average fit), up to ~2x on the fast established architectures
#: where the measured low-load floor sits well above the speed-scaled
#: service demands.
HIST_LQN_RTOL_LOW = {"AppServS": 0.20, "AppServF": 0.60, "AppServVF": 0.75}
#: Deep saturation: every method rides the same m*(n - n_at_max) ramp.
HIST_LQN_RTOL_SATURATED = 0.80
#: At the knee only order-of-magnitude agreement is promised.
KNEE_MAX_RATIO = 12.0
#: Throughput: linear ramp capped at max throughput, shared by construction.
THROUGHPUT_RTOL = 0.05
#: Closed-form vs search-based capacity answers under an SLA goal.
CAPACITY_RTOL = 0.20

LOW_BAND = tuple(f for f in EVALUATION_FRACTIONS if f <= 0.66)
KNEE_BAND = tuple(f for f in EVALUATION_FRACTIONS if 0.66 < f < 1.10)
SATURATED_BAND = tuple(f for f in EVALUATION_FRACTIONS if f >= 1.10)


def _rel(a: float, b: float) -> float:
    return abs(a - b) / max(abs(a), abs(b), 1e-12)


@pytest.fixture(scope="module")
def methods():
    """The three calibrated predictors plus per-server operating points."""
    historical, lqn, hybrid, _ = build_predictors(fast=True)
    n_at_max = {
        arch.name: historical.model.throughput_model.clients_at_max(arch.name)
        for arch in ESTABLISHED_SERVERS + NEW_SERVERS
    }
    return historical, lqn, hybrid, n_at_max


def _clients(n_at_max: float, fractions) -> list[int]:
    return [max(1, int(round(f * n_at_max))) for f in fractions]


ALL_SERVER_NAMES = [a.name for a in ESTABLISHED_SERVERS + NEW_SERVERS]


@pytest.mark.parametrize("server", ALL_SERVER_NAMES)
def test_throughput_methods_agree_everywhere(methods, server):
    historical, lqn, hybrid, n_at_max = methods
    for n in _clients(n_at_max[server], EVALUATION_FRACTIONS):
        h = historical.predict_throughput(server, n)
        l = lqn.predict_throughput(server, n)
        y = hybrid.predict_throughput(server, n)
        assert _rel(h, l) <= THROUGHPUT_RTOL, (server, n, h, l)
        assert _rel(l, y) <= THROUGHPUT_RTOL, (server, n, l, y)


@pytest.mark.parametrize("server", ALL_SERVER_NAMES)
def test_mrt_lqn_and_hybrid_agree_off_the_knee(methods, server):
    _, lqn, hybrid, n_at_max = methods
    for band, rtol in (
        (LOW_BAND, LQN_HYBRID_RTOL_LOW),
        (SATURATED_BAND, LQN_HYBRID_RTOL_SATURATED),
    ):
        for n in _clients(n_at_max[server], band):
            l = lqn.predict_mrt_ms(server, n)
            y = hybrid.predict_mrt_ms(server, n)
            assert _rel(l, y) <= rtol, (server, n, l, y)


@pytest.mark.parametrize("server", ALL_SERVER_NAMES)
def test_mrt_historical_tracks_lqn_below_knee(methods, server):
    historical, lqn, _, n_at_max = methods
    rtol = HIST_LQN_RTOL_LOW[server]
    for n in _clients(n_at_max[server], LOW_BAND):
        h = historical.predict_mrt_ms(server, n)
        l = lqn.predict_mrt_ms(server, n)
        assert _rel(h, l) <= rtol, (server, n, h, l)


@pytest.mark.parametrize("server", ALL_SERVER_NAMES)
def test_mrt_knee_band_agrees_within_an_order_of_magnitude(methods, server):
    historical, lqn, hybrid, n_at_max = methods
    for n in _clients(n_at_max[server], KNEE_BAND):
        values = [
            historical.predict_mrt_ms(server, n),
            lqn.predict_mrt_ms(server, n),
            hybrid.predict_mrt_ms(server, n),
        ]
        assert all(v > 0 for v in values), (server, n, values)
        assert max(values) / min(values) <= KNEE_MAX_RATIO, (server, n, values)


@pytest.mark.parametrize("server", ALL_SERVER_NAMES)
def test_mrt_saturated_band_converges(methods, server):
    """In deep saturation the methods agree and keep agreeing better."""
    historical, lqn, _, n_at_max = methods
    rels = []
    for n in _clients(n_at_max[server], SATURATED_BAND):
        h = historical.predict_mrt_ms(server, n)
        l = lqn.predict_mrt_ms(server, n)
        rels.append(_rel(h, l))
    assert all(r <= HIST_LQN_RTOL_SATURATED for r in rels), (server, rels)
    assert rels[-1] <= rels[0], (server, rels)  # disagreement shrinks with load


@pytest.mark.parametrize("server", ALL_SERVER_NAMES)
def test_mrt_curves_are_monotone_in_load(methods, server):
    """Every method predicts a non-decreasing MRT over the fig-2 range."""
    historical, lqn, hybrid, n_at_max = methods
    clients = _clients(n_at_max[server], EVALUATION_FRACTIONS)
    for predictor in (historical, lqn, hybrid):
        curve = [predictor.predict_mrt_ms(server, n) for n in clients]
        assert all(b >= a * 0.999 for a, b in zip(curve, curve[1:])), (
            predictor.name,
            server,
            curve,
        )


def test_capacity_answers_agree_on_the_reference_server(methods):
    """Closed-form (historical) and search (LQN) capacity agree."""
    historical, lqn, _, _ = methods
    for goal_ms in (100.0, 500.0):
        h = historical.max_clients("AppServS", goal_ms)
        l = lqn.max_clients("AppServS", goal_ms)
        assert _rel(float(h), float(l)) <= CAPACITY_RTOL, (goal_ms, h, l)


# -- the loss band: sim / LQN / historical agree on shed load -----------------
#
# The overload sweep measures the same bounded server three ways (discrete-
# event simulation, finite-capacity LQN fixed point, calibrated loss
# relationship).  Like response times, loss agreement is banded: below
# capacity every method must say (essentially) zero; at the knee the methods
# genuinely differ on *when* shedding starts, so only absolute closeness
# holds; deep in overload all three ride 1 - C/x and agree relatively.

#: Below capacity the analytic blocking probability is indistinguishable
#: from zero; the stochastic and fitted methods report exactly zero.
LOSS_ANALYTIC_ZERO = 1e-9
#: Band edges as fractions of the historically calibrated carried capacity.
LOSS_LOW_FRACTION = 0.75
LOSS_SATURATED_FRACTION = 1.2
#: Knee band: absolute loss agreement (the knee is a few percent wide).
LOSS_KNEE_ATOL = 0.12
#: Saturated band: relative agreement on a by-then-large loss fraction.
LOSS_SATURATED_RTOL = 0.25


@pytest.fixture(scope="module")
def loss_sweep():
    """The overload experiment's fast-mode sweep (seeded, deterministic)."""
    from repro.experiments import overload

    data = overload.run(fast=True).data
    capacity = data["historical_calibration"]["refit_carried_capacity_req_per_s"]
    return data["sweep"], capacity


def _loss_points(sweep, capacity, predicate):
    for point in sweep:
        fraction = point["offered_req_per_s"] / capacity
        if predicate(fraction):
            yield point


def test_loss_is_zero_below_capacity(loss_sweep):
    sweep, capacity = loss_sweep
    points = list(_loss_points(sweep, capacity, lambda f: f <= LOSS_LOW_FRACTION))
    assert points, "sweep must cover the below-capacity band"
    for point in points:
        assert point["sim"]["loss_rate"] == 0.0, point
        assert point["historical"]["loss_rate"] == 0.0, point
        assert point["analytic"]["loss_probability"] < LOSS_ANALYTIC_ZERO, point


def test_loss_knee_band_agrees_absolutely(loss_sweep):
    sweep, capacity = loss_sweep
    points = list(
        _loss_points(
            sweep, capacity, lambda f: LOSS_LOW_FRACTION < f < LOSS_SATURATED_FRACTION
        )
    )
    assert points, "sweep must cross the loss knee"
    for point in points:
        values = [
            point["sim"]["loss_rate"],
            point["analytic"]["loss_probability"],
            point["historical"]["loss_rate"],
        ]
        assert max(values) - min(values) <= LOSS_KNEE_ATOL, (point, values)


def test_loss_saturated_band_agrees_relatively(loss_sweep):
    sweep, capacity = loss_sweep
    points = list(
        _loss_points(sweep, capacity, lambda f: f >= LOSS_SATURATED_FRACTION)
    )
    assert points, "sweep must reach deep overload"
    for point in points:
        sim = point["sim"]["loss_rate"]
        lqn = point["analytic"]["loss_probability"]
        hist = point["historical"]["loss_rate"]
        assert _rel(sim, lqn) <= LOSS_SATURATED_RTOL, point
        assert _rel(hist, lqn) <= LOSS_SATURATED_RTOL, point


def test_loss_curves_are_monotone_in_offered_load(loss_sweep):
    sweep, _ = loss_sweep
    for key in ("sim", "analytic", "historical"):
        field = "loss_probability" if key == "analytic" else "loss_rate"
        curve = [point[key][field] for point in sweep]
        assert curve == sorted(curve), (key, curve)


def test_analytic_loss_is_closed_form_anchored(loss_sweep):
    """The LQN station loss equals the raw M/M/c/K blocking at 1e-9."""
    sweep, _ = loss_sweep
    for point in sweep:
        station = point["analytic"]["station_loss_probability"]
        anchor = point["closed_form_mmck_loss"]
        assert abs(station - anchor) <= LOSS_ANALYTIC_ZERO, point
