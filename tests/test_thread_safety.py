"""Regression tests for races found by the REPRO-LOCK001 audit.

Two shared-mutable hot spots predated the serving layer's worker pool:
``LqnSolver.solve_count`` (one solver instance is shared by every pool
worker) and ``HistoricalModel.predictions_made`` / ``_mix_cache`` (the
historical model serves as the concurrent fallback predictor).  Both
read-modify-writes were bare ``+=``; under contention they lose updates.
These tests hammer each counter from many threads and require exact
totals, which fails against the unlocked versions.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.historical.datastore import HistoricalDataPoint, HistoricalDataStore
from repro.historical.model import HistoricalModel
from repro.lqn.builder import (
    RequestTypeParameters,
    TradeModelParameters,
    build_trade_model,
)
from repro.lqn.solver import LqnSolver
from repro.servers.catalogue import APP_SERV_F
from repro.workload.trade import typical_workload

MX = {"F": 186.0, "VF": 320.0, "S": 86.0}
M = 0.14


def _synthetic_mrt(server: str, n: int) -> float:
    n_star = MX[server] / M
    c_l = 8.0 * (186.0 / MX[server]) ** 0.2
    lam = 1.1 / n_star
    if n <= n_star:
        return c_l * pow(2.718281828, lam * n)
    return (n - n_star) / (MX[server] / 1000.0) + c_l * 3.0


def _build_store(servers=("F", "VF")) -> HistoricalDataStore:
    store = HistoricalDataStore()
    for server in servers:
        n_star = MX[server] / M
        for frac in (0.35, 0.66, 1.15, 1.6):
            n = int(frac * n_star)
            store.add(
                HistoricalDataPoint(
                    server=server,
                    n_clients=n,
                    mean_response_ms=_synthetic_mrt(server, n),
                    throughput_req_per_s=min(M * n, MX[server]),
                    n_samples=50,
                )
            )
    return store


@pytest.fixture(scope="module")
def historical_model():
    return HistoricalModel.calibrate(
        _build_store(),
        MX,
        new_servers=("S",),
        mix_observations=[(0.0, 189.0), (0.25, 158.0)],
        mix_server="F",
    )


def _hammer(n_threads: int, per_thread: int, work) -> None:
    """Run ``work(i)`` per_thread times on each of n_threads threads, with a
    barrier so the read-modify-writes genuinely interleave."""
    barrier = threading.Barrier(n_threads)

    def worker(tid: int) -> None:
        barrier.wait()
        for i in range(per_thread):
            work(tid * per_thread + i)

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        list(pool.map(worker, range(n_threads)))


class TestHistoricalModelThreadSafety:
    def test_predictions_made_is_exact_under_contention(self, historical_model):
        before = historical_model.predictions_made
        n_threads, per_thread = 8, 500

        def work(i: int) -> None:
            historical_model.predict_mrt_ms("F", 100 + (i % 7))

        _hammer(n_threads, per_thread, work)
        assert historical_model.predictions_made - before == n_threads * per_thread

    def test_mix_cache_consistent_under_concurrent_fill(self, historical_model):
        historical_model._mix_cache.clear()
        fractions = [round(0.01 * (1 + i % 9), 2) for i in range(9)]

        def work(i: int) -> None:
            buy = fractions[i % len(fractions)]
            historical_model.predict_mrt_ms("S", 200, buy_fraction=buy)

        _hammer(8, 200, work)
        cached_keys = set(historical_model._mix_cache)
        assert cached_keys == {("S", f) for f in set(fractions)}


class TestSolverThreadSafety:
    def test_solve_count_is_exact_under_contention(self):
        params = TradeModelParameters(
            request_types={
                "browse": RequestTypeParameters(
                    name="browse",
                    app_demand_ms=5.376,
                    db_calls=1.14,
                    db_cpu_per_call_ms=0.8294,
                    db_disk_per_call_ms=1.2,
                )
            }
        )
        solver = LqnSolver()
        n_threads, per_thread = 4, 3

        def work(i: int) -> None:
            solver.solve(build_trade_model(APP_SERV_F, typical_workload(40 + i), params))

        _hammer(n_threads, per_thread, work)
        assert solver.solve_count == n_threads * per_thread
