"""Integration tests for the shard router (repro.service.shard.router).

Everything runs on the inline backend over a shared FakeClock — the
deterministic regime the chaos experiment and CI gates use — with the
importable stub stack from ``repro.service.shard.testing``.
"""

from __future__ import annotations

import pytest

from repro.service.breaker import BreakerConfig, BreakerState
from repro.service.shard import (
    InlineShardBackend,
    ShardClusterError,
    ShardConfig,
    ShardedPredictionService,
    SharedL2Cache,
)
from repro.service.shard.health import HealthConfig
from repro.service.shard.testing import DeterministicStubPredictor, build_stub_service
from repro.util.clock import FakeClock


def _cluster(n_shards: int, clock: FakeClock, *, l2: SharedL2Cache | None = None):
    shared = l2 if l2 is not None else SharedL2Cache(clock=clock.monotonic_s)

    def factory(shard_id: str):
        service = build_stub_service(shard_id)
        service.l2 = shared
        return service

    backend = InlineShardBackend(tuple(f"s{i}" for i in range(n_shards)), factory)
    config = ShardConfig(
        health=HealthConfig(
            breaker=BreakerConfig(failure_threshold=3, recovery_time_s=5.0)
        )
    )
    return ShardedPredictionService(backend, config=config, clock=clock), backend


def test_values_agree_with_unsharded_stub_at_any_shard_count() -> None:
    """The cluster is value-transparent: same answers as the raw stub."""
    stub = DeterministicStubPredictor()
    for n_shards in (1, 3, 5):
        clock = FakeClock()
        cluster, _ = _cluster(n_shards, clock)
        with cluster:
            assert cluster.predict_mrt_ms("shop", 60) == stub.predict_mrt_ms("shop", 60)
            assert cluster.predict_throughput("shop", 40) == stub.predict_throughput(
                "shop", 40
            )
            assert cluster.max_clients("shop", 500.0) == stub.max_clients("shop", 500.0)


def test_routing_is_sticky_and_cache_local() -> None:
    """One grid cell always routes to one shard, whose L1 then serves it."""
    clock = FakeClock()
    cluster, _ = _cluster(4, clock)
    with cluster:
        first = cluster.serve_info("mrt", "shop", 60.0, 0.0)
        assert first.outcome == "computed"
        for _ in range(5):
            again = cluster.serve_info("mrt", "shop", 60.0, 0.0)
            assert again.shard == first.shard  # locality
            assert again.outcome == "l1_hit"  # served by that shard's L1
        # Same cell (sub-grid-step perturbation) routes identically too.
        nearby = cluster.serve_info("mrt", "shop", 60.4, 0.0)
        assert nearby.shard == first.shard and nearby.outcome == "l1_hit"


def test_failed_shard_is_ejected_keys_reroute_and_l2_promotes() -> None:
    """Kill the owner: keys walk to the successor, which warms from L2."""
    clock = FakeClock()
    cluster, backend = _cluster(3, clock)
    with cluster:
        first = cluster.serve_info("mrt", "shop", 60.0, 0.0)
        owner = first.shard
        backend.kill(owner)
        # Three failures (threshold) eject the owner — the third request's
        # own failure trips the breaker; every request still answers by
        # rerouting to the ring successor.
        serves = [cluster.serve_info("mrt", "shop", 60.0, 0.0) for _ in range(4)]
        assert all(s.shard != owner for s in serves)
        assert all(s.reroutes >= 1 for s in serves[:3])
        assert owner in cluster.health.ejected()
        assert cluster.health.breaker(owner).state is BreakerState.OPEN
        # The successor had never seen the key: its first serve came from
        # the shared L2 (computed once on the dead owner), then its L1.
        assert serves[0].outcome == "l2_hit"
        assert serves[1].outcome == "l1_hit"
        # Once ejected, requests route straight to the successor.
        assert serves[3].reroutes == 0


def test_recovered_shard_rejoins_with_l1_intact() -> None:
    """After the recovery window a probe re-closes the breaker; keys return."""
    clock = FakeClock()
    cluster, backend = _cluster(3, clock)
    with cluster:
        first = cluster.serve_info("mrt", "shop", 60.0, 0.0)
        owner = first.shard
        backend.kill(owner)
        for _ in range(3):
            cluster.serve_info("mrt", "shop", 60.0, 0.0)
        backend.revive(owner)
        clock.advance(6.0)  # past recovery_time_s: the breaker owes a probe
        probe = cluster.serve_info("mrt", "shop", 60.0, 0.0)
        assert probe.shard == owner  # the ring position never moved
        assert probe.outcome == "l1_hit"  # its L1 survived the outage
        assert cluster.health.breaker(owner).state is BreakerState.CLOSED
        assert owner not in cluster.health.ejected()
        transitions = [t[2] for t in cluster.health.breaker(owner).transitions()]
        assert transitions == ["open", "half_open", "closed"]


def test_cluster_exhaustion_raises_shard_cluster_error() -> None:
    """Every shard dead → ShardClusterError, not a hang or a wrong value."""
    clock = FakeClock()
    cluster, backend = _cluster(2, clock)
    with cluster:
        for shard in backend.shard_ids():
            backend.kill(shard)
        with pytest.raises(ShardClusterError):
            cluster.serve_info("mrt", "shop", 60.0, 0.0)
        assert cluster.export_metrics()["router.exhausted"] >= 1


def test_merged_snapshot_sums_router_and_all_shards() -> None:
    """Cluster snapshot counters == router counters + Σ shard counters."""
    clock = FakeClock()
    cluster, backend = _cluster(3, clock)
    with cluster:
        for i in range(20):
            cluster.serve_info("mrt", "shop", float(40 + i), 0.0)
        merged = cluster.snapshot()
        shard_requests = sum(
            backend.snapshot(s).counters.get("cache.requests", 0)
            for s in backend.shard_ids()
        )
        assert merged.counters["cache.requests"] == shard_requests
        assert merged.counters["router.requests"] == 20
        # Derived rates come from merged counters, never merged directly.
        export = cluster.export_metrics()
        assert export["cache.hit_rate"] == pytest.approx(
            merged.counters["cache.hits"] / merged.counters["cache.requests"]
        )


def test_per_shard_served_accounts_every_request() -> None:
    """The routing-balance view sums to the number of served requests."""
    clock = FakeClock()
    cluster, _ = _cluster(4, clock)
    with cluster:
        for i in range(30):
            cluster.serve_info("throughput", f"srv{i % 6}", float(100 + i), 0.0)
        served = cluster.per_shard_served()
        assert sum(served.values()) == 30
        assert set(served) == {"s0", "s1", "s2", "s3"}


def test_unknown_operation_is_rejected_before_routing() -> None:
    """A bogus op fails validation; no shard sees it."""
    clock = FakeClock()
    cluster, _ = _cluster(2, clock)
    with cluster:
        with pytest.raises(Exception):
            cluster.serve_info("latency", "shop", 60.0, 0.0)
        assert sum(cluster.per_shard_served().values()) == 0
