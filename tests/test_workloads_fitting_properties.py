"""Seeded property tests for the workload-characterization fitting layer.

Two families of properties:

* **fit → generate → refit round-trips** per distribution family: draw
  true parameters, sample from the true spec through a named
  :func:`~repro.util.rng.spawn_rng` stream, refit, and require the
  recovered parameters (or matched moments) back within tolerance.
  Tolerances sit many standard errors above the estimators' sampling
  noise at n=2000, so the properties are stable under any drawn seed.
* **the exponential/heavy-tail discrimination boundary**, driven with
  *analytic quantile grids* instead of random samples: a grid is the
  distribution with sampling noise removed, so the screen's verdict is
  a deterministic function of the drawn parameters and the property
  probes the decision boundary itself, not the luck of a draw.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.util.rng import spawn_rng
from repro.workloads.diagnostics import empirical_cv2, ks_p_value
from repro.workloads.dists import (
    exponential_spec,
    hyperexponential_spec,
    lognormal_spec,
    pareto_spec,
)
from repro.workloads.fitting import (
    discriminate_tail,
    fit_exponential,
    fit_hyperexponential,
    fit_lognormal,
    fit_pareto,
)

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

N_SAMPLES = 2000

seed_strategy = st.integers(min_value=0, max_value=2**31)
mean_strategy = st.floats(min_value=100.0, max_value=20000.0)
mu_strategy = st.floats(min_value=5.0, max_value=10.0)
sigma_strategy = st.floats(min_value=0.2, max_value=1.5)
alpha_strategy = st.floats(min_value=1.5, max_value=4.0)
xm_strategy = st.floats(min_value=100.0, max_value=5000.0)


def _grid(spec, n=N_SAMPLES) -> np.ndarray:
    """The distribution's analytic mid-quantile grid: a noise-free sample."""
    return np.asarray(spec.quantile((np.arange(n) + 0.5) / n))


# -- fit -> generate -> refit round-trips -------------------------------------


@SETTINGS
@given(mean_strategy, seed_strategy)
def test_exponential_roundtrip(mean_ms, seed):
    spec = exponential_spec(mean_ms)
    samples = spec.sample(spawn_rng(seed, "prop:exp"), N_SAMPLES)
    refit = fit_exponential(samples)
    # MLE mean == sample mean exactly; sample mean is within ~7 sigma here.
    assert refit.spec.mean_ms == pytest.approx(float(np.mean(samples)), rel=1e-9)
    assert refit.spec.mean_ms == pytest.approx(mean_ms, rel=0.15)


@SETTINGS
@given(mu_strategy, sigma_strategy, seed_strategy)
def test_lognormal_roundtrip(mu, sigma, seed):
    spec = lognormal_spec(mu, sigma)
    samples = spec.sample(spawn_rng(seed, "prop:log"), N_SAMPLES)
    params = fit_lognormal(samples).spec.param_dict()
    assert params["mu"] == pytest.approx(mu, abs=0.2)
    assert params["sigma"] == pytest.approx(sigma, rel=0.2)


@SETTINGS
@given(xm_strategy, alpha_strategy, seed_strategy)
def test_pareto_roundtrip(xm, alpha, seed):
    spec = pareto_spec(xm, alpha)
    samples = spec.sample(spawn_rng(seed, "prop:par"), N_SAMPLES)
    params = fit_pareto(samples).spec.param_dict()
    # xm-hat = min(sample): converges at rate 1/(n*alpha) from above.
    assert params["xm"] == pytest.approx(xm, rel=0.05)
    assert params["alpha"] == pytest.approx(alpha, rel=0.25)


@SETTINGS
@given(
    st.floats(min_value=0.55, max_value=0.95),
    st.floats(min_value=200.0, max_value=2000.0),
    st.floats(min_value=5000.0, max_value=50000.0),
    seed_strategy,
)
def test_hyperexponential_roundtrip_matches_sample_moments(p, mean1, mean2, seed):
    """Balanced-means H2 is a moment matcher: the refit reproduces the
    sample's first two moments exactly whenever sample CV² > 1."""
    spec = hyperexponential_spec(p, mean1, mean2)
    samples = spec.sample(spawn_rng(seed, "prop:h2"), N_SAMPLES)
    refit = fit_hyperexponential(samples).spec
    assert refit.mean_ms == pytest.approx(float(np.mean(samples)), rel=1e-9)
    cv2 = empirical_cv2(samples)
    if cv2 > 1.0:
        assert refit.cv2 == pytest.approx(cv2, rel=1e-6)
    else:  # degenerate draw: the fit degrades to the exponential limit
        assert refit.cv2 == pytest.approx(1.0)


# -- the discrimination boundary (analytic grids: no sampling noise) ----------


@SETTINGS
@given(mean_strategy)
def test_exponential_grid_is_classified_exponential(mean_ms):
    kind, verdict = discriminate_tail(_grid(exponential_spec(mean_ms)))
    assert kind == "exponential"
    assert verdict.is_exponential


@SETTINGS
@given(mu_strategy, st.floats(min_value=1.05, max_value=1.6))
def test_heavy_lognormal_grid_is_classified_heavy_tailed(mu, sigma):
    """CV² = e^(sigma²) - 1 >= 2.0 at sigma >= 1.05 — far above the CV²
    band's upper edge (~1.09 at n=2000), grid truncation included."""
    kind, verdict = discriminate_tail(_grid(lognormal_spec(mu, sigma)))
    assert kind == "heavy-tailed"
    assert verdict.cv2 > verdict.cv2_band[1]


@SETTINGS
@given(mean_strategy, st.floats(min_value=0.05, max_value=0.4))
def test_low_variability_grid_is_neither(mean_ms, sigma):
    """A near-deterministic lognormal (CV² << 1) must classify as 'other':
    sub-exponential, not heavy-tailed, not exponential."""
    kind, verdict = discriminate_tail(_grid(lognormal_spec(np.log(mean_ms), sigma)))
    assert kind == "other"
    assert verdict.cv2 < verdict.cv2_band[0]


@SETTINGS
@given(xm_strategy, st.floats(min_value=1.3, max_value=1.9))
def test_infinite_variance_pareto_grid_is_heavy_tailed(xm, alpha):
    """Pareto with alpha <= 2 has infinite variance; even the
    tail-truncated quantile grid keeps CV² >= 1.8 at alpha <= 1.9,
    well above the band's upper edge (~1.09 at n=2000)."""
    kind, _ = discriminate_tail(_grid(pareto_spec(xm, alpha)))
    assert kind == "heavy-tailed"


# -- diagnostics sanity under drawn parameters --------------------------------


@SETTINGS
@given(st.floats(min_value=0.01, max_value=0.5), st.integers(min_value=10, max_value=5000))
def test_ks_p_value_decreases_with_distance_and_sample_size(d, n):
    assert 0.0 <= ks_p_value(d, n) <= 1.0
    # Monotone in distance and sample size, up to series-truncation noise.
    assert ks_p_value(d, n) >= ks_p_value(d * 1.5, n) - 1e-9
    assert ks_p_value(d, n) >= ks_p_value(d, n * 4) - 1e-9


@SETTINGS
@given(mu_strategy, sigma_strategy)
def test_quantile_cdf_inversion_holds_for_drawn_parameters(mu, sigma):
    spec = lognormal_spec(mu, sigma)
    q = np.array([0.05, 0.25, 0.5, 0.75, 0.95])
    np.testing.assert_allclose(spec.cdf(spec.quantile(q)), q, atol=1e-9)
