"""Shared fixtures for the test suite.

Expensive calibrations (simulator-backed) are session-scoped so the many
tests that need a calibrated model share one run.  Tests that only need
small deterministic simulations build their own tiny configs.
"""

from __future__ import annotations

import pytest

from repro.lqn.calibration import LqnCalibration, calibrate_from_simulator
from repro.servers.catalogue import APP_SERV_F
from repro.simulation.system import SimulationConfig


def pytest_addoption(parser: pytest.Parser) -> None:
    """Register the golden-file regeneration flag (see test_experiment_goldens)."""
    parser.addoption(
        "--regen-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from the current code instead of comparing",
    )


@pytest.fixture(scope="session")
def assert_station_conserved():
    """Reusable conservation-law check for any simulation station.

    Every station (:class:`~repro.simulation.resources.FifoServer`,
    ``ProcessorSharingServer``, ``ThreadPool``) must satisfy, at *any*
    instant, ``arrivals == completions + drops + balks + in-system`` —
    no request is ever created, duplicated or silently lost.  Valid
    whenever the station's stats window covers its whole life (i.e. no
    mid-flight ``reset_stats``); returns the checker so tests can probe
    mid-run and at drain.
    """

    def check(station, label: str = "") -> None:
        stats = station.stats
        accounted = (
            stats.completions + stats.drops + stats.balks + station.total_in_system
        )
        assert stats.arrivals == accounted, (
            f"conservation violated at {label or station.name}: "
            f"{stats.arrivals} arrivals != {stats.completions} completions + "
            f"{stats.drops} drops + {stats.balks} balks + "
            f"{station.total_in_system} in system"
        )

    return check


@pytest.fixture(scope="session")
def tiny_config() -> SimulationConfig:
    """A very short simulation config for functional (non-statistical) tests."""
    return SimulationConfig(duration_s=10.0, warmup_s=2.0, seed=7)


@pytest.fixture(scope="session")
def short_config() -> SimulationConfig:
    """A short-but-meaningful config for loose statistical assertions."""
    return SimulationConfig(duration_s=30.0, warmup_s=8.0, seed=7)


@pytest.fixture(scope="session")
def lqn_calibration_fast() -> LqnCalibration:
    """One shared fast LQN calibration on the reference server."""
    return calibrate_from_simulator(
        APP_SERV_F, clients_per_type=300, duration_s=40.0, warmup_s=10.0, seed=11
    )
