"""Scenario compilation: determinism, serialization, both backends."""

import numpy as np
import pytest

from repro.prediction.interface import PredictionTimer
from repro.service.service import PredictionService, ServiceConfig
from repro.util.clock import FakeClock
from repro.util.errors import ValidationError
from repro.workloads.backends import ScenarioServiceDriver, run_scenario_simulation
from repro.workloads.dists import exponential_spec, lognormal_spec
from repro.workloads.modulators import (
    DiurnalCurve,
    FlashCrowd,
    MixSchedule,
    Ramp,
    compose_factor,
    modulator_from_dict,
)
from repro.workloads.records import classify_request_type
from repro.workloads.scenario import (
    ScenarioSpec,
    canonical_spec,
    generate_entries,
    generate_records,
)


def _spec(**overrides):
    base = dict(
        name="t",
        n_clients=12,
        duration_s=90.0,
        think_time=exponential_spec(4000.0),
        mix=MixSchedule.constant(0.25),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestModulators:
    def test_diurnal_swings_around_one(self):
        curve = DiurnalCurve(period_s=100.0, amplitude=0.4)
        assert curve.factor(25.0) == pytest.approx(1.4)
        assert curve.factor(75.0) == pytest.approx(0.6)
        assert curve.factor(0.0) == pytest.approx(1.0)

    def test_flash_crowd_spikes_then_decays(self):
        crowd = FlashCrowd(at_s=50.0, magnitude=2.0, decay_s=10.0)
        assert crowd.factor(49.9) == 1.0
        assert crowd.factor(50.0) == pytest.approx(3.0)
        assert crowd.factor(60.0) == pytest.approx(1.0 + 2.0 / np.e)

    def test_ramp_interpolates(self):
        ramp = Ramp(start_s=10.0, end_s=20.0, from_factor=1.0, to_factor=3.0)
        assert ramp.factor(0.0) == 1.0
        assert ramp.factor(15.0) == pytest.approx(2.0)
        assert ramp.factor(99.0) == 3.0

    def test_composition_is_a_product(self):
        mods = (
            Ramp(start_s=0.0, end_s=10.0, from_factor=2.0, to_factor=2.0),
            FlashCrowd(at_s=0.0, magnitude=1.0, decay_s=1e9),
        )
        assert compose_factor(mods, 5.0) == pytest.approx(4.0)

    def test_round_trip_through_dict(self):
        for modulator in (
            DiurnalCurve(period_s=60.0, amplitude=0.3, phase_s=5.0),
            FlashCrowd(at_s=10.0, magnitude=1.5, decay_s=20.0),
            Ramp(start_s=1.0, end_s=2.0, from_factor=0.5, to_factor=1.5),
        ):
            assert modulator_from_dict(modulator.to_dict()) == modulator

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValidationError):
            modulator_from_dict({"kind": "square_wave"})

    def test_mix_schedule_interpolates_and_clamps(self):
        mix = MixSchedule(points=((0.0, 0.1), (100.0, 0.3)))
        assert mix.buy_fraction(50.0) == pytest.approx(0.2)
        assert mix.buy_fraction(-5.0) == pytest.approx(0.1)
        assert mix.buy_fraction(500.0) == pytest.approx(0.3)

    def test_mix_schedule_requires_increasing_times(self):
        with pytest.raises(ValidationError):
            MixSchedule(points=((10.0, 0.1), (10.0, 0.2)))


class TestScenarioSpec:
    def test_json_file_round_trip(self, tmp_path):
        spec = canonical_spec(fast=True)
        path = spec.save_json(tmp_path / "scenario.json")
        assert ScenarioSpec.load_json(path) == spec

    def test_malformed_dict_is_rejected(self):
        with pytest.raises(ValidationError):
            ScenarioSpec.from_dict({"name": "x"})

    def test_factor_floors_at_positive_value(self):
        spec = _spec(
            modulators=(Ramp(start_s=0.0, end_s=1.0, from_factor=0.0, to_factor=0.0),)
        )
        assert spec.factor(0.5) > 0.0


class TestGeneration:
    def test_same_seed_same_trace(self):
        spec = _spec()
        assert generate_entries(spec, seed=5) == generate_entries(spec, seed=5)

    def test_different_seed_different_trace(self):
        spec = _spec()
        assert generate_entries(spec, seed=5) != generate_entries(spec, seed=6)

    def test_entries_are_sorted_and_within_duration(self):
        entries = generate_entries(_spec(), seed=5)
        arrivals = [e.arrival_ms for e in entries]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] < 90.0 * 1000.0

    def test_adding_a_client_preserves_existing_timelines(self):
        """Common random numbers: client k's stream is independent of count."""
        small = generate_entries(_spec(n_clients=5), seed=9)
        large = generate_entries(_spec(n_clients=6), seed=9)
        small_by_client = {
            c: [e.arrival_ms for e in small if e.client_id == c]
            for c in {e.client_id for e in small}
        }
        for client, arrivals in small_by_client.items():
            assert [e.arrival_ms for e in large if e.client_id == client] == arrivals

    def test_mix_schedule_shapes_request_types(self):
        entries = generate_entries(
            _spec(n_clients=40, duration_s=300.0, mix=MixSchedule.constant(0.5)),
            seed=3,
        )
        buys = sum(1 for e in entries if classify_request_type(e.operation) == "buy")
        assert 0.35 < buys / len(entries) < 0.65

    def test_modulators_raise_offered_rate(self):
        base = generate_entries(_spec(), seed=4)
        boosted = generate_entries(
            _spec(
                modulators=(
                    Ramp(start_s=0.0, end_s=1.0, from_factor=3.0, to_factor=3.0),
                )
            ),
            seed=4,
        )
        assert len(boosted) > 1.5 * len(base)

    def test_generate_records_matches_entries(self):
        spec = _spec()
        entries = generate_entries(spec, seed=8)
        records = generate_records(spec, seed=8)
        assert len(records) == len(entries)


class _FixedPredictor:
    """Predictor stub: deterministic arithmetic, no model behind it."""

    name = "fixed"

    def __init__(self):
        self.timer = PredictionTimer()

    def predict_mrt_ms(self, server, n_clients, *, buy_fraction=0.0):
        return 10.0 + 0.5 * n_clients + 100.0 * buy_fraction

    def predict_throughput(self, server, n_clients, *, buy_fraction=0.0):
        return n_clients / 7.0

    def max_clients(self, server, rt_goal_ms, *, buy_fraction=0.0):
        return 500


class TestBackends:
    def test_one_spec_drives_both_backends_with_identical_entries(self):
        """The acceptance demonstration: one compiled trace, two consumers."""
        spec = _spec(n_clients=8, duration_s=60.0)
        entries = generate_entries(spec, seed=21)

        summary = run_scenario_simulation(spec, seed=21, entries=entries)
        assert summary.requests_injected == len(entries)
        assert summary.requests_completed == len(entries)
        assert summary.mean_response_ms > 0.0
        assert set(summary.per_class_requests) == {
            classify_request_type(e.operation) for e in entries
        }

        clock = FakeClock()
        with PredictionService(
            _FixedPredictor(), config=ServiceConfig(), clock=clock
        ) as service:
            report = ScenarioServiceDriver(
                service, spec, seed=21, server="AppServF", clock=clock, entries=entries
            ).run()
        assert report.requests == len(entries)
        assert report.errors == 0
        assert report.per_type_requests == summary.per_class_requests

    def test_simulation_compiles_when_entries_not_supplied(self):
        summary = run_scenario_simulation(_spec(n_clients=4, duration_s=30.0), seed=2)
        assert summary.requests_injected > 0

    def test_service_driver_is_deterministic_on_a_fake_clock(self):
        spec = _spec(n_clients=6, duration_s=45.0)

        def replay():
            clock = FakeClock()
            with PredictionService(
                _FixedPredictor(), config=ServiceConfig(), clock=clock
            ) as service:
                return ScenarioServiceDriver(
                    service, spec, seed=33, server="AppServF", clock=clock
                ).run()

        assert replay().to_dict() == replay().to_dict()

    def test_service_driver_tracks_modulated_client_count(self):
        spec = _spec(
            n_clients=10,
            duration_s=60.0,
            modulators=(
                Ramp(start_s=0.0, end_s=60.0, from_factor=1.0, to_factor=2.0),
            ),
        )
        clock = FakeClock()
        with PredictionService(
            _FixedPredictor(), config=ServiceConfig(), clock=clock
        ) as service:
            report = ScenarioServiceDriver(
                service, spec, seed=5, server="AppServF", clock=clock
            ).run()
        assert report.max_clients > 10
        assert report.min_clients >= 10

    def test_max_requests_truncates_the_replay(self):
        spec = _spec(n_clients=6, duration_s=45.0)
        clock = FakeClock()
        with PredictionService(
            _FixedPredictor(), config=ServiceConfig(), clock=clock
        ) as service:
            report = ScenarioServiceDriver(
                service,
                spec,
                seed=33,
                server="AppServF",
                clock=clock,
                max_requests=7,
            ).run()
        assert report.requests == 7
