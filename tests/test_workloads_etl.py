"""ETL adapters: CSV/JSONL/log ingestion and the CSV round-trip bridge."""

import pytest

from repro.trace.events import BEGIN, END, TraceEvent
from repro.trace.sinks import JsonlSink
from repro.util.errors import ValidationError
from repro.workload.generators import generate_trace, save_trace_csv
from repro.workload.trade import BROWSE_CLASS
from repro.workloads.etl import (
    LogFormat,
    load_records_csv,
    load_records_jsonl,
    load_records_log,
    parse_log_lines,
    records_from_events,
    records_from_trace_entries,
)


class TestCsvBridge:
    def test_trace_round_trips_through_csv(self, tmp_path):
        """S1: generate -> save CSV -> ingest == ingest-in-memory."""
        trace = generate_trace(BROWSE_CLASS, 5.0, 60.0, seed=42, n_clients=10)
        path = tmp_path / "trace.csv"
        save_trace_csv(trace, path)

        direct = records_from_trace_entries(trace)
        loaded = load_records_csv(path)

        assert len(loaded) == len(direct) == len(trace)
        assert [r.arrival_ms for r in loaded] == [r.arrival_ms for r in direct]
        assert [r.operation for r in loaded] == [r.operation for r in direct]
        assert loaded.statistics().to_dict() == direct.statistics().to_dict()

    def test_arrival_traces_carry_no_service_times(self):
        trace = generate_trace(BROWSE_CLASS, 5.0, 10.0, seed=1, n_clients=4)
        records = records_from_trace_entries(trace)
        assert all(r.service_ms is None for r in records)


def _span_event(ts_us, dur_us, *, kind="quote", thread=1, name="service.request"):
    return TraceEvent(
        kind=END,
        name=name,
        ts_us=ts_us,
        thread_id=thread,
        dur_us=dur_us,
        attributes={"kind": kind},
    )


class TestJsonlIngestion:
    def test_end_events_become_records_with_service_times(self):
        events = [
            TraceEvent(kind=BEGIN, name="service.request", ts_us=0.0),
            _span_event(0.0, 12_000.0, kind="quote", thread=1),
            _span_event(5_000.0, 30_000.0, kind="buy", thread=2),
            TraceEvent(kind=END, name="other.span", ts_us=9.0, dur_us=1.0),
        ]
        records = records_from_events(events)
        assert len(records) == 2
        first, second = records.records
        assert first.arrival_ms == 0.0 and first.service_ms == 12.0
        assert first.operation == "quote" and first.client_id == "thread:1"
        assert second.operation == "buy" and second.client_id == "thread:2"

    def test_client_attribute_overrides_thread_identity(self):
        events = [_span_event(0.0, 1_000.0)]
        events[0].attributes["session"] = "s-9"
        records = records_from_events(events, client_attr="session")
        assert records.records[0].client_id == "s-9"

    def test_no_matching_spans_is_an_error(self):
        with pytest.raises(ValidationError):
            records_from_events([_span_event(0.0, 1.0, name="other")])

    def test_jsonl_file_round_trip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = JsonlSink(path)
        for event in (_span_event(0.0, 2_000.0), _span_event(8_000.0, 4_000.0)):
            sink.emit(event)
        sink.close()
        records = load_records_jsonl(path)
        assert [r.arrival_ms for r in records] == [0.0, 8.0]
        assert [r.service_ms for r in records] == [2.0, 4.0]


class TestGenericLog:
    LINES = [
        "# ts_s,op,client,dur_s",
        "0.0,quote,c1,0.010",
        "",
        "7.5,buy,c2,0.025",
    ]

    def test_parse_with_service_column_and_seconds(self):
        fmt = LogFormat(service_column=3, timestamp_scale_ms=1000.0)
        records = parse_log_lines(self.LINES, fmt)
        assert [r.arrival_ms for r in records] == [0.0, 7500.0]
        assert [r.service_ms for r in records] == [10.0, 25.0]
        assert [r.operation for r in records] == ["quote", "buy"]

    def test_malformed_row_reports_line_number(self):
        with pytest.raises(ValidationError, match="line 2"):
            parse_log_lines(["0.0,quote,c1", "not-a-number,buy,c2"], LogFormat())

    def test_too_few_columns_reports_line_number(self):
        with pytest.raises(ValidationError, match="line 1"):
            parse_log_lines(["0.0,quote"], LogFormat())

    def test_comment_and_blank_lines_are_skipped(self):
        records = parse_log_lines(self.LINES, LogFormat(service_column=3))
        assert len(records) == 2

    def test_empty_log_is_an_error(self):
        with pytest.raises(ValidationError):
            parse_log_lines(["# nothing"], LogFormat())

    def test_load_from_file_and_missing_file(self, tmp_path):
        path = tmp_path / "requests.log"
        path.write_text("\n".join(self.LINES) + "\n", encoding="utf-8")
        records = load_records_log(path, LogFormat(service_column=3))
        assert len(records) == 2
        with pytest.raises(ValidationError):
            load_records_log(tmp_path / "absent.log")
