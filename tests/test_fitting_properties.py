"""Seeded property-based tests for the historical method's fitting layer.

Each property is a fit→generate→refit round-trip: draw true parameters,
generate data from the true curve (exactly, or with seeded multiplicative
noise from a named :func:`~repro.util.rng.spawn_rng` stream), refit, and
require the recovered parameters to match the truth within tolerance.
The piecewise properties cover the paper's 66 %–110 % transition band
explicitly: continuity at the band edges and capacity inversion inside
the band.

Tolerances: exact data round-trips to float precision (the fits are
closed-form least squares, so only LAPACK noise remains — 1e-6 relative
is generous); 1 % multiplicative noise on 12 points must recover rate
parameters within 10 % and scale parameters within 15 %.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.historical.datastore import HistoricalDataPoint
from repro.historical.fitting import (
    fit_exponential,
    fit_linear,
    fit_linear_through_origin,
    fit_power,
)
from repro.historical.relationships import (
    TRANSITION_LOWER_FRACTION,
    TRANSITION_UPPER_FRACTION,
    LowerEquation,
    PiecewiseResponseModel,
    UpperEquation,
)
from repro.util.rng import spawn_rng

EXACT_RTOL = 1e-6
NOISY_RATE_RTOL = 0.10  # lambda_l, lambda_u, slopes under 1% noise
NOISY_SCALE_RTOL = 0.15  # c_l, c_u, intercepts under 1% noise

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# Parameter ranges mirror the paper's table-1 scale: base response times of
# a few ms to a few hundred ms, exponents of order 1/n_at_max, saturation
# slopes of a few ms per client.
c_l_strategy = st.floats(min_value=1.0, max_value=300.0)
lambda_l_strategy = st.floats(min_value=1e-4, max_value=5e-3)
lambda_u_strategy = st.floats(min_value=0.5, max_value=20.0)
c_u_strategy = st.floats(min_value=-2000.0, max_value=2000.0)
n_at_max_strategy = st.floats(min_value=200.0, max_value=3000.0)
seed_strategy = st.integers(min_value=0, max_value=2**31)


def _client_grid(lo: float, hi: float, count: int) -> list[int]:
    """Distinct integer client counts spanning [lo, hi] — the datastore
    stores integer loads, so data must be generated at integers too."""
    return sorted({max(1, int(round(x))) for x in np.linspace(lo, hi, count)})


def _points(server, clients, mrts):
    return [
        HistoricalDataPoint(
            server=server,
            n_clients=int(n),
            mean_response_ms=float(m),
            throughput_req_per_s=1.0,
            n_samples=50,
        )
        for n, m in zip(clients, mrts)
    ]


# -- raw trend fits: exact round-trips ---------------------------------------


@SETTINGS
@given(c_l_strategy, lambda_l_strategy)
def test_fit_exponential_recovers_exact_parameters(c, lam):
    x = np.linspace(10.0, 800.0, 9)
    result = fit_exponential(x, c * np.exp(lam * x))
    fitted_c, fitted_lam = result.params
    assert fitted_c == pytest.approx(c, rel=EXACT_RTOL)
    assert fitted_lam == pytest.approx(lam, rel=EXACT_RTOL)
    assert result.r_squared == pytest.approx(1.0, abs=1e-9)


@SETTINGS
@given(lambda_u_strategy, c_u_strategy)
def test_fit_linear_recovers_exact_parameters(slope, intercept):
    x = np.linspace(100.0, 2000.0, 8)
    result = fit_linear(x, slope * x + intercept)
    fitted_slope, fitted_intercept = result.params
    assert fitted_slope == pytest.approx(slope, rel=EXACT_RTOL)
    assert fitted_intercept == pytest.approx(intercept, rel=EXACT_RTOL, abs=1e-6)


@SETTINGS
@given(st.floats(min_value=0.01, max_value=10.0))
def test_fit_through_origin_recovers_exact_gradient(slope):
    x = np.linspace(50.0, 1500.0, 7)
    (fitted,) = fit_linear_through_origin(x, slope * x).params
    assert fitted == pytest.approx(slope, rel=EXACT_RTOL)


@SETTINGS
@given(
    st.floats(min_value=0.1, max_value=50.0),
    st.floats(min_value=-1.5, max_value=1.5),
)
def test_fit_power_recovers_exact_parameters(coefficient, exponent):
    x = np.geomspace(10.0, 500.0, 8)
    result = fit_power(x, coefficient * x**exponent)
    fitted_c, fitted_delta = result.params
    assert fitted_c == pytest.approx(coefficient, rel=1e-5)
    assert fitted_delta == pytest.approx(exponent, rel=1e-5, abs=1e-7)


# -- equation-level round-trips (fit -> generate -> refit) -------------------


@SETTINGS
@given(c_l_strategy, lambda_l_strategy, n_at_max_strategy, seed_strategy)
def test_lower_equation_roundtrip_with_seeded_noise(c_l, lam, n_at_max, seed):
    true = LowerEquation(c_l=c_l, lambda_l=lam)
    rng = spawn_rng(seed, "fitting:lower")
    # 12 points across the whole lower region INCLUDING the 66%-100%
    # stretch of the transition band (the calibration code fits the lower
    # equation on every point below n_at_max).
    clients = _client_grid(0.05 * n_at_max, 0.999 * n_at_max, 12)
    mrts = [
        true.predict_ms(n) * float(np.exp(rng.normal(0.0, 0.01))) for n in clients
    ]
    refit = LowerEquation.fit(_points("srv", clients, mrts))
    assert refit.c_l == pytest.approx(c_l, rel=NOISY_SCALE_RTOL)
    # The exponent is small (order 1/n_at_max), so compare on the scale of
    # its effect over the fitted range rather than raw relative error.
    assert refit.lambda_l * n_at_max == pytest.approx(
        lam * n_at_max, abs=NOISY_RATE_RTOL * max(1.0, lam * n_at_max)
    )


@SETTINGS
@given(
    lambda_u_strategy,
    st.floats(min_value=50.0, max_value=2000.0),
    n_at_max_strategy,
    seed_strategy,
)
def test_upper_equation_roundtrip_with_seeded_noise(
    lambda_u, mrt_at_max, n_at_max, seed
):
    # Parameterize by the (positive) response time at n_at_max rather than
    # drawing c_u directly: an independent c_u can put the whole sampled
    # range below zero, which no measured system produces.
    c_u = mrt_at_max - lambda_u * n_at_max
    true = UpperEquation(lambda_u=lambda_u, c_u=c_u)
    rng = spawn_rng(seed, "fitting:upper")
    # Points from max throughput out to 1.7x, spanning the 100%-110% tail
    # of the transition band.
    clients = _client_grid(n_at_max, 1.7 * n_at_max, 12)
    mrts = [
        true.predict_ms(n) * (1.0 + float(rng.normal(0.0, 0.01))) for n in clients
    ]
    refit = UpperEquation.fit(_points("srv", clients, mrts))
    scale = max(abs(lambda_u * n_at_max), abs(c_u), 1.0)
    assert refit.lambda_u * n_at_max == pytest.approx(
        lambda_u * n_at_max, abs=NOISY_RATE_RTOL * scale
    )
    assert refit.c_u == pytest.approx(c_u, abs=NOISY_SCALE_RTOL * scale)


@SETTINGS
@given(c_l_strategy, lambda_l_strategy, n_at_max_strategy)
def test_lower_equation_exact_roundtrip(c_l, lam, n_at_max):
    true = LowerEquation(c_l=c_l, lambda_l=lam)
    clients = _client_grid(0.1 * n_at_max, 0.99 * n_at_max, 6)
    refit = LowerEquation.fit(
        _points("srv", clients, [true.predict_ms(n) for n in clients])
    )
    assert refit.c_l == pytest.approx(c_l, rel=1e-4)
    assert refit.lambda_l == pytest.approx(lam, rel=1e-4, abs=1e-9)


# -- piecewise model: the transition band ------------------------------------


@SETTINGS
@given(c_l_strategy, lambda_l_strategy, lambda_u_strategy, n_at_max_strategy)
def test_piecewise_model_is_continuous_at_band_edges(c_l, lam, lambda_u, n_at_max):
    lower = LowerEquation(c_l=c_l, lambda_l=lam)
    # Choose c_u so the upper equation sits above the lower at the handover
    # (the non-degenerate case the paper's figures show).
    n2 = TRANSITION_UPPER_FRACTION * n_at_max
    c_u = lower.predict_ms(TRANSITION_LOWER_FRACTION * n_at_max) * 2.0 - lambda_u * n2
    model = PiecewiseResponseModel.assemble(
        "srv", lower, UpperEquation(lambda_u=lambda_u, c_u=c_u), n_at_max
    )
    n1 = TRANSITION_LOWER_FRACTION * n_at_max
    assert model.predict_ms(n1) == pytest.approx(lower.predict_ms(n1), rel=1e-9)
    assert model.predict_ms(n2) == pytest.approx(model.upper.predict_ms(n2), rel=1e-9)
    # Monotone through the band: the transition phases upward.
    band = np.linspace(n1, n2, 20)
    values = [model.predict_ms(n) for n in band]
    assert all(b >= a for a, b in zip(values, values[1:]))


@SETTINGS
@given(
    c_l_strategy,
    lambda_l_strategy,
    lambda_u_strategy,
    n_at_max_strategy,
    st.floats(min_value=0.05, max_value=1.65),
)
def test_piecewise_capacity_inverts_prediction_in_every_region(
    c_l, lam, lambda_u, n_at_max, fraction
):
    """max_clients(predict_ms(n)) recovers n in lower, transition and upper
    regions — the closed-form inversion the paper's section 8.2 relies on."""
    lower = LowerEquation(c_l=c_l, lambda_l=lam)
    n2 = TRANSITION_UPPER_FRACTION * n_at_max
    c_u = lower.predict_ms(TRANSITION_LOWER_FRACTION * n_at_max) * 2.0 - lambda_u * n2
    model = PiecewiseResponseModel.assemble(
        "srv", lower, UpperEquation(lambda_u=lambda_u, c_u=c_u), n_at_max
    )
    n = fraction * n_at_max
    goal = model.predict_ms(n)
    if not np.isfinite(goal) or goal <= 0:
        return  # saturated exponent: inversion has nothing to recover
    recovered = model.max_clients(goal)
    # int() truncation plus region-boundary rounding: within one client of
    # the operating point (or the region edge it was clamped to).
    assert recovered == pytest.approx(n, abs=1.5, rel=0.01)
