"""The round-trip validation battery: fit, regenerate, compare."""

import pytest

from repro.util.errors import ValidationError
from repro.workloads.modulators import MixSchedule
from repro.workloads.scenario import ScenarioSpec, generate_records
from repro.workloads.dists import lognormal_spec
from repro.workloads.validation import (
    Tolerances,
    fit_scenario_from_records,
    validate_roundtrip,
)


def _source_records(n_clients=50, duration_s=240.0, seed=2024):
    spec = ScenarioSpec(
        name="source",
        n_clients=n_clients,
        duration_s=duration_s,
        think_time=lognormal_spec(8.3, 0.9),
        mix=MixSchedule.constant(0.15),
    )
    return generate_records(spec, seed=seed)


class TestFitScenario:
    def test_fitted_scenario_mirrors_source_shape(self):
        records = _source_records()
        spec, fit, tail_class = fit_scenario_from_records(records, name="refit")
        assert spec.name == "refit"
        assert spec.n_clients == records.n_clients
        assert spec.duration_s == pytest.approx(records.duration_ms / 1000.0)
        assert fit.spec.kind == "lognormal"
        assert tail_class in ("exponential", "heavy-tailed", "other")
        observed_buy = records.type_fractions().get("buy", 0.0)
        assert spec.mix.buy_fraction(0.0) == pytest.approx(observed_buy)


class TestRoundTrip:
    def test_self_generated_trace_validates(self):
        report = validate_roundtrip(_source_records(), seed=77)
        assert report.passed, report.to_dict()
        names = {check.name for check in report.checks}
        assert {"arrival_rate_req_per_s", "think_mean_ms", "think_cv2"} <= names
        assert any(name.startswith("mix_fraction:") for name in names)

    def test_report_is_deterministic(self):
        records = _source_records()
        first = validate_roundtrip(records, seed=77)
        second = validate_roundtrip(records, seed=77)
        assert first.to_dict() == second.to_dict()

    def test_impossible_tolerances_fail_with_diagnosis(self):
        tight = Tolerances(
            arrival_rate_rel=1e-9,
            think_mean_rel=1e-9,
            think_cv2_rel=1e-9,
            mix_fraction_abs=1e-9,
        )
        report = validate_roundtrip(_source_records(), seed=77, tolerances=tight)
        assert not report.passed
        failing = [check for check in report.checks if not check.passed]
        assert failing
        # Every failing check still carries both values for diagnosis.
        for check in failing:
            assert check.source != 0.0 or check.regenerated != 0.0

    def test_negative_seed_is_rejected(self):
        with pytest.raises(ValidationError):
            validate_roundtrip(_source_records(), seed=-1)

    def test_tolerances_must_be_positive(self):
        with pytest.raises(ValidationError):
            Tolerances(arrival_rate_rel=0.0)

    def test_payload_shape(self):
        payload = validate_roundtrip(_source_records(), seed=77).to_dict()
        assert set(payload) == {
            "scenario",
            "think_fit",
            "tail_class",
            "checks",
            "passed",
        }
        assert payload["scenario"]["name"] == "fitted"
