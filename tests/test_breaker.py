"""Unit tests for the circuit breaker's state machine, health score and
service integration."""

import pytest

from repro.service.breaker import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
)
from repro.util.clock import FakeClock
from repro.util.errors import ValidationError


def _breaker(clock, *, threshold=3, recovery=10.0, probes=1, alpha=0.5, on=None):
    return CircuitBreaker(
        BreakerConfig(
            failure_threshold=threshold,
            recovery_time_s=recovery,
            half_open_probes=probes,
            health_alpha=alpha,
        ),
        clock=clock,
        on_transition=on,
    )


def test_config_validation():
    with pytest.raises(ValidationError):
        BreakerConfig(failure_threshold=0)
    with pytest.raises(ValidationError):
        BreakerConfig(recovery_time_s=0.0)
    with pytest.raises(ValidationError):
        BreakerConfig(half_open_probes=0)
    with pytest.raises(ValidationError):
        BreakerConfig(health_alpha=0.0)
    with pytest.raises(ValidationError):
        BreakerConfig(health_alpha=1.5)


def test_closed_breaker_always_allows():
    breaker = _breaker(FakeClock())
    assert breaker.state is BreakerState.CLOSED
    assert all(breaker.allow() for _ in range(10))
    assert breaker.rejected_total == 0


def test_opens_after_consecutive_failures_only():
    breaker = _breaker(FakeClock(), threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()  # resets the consecutive count
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN


def test_open_rejects_until_recovery_time_elapses():
    clock = FakeClock()
    breaker = _breaker(clock, threshold=1, recovery=10.0)
    breaker.record_failure()
    assert not breaker.allow()
    assert breaker.rejected_total == 1
    clock.advance(9.999)
    assert not breaker.allow()
    clock.advance(0.001)
    assert breaker.allow()  # the probe
    assert breaker.state is BreakerState.HALF_OPEN


def test_half_open_probe_success_recloses():
    clock = FakeClock()
    breaker = _breaker(clock, threshold=1, recovery=5.0)
    breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    assert [(old, new) for _, old, new in breaker.transitions()] == [
        ("closed", "open"),
        ("open", "half_open"),
        ("half_open", "closed"),
    ]


def test_half_open_probe_failure_reopens_and_restarts_timer():
    clock = FakeClock()
    breaker = _breaker(clock, threshold=1, recovery=5.0)
    breaker.record_failure()  # open at t=0
    clock.advance(5.0)
    assert breaker.allow()  # probe at t=5
    breaker.record_failure()  # back to open at t=5
    assert breaker.state is BreakerState.OPEN
    clock.advance(4.0)
    assert not breaker.allow()  # t=9 < 5+5: timer restarted
    clock.advance(1.0)
    assert breaker.allow()


def test_half_open_caps_concurrent_probes():
    clock = FakeClock()
    breaker = _breaker(clock, threshold=1, recovery=1.0, probes=2)
    breaker.record_failure()
    clock.advance(1.0)
    assert breaker.allow()
    assert breaker.allow()
    assert not breaker.allow()  # both probe slots taken
    breaker.record_success()
    assert breaker.state is BreakerState.HALF_OPEN  # needs 2 successes
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED


def test_cancel_returns_the_half_open_probe_slot_without_an_outcome():
    clock = FakeClock()
    breaker = _breaker(clock, threshold=1, recovery=1.0, probes=1)
    breaker.record_failure()
    clock.advance(1.0)
    assert breaker.allow()  # the probe slot
    assert not breaker.allow()  # slot taken
    health_before = breaker.health_score
    breaker.cancel()  # the admitted attempt never ran: hand the slot back
    assert breaker.state is BreakerState.HALF_OPEN
    assert breaker.health_score == health_before  # no outcome was recorded
    assert breaker.allow()  # a fresh probe is admitted immediately
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED


def test_cancel_is_a_noop_outside_half_open():
    clock = FakeClock()
    breaker = _breaker(clock, threshold=2, recovery=1.0)
    breaker.cancel()  # CLOSED: nothing reserved, nothing changes
    assert breaker.state is BreakerState.CLOSED
    breaker.record_failure()
    breaker.record_failure()
    breaker.cancel()  # OPEN: probe accounting already reset
    assert breaker.state is BreakerState.OPEN
    assert breaker.health_score == pytest.approx(0.25)


def test_health_score_is_an_ewma_of_outcomes():
    breaker = _breaker(FakeClock(), alpha=0.5)
    assert breaker.health_score == 1.0
    breaker.record_failure()
    assert breaker.health_score == pytest.approx(0.5)
    breaker.record_success()
    assert breaker.health_score == pytest.approx(0.75)


def test_state_level_gauge_tracks_state():
    clock = FakeClock()
    breaker = _breaker(clock, threshold=1, recovery=1.0)
    assert breaker.state_level == 0.0
    breaker.record_failure()
    assert breaker.state_level == 2.0
    clock.advance(1.0)
    breaker.allow()
    assert breaker.state_level == 1.0


def test_transitions_carry_clock_timestamps_and_callback_fires():
    clock = FakeClock()
    seen = []
    breaker = _breaker(
        clock, threshold=1, recovery=2.0, on=lambda o, n, t: seen.append((o, n, t))
    )
    breaker.record_failure()
    clock.advance(2.0)
    breaker.allow()
    breaker.record_success()
    assert [t for t, _, _ in breaker.transitions()] == [0.0, 2.0, 2.0]
    assert seen == [
        (BreakerState.CLOSED, BreakerState.OPEN, 0.0),
        (BreakerState.OPEN, BreakerState.HALF_OPEN, 2.0),
        (BreakerState.HALF_OPEN, BreakerState.CLOSED, 2.0),
    ]


# -- service integration ------------------------------------------------------


class _FailingPredictor:
    """A predictor that fails until told to heal (transiently, so the
    service's retry/degrade machinery engages)."""

    def __init__(self):
        from repro.prediction.interface import PredictionTimer

        self.name = "failing"
        self.timer = PredictionTimer()
        self.healthy = False
        self.calls = 0

    def _answer(self) -> float:
        from repro.util.errors import ConvergenceError

        self.calls += 1
        if not self.healthy:
            raise ConvergenceError("primary down")
        return 42.0

    def predict_mrt_ms(self, server, n_clients, *, buy_fraction=0.0):
        return self._answer()

    def predict_throughput(self, server, n_clients, *, buy_fraction=0.0):
        return self._answer()

    def max_clients(self, server, rt_goal_ms, *, buy_fraction=0.0):
        return int(self._answer())


class _ConstantPredictor:
    """An always-healthy fallback."""

    def __init__(self):
        from repro.prediction.interface import PredictionTimer

        self.name = "constant"
        self.timer = PredictionTimer()

    def predict_mrt_ms(self, server, n_clients, *, buy_fraction=0.0):
        return 7.0

    def predict_throughput(self, server, n_clients, *, buy_fraction=0.0):
        return 7.0

    def max_clients(self, server, rt_goal_ms, *, buy_fraction=0.0):
        return 7


def _service(primary, fallback, clock, *, threshold=2, recovery=10.0):
    from repro.service.admission import AdmissionConfig
    from repro.service.service import PredictionService, ServiceConfig

    return PredictionService(
        primary,
        fallback=fallback,
        config=ServiceConfig(
            admission=AdmissionConfig(max_retries=0, backoff_initial_s=0.0),
            breaker=BreakerConfig(
                failure_threshold=threshold,
                recovery_time_s=recovery,
                half_open_probes=1,
            ),
        ),
        clock=clock,
    )


def test_service_opens_breaker_and_short_circuits_to_fallback():
    clock = FakeClock()
    primary = _FailingPredictor()
    with _service(primary, _ConstantPredictor(), clock) as service:
        # Two transient failures (distinct keys, so no cache interference).
        assert service.predict_mrt_ms("s", 1) == 7.0
        assert service.predict_mrt_ms("s", 2) == 7.0
        assert service.breaker.state is BreakerState.OPEN
        calls_when_opened = primary.calls
        # Open breaker: fallback answers without touching the primary.
        assert service.predict_mrt_ms("s", 3) == 7.0
        assert primary.calls == calls_when_opened
        metrics = service.export_metrics()
        assert metrics["degraded.breaker_open"] == 1
        assert metrics["breaker.state"] == 2.0
        assert metrics["breaker.rejected"] == 1


def test_service_breaker_recovers_after_primary_heals():
    clock = FakeClock()
    primary = _FailingPredictor()
    with _service(primary, _ConstantPredictor(), clock) as service:
        service.predict_mrt_ms("s", 1)
        service.predict_mrt_ms("s", 2)
        assert service.breaker.state is BreakerState.OPEN
        primary.healthy = True
        clock.advance(10.0)
        assert service.predict_mrt_ms("s", 4) == 42.0  # the successful probe
        assert service.breaker.state is BreakerState.CLOSED
        assert service.export_metrics()["breaker.to_closed"] == 1


def test_service_without_fallback_raises_circuit_open_error():
    clock = FakeClock()
    with _service(_FailingPredictor(), None, clock) as service:
        from repro.util.errors import ConvergenceError

        for n in (1, 2):
            with pytest.raises(ConvergenceError):
                service.predict_mrt_ms("s", n)
        with pytest.raises(CircuitOpenError):
            service.predict_mrt_ms("s", 3)


def test_service_cache_hits_bypass_an_open_breaker():
    clock = FakeClock()
    primary = _FailingPredictor()
    with _service(primary, _ConstantPredictor(), clock) as service:
        primary.healthy = True
        assert service.predict_mrt_ms("s", 1) == 42.0  # cached
        primary.healthy = False
        service.predict_mrt_ms("s", 2)
        service.predict_mrt_ms("s", 3)
        assert service.breaker.state is BreakerState.OPEN
        # The warm entry is still served even though the circuit is open.
        assert service.predict_mrt_ms("s", 1) == 42.0


def test_nontransient_primary_error_settles_the_breaker_bracket():
    """A primary failure outside TRANSIENT_ERRORS (a predictor bug, an
    injected non-transient fault) must still count as a breaker failure;
    a HALF_OPEN probe hitting one would otherwise leak its probe slot
    and wedge the breaker HALF_OPEN forever."""
    clock = FakeClock()
    primary = _FailingPredictor()

    def buggy_answer():
        raise ValueError("primary bug")

    primary._answer = buggy_answer
    with _service(primary, _ConstantPredictor(), clock, threshold=1) as service:
        with pytest.raises(ValueError):
            service.predict_mrt_ms("s", 1)
        assert service.breaker.state is BreakerState.OPEN
        clock.advance(10.0)
        # The HALF_OPEN probe fails non-transiently: back to OPEN, with
        # the probe slot released — not wedged HALF_OPEN.
        with pytest.raises(ValueError):
            service.predict_mrt_ms("s", 2)
        assert service.breaker.state is BreakerState.OPEN
        # Once the primary heals, the next probe re-closes the circuit.
        primary._answer = lambda: 42.0
        clock.advance(10.0)
        assert service.predict_mrt_ms("s", 3) == 42.0
        assert service.breaker.state is BreakerState.CLOSED


def test_coalesced_requests_charge_the_breaker_once_per_execution():
    """N requests sharing one coalesced execution must record one breaker
    outcome (the submitter's), not N."""
    import threading
    import time

    clock = FakeClock()
    primary = _FailingPredictor()
    entered = threading.Event()
    release = threading.Event()
    original = primary._answer

    def blocking_answer():
        entered.set()
        release.wait(timeout=5.0)
        return original()

    primary._answer = blocking_answer
    with _service(primary, _ConstantPredictor(), clock, threshold=2) as service:
        results = []
        first = threading.Thread(
            target=lambda: results.append(service.predict_mrt_ms("s", 1))
        )
        first.start()
        assert entered.wait(timeout=5.0)  # the primary execution is in flight
        second = threading.Thread(
            target=lambda: results.append(service.predict_mrt_ms("s", 1))
        )
        second.start()  # same key: coalesces onto the in-flight future
        for _ in range(500):  # hold the execution until the join happened
            if service.pool.stats().coalesced == 1:
                break
            time.sleep(0.01)
        assert service.pool.stats().coalesced == 1
        release.set()
        first.join(timeout=5.0)
        second.join(timeout=5.0)
        assert results == [7.0, 7.0]  # both degraded to the fallback
        # One execution failed, so the breaker saw ONE failure: below the
        # threshold of 2, the circuit must still be closed.
        assert service.breaker.state is BreakerState.CLOSED
        # A second (distinct-key) failing execution then opens it.
        assert service.predict_mrt_ms("s", 50) == 7.0
        assert service.breaker.state is BreakerState.OPEN


def test_service_without_breaker_config_has_no_breaker():
    from repro.service.service import PredictionService, ServiceConfig

    with PredictionService(_ConstantPredictor(), config=ServiceConfig()) as service:
        assert service.breaker is None
        assert service.predict_mrt_ms("s", 1) == 7.0
        assert "breaker.state" not in service.export_metrics()
