"""Tests for multicore (SMP) server support across simulator and LQN."""

import pytest

from repro.lqn.builder import RequestTypeParameters, TradeModelParameters, build_trade_model
from repro.lqn.solver import LqnSolver
from repro.servers.architecture import ServerArchitecture
from repro.simulation.engine import Simulator
from repro.simulation.resources import ProcessorSharingServer
from repro.simulation.system import SimulationConfig, simulate_deployment
from repro.workload.trade import typical_workload

PARAMS = TradeModelParameters(
    request_types={
        "browse": RequestTypeParameters(
            name="browse",
            app_demand_ms=5.376,
            db_calls=1.14,
            db_cpu_per_call_ms=0.8294,
            db_disk_per_call_ms=1.2,
        )
    }
)


class TestMulticoreStation:
    def test_single_job_uses_one_core(self):
        """A lone job cannot go faster than one core."""
        sim = Simulator()
        ps = ProcessorSharingServer(sim, "cpu", max_concurrency=100, cores=4)
        done = []
        ps.submit(10.0, lambda: done.append(sim.now))
        sim.run_until(100.0)
        assert done == [10.0]

    def test_two_jobs_two_cores_run_in_parallel(self):
        sim = Simulator()
        ps = ProcessorSharingServer(sim, "cpu", max_concurrency=100, cores=2)
        done = []
        ps.submit(10.0, lambda: done.append(sim.now))
        ps.submit(10.0, lambda: done.append(sim.now))
        sim.run_until(100.0)
        assert done == [10.0, 10.0]

    def test_overload_shares_all_cores(self):
        """4 equal jobs on 2 cores: each runs at rate 1/2, all done at 2D."""
        sim = Simulator()
        ps = ProcessorSharingServer(sim, "cpu", max_concurrency=100, cores=2)
        done = []
        for _ in range(4):
            ps.submit(10.0, lambda: done.append(sim.now))
        sim.run_until(100.0)
        assert done == [20.0] * 4

    def test_utilisation_per_core(self):
        sim = Simulator()
        ps = ProcessorSharingServer(sim, "cpu", max_concurrency=100, cores=2)
        ps.submit(10.0, lambda: None)  # one job: one of two cores busy
        sim.run_until(20.0)
        assert ps.stats.utilisation(sim.now) == pytest.approx(0.25)  # 10/20 * 1/2

    def test_work_accounting(self):
        sim = Simulator()
        ps = ProcessorSharingServer(sim, "cpu", max_concurrency=100, cores=2)
        ps.submit(10.0, lambda: None)
        ps.submit(10.0, lambda: None)
        sim.run_until(50.0)
        assert ps.stats.work_done_ms == pytest.approx(20.0)


class TestMulticoreSystem:
    @pytest.mark.slow
    def test_dual_core_doubles_capacity(self):
        dual = ServerArchitecture(name="Dual", cpu_speed=1.0, cores=2)
        config = SimulationConfig(duration_s=35.0, warmup_s=8.0, seed=4)
        result = simulate_deployment(dual, typical_workload(3200), config)
        assert result.throughput_req_per_s == pytest.approx(2 * 186.0, rel=0.05)

    @pytest.mark.slow
    def test_lqn_matches_simulated_dual_core(self):
        dual = ServerArchitecture(name="Dual", cpu_speed=1.0, cores=2)
        config = SimulationConfig(duration_s=35.0, warmup_s=8.0, seed=4)
        sim_result = simulate_deployment(dual, typical_workload(3200), config)
        solution = LqnSolver().solve(build_trade_model(dual, typical_workload(3200), PARAMS))
        assert solution.throughput_req_per_s["browse"] == pytest.approx(
            sim_result.throughput_req_per_s, rel=0.05
        )

    def test_lqn_maps_cores_to_processor_multiplicity(self):
        quad = ServerArchitecture(name="Quad", cpu_speed=1.0, cores=4)
        model = build_trade_model(quad, typical_workload(100), PARAMS)
        assert model.processors["app_cpu"].multiplicity == 4

    def test_calibration_scales_utilisation_by_cores(self):
        """On a multicore box the per-core utilisation understates total CPU
        work by the core count; calibration must compensate."""
        from repro.lqn.calibration import calibrate_from_simulator

        dual = ServerArchitecture(name="Dual", cpu_speed=1.0, cores=2)
        calibration = calibrate_from_simulator(
            dual,
            request_types=("browse",),
            clients_per_type=400,
            duration_s=40.0,
            warmup_s=10.0,
            seed=7,
        )
        demand = calibration.request_types["browse"].parameters.app_demand_ms
        assert demand == pytest.approx(5.376, rel=0.12)
