"""Tests for the layered solver: flattening, builder, and solution quality
against both analytic expectations and the simulator."""

import pytest

from repro.lqn.builder import (
    RequestTypeParameters,
    TradeModelParameters,
    build_trade_model,
)
from repro.lqn.model import Call, CallKind, Entry, LqnModel, Processor, Scheduling, Task
from repro.lqn.solver import LqnSolver, SolverOptions
from repro.servers.catalogue import APP_SERV_F, APP_SERV_S
from repro.util.errors import ValidationError
from repro.workload.trade import mixed_workload, typical_workload

BROWSE_PARAMS = RequestTypeParameters(
    name="browse",
    app_demand_ms=5.376,
    db_calls=1.14,
    db_cpu_per_call_ms=0.8294,
    db_disk_per_call_ms=1.2,
)
BUY_PARAMS = RequestTypeParameters(
    name="buy",
    app_demand_ms=10.455,
    db_calls=2.0,
    db_cpu_per_call_ms=1.613,
    db_disk_per_call_ms=1.5,
)
PARAMS = TradeModelParameters(
    request_types={"browse": BROWSE_PARAMS, "buy": BUY_PARAMS}
)


@pytest.fixture(scope="module")
def solver():
    return LqnSolver(SolverOptions(convergence_criterion_ms=0.5))


class TestBuilder:
    def test_model_validates(self):
        model = build_trade_model(APP_SERV_F, typical_workload(100), PARAMS)
        model.validate()

    def test_layers_are_client_app_db_disk(self):
        model = build_trade_model(APP_SERV_F, typical_workload(100), PARAMS)
        layers = [[t.name for t in layer] for layer in model.task_layers()]
        assert layers == [["browse"], ["app_server"], ["db_server"], ["disk"]]

    def test_app_processor_speed_scales_with_architecture(self):
        model = build_trade_model(APP_SERV_S, typical_workload(100), PARAMS)
        assert model.processors["app_cpu"].speed == pytest.approx(86 / 186)

    def test_mixed_workload_creates_two_reference_tasks(self):
        model = build_trade_model(APP_SERV_F, mixed_workload(100, 0.25), PARAMS)
        assert sorted(t.name for t in model.reference_tasks()) == ["browse", "buy"]

    def test_zero_clients_class_skipped(self):
        model = build_trade_model(APP_SERV_F, mixed_workload(100, 0.0), PARAMS)
        assert [t.name for t in model.reference_tasks()] == ["browse"]

    def test_uncalibrated_request_type_rejected(self):
        only_browse = TradeModelParameters(request_types={"browse": BROWSE_PARAMS})
        with pytest.raises(ValidationError, match="uncalibrated"):
            build_trade_model(APP_SERV_F, mixed_workload(100, 0.25), only_browse)

    def test_network_delay_adds_task(self):
        params = TradeModelParameters(
            request_types={"browse": BROWSE_PARAMS}, network_delay_ms=10.0
        )
        model = build_trade_model(APP_SERV_F, typical_workload(100), params)
        assert "network_link" in model.tasks

    def test_session_read_calls_add_db_session_entry(self):
        model = build_trade_model(
            APP_SERV_F,
            typical_workload(100),
            PARAMS,
            session_read_calls={"browse": 0.5},
        )
        assert model.entry("db_session").demand_ms == pytest.approx(0.8)
        client_entry = model.entry("client_browse")
        assert any(c.target_entry == "db_session" for c in client_entry.calls)


class TestSolverBasics:
    def test_low_load_response_equals_total_demand(self, solver):
        model = build_trade_model(APP_SERV_F, typical_workload(1), PARAMS)
        solution = solver.solve(model)
        expected = 5.376 + 1.14 * (0.8294 + 1.2)
        assert solution.response_ms["browse"] == pytest.approx(expected, rel=0.01)

    def test_throughput_obeys_cycle_law(self, solver):
        model = build_trade_model(APP_SERV_F, typical_workload(500), PARAMS)
        solution = solver.solve(model)
        x = solution.throughput_req_per_s["browse"]
        r = solution.response_ms["browse"]
        assert x == pytest.approx(500 / (7.0 + r / 1000.0), rel=0.01)

    def test_saturation_throughput_is_186(self, solver):
        model = build_trade_model(APP_SERV_F, typical_workload(3000), PARAMS)
        solution = solver.solve(model)
        assert solution.throughput_req_per_s["browse"] == pytest.approx(186.0, rel=0.02)

    def test_slow_server_scales(self, solver):
        model = build_trade_model(APP_SERV_S, typical_workload(2000), PARAMS)
        solution = solver.solve(model)
        assert solution.throughput_req_per_s["browse"] == pytest.approx(86.0, rel=0.02)

    def test_utilisations_reported_and_bounded(self, solver):
        model = build_trade_model(APP_SERV_F, typical_workload(1500), PARAMS)
        solution = solver.solve(model)
        for value in solution.processor_utilisation.values():
            assert 0.0 <= value <= 1.0 + 1e-9
        assert solution.processor_utilisation["app_cpu"] > 0.9

    def test_buy_class_has_longer_responses(self, solver):
        model = build_trade_model(APP_SERV_F, mixed_workload(800, 0.25), PARAMS)
        solution = solver.solve(model)
        assert solution.response_ms["buy"] > solution.response_ms["browse"]

    def test_mean_response_is_throughput_weighted(self, solver):
        model = build_trade_model(APP_SERV_F, mixed_workload(800, 0.25), PARAMS)
        solution = solver.solve(model)
        weighted = sum(
            solution.response_ms[c] * solution.throughput_req_per_s[c]
            for c in solution.response_ms
        ) / sum(solution.throughput_req_per_s.values())
        assert solution.mean_response_ms() == pytest.approx(weighted)

    def test_solve_count_increments(self):
        solver = LqnSolver()
        model = build_trade_model(APP_SERV_F, typical_workload(10), PARAMS)
        solver.solve(model)
        solver.solve(model)
        assert solver.solve_count == 2

    def test_network_delay_extension_adds_latency(self, solver):
        with_net = TradeModelParameters(
            request_types=dict(PARAMS.request_types), network_delay_ms=10.0
        )
        base = solver.solve(build_trade_model(APP_SERV_F, typical_workload(100), PARAMS))
        extended = solver.solve(
            build_trade_model(APP_SERV_F, typical_workload(100), with_net)
        )
        delta = extended.response_ms["browse"] - base.response_ms["browse"]
        assert delta == pytest.approx(10.0, rel=0.05)


class TestConvergenceCriterion:
    def test_tighter_criterion_more_iterations(self):
        model = build_trade_model(APP_SERV_F, typical_workload(1300), PARAMS)
        loose = LqnSolver(SolverOptions(convergence_criterion_ms=20.0)).solve(model)
        tight = LqnSolver(SolverOptions(convergence_criterion_ms=0.01)).solve(model)
        assert tight.iterations > loose.iterations

    def test_results_agree_when_converged(self):
        model = build_trade_model(APP_SERV_F, typical_workload(400), PARAMS)
        loose = LqnSolver(SolverOptions(convergence_criterion_ms=5.0)).solve(model)
        tight = LqnSolver(SolverOptions(convergence_criterion_ms=0.01)).solve(model)
        assert loose.response_ms["browse"] == pytest.approx(
            tight.response_ms["browse"], abs=10.0
        )


class TestMaxClientsSearch:
    def test_search_finds_capacity(self):
        solver = LqnSolver(SolverOptions(convergence_criterion_ms=1.0))

        def build(n: int) -> LqnModel:
            return build_trade_model(APP_SERV_F, typical_workload(n), PARAMS)

        capacity, evaluations = solver.max_clients_for_goal(
            build, 100.0, class_name="browse"
        )
        assert evaluations > 3  # it is a search, not a closed form
        # Verify the boundary: capacity meets the goal, capacity+1%-ish not.
        at = solver.solve(build(capacity)).response_ms["browse"]
        beyond = solver.solve(build(int(capacity * 1.05) + 2)).response_ms["browse"]
        assert at <= 100.0
        assert beyond > 100.0

    def test_goal_unreachable_returns_zero(self):
        solver = LqnSolver()

        def build(n: int) -> LqnModel:
            return build_trade_model(APP_SERV_F, typical_workload(n), PARAMS)

        capacity, _ = solver.max_clients_for_goal(build, 0.001, class_name="browse")
        assert capacity == 0


class TestAsyncAndPhase2:
    def _model(self, *, async_calls: bool = False, phase2: float = 0.0) -> LqnModel:
        model = LqnModel()
        model.add_processor(Processor(name="cl", scheduling=Scheduling.DELAY))
        model.add_processor(Processor(name="cpu"))
        model.add_processor(Processor(name="worker_cpu"))
        kind = CallKind.ASYNCHRONOUS if async_calls else CallKind.SYNCHRONOUS
        model.add_task(
            Task(
                name="worker",
                processor="worker_cpu",
                entries=(Entry("work", demand_ms=20.0),),
                multiplicity=100,
            )
        )
        model.add_task(
            Task(
                name="server",
                processor="cpu",
                entries=(
                    Entry(
                        "serve",
                        demand_ms=5.0,
                        calls=(Call("work", 1.0, kind=kind),),
                        phase2_demand_ms=phase2,
                    ),
                ),
                multiplicity=100,
            )
        )
        model.add_task(
            Task(
                name="clients",
                processor="cl",
                entries=(Entry("cycle", 0.0, calls=(Call("serve", 1.0),)),),
                multiplicity=20,
                is_reference=True,
                think_time_ms=1000.0,
            )
        )
        return model

    def test_async_call_off_response_path(self):
        solver = LqnSolver()
        sync = solver.solve(self._model(async_calls=False))
        asynch = solver.solve(self._model(async_calls=True))
        # The 20ms downstream work no longer blocks the caller.
        assert asynch.response_ms["clients"] < sync.response_ms["clients"] - 15.0
        # But it still loads the worker processor.
        assert asynch.processor_utilisation["worker_cpu"] > 0.0

    def test_phase2_off_response_path_but_loads_cpu(self):
        solver = LqnSolver()
        base = solver.solve(self._model())
        with_p2 = solver.solve(self._model(phase2=15.0))
        assert with_p2.response_ms["clients"] == pytest.approx(
            base.response_ms["clients"], rel=0.25
        )
        assert (
            with_p2.processor_utilisation["cpu"] > base.processor_utilisation["cpu"]
        )


class TestAgainstSimulator:
    @pytest.mark.slow
    def test_calibrated_model_tracks_simulator(self, lqn_calibration_fast, short_config):
        from repro.simulation.system import simulate_deployment

        params = lqn_calibration_fast.to_model_parameters()
        solver = LqnSolver(SolverOptions(convergence_criterion_ms=0.5))
        for n in (300, 900):
            model = build_trade_model(APP_SERV_F, typical_workload(n), params)
            solution = solver.solve(model)
            sim = simulate_deployment(APP_SERV_F, typical_workload(n), short_config)
            assert solution.throughput_req_per_s["browse"] == pytest.approx(
                sim.throughput_req_per_s, rel=0.05
            )
