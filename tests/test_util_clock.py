"""Tests for the injectable clock (repro.util.clock)."""

import pytest

from repro.util.clock import SYSTEM_CLOCK, Clock, FakeClock
from repro.util.errors import ValidationError


class TestClock:
    def test_system_clock_is_monotonic(self):
        a = SYSTEM_CLOCK.perf_s()
        b = SYSTEM_CLOCK.perf_s()
        assert b >= a
        assert SYSTEM_CLOCK.monotonic_s() <= SYSTEM_CLOCK.monotonic_s()

    def test_singleton_is_a_plain_clock(self):
        assert type(SYSTEM_CLOCK) is Clock


class TestFakeClock:
    def test_starts_at_given_time_and_advances(self):
        clock = FakeClock(start_s=5.0)
        assert clock.perf_s() == 5.0
        assert clock.advance(2.5) == 7.5
        assert clock.perf_s() == 7.5

    def test_perf_and_monotonic_read_the_same_hand(self):
        clock = FakeClock()
        clock.advance(1.25)
        assert clock.perf_s() == clock.monotonic_s() == 1.25

    def test_rejects_negative_times(self):
        with pytest.raises(ValidationError):
            FakeClock(start_s=-1.0)
        with pytest.raises(ValidationError):
            FakeClock().advance(-0.1)

    def test_is_substitutable_for_clock(self):
        def measure(clock: Clock) -> float:
            start = clock.perf_s()
            clock_advance = getattr(clock, "advance", None)
            if clock_advance is not None:
                clock_advance(0.5)
            return clock.perf_s() - start

        assert measure(FakeClock()) == 0.5
        assert measure(SYSTEM_CLOCK) >= 0.0
