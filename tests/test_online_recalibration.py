"""Tests for dynamic client transfer and the online recalibration workflow
(section 4.2's workload-manager procedure)."""

import pytest

from repro.historical.online import OnlineCalibrationSession
from repro.historical.relationships import LowerEquation
from repro.servers.catalogue import APP_SERV_F
from repro.simulation.clients import ClientPopulation
from repro.simulation.engine import Simulator
from repro.simulation.metrics import MetricsCollector
from repro.util.errors import SimulationError


class TestDynamicPopulations:
    def _session(self, n):
        return OnlineCalibrationSession(APP_SERV_F, n_clients=n, seed=3)

    def test_add_clients_raises_throughput(self):
        session = self._session(200)
        session.run_for(20.0)
        before = session._metrics.for_class("browse").count
        session.run_for(30.0)
        rate_small = (session._metrics.for_class("browse").count - before) / 30.0
        session.transfer_clients(+400)
        session.run_for(20.0)  # settle
        before = session._metrics.for_class("browse").count
        session.run_for(30.0)
        rate_large = (session._metrics.for_class("browse").count - before) / 30.0
        # 3x the clients => ~3x the throughput below saturation.
        assert rate_large == pytest.approx(3 * rate_small, rel=0.2)

    def test_remove_clients_shrinks_population(self):
        session = self._session(300)
        session.run_for(10.0)
        session.transfer_clients(-200)
        # Departures happen at each client's next send: within ~one think
        # time the population converges to the target.
        session.run_for(30.0)
        assert session.current_clients == 100

    def test_remove_below_zero_clamps(self):
        session = self._session(10)
        session.transfer_clients(-50)
        session.run_for(30.0)
        assert session.current_clients == 0

    def test_population_counts(self):
        sim = Simulator()
        from repro.servers.catalogue import DB_SERVER
        from repro.simulation.appserver import AppServerSim
        from repro.simulation.database import DatabaseServerSim
        from repro.util.rng import RngStreams
        from repro.workload.trade import browse_class

        streams = RngStreams(1)
        db = DatabaseServerSim(sim, DB_SERVER)
        server = AppServerSim(sim, APP_SERV_F, db, streams.get("s"))
        pop = ClientPopulation(
            sim, browse_class(), 5, server, MetricsCollector(), streams.get("c")
        )
        pop.start()
        assert pop.current_size == 5
        pop.add_clients(3)
        assert pop.target_size == 8
        assert pop.current_size == 8


class TestOnlineRecalibration:
    def test_recording_cost_explodes_past_saturation(self):
        """The paper's 4.5 s -> 2.2 min recording-time asymmetry: with a
        think-less benchmarking client, 50 samples cost 50 response times,
        which balloon once the server saturates."""
        below = OnlineCalibrationSession(APP_SERV_F, n_clients=600, seed=5)
        below.run_for(15.0)
        fast = below.record_point(50)

        above = OnlineCalibrationSession(APP_SERV_F, n_clients=1700, seed=5)
        above.run_for(40.0)
        slow = above.record_point(50)

        # Below saturation: ~50 x ~30ms = a couple of seconds of model time.
        assert fast.recording_time_ms < 10_000.0
        # Above: each response takes seconds; 50 samples take minutes.
        assert slow.recording_time_ms > 60_000.0
        assert slow.point.mean_response_ms > 20 * fast.point.mean_response_ms

    def test_two_point_lower_calibration_workflow(self):
        """Record, transfer clients, settle, record again, fit — the whole
        section-4.2 loop — and check the fitted equation is sane."""
        session = OnlineCalibrationSession(APP_SERV_F, n_clients=450, seed=8)
        session.run_for(15.0)
        first = session.record_point(50)
        session.transfer_clients(+420)  # toward the 66% anchor
        session.run_for(20.0)  # settle at the new load
        second = session.record_point(50)

        assert second.point.n_clients > first.point.n_clients
        lower = LowerEquation.fit([first.point, second.point])
        assert lower.c_l > 0
        # The fitted curve passes through both recorded points.
        assert lower.predict_ms(first.point.n_clients) == pytest.approx(
            first.point.mean_response_ms, rel=1e-9
        )

    def test_recording_deadline_enforced(self):
        session = OnlineCalibrationSession(APP_SERV_F, n_clients=10, seed=2)
        with pytest.raises(SimulationError, match="did not finish"):
            session.record_point(10_000, max_model_seconds=5.0)

    def test_benchmark_client_isolated_from_workload_metrics(self):
        session = OnlineCalibrationSession(APP_SERV_F, n_clients=100, seed=2)
        session.run_for(20.0)
        recorded = session.record_point(20)
        assert recorded.point.n_clients == 100  # workload size, not 101
        assert session._metrics.for_class("browse").count > 0
        assert session._metrics.for_class("benchmark").count >= 20
