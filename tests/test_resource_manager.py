"""Tests for the resource manager: Algorithm 1, runtime evaluation, slack.

A deterministic analytic fake predictor replaces the real prediction models
so capacities can be hand-computed: a server of capacity C predicts mean
response time ``goal-proportional`` so that exactly ``C`` clients fit any
goal (response jumps above every goal past C).
"""

import pytest

from repro.prediction.interface import PredictionTimer
from repro.resource_manager.allocation import Allocation, ManagedServer, allocate
from repro.resource_manager.runtime import evaluate_runtime
from repro.resource_manager.sla import ClassWorkload, class_rt_factor
from repro.resource_manager.slack import SlackAnalysis, sweep_loads
from repro.util.errors import ValidationError


class StepPredictor:
    """Fake predictor: response time is tiny up to a per-architecture client
    capacity, then enormous.  ``scale`` under/over-states capacity to model
    predictive inaccuracy (scale < 1: pessimistic, > 1: optimistic)."""

    def __init__(self, capacities: dict[str, int], scale: float = 1.0, name: str = "fake"):
        self.capacities = capacities
        self.scale = scale
        self.name = name
        self.timer = PredictionTimer()

    def _capacity(self, server: str) -> int:
        return int(self.capacities[server] * self.scale)

    def predict_mrt_ms(self, server: str, n_clients: float, *, buy_fraction: float = 0.0) -> float:
        return 1.0 if n_clients <= self._capacity(server) else 1e9

    def predict_throughput(self, server: str, n_clients: float, *, buy_fraction: float = 0.0) -> float:
        return min(n_clients * 0.14, self._capacity(server) * 0.14)

    def max_clients(self, server: str, rt_goal_ms: float, *, buy_fraction: float = 0.0) -> int:
        return self._capacity(server)


def servers_pool():
    return [
        ManagedServer(name="big", architecture="big", max_throughput_req_per_s=300.0),
        ManagedServer(name="mid", architecture="mid", max_throughput_req_per_s=200.0),
        ManagedServer(name="small", architecture="small", max_throughput_req_per_s=100.0),
    ]


CAPS = {"big": 300, "mid": 200, "small": 100}


def classes_single(n=250, goal=500.0):
    return [ClassWorkload(name="c", n_clients=n, rt_goal_ms=goal)]


class TestClassRtFactor:
    def test_buy_factor_above_one(self):
        assert class_rt_factor(True, 0.1) > 1.0

    def test_browse_factor_below_one_in_mixed_load(self):
        assert class_rt_factor(False, 0.5) < 1.0

    def test_pure_browse_factor_is_one(self):
        assert class_rt_factor(False, 0.0) == pytest.approx(1.0)

    def test_factors_average_to_one(self):
        b = 0.3
        mean = b * class_rt_factor(True, b) + (1 - b) * class_rt_factor(False, b)
        assert mean == pytest.approx(1.0)


class TestAllocation:
    def test_single_class_fits_on_one_server(self):
        allocation = allocate(classes_single(250), servers_pool(), StepPredictor(CAPS))
        assert allocation.total_allocated() == 250
        assert allocation.total_unallocated() == 0

    def test_greedy_picks_biggest_first_when_insufficient(self):
        # 550 clients: big(300) then mid(200) then small(50 of 100).
        allocation = allocate(classes_single(550), servers_pool(), StepPredictor(CAPS))
        assert allocation.per_server["big"]["c"] == 300
        assert allocation.per_server["mid"]["c"] == 200
        assert allocation.per_server["small"]["c"] == 50

    def test_last_server_rule_smallest_sufficient(self):
        # 80 clients fit on every server; the smallest sufficient one wins.
        allocation = allocate(classes_single(80), servers_pool(), StepPredictor(CAPS))
        assert allocation.per_server == {"small": {"c": 80}}

    def test_priority_order_tightest_goal_first(self):
        classes = [
            ClassWorkload(name="lax", n_clients=550, rt_goal_ms=600.0),
            ClassWorkload(name="tight", n_clients=300, rt_goal_ms=150.0),
        ]
        allocation = allocate(classes, servers_pool(), StepPredictor(CAPS))
        # Tight class processed first: fully allocated; lax class overflows.
        tight_total = sum(
            alloc.get("tight", 0) for alloc in allocation.per_server.values()
        )
        assert tight_total == 300
        assert allocation.unallocated.get("lax", 0) == 250

    def test_overflow_rejected_when_pool_exhausted(self):
        allocation = allocate(classes_single(1000), servers_pool(), StepPredictor(CAPS))
        assert allocation.total_allocated() == 600
        assert allocation.unallocated["c"] == 400

    def test_slack_inflates_allocation(self):
        allocation = allocate(
            classes_single(200), servers_pool(), StepPredictor(CAPS), slack=1.5
        )
        assert allocation.total_allocated() == 300

    def test_slack_zero_allocates_nothing(self):
        allocation = allocate(
            classes_single(200), servers_pool(), StepPredictor(CAPS), slack=0.0
        )
        assert allocation.total_allocated() == 0

    def test_zero_client_class_skipped(self):
        allocation = allocate(classes_single(0), servers_pool(), StepPredictor(CAPS))
        assert allocation.total_allocated() == 0
        assert allocation.total_unallocated() == 0

    def test_predictions_counted(self):
        allocation = allocate(classes_single(250), servers_pool(), StepPredictor(CAPS))
        assert allocation.predictions_made > 0

    def test_duplicate_class_names_rejected(self):
        classes = [
            ClassWorkload(name="c", n_clients=10, rt_goal_ms=100.0),
            ClassWorkload(name="c", n_clients=10, rt_goal_ms=200.0),
        ]
        with pytest.raises(ValidationError):
            allocate(classes, servers_pool(), StepPredictor(CAPS))

    def test_no_servers_rejected(self):
        with pytest.raises(ValidationError):
            allocate(classes_single(10), [], StepPredictor(CAPS))

    def test_helpers(self):
        allocation = allocate(classes_single(550), servers_pool(), StepPredictor(CAPS))
        assert allocation.servers_used() == ["big", "mid", "small"]
        assert allocation.clients_on("big") == 300


class TestRuntime:
    def test_accurate_predictions_no_failures(self):
        classes = classes_single(250)
        servers = servers_pool()
        predictor = StepPredictor(CAPS)
        allocation = allocate(classes, servers, predictor)
        outcome = evaluate_runtime(
            allocation, classes, servers, StepPredictor(CAPS), rejection_threshold=0.0
        )
        assert outcome.sla_failure_pct == 0.0
        assert outcome.rejected_clients == 0

    def test_optimistic_predictor_causes_failures(self):
        """The allocator believes capacity is 1.3x reality and the pool is
        full, so the runtime must reject the overflow."""
        classes = classes_single(780)  # = 600 * 1.3: optimistic full pool
        servers = servers_pool()
        optimistic = StepPredictor(CAPS, scale=1.3)
        allocation = allocate(classes, servers, optimistic)
        assert allocation.total_unallocated() == 0  # allocator thinks it fits
        outcome = evaluate_runtime(
            allocation, classes, servers, StepPredictor(CAPS), rejection_threshold=0.0
        )
        assert outcome.rejected_clients == pytest.approx(180, abs=5)

    def test_runtime_optimisation_reabsorbs_overflow(self):
        """A pessimistic allocator leaves headroom; real clients rejected
        from one server fill it."""
        classes = classes_single(250)
        servers = servers_pool()
        pessimistic = StepPredictor(CAPS, scale=0.5)  # thinks big holds 150
        allocation = allocate(classes, servers, pessimistic)
        # Plan spreads 250 across servers; ground truth says any single
        # server layout works, so no client is lost.
        outcome = evaluate_runtime(
            allocation, classes, servers, StepPredictor(CAPS), rejection_threshold=0.0
        )
        assert outcome.sla_failure_pct == 0.0

    def test_unallocated_clients_count_as_failures(self):
        classes = classes_single(700)
        servers = servers_pool()
        allocation = allocate(classes, servers, StepPredictor(CAPS))
        outcome = evaluate_runtime(
            allocation, classes, servers, StepPredictor(CAPS), rejection_threshold=0.0
        )
        assert outcome.rejected_clients == 100
        assert outcome.sla_failure_pct == pytest.approx(100 * 100 / 700)

    def test_server_usage_pct(self):
        classes = classes_single(80)
        servers = servers_pool()
        allocation = allocate(classes, servers, StepPredictor(CAPS))
        outcome = evaluate_runtime(allocation, classes, servers, StepPredictor(CAPS))
        # Only 'small' used: 100 of 600 total processing power.
        assert outcome.server_usage_pct == pytest.approx(100 * 100 / 600)

    def test_slack_scales_real_clients_back(self):
        classes = classes_single(200)
        servers = servers_pool()
        allocation = allocate(classes, servers, StepPredictor(CAPS), slack=1.5)
        outcome = evaluate_runtime(
            allocation, classes, servers, StepPredictor(CAPS), rejection_threshold=0.0
        )
        # 300 planned slots but only the 200 real clients arrive; all fit.
        placed_total = sum(sum(b.values()) for b in outcome.placed.values())
        assert placed_total == 200
        assert outcome.sla_failure_pct == 0.0


class TestSlackSweep:
    def test_sweep_produces_point_per_load(self):
        servers = servers_pool()
        result = sweep_loads(
            [100, 300, 700],
            1.0,
            workload_for=classes_single,
            servers=servers,
            predictor=StepPredictor(CAPS),
            ground_truth=StepPredictor(CAPS),
        )
        assert result.loads() == [100, 300, 700]
        assert len(result.sla_failure_series()) == 3

    def test_failures_grow_with_load_beyond_pool(self):
        servers = servers_pool()
        result = sweep_loads(
            [300, 900],
            1.0,
            workload_for=classes_single,
            servers=servers,
            predictor=StepPredictor(CAPS),
            ground_truth=StepPredictor(CAPS),
        )
        failures = result.sla_failure_series()
        assert failures[0] == 0.0
        assert failures[1] > 0.0

    def test_analysis_finds_zero_failure_slack(self):
        servers = servers_pool()
        analysis = SlackAnalysis.run(
            [0.5, 1.0],
            [100, 400],
            workload_for=classes_single,
            servers=servers,
            predictor=StepPredictor(CAPS),
            ground_truth=StepPredictor(CAPS),
        )
        assert analysis.min_zero_failure_slack == 1.0
        rows = analysis.tradeoff_series()
        assert rows[0][0] == 1.0  # sorted by decreasing slack
        # At the zero-failure slack the saving is zero by definition.
        assert rows[0][2] == pytest.approx(0.0)

    def test_usage_saving_grows_as_slack_drops(self):
        servers = servers_pool()
        analysis = SlackAnalysis.run(
            [0.4, 0.7, 1.0],
            [150, 450],
            workload_for=classes_single,
            servers=servers,
            predictor=StepPredictor(CAPS),
            ground_truth=StepPredictor(CAPS),
        )
        rows = analysis.tradeoff_series()
        savings = [r[2] for r in rows]
        assert savings == sorted(savings)
