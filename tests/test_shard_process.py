"""Smoke tests for the multi-process shard backend (one worker per shard).

Small by design — real subprocesses on CI are expensive — but they
cover the full protocol surface once: serve through the router, shared
L2 visibility across worker processes, snapshot shipping, trace
merging, heartbeats, hard kill + ejection, and clean shutdown.
"""

from __future__ import annotations

import pytest

from repro.service.shard import (
    ProcessShardBackend,
    ShardSpec,
    ShardedPredictionService,
)
from repro.service.shard.testing import DeterministicStubPredictor
from repro.trace import TRACER, RingBufferSink

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def cluster():
    """One 2-worker cluster shared by the module's tests (ordering matters)."""
    spec = ShardSpec(
        factory="repro.service.shard.testing:build_stub_service", trace=True
    )
    backend = ProcessShardBackend(("w0", "w1"), spec, request_timeout_s=30.0)
    router = ShardedPredictionService(backend)
    yield router, backend
    router.shutdown()


def test_serves_stub_values_through_worker_processes(cluster) -> None:
    """Routed answers equal the stub's, so the IPC path is transparent."""
    router, _ = cluster
    stub = DeterministicStubPredictor()
    assert router.predict_mrt_ms("shop", 60) == stub.predict_mrt_ms("shop", 60)
    assert router.predict_throughput("shop", 40) == stub.predict_throughput("shop", 40)
    assert router.max_clients("shop", 500.0) == stub.max_clients("shop", 500.0)


def test_l2_is_shared_across_worker_processes(cluster) -> None:
    """A value computed in one worker is an L2 hit for the other."""
    router, backend = cluster
    info = router.serve_info("mrt", "crossshard", 77.0, 0.0)
    other = next(s for s in backend.shard_ids() if s != info.shard)
    value, outcome = backend.request(other, "mrt", "crossshard", 77.0, 0.0)
    assert value == info.value
    assert outcome == "l2_hit"


def test_snapshots_ship_and_merge(cluster) -> None:
    """Worker snapshots cross the pipe and merge into cluster counters."""
    router, backend = cluster
    merged = router.snapshot()
    shard_requests = sum(
        backend.snapshot(s).counters.get("cache.requests", 0)
        for s in backend.shard_ids()
    )
    assert merged.counters["cache.requests"] == shard_requests
    assert merged.counters["router.requests"] >= 4


def test_worker_traces_merge_into_one_timeline(cluster) -> None:
    """Worker spans drain across the pipe into the parent's timeline."""
    router, backend = cluster
    router.predict_mrt_ms("traced", 50)
    sink = RingBufferSink()
    TRACER.enable(sink)
    try:
        merged = sum(
            backend.drain_trace_into_timeline(s) for s in backend.shard_ids()
        )
    finally:
        TRACER.disable()
    assert merged > 0
    events = sink.events()
    assert events and all(e.name == "shard.worker_span" for e in events)
    assert {e.attributes["shard"] for e in events} <= {"w0", "w1"}
    assert any(e.attributes["span_name"] == "service.request" for e in events)


def test_ping_and_kill_feed_health(cluster) -> None:
    """Heartbeats pass while alive; a hard-killed worker gets ejected.

    Runs last in the module (the fixture is module-scoped and this test
    kills one of its workers).
    """
    router, backend = cluster
    assert router.poll_health() == {"w0": True, "w1": True}
    backend.kill("w0")
    assert backend.ping("w0") is False
    # Three failed heartbeat polls trip the dead worker's breaker even
    # though no request happened to route to it.
    for _ in range(3):
        assert router.poll_health()["w0"] is False
    assert "w0" in router.health.ejected()
    for _ in range(4):  # every request still answers via the survivor
        info = router.serve_info("mrt", "afterkill", 42.0, 0.0)
        assert info.shard == "w1"
