"""Integration tests for the full simulated deployment.

These validate the simulator against queueing-theoretic laws rather than
point values: closed-workload throughput, utilisation laws, saturation
throughput, determinism, and the per-application-server database queues.
"""

import pytest

from repro.servers.architecture import DatabaseArchitecture, ServerArchitecture
from repro.servers.catalogue import APP_SERV_F, APP_SERV_S, DB_SERVER
from repro.simulation.system import (
    SimulatedDeployment,
    SimulationConfig,
    simulate_deployment,
)
from repro.util.errors import ValidationError
from repro.workload.trade import browse_class, buy_class, mixed_workload, typical_workload


@pytest.fixture(scope="module")
def light_run():
    config = SimulationConfig(duration_s=40.0, warmup_s=10.0, seed=5)
    return simulate_deployment(APP_SERV_F, typical_workload(400), config)


@pytest.fixture(scope="module")
def saturated_run():
    config = SimulationConfig(duration_s=40.0, warmup_s=10.0, seed=5)
    return simulate_deployment(APP_SERV_F, typical_workload(2200), config)


class TestClosedWorkloadLaws:
    def test_light_load_throughput_matches_cycle_law(self, light_run):
        """X = N / (Z + R): 400 clients, 7 s think, small R."""
        expected = 400 / (7.0 + light_run.mean_response_ms / 1000.0)
        assert light_run.throughput_req_per_s == pytest.approx(expected, rel=0.05)

    def test_utilisation_law(self, light_run):
        """U = X * D with D the browse app demand (5.376 ms at speed 1)."""
        expected = light_run.throughput_req_per_s * 5.376 / 1000.0
        assert light_run.app_cpu_utilisation["AppServF"] == pytest.approx(
            expected, rel=0.08
        )

    def test_db_calls_per_request(self, light_run):
        assert light_run.db_requests_per_app_request == pytest.approx(1.14, abs=0.05)

    def test_saturation_throughput_near_paper_value(self, saturated_run):
        """AppServF saturates around the paper's 186 req/s."""
        assert saturated_run.throughput_req_per_s == pytest.approx(186.0, rel=0.05)

    def test_saturated_cpu_fully_utilised(self, saturated_run):
        assert saturated_run.app_cpu_utilisation["AppServF"] > 0.98

    def test_saturated_response_time_reflects_queueing(self, saturated_run):
        """Past saturation R ~ N/X - Z grows to seconds."""
        expected = 2200 / saturated_run.throughput_req_per_s * 1000.0 - 7000.0
        assert saturated_run.mean_response_ms == pytest.approx(expected, rel=0.25)

    def test_low_load_response_near_service_demand(self):
        config = SimulationConfig(duration_s=60.0, warmup_s=10.0, seed=5)
        result = simulate_deployment(APP_SERV_F, typical_workload(20), config)
        # demand ~5.4 app + ~2.3 db + ~10 network: well under 30 ms.
        assert 10.0 < result.mean_response_ms < 30.0


class TestScalingAcrossArchitectures:
    def test_slow_server_slower_and_lower_capacity(self):
        config = SimulationConfig(duration_s=30.0, warmup_s=8.0, seed=5)
        fast = simulate_deployment(APP_SERV_F, typical_workload(1200), config)
        slow = simulate_deployment(APP_SERV_S, typical_workload(1200), config)
        assert slow.throughput_req_per_s < fast.throughput_req_per_s
        assert slow.mean_response_ms > fast.mean_response_ms

    def test_slow_server_saturation_near_86(self):
        config = SimulationConfig(duration_s=40.0, warmup_s=10.0, seed=5)
        result = simulate_deployment(APP_SERV_S, typical_workload(1100), config)
        assert result.throughput_req_per_s == pytest.approx(86.0, rel=0.06)


class TestDeterminismAndClasses:
    def test_same_seed_reproduces_exactly(self, tiny_config):
        a = simulate_deployment(APP_SERV_F, typical_workload(150), tiny_config)
        b = simulate_deployment(APP_SERV_F, typical_workload(150), tiny_config)
        assert a.mean_response_ms == b.mean_response_ms
        assert a.samples == b.samples
        assert a.events_processed == b.events_processed

    def test_different_seed_differs(self, tiny_config):
        a = simulate_deployment(APP_SERV_F, typical_workload(150), tiny_config)
        b = simulate_deployment(
            APP_SERV_F, typical_workload(150), tiny_config.with_overrides(seed=99)
        )
        assert a.mean_response_ms != b.mean_response_ms

    def test_mixed_workload_reports_both_classes(self, short_config):
        result = simulate_deployment(
            APP_SERV_F, mixed_workload(400, 0.25), short_config
        )
        assert set(result.per_class_mean_ms) == {"browse", "buy"}
        # Buy requests are heavier: higher class response time.
        assert result.per_class_mean_ms["buy"] > result.per_class_mean_ms["browse"]

    def test_buy_fraction_reflected_in_throughput_split(self, short_config):
        result = simulate_deployment(
            APP_SERV_F, mixed_workload(400, 0.25), short_config
        )
        total = sum(result.per_class_throughput.values())
        assert result.per_class_throughput["buy"] / total == pytest.approx(0.25, abs=0.05)

    def test_zero_client_class_is_skipped(self, tiny_config):
        result = simulate_deployment(
            APP_SERV_F, {browse_class(): 100, buy_class(): 0}, tiny_config
        )
        assert list(result.per_class_mean_ms) == ["browse"]


class TestMultiServerDeployment:
    def test_two_servers_share_one_database(self, tiny_config):
        deployment = SimulatedDeployment(
            placements={
                "f0": (APP_SERV_F, typical_workload(150)),
                "f1": (APP_SERV_F, typical_workload(150)),
            },
            config=tiny_config,
        )
        result = deployment.run()
        assert set(result.app_cpu_utilisation) == {"f0", "f1"}
        # Both servers served traffic.
        assert result.throughput_req_per_s > 30.0

    def test_empty_deployment_rejected(self, tiny_config):
        with pytest.raises(ValidationError):
            SimulatedDeployment(placements={}, config=tiny_config).run()


class TestCachingPath:
    def test_ample_cache_no_misses_after_warmup(self):
        config = SimulationConfig(
            duration_s=30.0, warmup_s=10.0, seed=5, enable_cache=True,
            cache_bytes=10**9,
        )
        result = simulate_deployment(APP_SERV_F, typical_workload(200), config)
        assert result.cache_miss_rate == pytest.approx(0.0, abs=0.01)

    def test_tiny_cache_misses_and_adds_db_calls(self):
        base_config = SimulationConfig(duration_s=30.0, warmup_s=10.0, seed=5)
        base = simulate_deployment(APP_SERV_S, typical_workload(400), base_config)
        config = base_config.with_overrides(enable_cache=True, cache_bytes=100_000)
        cached = simulate_deployment(APP_SERV_S, typical_workload(400), config)
        assert cached.cache_miss_rate > 0.3
        # Every miss costs exactly one extra database call (section 7.2).
        extra_calls = (
            cached.db_requests_per_app_request - base.db_requests_per_app_request
        )
        assert extra_calls == pytest.approx(cached.cache_miss_rate, abs=0.1)

    def test_cache_misses_slow_responses_on_average(self):
        """RT inflation is visible once averaged over seeds (a single run at
        the knee is too noisy to compare point-wise)."""
        def mean_rt(enable_cache: bool) -> float:
            total = 0.0
            for seed in (1, 2, 3):
                config = SimulationConfig(
                    duration_s=25.0,
                    warmup_s=8.0,
                    seed=seed,
                    enable_cache=enable_cache,
                    cache_bytes=60_000 if enable_cache else None,
                )
                total += simulate_deployment(
                    APP_SERV_S, typical_workload(250), config
                ).mean_response_ms
            return total / 3

        assert mean_rt(True) > mean_rt(False)

    def test_cache_disabled_reports_none(self, light_run):
        assert light_run.cache_miss_rate is None


class TestDatabaseFairness:
    def test_round_robin_serves_all_sources(self, tiny_config):
        """With a tiny DB thread limit both app servers still make progress."""
        db = DatabaseArchitecture(name="db", cpu_speed=1.0, max_concurrency=2)
        deployment = SimulatedDeployment(
            placements={
                "a": (APP_SERV_F, typical_workload(200)),
                "b": (APP_SERV_F, typical_workload(200)),
            },
            db_arch=db,
            config=tiny_config,
        )
        result = deployment.run()
        assert result.throughput_req_per_s > 20.0
