"""Heterogeneous think times — "heterogeneous think-times are supported by
all three methods" (section 3.1).  Validates that classes with different
think times coexist correctly in the simulator and the layered model, and
that the historical gradient relationship tracks the think time."""

import pytest

from repro.historical.throughput import gradient_from_think_time
from repro.lqn.builder import RequestTypeParameters, TradeModelParameters, build_trade_model
from repro.lqn.solver import LqnSolver
from repro.servers.catalogue import APP_SERV_F
from repro.simulation.system import SimulationConfig, simulate_deployment
from repro.workload.trade import browse_class

PARAMS = TradeModelParameters(
    request_types={
        "browse": RequestTypeParameters(
            name="browse",
            app_demand_ms=5.376,
            db_calls=1.14,
            db_cpu_per_call_ms=0.8294,
            db_disk_per_call_ms=1.2,
        )
    }
)


@pytest.fixture(scope="module")
def mixed_think_run():
    impatient = browse_class(name="impatient", think_time_s=2.0)
    relaxed = browse_class(name="relaxed", think_time_s=14.0)
    # long window: slow thinkers complete only a handful of cycles per
    # minute, so short windows bias their measured rates upward.
    config = SimulationConfig(duration_s=120.0, warmup_s=30.0, seed=17)
    return simulate_deployment(
        APP_SERV_F, {impatient: 150, relaxed: 150}, config
    )


class TestSimulator:
    def test_per_client_rate_scales_inversely_with_think(self, mixed_think_run):
        rate_impatient = mixed_think_run.per_class_throughput["impatient"] / 150
        rate_relaxed = mixed_think_run.per_class_throughput["relaxed"] / 150
        assert rate_impatient / rate_relaxed == pytest.approx(14.0 / 2.0, rel=0.1)

    def test_response_times_similar_below_saturation(self, mixed_think_run):
        """Think time shapes load, not the per-request service path."""
        assert mixed_think_run.per_class_mean_ms["impatient"] == pytest.approx(
            mixed_think_run.per_class_mean_ms["relaxed"], rel=0.3
        )


class TestLayeredModel:
    def test_solver_handles_heterogeneous_thinks(self, mixed_think_run):
        impatient = browse_class(name="impatient", think_time_s=2.0)
        relaxed = browse_class(name="relaxed", think_time_s=14.0)
        model = build_trade_model(
            APP_SERV_F, {impatient: 150, relaxed: 150}, PARAMS
        )
        solution = LqnSolver().solve(model)
        assert solution.throughput_req_per_s["impatient"] == pytest.approx(
            mixed_think_run.per_class_throughput["impatient"], rel=0.06
        )
        assert solution.throughput_req_per_s["relaxed"] == pytest.approx(
            mixed_think_run.per_class_throughput["relaxed"], rel=0.06
        )


class TestHistoricalGradient:
    def test_gradient_follows_think_time(self):
        # m = 1/(Z + R0): halving the think time roughly doubles m.
        assert gradient_from_think_time(3500.0) == pytest.approx(
            2 * gradient_from_think_time(7000.0), rel=1e-9
        )

    def test_base_response_lowers_gradient(self):
        assert gradient_from_think_time(7000.0, base_response_ms=1000.0) < (
            gradient_from_think_time(7000.0)
        )
