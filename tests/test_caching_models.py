"""Tests for the caching study: Che LRU model, historical cache variable,
and the LQN fixed-point extension."""

import math

import pytest

from repro.caching.analysis import demonstrate_lqn_circularity, solve_lqn_with_cache
from repro.caching.historical_cache import CacheAwareHistoricalModel, CacheObservation
from repro.caching.lru_model import (
    CachePopulation,
    che_characteristic_time,
    miss_rates,
)
from repro.lqn.builder import RequestTypeParameters, TradeModelParameters
from repro.servers.catalogue import APP_SERV_S
from repro.simulation.cache import LruSessionCache
from repro.util.errors import CalibrationError
from repro.util.rng import spawn_rng
from repro.workload.trade import typical_workload

PARAMS = TradeModelParameters(
    request_types={
        "browse": RequestTypeParameters(
            name="browse",
            app_demand_ms=5.376,
            db_calls=1.14,
            db_cpu_per_call_ms=0.8294,
            db_disk_per_call_ms=1.2,
        )
    }
)


def population(n=100, size=1000, rate=1.0 / 7000.0, name="c"):
    return CachePopulation(
        name=name, n_clients=n, session_bytes=size, per_client_rate_per_ms=rate
    )


class TestCheModel:
    def test_everything_fits_no_misses(self):
        pops = [population(n=10, size=100)]
        assert che_characteristic_time(pops, capacity_bytes=10_000) == math.inf
        assert miss_rates(pops, 10_000) == {"c": 0.0}

    def test_half_capacity_half_miss_single_class(self):
        """With identical clients and capacity = half the working set, Che's
        equation gives exp(-lambda*T_C) = 1/2 exactly."""
        pops = [population(n=100, size=100)]
        rates = miss_rates(pops, capacity_bytes=5_000)
        assert rates["c"] == pytest.approx(0.5, rel=1e-6)

    def test_characteristic_time_value(self):
        pops = [population(n=100, size=100, rate=0.001)]
        t_c = che_characteristic_time(pops, 5_000)
        assert t_c == pytest.approx(math.log(2.0) / 0.001, rel=1e-6)

    def test_faster_class_misses_less(self):
        pops = [
            population(n=100, size=100, rate=0.002, name="fast"),
            population(n=100, size=100, rate=0.0005, name="slow"),
        ]
        rates = miss_rates(pops, capacity_bytes=10_000)
        assert rates["fast"] < rates["slow"]

    def test_miss_rate_decreases_with_capacity(self):
        pops = [population(n=100, size=100)]
        small = miss_rates(pops, 2_000)["c"]
        large = miss_rates(pops, 8_000)["c"]
        assert large < small

    @pytest.mark.slow
    def test_che_matches_lru_simulation(self):
        """The analytic model should predict a simulated LRU cache's miss
        rate under Poisson per-client accesses within a few points."""
        rng = spawn_rng(42, "che-validation")
        n_clients, size, capacity = 200, 100, 10_000  # half the working set
        cache = LruSessionCache(capacity)
        # Draw exponential inter-access times per client, merge into one
        # timeline of (time, client) events.
        events = []
        for client in range(n_clients):
            t = 0.0
            for _ in range(60):
                t += rng.exponential(7000.0)
                events.append((t, client))
        events.sort()
        for _, client in events[: len(events) // 4]:
            cache.access(client, size)  # warm up
        cache.reset_stats()
        for _, client in events[len(events) // 4:]:
            cache.access(client, size)
        predicted = miss_rates(
            [population(n=n_clients, size=size, rate=1.0 / 7000.0)], capacity
        )["c"]
        # Che's approximation carries a small finite-population bias; a few
        # points of absolute error is its documented accuracy regime.
        assert cache.miss_rate() == pytest.approx(predicted, abs=0.08)

    def test_empty_populations_rejected(self):
        with pytest.raises(Exception):
            che_characteristic_time([], 1000)


class TestHistoricalCacheModel:
    def _observation(self, frac, miss, mrt):
        return CacheObservation(
            cache_fraction=frac,
            miss_rate=miss,
            mean_response_ms=mrt,
            baseline_response_ms=100.0,
        )

    def test_calibrate_and_predict(self):
        model = CacheAwareHistoricalModel()
        model.add_observation(self._observation(0.25, 0.8, 140.0))
        model.add_observation(self._observation(0.5, 0.5, 125.0))
        model.add_observation(self._observation(0.75, 0.2, 110.0))
        model.calibrate()
        assert model.inflation_per_miss == pytest.approx(0.5, rel=0.1)
        predicted = model.predict_mrt_ms(100.0, 0.5)
        assert predicted == pytest.approx(125.0, rel=0.05)

    def test_full_cache_no_inflation(self):
        model = CacheAwareHistoricalModel()
        model.add_observation(self._observation(0.5, 0.5, 125.0))
        model.calibrate()
        assert model.predict_mrt_ms(100.0, 1.0) == pytest.approx(100.0)

    def test_miss_rate_interpolation_clamps(self):
        model = CacheAwareHistoricalModel()
        model.add_observation(self._observation(0.5, 0.5, 125.0))
        model.add_observation(self._observation(0.75, 0.2, 110.0))
        assert model.predict_miss_rate(0.1) == pytest.approx(0.5)  # clamped low end
        assert model.predict_miss_rate(2.0) == 0.0

    def test_uncalibrated_predict_raises(self):
        model = CacheAwareHistoricalModel()
        model.add_observation(self._observation(0.5, 0.5, 125.0))
        with pytest.raises(CalibrationError):
            model.predict_mrt_ms(100.0, 0.5)

    def test_needs_nonzero_miss_observation(self):
        model = CacheAwareHistoricalModel()
        model.add_observation(self._observation(1.5, 0.0, 100.0))
        with pytest.raises(CalibrationError):
            model.calibrate()

    def test_inflation_property(self):
        obs = self._observation(0.5, 0.5, 150.0)
        assert obs.inflation == pytest.approx(0.5)


class TestLqnCacheExtension:
    def test_circularity_demonstrated(self):
        workload = typical_workload(300)
        capacity = 300 * 1024  # half of the ~2 KiB sessions fit
        report = demonstrate_lqn_circularity(
            APP_SERV_S, workload, PARAMS, capacity, assumed_miss_rate=0.0
        )
        # Assuming zero misses is inconsistent: the solution implies misses.
        assert report.inconsistency > 0.1
        assert len(report.dependency_chain) == 5

    def test_fixed_point_converges_and_is_consistent(self):
        workload = typical_workload(300)
        capacity = 300 * 1024
        result = solve_lqn_with_cache(APP_SERV_S, workload, PARAMS, capacity)
        assert result.outer_iterations >= 2
        # Self-consistency: feeding the converged solution back into the
        # miss model reproduces the converged miss rates.
        report = demonstrate_lqn_circularity(
            APP_SERV_S,
            workload,
            PARAMS,
            capacity,
            assumed_miss_rate=result.miss_rates["browse"],
        )
        assert report.inconsistency < 0.01

    def test_ample_cache_fixed_point_is_missless(self):
        workload = typical_workload(100)
        result = solve_lqn_with_cache(APP_SERV_S, workload, PARAMS, 10**9)
        assert result.miss_rates["browse"] == pytest.approx(0.0, abs=1e-6)

    def test_misses_increase_response_time(self):
        workload = typical_workload(300)
        missless = solve_lqn_with_cache(APP_SERV_S, workload, PARAMS, 10**9)
        thrashing = solve_lqn_with_cache(APP_SERV_S, workload, PARAMS, 50 * 1024)
        assert (
            thrashing.solution.response_ms["browse"]
            > missless.solution.response_ms["browse"]
        )
