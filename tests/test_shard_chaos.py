"""Chaos coverage for the sharded cluster (satellite of PR 8).

Drives :func:`repro.experiments.sharded_serving.run_chaos` — a
:mod:`repro.faults` plan that takes one shard down for a fake-clock
window mid-run — twice, and asserts the two recovery reports are
**byte-identical** after JSON canonicalization, on top of the three
behavioural properties: the victim is ejected (breaker opens), the
survivor absorbs its keys (rebalance), and the victim recovers and
serves again after the window.

A stub primary stands in for the calibrated predictors so the test is
fast and hermetic; the experiment itself wires the same machinery to
the paper-calibrated historical model.
"""

from __future__ import annotations

import json

from repro.experiments.sharded_serving import run_chaos, run_sweep
from repro.service.shard.testing import DeterministicStubPredictor


def _chaos_report() -> dict:
    return run_chaos(400, DeterministicStubPredictor())


def test_chaos_report_documents_ejection_rebalance_recovery() -> None:
    """The three acceptance properties of the shard-outage plan hold."""
    report = _chaos_report()
    assert report["errors"] == 0  # rerouting answered every request
    assert report["within_ceiling"]
    breaker = report["breaker"]
    assert breaker["opened"], "the victim's breaker never opened (no ejection)"
    assert breaker["recovered"], "the victim's breaker never re-closed"
    assert breaker["first_opened_at_s"] >= report["fault_window_s"][0]
    assert breaker["reclosed_at_s"] > report["fault_window_s"][0]
    assert report["rebalanced"], "the survivor did not absorb the victim's keys"
    victim = report["victim"]
    assert report["served_during_window"][victim] <= 3  # only pre-ejection leaks
    assert report["victim_served_after_recovery"]
    assert report["ejected_at_end"] == []
    assert report["injected"].get("shard-down", 0) > 0


def test_chaos_report_is_byte_identical_across_runs() -> None:
    """Two runs on fresh clusters and fresh fake clocks byte-match."""
    first = json.dumps(_chaos_report(), sort_keys=True)
    second = json.dumps(_chaos_report(), sort_keys=True)
    assert first == second


def test_sweep_is_deterministic_and_scales_warm_throughput() -> None:
    """A small sweep byte-matches across runs and shows warm scaling."""
    stub = DeterministicStubPredictor()
    first = run_sweep(600, (1, 4), stub)
    second = run_sweep(600, (1, 4), stub)
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
    # The benchmark gate's property at test scale: 4 warm shards beat 1.
    assert first["4"]["warm_speedup_vs_1"] >= 2.0
    assert first["1"]["warm"]["outcomes"] == {"l1_hit": 600}
