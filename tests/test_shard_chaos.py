"""Chaos coverage for the sharded cluster (satellite of PR 8).

Drives :func:`repro.experiments.sharded_serving.run_chaos` — a
:mod:`repro.faults` plan that takes one shard down for a fake-clock
window mid-run — twice, and asserts the two recovery reports are
**byte-identical** after JSON canonicalization, on top of the three
behavioural properties: the victim is ejected (breaker opens), the
survivor absorbs its keys (rebalance), and the victim recovers and
serves again after the window.

A stub primary stands in for the calibrated predictors so the test is
fast and hermetic; the experiment itself wires the same machinery to
the paper-calibrated historical model.
"""

from __future__ import annotations

import json

from repro.experiments.sharded_serving import TICK_S, run_chaos, run_sweep
from repro.service.shard.testing import DeterministicStubPredictor
from repro.util.floats import quantize_to_tick


def _chaos_report() -> dict:
    return run_chaos(400, DeterministicStubPredictor())


def test_chaos_report_documents_ejection_rebalance_recovery() -> None:
    """The three acceptance properties of the shard-outage plan hold."""
    report = _chaos_report()
    assert report["errors"] == 0  # rerouting answered every request
    assert report["within_ceiling"]
    breaker = report["breaker"]
    assert breaker["opened"], "the victim's breaker never opened (no ejection)"
    assert breaker["recovered"], "the victim's breaker never re-closed"
    assert breaker["first_opened_at_s"] >= report["fault_window_s"][0]
    assert breaker["reclosed_at_s"] > report["fault_window_s"][0]
    assert report["rebalanced"], "the survivor did not absorb the victim's keys"
    victim = report["victim"]
    assert report["served_during_window"][victim] <= 3  # only pre-ejection leaks
    assert report["victim_served_after_recovery"]
    assert report["ejected_at_end"] == []
    assert report["injected"].get("shard-down", 0) > 0


def test_chaos_report_is_byte_identical_across_runs() -> None:
    """Two runs on fresh clusters and fresh fake clocks byte-match."""
    first = json.dumps(_chaos_report(), sort_keys=True)
    second = json.dumps(_chaos_report(), sort_keys=True)
    assert first == second


def test_chaos_report_timestamps_sit_on_the_tick_grid() -> None:
    """Serialized virtual-time instants carry no float-noise tails.

    Regression: breaker timestamps used to serialize as the fake
    clock's raw tick sums (``25.200000000000223``), churning every
    regeneration of the published ``BENCH_serving.json``.
    """
    report = _chaos_report()
    breaker = report["breaker"]
    stamps = [at_s for at_s, _old, _new in breaker["transitions"]]
    stamps += [breaker["first_opened_at_s"], breaker["reclosed_at_s"]]
    stamps += [breaker["time_to_recover_s"], *report["fault_window_s"]]
    for stamp in stamps:
        assert stamp == quantize_to_tick(stamp, TICK_S)
        # The JSON representation is the short decimal, not a noisy tail.
        assert len(json.dumps(stamp)) <= len(f"{stamp:.2f}")


def test_quantize_to_tick_recovers_exact_tick_multiples() -> None:
    """Accumulated tick sums snap back to the value the clock meant."""
    total = 0.0
    for _ in range(504):
        total += 0.05
    assert total != 25.2  # the raw sum carries noise
    assert quantize_to_tick(total, 0.05) == 25.2
    assert quantize_to_tick(75.09999999999788 - 25.200000000000223, 0.05) == 49.9
    assert quantize_to_tick(25.2, 0.05) == 25.2  # idempotent on clean values


def test_sweep_is_deterministic_and_scales_warm_throughput() -> None:
    """A small sweep byte-matches across runs and shows warm scaling."""
    stub = DeterministicStubPredictor()
    first = run_sweep(600, (1, 4), stub)
    second = run_sweep(600, (1, 4), stub)
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
    # The benchmark gate's property at test scale: 4 warm shards beat 1.
    assert first["4"]["warm_speedup_vs_1"] >= 2.0
    assert first["1"]["warm"]["outcomes"] == {"l1_hit": 600}
