"""Call-graph builder mechanics on the adversarial fixture shapes."""

from pathlib import Path

from repro.analysis.project import build_call_graph, build_index

FIXTURES = Path(__file__).parent / "analysis_fixtures" / "project_callgraph"


def graph():
    return build_call_graph(build_index([FIXTURES]))


class TestIndex:
    def test_unparsable_file_reported_but_rest_indexed(self):
        index = build_index([FIXTURES])
        assert [f.rule_id for f in index.syntax_findings] == ["REPRO-SYNTAX"]
        assert index.syntax_findings[0].path.endswith("broken.py")
        # The other modules in the same tree are still fully indexed.
        assert "recursion.even" in index.functions
        assert "dispatch.Freighter.ship" in index.functions

    def test_decorated_function_keeps_identity(self):
        index = build_index([FIXTURES])
        assert "decorated.compute" in index.functions
        assert "decorated.logged" in index.functions

    def test_methods_by_name_spans_classes(self):
        index = build_index([FIXTURES])
        assert set(index.methods_by_name["ship"]) == {
            "dispatch.Freighter.ship",
            "dispatch.Courier.ship",
        }

    def test_subclass_map_is_transitive(self):
        index = build_index([FIXTURES])
        assert index.subclasses["selfcalls.Base"] == {"selfcalls.Child"}


class TestResolution:
    def test_mutual_recursion_produces_cyclic_edges(self):
        adjacency = graph().adjacency(include_deferred=False)
        assert "recursion.odd" in adjacency["recursion.even"]
        assert "recursion.even" in adjacency["recursion.odd"]
        assert "recursion.loop" in adjacency["recursion.loop"]

    def test_shortest_chain_through_recursion_terminates(self):
        chain = graph().shortest_chain(
            "recursion.even", "recursion.odd", include_deferred=False
        )
        assert chain == ["recursion.even", "recursion.odd"]

    def test_decorated_function_keeps_outgoing_edges(self):
        adjacency = graph().adjacency(include_deferred=False)
        assert "decorated.helper" in adjacency["decorated.compute"]

    def test_dynamic_dispatch_over_approximates_to_all_candidates(self):
        g = graph()
        sites = [s for s in g.sites["dispatch.send"] if s.targets]
        assert len(sites) == 1
        assert set(sites[0].targets) == {
            "dispatch.Freighter.ship",
            "dispatch.Courier.ship",
        }
        assert sites[0].dispatch == "dynamic"

    def test_self_call_includes_subclass_overrides(self):
        g = graph()
        sites = [s for s in g.sites["selfcalls.Base.run"] if s.targets]
        assert len(sites) == 1
        assert set(sites[0].targets) == {
            "selfcalls.Base.step",
            "selfcalls.Child.step",
        }
        assert sites[0].dispatch == "self"

    def test_ubiquitous_method_names_do_not_fan_out(self, tmp_path):
        (tmp_path / "noisy.py").write_text(
            "class Table:\n"
            "    def get(self, key):\n"
            "        return key\n"
            "\n"
            "def lookup(mapping):\n"
            "    return mapping.get('x')\n"
        )
        g = build_call_graph(build_index([tmp_path]))
        assert all(not s.targets for s in g.sites["noisy.lookup"])

    def test_typed_attr_resolves_forward_reference(self, tmp_path):
        (tmp_path / "fwd.py").write_text(
            "class User:\n"
            "    def __init__(self):\n"
            "        self.helper = Helper()\n"
            "    def run(self):\n"
            "        return self.helper.work()\n"
            "\n"
            "class Helper:\n"
            "    def work(self):\n"
            "        return 1\n"
            "\n"
            "class Decoy:\n"
            "    def work(self):\n"
            "        return 2\n"
        )
        g = build_call_graph(build_index([tmp_path]))
        sites = [s for s in g.sites["fwd.User.run"] if s.targets]
        assert len(sites) == 1
        assert sites[0].targets == ("fwd.Helper.work",)
        assert sites[0].dispatch == "typed"
