"""Integration tests: every experiment driver runs (fast profile) and its
output satisfies the paper's shape targets.

These reuse the on-disk ground-truth cache, so repeated runs are quick; a
cold run performs the underlying simulations once.
"""

import math

import numpy as np
import pytest

from repro.experiments.runner import run_experiment

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def results():
    """Run every experiment once (fast profile) and share the results."""
    ids = [
        "table1",
        "table2",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "accuracy",
        "percentiles",
        "caching",
        "delay",
        "recalibration",
        "serving",
    ]
    return {experiment_id: run_experiment(experiment_id, fast=True) for experiment_id in ids}


class TestTable1:
    def test_gradient_near_paper_value(self, results):
        # m = 0.14 in the paper (7s think time).
        assert results["table1"].data["gradient"] == pytest.approx(0.143, abs=0.01)

    def test_gradient_error_small(self, results):
        assert results["table1"].data["gradient_error"] < 0.08

    def test_three_servers_parameterised(self, results):
        assert len(results["table1"].data["parameters"]) == 3

    def test_lower_parameters_positive(self, results):
        for _server, _origin, c_l, lambda_l, _lu, _cu in results["table1"].data["parameters"]:
            assert c_l > 0
            assert lambda_l > 0


class TestTable2:
    def test_demands_near_design_values(self, results):
        rows = {row[0]: row for row in results["table2"].data["rows"]}
        assert rows["browse"][1] == pytest.approx(5.376, rel=0.1)  # app ms
        assert rows["browse"][3] == pytest.approx(1.14, rel=0.06)  # db calls
        assert rows["buy"][3] == pytest.approx(2.0, rel=0.06)

    def test_buy_heavier_than_browse(self, results):
        rows = {row[0]: row for row in results["table2"].data["rows"]}
        assert rows["buy"][1] > rows["browse"][1]
        assert rows["buy"][2] > rows["browse"][2]


class TestFig2:
    def test_curves_for_all_servers(self, results):
        assert set(results["fig2"].data["curves"]) == {
            "AppServS",
            "AppServF",
            "AppServVF",
        }

    def test_measured_response_grows_with_load(self, results):
        for curve in results["fig2"].data["curves"].values():
            measured = curve["measured"]
            assert measured[-1] > measured[0] * 10

    def test_throughput_ordering_s_f_vf(self, results):
        curves = results["fig2"].data["curves"]
        s = max(curves["AppServS"]["measured_tput"])
        f = max(curves["AppServF"]["measured_tput"])
        vf = max(curves["AppServVF"]["measured_tput"])
        assert s < f < vf

    def test_max_throughputs_near_paper(self, results):
        curves = results["fig2"].data["curves"]
        assert max(curves["AppServS"]["measured_tput"]) == pytest.approx(86, rel=0.08)
        assert max(curves["AppServF"]["measured_tput"]) == pytest.approx(186, rel=0.08)
        assert max(curves["AppServVF"]["measured_tput"]) == pytest.approx(320, rel=0.08)


class TestFig3:
    def test_lower_accuracy_below_upper(self, results):
        data = results["fig3"].data
        lower = [v for v in data["lower"] if not math.isnan(v)]
        upper = [v for v in data["upper"] if not math.isnan(v)]
        assert np.mean(lower) < np.mean(upper)

    def test_lower_accuracy_improves_with_x(self, results):
        data = results["fig3"].data
        lower = [v for v in data["lower"] if not math.isnan(v)]
        # Paper: roughly linear increase => last > first.
        assert lower[-1] > lower[0]

    def test_upper_accuracy_high_and_flat(self, results):
        data = results["fig3"].data
        upper = [v for v in data["upper"] if not math.isnan(v)]
        assert min(upper) > 0.85
        assert max(upper) - min(upper) < 0.15


class TestFig4:
    def test_mix_lowers_lqn_max_throughput(self, results):
        observations = dict(results["fig4"].data["mix_observations"])
        assert observations[0.25] < observations[0.0]

    def test_predictions_track_measurements(self, results):
        for buy in (0.0, 0.25):
            curve = results["fig4"].data[f"curve@{buy}"]
            for predicted, measured in zip(curve["predicted"], curve["measured"]):
                # Shape-level agreement everywhere on the curve.
                assert predicted == pytest.approx(measured, rel=1.0)


class TestResourceManagerFigures:
    def test_fig5_failures_decrease_with_slack(self, results):
        data = results["fig5"].data
        mean_failures = {
            slack: np.mean(data[f"failures@{slack}"]) for slack in (0.9, 1.0, 1.1)
        }
        assert mean_failures[1.1] <= mean_failures[1.0] <= mean_failures[0.9]

    def test_fig5_slack_11_zero_failures(self, results):
        assert max(results["fig5"].data["failures@1.1"]) == pytest.approx(0.0, abs=0.5)

    def test_fig6_usage_increases_with_load(self, results):
        usage = results["fig6"].data["usage@1.0"]
        assert usage[-1] > usage[0]

    def test_fig6_usage_increases_with_slack(self, results):
        data = results["fig6"].data
        assert np.mean(data["usage@1.1"]) >= np.mean(data["usage@0.9"]) - 1e-9

    def test_fig7_endpoints(self, results):
        rows = results["fig7"].data["rows"]  # sorted by decreasing slack
        top_slack = rows[0]
        zero_slack = rows[-1]
        assert top_slack[1] == pytest.approx(0.0, abs=0.5)  # no failures
        assert zero_slack[1] == pytest.approx(100.0)  # all rejected
        assert zero_slack[2] == pytest.approx(results["fig7"].data["su_max"], abs=1.0)

    def test_fig7_failures_monotone_as_slack_drops(self, results):
        rows = results["fig7"].data["rows"]
        failures = [r[1] for r in rows]
        assert all(b >= a - 1e-9 for a, b in zip(failures, failures[1:]))

    def test_fig8_savings_grow_as_slack_drops(self, results):
        rows = results["fig8"].data["rows"]
        savings = [r[2] for r in rows]
        assert savings[-1] >= savings[0]


class TestAccuracySummary:
    def test_paper_ordering_historical_beats_lqn(self, results):
        data = results["accuracy"].data
        assert data["historical.established.mrt"] > data["layered_queuing.established.mrt"]
        assert data["historical.new.mrt"] > data["layered_queuing.new.mrt"]

    def test_throughput_accuracy_high_for_all(self, results):
        data = results["accuracy"].data
        for method in ("historical", "layered_queuing", "hybrid"):
            assert data[f"{method}.established.tput"] > 0.9

    def test_hybrid_tracks_lqn(self, results):
        data = results["accuracy"].data
        assert data["hybrid.established.mrt"] == pytest.approx(
            data["layered_queuing.established.mrt"], abs=0.1
        )

    def test_magnitudes_in_paper_ballpark(self, results):
        data = results["accuracy"].data
        assert 0.75 < data["historical.established.mrt"] < 1.0
        assert 0.4 < data["layered_queuing.established.mrt"] < 0.9


class TestPercentiles:
    def test_all_methods_reasonably_accurate(self, results):
        data = results["percentiles"].data
        for key, value in data.items():
            if key in ("scale_b",):
                continue
            assert value > 0.5, key

    def test_scale_calibrated(self, results):
        assert results["percentiles"].data["scale_b"] > 0


class TestCaching:
    def test_historical_method_models_cache(self, results):
        assert results["caching"].data["historical_accuracy"] > 0.3

    def test_one_shot_lqn_inconsistent(self, results):
        assert results["caching"].data["inconsistency"] > 0.1

    def test_fixed_point_matches_measured_miss_rate(self, results):
        data = results["caching"].data
        assert data["fixed_point_miss"] == pytest.approx(data["measured_miss"], abs=0.15)

    def test_fixed_point_response_accurate(self, results):
        assert results["caching"].data["fixed_point_accuracy"] > 0.6


class TestDelay:
    def test_lqn_orders_of_magnitude_slower(self, results):
        data = results["delay"].data
        assert data["lqn_delay_s"] > 100 * data["historical_delay_s"]

    def test_tighter_criterion_costs_more(self, results):
        rows = results["delay"].data["criterion_rows"]
        # rows ordered loosest -> tightest criterion.
        assert rows[-1][2] > rows[0][2]  # iterations grow

    def test_capacity_query_needs_many_solves(self, results):
        assert results["delay"].data["lqn_capacity_solves"] > 3

    def test_hybrid_startup_then_fast(self, results):
        data = results["delay"].data
        assert data["startup_delay_s"] > data["hybrid_delay_s"] * 10


class TestRecalibration:
    def test_established_accuracy_good_at_50_samples(self, results):
        data = results["recalibration"].data
        established, _new = data["ns=50,pts=2"]
        assert established > 0.75

    def test_small_budgets_already_accurate(self, results):
        """The paper's actual claim: accuracy is good even with very little
        data (point-to-point monotonicity in n_s is too noise-sensitive to
        assert with the fast profile's two replications)."""
        data = results["recalibration"].data
        for key in ("ns=10,pts=2", "ns=50,pts=2"):
            established, _ = data[key]
            assert established > 0.75, (key, established)


class TestServing:
    def test_warm_cache_lqn_serving_at_least_10x_faster_than_cold(self, results):
        cold, warm = results["serving"].data["cold_warm"]["layered_queuing"]
        assert cold / warm >= 10.0

    def test_metrics_export_nonzero_after_concurrent_load(self, results):
        for name, metrics in results["serving"].data["metrics"].items():
            assert metrics["latency.p50_s"] > 0.0, name
            assert metrics["latency.p95_s"] >= metrics["latency.p50_s"], name
            assert metrics["latency.p99_s"] >= metrics["latency.p95_s"], name
            assert metrics["cache.hit_rate"] > 0.0, name
            assert metrics["requests"] > 0, name

    def test_degradation_counts_nonzero_under_impossible_deadline(self, results):
        degradation = results["serving"].data["degradation"]
        assert degradation["degraded"] > 0
        assert degradation["degraded.timeout"] > 0
        assert degradation["degraded"] >= degradation["degraded.timeout"]

    def test_thread_sweep_covered_per_service(self, results):
        rows = results["serving"].data["rows"]
        by_service: dict[str, set[int]] = {}
        for row in rows:
            by_service.setdefault(row[0], set()).add(row[1])
        assert len(by_service) == 3
        for threads in by_service.values():
            assert threads == {1, 4, 16}


class TestRendering:
    def test_every_experiment_renders_text(self, results):
        for experiment_id, result in results.items():
            assert isinstance(result.rendered, str) and len(result.rendered) > 50, experiment_id
            assert result.experiment_id == experiment_id
