"""Unit tests for the LRU session cache."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simulation.cache import LruSessionCache
from repro.util.errors import ValidationError


class TestBasicBehaviour:
    def test_first_access_misses_and_inserts(self):
        cache = LruSessionCache(1000)
        assert cache.access("c1", 100) is False
        assert "c1" in cache
        assert cache.used_bytes == 100

    def test_second_access_hits(self):
        cache = LruSessionCache(1000)
        cache.access("c1", 100)
        assert cache.access("c1", 100) is True
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = LruSessionCache(300)
        cache.access("a", 100)
        cache.access("b", 100)
        cache.access("c", 100)
        cache.access("a", 100)  # refresh a: b is now LRU
        cache.access("d", 100)  # evicts b
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache
        assert cache.evictions == 1

    def test_eviction_frees_enough_space(self):
        cache = LruSessionCache(250)
        cache.access("a", 100)
        cache.access("b", 100)
        cache.access("big", 200)  # must evict both a and b
        assert "a" not in cache and "b" not in cache and "big" in cache
        assert cache.used_bytes == 200

    def test_oversized_session_never_cached(self):
        cache = LruSessionCache(100)
        assert cache.access("huge", 200) is False
        assert "huge" not in cache
        assert cache.used_bytes == 0

    def test_session_resize_on_reaccess(self):
        cache = LruSessionCache(1000)
        cache.access("a", 100)
        cache.access("a", 300)
        assert cache.used_bytes == 300

    def test_invalidate(self):
        cache = LruSessionCache(1000)
        cache.access("a", 100)
        assert cache.invalidate("a") is True
        assert "a" not in cache
        assert cache.used_bytes == 0
        assert cache.invalidate("a") is False

    def test_miss_rate(self):
        cache = LruSessionCache(1000)
        cache.access("a", 10)
        cache.access("a", 10)
        cache.access("b", 10)
        assert cache.miss_rate() == pytest.approx(2 / 3)

    def test_miss_rate_nan_when_untouched(self):
        import math

        assert math.isnan(LruSessionCache(10).miss_rate())

    def test_reset_stats_keeps_contents(self):
        cache = LruSessionCache(1000)
        cache.access("a", 10)
        cache.reset_stats()
        assert cache.hits == 0 and cache.misses == 0
        assert "a" in cache

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValidationError):
            LruSessionCache(0)

    def test_rejects_bad_session_size(self):
        with pytest.raises(ValidationError):
            LruSessionCache(100).access("a", 0)


class TestInvariants:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=20), st.integers(min_value=1, max_value=64)),
            min_size=1,
            max_size=200,
        )
    )
    def test_used_bytes_never_exceeds_capacity(self, accesses):
        cache = LruSessionCache(256)
        for client, size in accesses:
            cache.access(client, size)
            assert 0 <= cache.used_bytes <= 256
            assert cache.entry_count <= 256

    @given(
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=100)
    )
    def test_hits_plus_misses_equals_accesses(self, clients):
        cache = LruSessionCache(10_000)
        for client in clients:
            cache.access(client, 8)
        assert cache.hits + cache.misses == len(clients)

    def test_full_working_set_fits_no_misses_after_warmup(self):
        cache = LruSessionCache(100 * 10)
        for client in range(100):
            cache.access(client, 10)
        cache.reset_stats()
        for _round in range(3):
            for client in range(100):
                assert cache.access(client, 10) is True
        assert cache.miss_rate() == 0.0

    def test_cyclic_scan_thrashes_when_too_small(self):
        """Sequential cyclic access over a working set larger than the cache
        is LRU's pathological case: everything misses."""
        cache = LruSessionCache(50 * 10)
        for _round in range(3):
            for client in range(100):
                cache.access(client, 10)
        cache.reset_stats()
        for client in range(100):
            assert cache.access(client, 10) is False
