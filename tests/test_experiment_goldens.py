"""Golden-file regression tests for the headline experiments.

``fig2`` (the cross-method response-time curves), ``fig6`` (the resource
manager's usage steps), ``table1`` (the calibrated historical
parameters) and ``workloads`` (the trace-characterization round trip)
each have their fast-mode ``data`` payload committed as JSON under
``tests/goldens/``.  The tests re-run the experiment and compare
against the golden recursively, with a relative tolerance on floats so a
benign numerical wobble (BLAS version, summation order) doesn't fail the
build while a real calibration change does.

To refresh the goldens after an intentional behaviour change::

    PYTHONPATH=src python -m pytest tests/test_experiment_goldens.py --regen-goldens

which rewrites the files and skips the comparison; commit the diff with
the change that caused it.
"""

from __future__ import annotations

import importlib
import json
import math
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Relative tolerance for float comparisons.  The experiments are seeded
#: and deterministic in-process, so this only needs to absorb cross-
#: platform numerical noise, not statistical variation.
RTOL = 1e-3
ATOL = 1e-9

GOLDEN_EXPERIMENTS = {
    "fig2": "repro.experiments.fig2",
    "fig6": "repro.experiments.fig6",
    "table1": "repro.experiments.table1",
    "workloads": "repro.experiments.workloads",
    "overload": "repro.experiments.overload",
}


def _normalise(value):
    """Round-trip through JSON so tuples/lists and int/float unify the
    same way they do in the committed golden."""
    return json.loads(json.dumps(value))


def _mismatches(actual, expected, path="$"):
    """Recursively diff two JSON-shaped values, returning human-readable
    mismatch descriptions (empty list == equal within tolerance)."""
    problems: list[str] = []
    if isinstance(expected, dict):
        if not isinstance(actual, dict):
            return [f"{path}: expected object, got {type(actual).__name__}"]
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                problems.append(f"{path}.{key}: unexpected key")
            elif key not in actual:
                problems.append(f"{path}.{key}: missing key")
            else:
                problems.extend(_mismatches(actual[key], expected[key], f"{path}.{key}"))
    elif isinstance(expected, list):
        if not isinstance(actual, list):
            return [f"{path}: expected array, got {type(actual).__name__}"]
        if len(actual) != len(expected):
            return [f"{path}: length {len(actual)} != {len(expected)}"]
        for index, (a, e) in enumerate(zip(actual, expected)):
            problems.extend(_mismatches(a, e, f"{path}[{index}]"))
    elif isinstance(expected, bool) or expected is None or isinstance(expected, str):
        if actual != expected:
            problems.append(f"{path}: {actual!r} != {expected!r}")
    elif isinstance(expected, (int, float)):
        if not isinstance(actual, (int, float)) or isinstance(actual, bool):
            problems.append(f"{path}: {actual!r} is not a number")
        elif not math.isclose(float(actual), float(expected), rel_tol=RTOL, abs_tol=ATOL):
            problems.append(f"{path}: {actual!r} != {expected!r} (rtol={RTOL})")
    elif actual != expected:
        problems.append(f"{path}: {actual!r} != {expected!r}")
    return problems


def _dump(value) -> str:
    return json.dumps(value, sort_keys=True, indent=2) + "\n"


@pytest.mark.parametrize("experiment_id", sorted(GOLDEN_EXPERIMENTS))
def test_experiment_matches_golden(experiment_id, request):
    """The experiment's fast-mode data payload matches its committed golden."""
    module = importlib.import_module(GOLDEN_EXPERIMENTS[experiment_id])
    actual = _normalise(module.run(fast=True).data)
    golden_path = GOLDEN_DIR / f"{experiment_id}.json"

    if request.config.getoption("--regen-goldens"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(_dump(actual), encoding="utf-8")
        pytest.skip(f"regenerated {golden_path.name}")

    assert golden_path.exists(), (
        f"missing golden {golden_path}; run with --regen-goldens to create it"
    )
    expected = json.loads(golden_path.read_text(encoding="utf-8"))
    problems = _mismatches(actual, expected)
    assert not problems, "golden drift for %s:\n%s" % (
        experiment_id,
        "\n".join(problems[:20]),
    )


def test_overload_artefact_is_byte_reproducible():
    """Two in-process runs of the overload experiment serialize identically.

    The CI ``overload`` job proves the same thing across two separate
    processes; this is the fast in-suite version of that determinism
    gate (seeded simulation, fake-clocked retry storm, temp-dir trace
    round trip — nothing may leak wall-clock or filesystem state).
    """
    from repro.experiments import overload

    first = _dump(_normalise(overload.run(fast=True).data))
    second = _dump(_normalise(overload.run(fast=True).data))
    assert first == second


def test_goldens_are_canonically_formatted():
    """Committed goldens are sorted-key, 2-indent JSON (stable diffs)."""
    paths = sorted(GOLDEN_DIR.glob("*.json"))
    assert paths, "no goldens committed under tests/goldens/"
    for path in paths:
        text = path.read_text(encoding="utf-8")
        assert text == _dump(json.loads(text)), f"{path.name} not canonical"


def test_comparator_flags_real_drift_but_not_noise():
    """The tolerance comparator accepts sub-rtol wobble, rejects drift."""
    golden = {"gradient": 0.14, "rows": [["AppServS", 1.0]], "n": 3}
    wobble = {"gradient": 0.14 * (1 + RTOL / 2), "rows": [["AppServS", 1.0]], "n": 3}
    assert not _mismatches(wobble, golden)
    drift = {"gradient": 0.14 * 1.05, "rows": [["AppServS", 1.0]], "n": 3}
    assert _mismatches(drift, golden)
    assert _mismatches({"gradient": 0.14, "rows": [], "n": 3}, golden)
    assert _mismatches({"gradient": 0.14, "rows": [["X", 1.0]], "n": 3}, golden)
