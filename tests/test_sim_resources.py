"""Unit tests for the queueing stations (PS, FCFS, thread pool).

Deterministic scenarios are checked against hand-computed schedules; the
stochastic cases are checked against M/M/1 closed-form results.
"""

import numpy as np
import pytest

from repro.simulation.engine import Simulator
from repro.simulation.resources import FifoServer, ProcessorSharingServer, ThreadPool
from repro.util.errors import SimulationError
from repro.util.rng import spawn_rng


def make_ps(speed=1.0, limit=100):
    sim = Simulator()
    return sim, ProcessorSharingServer(sim, "cpu", speed=speed, max_concurrency=limit)


class TestProcessorSharingDeterministic:
    def test_single_job_runs_at_full_speed(self):
        sim, ps = make_ps()
        done = []
        ps.submit(10.0, lambda: done.append(sim.now))
        sim.run_until(100.0)
        assert done == [10.0]

    def test_speed_scales_service(self):
        sim, ps = make_ps(speed=2.0)
        done = []
        ps.submit(10.0, lambda: done.append(sim.now))
        sim.run_until(100.0)
        assert done == [5.0]

    def test_two_equal_jobs_share_equally(self):
        sim, ps = make_ps()
        done = []
        ps.submit(10.0, lambda: done.append(("a", sim.now)))
        ps.submit(10.0, lambda: done.append(("b", sim.now)))
        sim.run_until(100.0)
        # Each gets half the CPU: both finish at t=20.
        assert done == [("a", 20.0), ("b", 20.0)]

    def test_unequal_jobs_processor_sharing_schedule(self):
        sim, ps = make_ps()
        done = {}
        ps.submit(5.0, lambda: done.setdefault("short", sim.now))
        ps.submit(10.0, lambda: done.setdefault("long", sim.now))
        sim.run_until(100.0)
        # Shared until short departs at t=10 (5 work at rate 1/2); the long
        # job then has 5 remaining alone: finishes at t=15.
        assert done["short"] == pytest.approx(10.0)
        assert done["long"] == pytest.approx(15.0)

    def test_late_arrival_shares_remaining_work(self):
        sim, ps = make_ps()
        done = {}
        ps.submit(10.0, lambda: done.setdefault("first", sim.now))
        sim.schedule(5.0, lambda: ps.submit(10.0, lambda: done.setdefault("second", sim.now)))
        sim.run_until(100.0)
        # First runs alone 5ms (5 left), then shares: first finishes at
        # 5 + 2*5 = 15; second has 10-5=5 left at t=15, alone: t=20.
        assert done["first"] == pytest.approx(15.0)
        assert done["second"] == pytest.approx(20.0)

    def test_admission_limit_queues_fifo(self):
        sim, ps = make_ps(limit=1)
        done = []
        ps.submit(10.0, lambda: done.append(("a", sim.now)))
        ps.submit(10.0, lambda: done.append(("b", sim.now)))
        ps.submit(10.0, lambda: done.append(("c", sim.now)))
        assert ps.in_service == 1 and ps.queued == 2
        sim.run_until(100.0)
        # With limit 1 the station degenerates to FCFS.
        assert done == [("a", 10.0), ("b", 20.0), ("c", 30.0)]

    def test_zero_work_completes_immediately(self):
        sim, ps = make_ps()
        done = []
        ps.submit(0.0, lambda: done.append(sim.now))
        assert done == [0.0]
        assert ps.stats.completions == 1

    def test_busy_time_accounting(self):
        sim, ps = make_ps()
        ps.submit(10.0, lambda: None)
        sim.run_until(40.0)
        assert ps.stats.busy_time_ms == pytest.approx(10.0)
        assert ps.stats.utilisation(sim.now) == pytest.approx(0.25)

    def test_work_conservation_two_jobs(self):
        sim, ps = make_ps()
        ps.submit(10.0, lambda: None)
        ps.submit(10.0, lambda: None)
        sim.run_until(40.0)
        # CPU busy exactly 20ms processing 20ms of work.
        assert ps.stats.busy_time_ms == pytest.approx(20.0)
        assert ps.stats.work_done_ms == pytest.approx(20.0)

    def test_reset_stats_clears_window(self):
        sim, ps = make_ps()
        ps.submit(10.0, lambda: None)
        sim.run_until(20.0)
        ps.reset_stats()
        assert ps.stats.completions == 0
        assert ps.stats.busy_time_ms == 0.0
        sim.run_until(40.0)
        assert ps.stats.utilisation(sim.now) == 0.0

    def test_peak_tracking(self):
        sim, ps = make_ps(limit=2)
        for _ in range(5):
            ps.submit(10.0, lambda: None)
        assert ps.stats.peak_in_system == 5


class TestProcessorSharingStochastic:
    def test_mm1_ps_mean_number_in_system(self):
        """M/M/1-PS has the same mean queue length as M/M/1-FCFS:
        N = rho / (1 - rho)."""
        rng = spawn_rng(7, "mm1ps")
        sim = Simulator()
        ps = ProcessorSharingServer(sim, "cpu", speed=1.0, max_concurrency=10**6)
        lam = 0.07  # per ms
        mean_service = 10.0  # rho = 0.7
        n = 60_000
        arrivals = np.cumsum(rng.exponential(1 / lam, n))
        demands = rng.exponential(mean_service, n)
        for at, d in zip(arrivals, demands):
            sim.schedule_at(float(at), lambda dd=float(d): ps.submit(dd, lambda: None))
        sim.run_until(float(arrivals[-1]))
        rho = lam * mean_service
        expected = rho / (1 - rho)
        measured = ps.stats.mean_in_system(sim.now)
        assert measured == pytest.approx(expected, rel=0.12)

    def test_utilisation_equals_offered_load(self):
        rng = spawn_rng(8, "util")
        sim = Simulator()
        ps = ProcessorSharingServer(sim, "cpu", speed=1.0, max_concurrency=10**6)
        lam, mean_service = 0.05, 8.0
        n = 50_000
        arrivals = np.cumsum(rng.exponential(1 / lam, n))
        for at, d in zip(arrivals, rng.exponential(mean_service, n)):
            sim.schedule_at(float(at), lambda dd=float(d): ps.submit(dd, lambda: None))
        sim.run_until(float(arrivals[-1]))
        assert ps.stats.utilisation(sim.now) == pytest.approx(lam * mean_service, rel=0.05)


class TestFifoServer:
    def test_single_server_sequential(self):
        sim = Simulator()
        fifo = FifoServer(sim, "disk")
        done = []
        fifo.submit(5.0, lambda: done.append(("a", sim.now)))
        fifo.submit(5.0, lambda: done.append(("b", sim.now)))
        sim.run_until(100.0)
        assert done == [("a", 5.0), ("b", 10.0)]

    def test_multi_server_parallelism(self):
        sim = Simulator()
        fifo = FifoServer(sim, "disk", servers=2)
        done = []
        fifo.submit(5.0, lambda: done.append(sim.now))
        fifo.submit(5.0, lambda: done.append(sim.now))
        sim.run_until(100.0)
        assert done == [5.0, 5.0]

    def test_speed_scaling(self):
        sim = Simulator()
        fifo = FifoServer(sim, "disk", speed=2.0)
        done = []
        fifo.submit(10.0, lambda: done.append(sim.now))
        sim.run_until(100.0)
        assert done == [5.0]

    def test_queue_counters(self):
        sim = Simulator()
        fifo = FifoServer(sim, "disk")
        fifo.submit(5.0, lambda: None)
        fifo.submit(5.0, lambda: None)
        assert fifo.in_service == 1
        assert fifo.queued == 1
        assert fifo.total_in_system == 2

    def test_mm1_mean_in_system(self):
        rng = spawn_rng(9, "mm1")
        sim = Simulator()
        fifo = FifoServer(sim, "disk")
        lam, mean_service = 0.06, 10.0  # rho = 0.6
        n = 60_000
        arrivals = np.cumsum(rng.exponential(1 / lam, n))
        for at, d in zip(arrivals, rng.exponential(mean_service, n)):
            sim.schedule_at(float(at), lambda dd=float(d): fifo.submit(dd, lambda: None))
        sim.run_until(float(arrivals[-1]))
        rho = lam * mean_service
        assert fifo.stats.mean_in_system(sim.now) == pytest.approx(rho / (1 - rho), rel=0.12)

    def test_utilisation_multi_server(self):
        sim = Simulator()
        fifo = FifoServer(sim, "disk", servers=2)
        fifo.submit(10.0, lambda: None)
        sim.run_until(20.0)
        # One of two servers busy for 10 of 20 ms => 25% per-server util.
        assert fifo.stats.utilisation(sim.now) == pytest.approx(0.25)


class TestThreadPool:
    def test_grants_up_to_capacity_synchronously(self):
        sim = Simulator()
        pool = ThreadPool(sim, "threads", capacity=2)
        granted = []
        pool.acquire(lambda: granted.append(1))
        pool.acquire(lambda: granted.append(2))
        pool.acquire(lambda: granted.append(3))
        assert granted == [1, 2]
        assert pool.in_use == 2
        assert pool.queued == 1

    def test_release_hands_to_waiter_fifo(self):
        sim = Simulator()
        pool = ThreadPool(sim, "threads", capacity=1)
        granted = []
        pool.acquire(lambda: granted.append("a"))
        pool.acquire(lambda: granted.append("b"))
        pool.acquire(lambda: granted.append("c"))
        pool.release()
        assert granted == ["a", "b"]
        pool.release()
        assert granted == ["a", "b", "c"]

    def test_release_without_acquire_raises(self):
        sim = Simulator()
        pool = ThreadPool(sim, "threads", capacity=1)
        with pytest.raises(SimulationError):
            pool.release()

    def test_in_use_drops_when_no_waiters(self):
        sim = Simulator()
        pool = ThreadPool(sim, "threads", capacity=2)
        pool.acquire(lambda: None)
        pool.release()
        assert pool.in_use == 0

    def test_completions_counted_on_release(self):
        sim = Simulator()
        pool = ThreadPool(sim, "threads", capacity=1)
        pool.acquire(lambda: None)
        pool.release()
        assert pool.stats.completions == 1
