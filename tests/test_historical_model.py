"""Tests for the assembled HistoricalModel (calibration + prediction)."""

import pytest

from repro.historical.datastore import HistoricalDataPoint, HistoricalDataStore
from repro.historical.model import HistoricalModel
from repro.util.errors import CalibrationError

# A synthetic but internally consistent world: two established servers whose
# response curves follow known equations, letting assertions be exact-ish.
MX = {"F": 186.0, "VF": 320.0, "S": 86.0}
M = 0.14


def synthetic_mrt(server: str, n: int) -> float:
    """Ground truth: exponential below saturation, linear above."""
    n_star = MX[server] / M
    c_l = 8.0 * (186.0 / MX[server]) ** 0.2
    lam = 1.1 / n_star  # lambda_L * n_star constant across servers
    if n <= n_star:
        return c_l * pow(2.718281828, lam * n)
    return (n - n_star) / (MX[server] / 1000.0) + c_l * 3.0


def build_store(servers=("F", "VF")) -> HistoricalDataStore:
    store = HistoricalDataStore()
    for server in servers:
        n_star = MX[server] / M
        for frac in (0.35, 0.66, 1.15, 1.6):
            n = int(frac * n_star)
            store.add(
                HistoricalDataPoint(
                    server=server,
                    n_clients=n,
                    mean_response_ms=synthetic_mrt(server, n),
                    throughput_req_per_s=min(M * n, MX[server]),
                    n_samples=50,
                )
            )
    return store


@pytest.fixture(scope="module")
def model():
    return HistoricalModel.calibrate(build_store(), MX, new_servers=("S",))


class TestCalibration:
    def test_gradient_recovered(self, model):
        assert model.throughput_model.gradient == pytest.approx(M, rel=0.01)

    def test_established_servers_modelled(self, model):
        assert set(model.server_calibrations) == {"F", "VF"}

    def test_new_server_added_via_relationship2(self, model):
        assert "S" in model.server_models
        assert "S" not in model.server_calibrations

    def test_parameter_table_has_all_servers(self, model):
        assert [row[0] for row in model.parameter_table()] == ["F", "S", "VF"]

    def test_needs_data(self):
        with pytest.raises(CalibrationError):
            HistoricalModel.calibrate(HistoricalDataStore(), MX)

    def test_new_server_needs_two_established(self):
        store = build_store(servers=("F",))
        with pytest.raises(CalibrationError):
            HistoricalModel.calibrate(store, {"F": 186.0, "S": 86.0}, new_servers=("S",))

    def test_new_server_needs_benchmark(self):
        store = build_store()
        with pytest.raises(CalibrationError, match="max throughput"):
            HistoricalModel.calibrate(
                store, {"F": 186.0, "VF": 320.0}, new_servers=("S",)
            )


class TestPrediction:
    def test_established_lower_region_accurate(self, model):
        for server in ("F", "VF"):
            n = int(0.5 * MX[server] / M)
            predicted = model.predict_mrt_ms(server, n)
            assert predicted == pytest.approx(synthetic_mrt(server, n), rel=0.05)

    def test_established_upper_region_accurate(self, model):
        for server in ("F", "VF"):
            n = int(1.4 * MX[server] / M)
            predicted = model.predict_mrt_ms(server, n)
            assert predicted == pytest.approx(synthetic_mrt(server, n), rel=0.1)

    def test_new_server_predictions_close(self, model):
        """Relationship 2 should recover the synthetic world's S curve
        because its parameters follow smooth functions of max throughput."""
        n = int(0.5 * MX["S"] / M)
        predicted = model.predict_mrt_ms("S", n)
        assert predicted == pytest.approx(synthetic_mrt("S", n), rel=0.25)

    def test_throughput_prediction(self, model):
        assert model.predict_throughput("F", 500) == pytest.approx(0.14 * 500, rel=0.02)
        assert model.predict_throughput("F", 5000) == pytest.approx(186.0, rel=0.01)

    def test_max_clients_closed_form(self, model):
        goal = 1000.0
        capacity = model.max_clients("F", goal)
        assert model.predict_mrt_ms("F", capacity) <= goal * 1.01
        assert model.predict_mrt_ms("F", capacity + 10) > goal * 0.95

    def test_unknown_server_raises(self, model):
        with pytest.raises(CalibrationError):
            model.predict_mrt_ms("nope", 100)

    def test_predictions_counted(self, model):
        before = model.predictions_made
        model.predict_mrt_ms("F", 100)
        assert model.predictions_made == before + 1


class TestMixPredictions:
    @pytest.fixture(scope="class")
    def mix_model(self):
        return HistoricalModel.calibrate(
            build_store(),
            MX,
            new_servers=("S",),
            mix_observations=[(0.0, 189.0), (0.25, 158.0)],
            mix_server="F",
        )

    def test_buy_fraction_lowers_capacity(self, mix_model):
        typical = mix_model.max_clients("S", 600.0, buy_fraction=0.0)
        mixed = mix_model.max_clients("S", 600.0, buy_fraction=0.25)
        assert mixed < typical

    def test_buy_fraction_raises_response(self, mix_model):
        n = 300
        assert mix_model.predict_mrt_ms("S", n, buy_fraction=0.25) > mix_model.predict_mrt_ms(
            "S", n, buy_fraction=0.0
        )

    def test_mix_throughput_capped_lower(self, mix_model):
        flat_out = mix_model.predict_throughput("S", 10_000, buy_fraction=0.25)
        assert flat_out == pytest.approx(86.0 * 158.0 / 189.0, rel=0.01)

    def test_mix_needs_relationship3(self, model):
        with pytest.raises(CalibrationError, match="relationship 3"):
            model.predict_mrt_ms("F", 100, buy_fraction=0.25)

    def test_mix_cache_reuses_models(self, mix_model):
        mix_model.predict_mrt_ms("S", 100, buy_fraction=0.1)
        cached = dict(mix_model._mix_cache)
        mix_model.predict_mrt_ms("S", 200, buy_fraction=0.1)
        assert dict(mix_model._mix_cache) == cached


class TestDataBudgets:
    def test_limited_points_still_calibrate(self):
        model = HistoricalModel.calibrate(build_store(), MX, n_ldp=2, n_udp=2)
        assert model.predict_mrt_ms("F", 400) > 0

    def test_one_point_budget_rejected(self):
        with pytest.raises(CalibrationError):
            HistoricalModel.calibrate(build_store(), MX, n_ldp=1)
