"""Tests for the section-7.1 response-time distributions and percentile
predictions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution.percentile import PercentilePredictor
from repro.distribution.rtdist import (
    DoubleExponentialResponse,
    ExponentialResponse,
    calibrate_scale,
    distribution_for,
)
from repro.util.errors import CalibrationError, ValidationError
from repro.util.rng import spawn_rng


class TestExponentialResponse:
    def test_cdf_values(self):
        dist = ExponentialResponse(mean_ms=100.0)
        assert dist.cdf(0.0) == 0.0
        assert dist.cdf(100.0) == pytest.approx(1 - math.exp(-1))

    def test_percentile_inverse_of_cdf(self):
        dist = ExponentialResponse(mean_ms=100.0)
        for p in (0.1, 0.5, 0.9, 0.99):
            assert dist.cdf(dist.percentile(p)) == pytest.approx(p)

    def test_p90_is_2_3_times_mean(self):
        dist = ExponentialResponse(mean_ms=100.0)
        assert dist.percentile(0.9) == pytest.approx(-100.0 * math.log(0.1))

    def test_negative_x_cdf_zero(self):
        assert ExponentialResponse(100.0).cdf(-5.0) == 0.0

    def test_invalid_mean_rejected(self):
        with pytest.raises(ValidationError):
            ExponentialResponse(0.0)

    @given(st.floats(min_value=1.0, max_value=1e6), st.floats(min_value=0.01, max_value=0.99))
    def test_percentile_round_trip(self, mean, p):
        dist = ExponentialResponse(mean)
        assert dist.cdf(dist.percentile(p)) == pytest.approx(p, abs=1e-9)


class TestDoubleExponentialResponse:
    def test_median_at_location(self):
        dist = DoubleExponentialResponse(location_ms=1000.0, scale_ms=204.1)
        assert dist.cdf(1000.0) == pytest.approx(0.5)
        assert dist.percentile(0.5) == pytest.approx(1000.0)

    def test_cdf_continuous_at_location(self):
        dist = DoubleExponentialResponse(location_ms=1000.0, scale_ms=204.1)
        assert dist.cdf(1000.0 - 1e-9) == pytest.approx(dist.cdf(1000.0 + 1e-9), abs=1e-6)

    def test_symmetry_around_location(self):
        dist = DoubleExponentialResponse(location_ms=1000.0, scale_ms=200.0)
        assert dist.cdf(1000.0 - 100.0) == pytest.approx(1.0 - dist.cdf(1000.0 + 100.0))

    def test_percentile_inverse_both_branches(self):
        dist = DoubleExponentialResponse(location_ms=1000.0, scale_ms=200.0)
        for p in (0.05, 0.3, 0.5, 0.7, 0.95):
            assert dist.cdf(dist.percentile(p)) == pytest.approx(p)

    def test_paper_scale_value_p90(self):
        # p90 = a + b*ln(5) for the Laplace distribution.
        dist = DoubleExponentialResponse(location_ms=1000.0, scale_ms=204.1)
        assert dist.percentile(0.9) == pytest.approx(1000.0 + 204.1 * math.log(5.0))

    @given(
        st.floats(min_value=10.0, max_value=1e5),
        st.floats(min_value=1.0, max_value=1e4),
        st.floats(min_value=0.02, max_value=0.98),
    )
    def test_round_trip_property(self, location, scale, p):
        dist = DoubleExponentialResponse(location, scale)
        assert dist.cdf(dist.percentile(p)) == pytest.approx(p, abs=1e-9)

    @settings(max_examples=20)
    @given(st.floats(min_value=10.0, max_value=1e4))
    def test_cdf_monotone(self, location):
        dist = DoubleExponentialResponse(location, 100.0)
        xs = np.linspace(0.0, 3 * location, 50)
        cdfs = [dist.cdf(float(x)) for x in xs]
        assert all(b >= a for a, b in zip(cdfs, cdfs[1:]))


class TestCalibrateScale:
    def test_mle_is_mean_absolute_deviation(self):
        samples = [900.0, 1100.0, 800.0, 1200.0]
        assert calibrate_scale(samples, 1000.0) == pytest.approx(150.0)

    def test_laplace_samples_recover_scale(self):
        rng = spawn_rng(0, "test-distribution")
        samples = rng.laplace(loc=1000.0, scale=204.1, size=100_000)
        assert calibrate_scale(samples, 1000.0) == pytest.approx(204.1, rel=0.02)

    def test_empty_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate_scale([], 100.0)

    def test_degenerate_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate_scale([100.0, 100.0], 100.0)


class TestDistributionFor:
    def test_regime_selection(self):
        below = distribution_for(50.0, saturated=False, scale_ms=204.1)
        above = distribution_for(2000.0, saturated=True, scale_ms=204.1)
        assert isinstance(below, ExponentialResponse)
        assert isinstance(above, DoubleExponentialResponse)

    def test_saturated_located_at_mean(self):
        dist = distribution_for(2000.0, saturated=True, scale_ms=204.1)
        assert dist.location_ms == 2000.0


class TestPercentilePredictor:
    @pytest.fixture
    def predictor(self):
        return PercentilePredictor(
            predict_mean_ms=lambda server, n: 10.0 + 0.5 * n,
            clients_at_max=lambda server: 1000.0,
            scale_ms=204.1,
        )

    def test_regime_switch_at_max_load(self, predictor):
        assert predictor.is_saturated("s", 999) is False
        assert predictor.is_saturated("s", 1000) is True

    def test_unsaturated_uses_exponential(self, predictor):
        mean = 10.0 + 0.5 * 100
        expected = ExponentialResponse(mean).percentile(0.9)
        assert predictor.predict_percentile_ms("s", 100, 0.9) == pytest.approx(expected)

    def test_saturated_uses_double_exponential(self, predictor):
        mean = 10.0 + 0.5 * 2000
        expected = DoubleExponentialResponse(mean, 204.1).percentile(0.9)
        assert predictor.predict_percentile_ms("s", 2000, 0.9) == pytest.approx(expected)

    def test_fraction_within(self, predictor):
        frac = predictor.predict_fraction_within("s", 100, 200.0)
        assert 0.9 < frac <= 1.0

    def test_invalid_percentile_rejected(self, predictor):
        with pytest.raises(ValidationError):
            predictor.predict_percentile_ms("s", 100, 1.5)
