"""Tests for the least-squares trend fitting used by the historical method."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.historical.fitting import (
    fit_exponential,
    fit_linear,
    fit_linear_through_origin,
    fit_power,
)
from repro.util.errors import CalibrationError
from repro.util.rng import spawn_rng


class TestLinear:
    def test_exact_recovery(self):
        x = [1.0, 2.0, 3.0]
        y = [2 * v + 1 for v in x]
        fit = fit_linear(x, y)
        slope, intercept = fit.params
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_fit_reasonable(self):
        rng = spawn_rng(0, "test-fitting")
        x = np.linspace(0, 10, 50)
        y = 3 * x + 5 + rng.normal(0, 0.1, 50)
        slope, intercept = fit_linear(x, y).params
        assert slope == pytest.approx(3.0, abs=0.05)
        assert intercept == pytest.approx(5.0, abs=0.3)

    def test_two_points_exact(self):
        slope, intercept = fit_linear([0.0, 1.0], [1.0, 3.0]).params
        assert (slope, intercept) == (pytest.approx(2.0), pytest.approx(1.0))

    def test_one_point_rejected(self):
        with pytest.raises(CalibrationError):
            fit_linear([1.0], [1.0])

    def test_identical_x_rejected(self):
        with pytest.raises(CalibrationError):
            fit_linear([1.0, 1.0], [1.0, 2.0])

    def test_non_finite_rejected(self):
        with pytest.raises(CalibrationError):
            fit_linear([1.0, float("nan")], [1.0, 2.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(CalibrationError):
            fit_linear([1.0, 2.0], [1.0])

    @settings(max_examples=30)
    @given(
        slope=st.floats(min_value=-100, max_value=100),
        intercept=st.floats(min_value=-100, max_value=100),
    )
    def test_recovers_any_line(self, slope, intercept):
        x = [0.0, 1.0, 2.0, 5.0]
        y = [slope * v + intercept for v in x]
        got_slope, got_intercept = fit_linear(x, y).params
        assert got_slope == pytest.approx(slope, abs=1e-6)
        assert got_intercept == pytest.approx(intercept, abs=1e-6)


class TestLinearThroughOrigin:
    def test_exact_recovery(self):
        fit = fit_linear_through_origin([1.0, 2.0], [0.14, 0.28])
        assert fit.params[0] == pytest.approx(0.14)

    def test_single_point_allowed(self):
        assert fit_linear_through_origin([10.0], [1.4]).params[0] == pytest.approx(0.14)

    def test_all_zero_x_rejected(self):
        with pytest.raises(CalibrationError):
            fit_linear_through_origin([0.0, 0.0], [1.0, 2.0])


class TestExponential:
    def test_exact_recovery(self):
        c, lam = 8.5, 1.3e-3
        x = [100.0, 500.0, 900.0]
        y = [c * np.exp(lam * v) for v in x]
        got_c, got_lam = fit_exponential(x, y).params
        assert got_c == pytest.approx(c, rel=1e-9)
        assert got_lam == pytest.approx(lam, rel=1e-9)

    def test_negative_rate_recovered(self):
        c, lam = 100.0, -0.01
        x = [0.0, 50.0, 100.0]
        y = [c * np.exp(lam * v) for v in x]
        _, got_lam = fit_exponential(x, y).params
        assert got_lam == pytest.approx(lam, rel=1e-9)

    def test_non_positive_y_rejected(self):
        with pytest.raises(CalibrationError):
            fit_exponential([1.0, 2.0], [1.0, 0.0])

    @settings(max_examples=30)
    @given(
        c=st.floats(min_value=0.1, max_value=1e3),
        lam=st.floats(min_value=-0.01, max_value=0.01),
    )
    def test_round_trip(self, c, lam):
        x = [10.0, 300.0, 700.0]
        y = [c * np.exp(lam * v) for v in x]
        got_c, got_lam = fit_exponential(x, y).params
        assert got_c == pytest.approx(c, rel=1e-6)
        assert got_lam == pytest.approx(lam, abs=1e-9)


class TestPower:
    def test_exact_recovery(self):
        big_c, delta = 0.2, -1.3
        x = [90.0, 190.0, 320.0]
        y = [big_c * v**delta for v in x]
        got_c, got_delta = fit_power(x, y).params
        assert got_c == pytest.approx(big_c, rel=1e-9)
        assert got_delta == pytest.approx(delta, rel=1e-9)

    def test_non_positive_x_rejected(self):
        with pytest.raises(CalibrationError):
            fit_power([0.0, 1.0], [1.0, 2.0])

    def test_non_positive_y_rejected(self):
        with pytest.raises(CalibrationError):
            fit_power([1.0, 2.0], [-1.0, 2.0])

    @settings(max_examples=30)
    @given(
        coeff=st.floats(min_value=1e-4, max_value=1e3),
        exponent=st.floats(min_value=-3.0, max_value=3.0),
    )
    def test_round_trip(self, coeff, exponent):
        x = [86.0, 186.0, 320.0]
        y = [coeff * v**exponent for v in x]
        got_c, got_delta = fit_power(x, y).params
        assert got_c == pytest.approx(coeff, rel=1e-5)
        assert got_delta == pytest.approx(exponent, abs=1e-7)


def test_fit_result_iterable():
    fit = fit_linear([0.0, 1.0], [0.0, 2.0])
    slope, intercept = fit
    assert slope == pytest.approx(2.0)
    assert fit.n_points == 2
