"""The LQN model linter and its two wiring points (solver, service)."""

import pytest

from repro.analysis import ModelLintError, check_model, lint_model, model_preflight
from repro.lqn.builder import (
    RequestTypeParameters,
    TradeModelParameters,
    build_trade_model,
)
from repro.lqn.model import Call, Entry, LqnModel, Processor, Task
from repro.lqn.serialization import model_to_dict
from repro.lqn.solver import LqnSolver, SolverOptions
from repro.servers.catalogue import APP_SERV_F
from repro.service.service import PredictionService, ServiceConfig
from repro.workload.trade import typical_workload

PARAMS = TradeModelParameters(
    request_types={
        "browse": RequestTypeParameters(
            name="browse",
            app_demand_ms=5.376,
            db_calls=1.14,
            db_cpu_per_call_ms=0.8294,
            db_disk_per_call_ms=1.2,
        )
    }
)


def good_model() -> LqnModel:
    return build_trade_model(APP_SERV_F, typical_workload(50), PARAMS)


def cyclic_model() -> LqnModel:
    """client -> a -> b -> a: a call cycle the dataclasses happily build."""
    model = LqnModel()
    model.add_processor(Processor("client_cpu"))
    model.add_processor(Processor("cpu"))
    model.add_task(
        Task(
            name="client",
            processor="client_cpu",
            entries=(Entry("browse", 0.0, (Call("a", 1.0),)),),
            is_reference=True,
            think_time_ms=1000.0,
        )
    )
    model.add_task(
        Task(
            name="A",
            processor="cpu",
            entries=(Entry("a", 1.0, (Call("b", 1.0),)),),
        )
    )
    model.add_task(
        Task(
            name="B",
            processor="cpu",
            entries=(Entry("b", 1.0, (Call("a", 0.5),)),),
        )
    )
    return model


class TestLintModel:
    def test_clean_model_has_no_findings(self):
        assert lint_model(good_model()) == []

    def test_clean_dict_form_has_no_findings(self):
        assert lint_model(model_to_dict(good_model())) == []

    def test_call_cycle_detected_with_path(self):
        found = lint_model(cyclic_model())
        cycles = [f for f in found if f.rule_id == "REPRO-LQN001"]
        assert cycles, found
        assert "A -> B -> A" in cycles[0].message

    def test_zero_multiplicity_server_in_dict_form(self):
        data = model_to_dict(good_model())
        server = next(t for t in data["tasks"] if t["name"] == "app_server")
        server["multiplicity"] = 0
        found = lint_model(data)
        assert any(
            f.rule_id == "REPRO-LQN004" and f.symbol == "app_server" for f in found
        )

    def test_negative_demand_in_dict_form(self):
        data = model_to_dict(good_model())
        data["tasks"][1]["entries"][0]["demand_ms"] = -1.0
        assert any(f.rule_id == "REPRO-LQN003" for f in lint_model(data))

    def test_unreachable_task_flagged(self):
        model = good_model()
        model.add_task(
            Task(
                name="orphan",
                processor="app_cpu",
                entries=(Entry("orphan_entry", 1.0),),
            )
        )
        found = lint_model(model)
        assert any(
            f.rule_id == "REPRO-LQN002" and f.symbol == "orphan" for f in found
        )

    def test_dangling_call_target_flagged(self):
        data = model_to_dict(good_model())
        data["tasks"][0]["entries"][0]["calls"][0]["target"] = "nowhere"
        assert any(f.rule_id == "REPRO-LQN006" for f in lint_model(data))

    def test_missing_reference_task_flagged(self):
        data = model_to_dict(good_model())
        for task in data["tasks"]:
            task["is_reference"] = False
            task["think_time_ms"] = 0.0
        assert any(f.rule_id == "REPRO-LQN005" for f in lint_model(data))


class TestCheckModel:
    def test_errors_raise_with_rule_ids(self):
        with pytest.raises(ModelLintError, match="REPRO-LQN001") as exc:
            check_model(cyclic_model())
        assert any(f.rule_id == "REPRO-LQN001" for f in exc.value.findings)

    def test_clean_model_returns_warnings_only(self):
        assert check_model(good_model()) == []


class TestSolverWiring:
    def test_lint_gate_rejects_cyclic_model_before_solving(self):
        solver = LqnSolver(SolverOptions(lint_models=True))
        with pytest.raises(ModelLintError, match="REPRO-LQN001"):
            solver.solve(cyclic_model())
        assert solver.solve_count == 0

    def test_lint_gate_passes_clean_model_through(self):
        gated = LqnSolver(SolverOptions(lint_models=True)).solve(good_model())
        plain = LqnSolver().solve(good_model())
        assert gated.mean_response_ms() == pytest.approx(plain.mean_response_ms())

    def test_lint_off_by_default(self):
        assert SolverOptions().lint_models is False


class _StubPredictor:
    """Minimal Predictor returning canned values."""

    def __init__(self):
        from repro.prediction.interface import PredictionTimer

        self.name = "stub"
        self.timer = PredictionTimer()

    def predict_mrt_ms(self, server, n_clients, *, buy_fraction=0.0):
        return 42.0

    def predict_throughput(self, server, n_clients, *, buy_fraction=0.0):
        return 10.0

    def max_clients(self, server, rt_goal_ms, *, buy_fraction=0.0):
        return 7


class TestServicePreflight:
    def test_lint_rejection_blocks_admission_and_counts(self):
        preflight = model_preflight(lambda kind, server, operand, buy: cyclic_model())
        with PredictionService(
            _StubPredictor(), config=ServiceConfig(max_workers=1), preflight=preflight
        ) as service:
            with pytest.raises(ModelLintError, match="REPRO-LQN001"):
                service.predict_mrt_ms("AppServF", 100)
            assert service.export_metrics()["preflight.rejected"] == 1.0
            assert service.export_metrics()["admission.admitted"] == 0.0

    def test_clean_preflight_serves_normally(self):
        preflight = model_preflight(lambda kind, server, operand, buy: good_model())
        with PredictionService(
            _StubPredictor(), config=ServiceConfig(max_workers=1), preflight=preflight
        ) as service:
            assert service.predict_mrt_ms("AppServF", 100) == 42.0

    def test_cache_hits_skip_the_preflight(self):
        calls = []

        def preflight(kind, server, operand, buy):
            calls.append(kind)

        with PredictionService(
            _StubPredictor(), config=ServiceConfig(max_workers=1), preflight=preflight
        ) as service:
            service.predict_mrt_ms("AppServF", 100)
            service.predict_mrt_ms("AppServF", 100)
        assert calls == ["mrt"]
