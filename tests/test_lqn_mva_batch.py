"""Properties of the batched Bard–Schweitzer core and warm-started sweeps.

The load-bearing claim of the batch solver is *freeze-on-converge
bit-exactness*: every arithmetic step is elementwise over the batch axis
(or reduces over the class/station axes only), so a point iterates
through exactly the same floating-point trajectory whether it is solved
alone or alongside any set of batch neighbours — and a converged point's
frozen outputs are the same bits a solo solve returns.  These tests pin
that claim down at both layers:

* ``solve_batch`` vs per-point ``solve_bard_schweitzer`` (which *is* a
  batch of one) — hypothesis-generated multiclass networks, exact
  equality;
* ``LqnSolver.solve_sweep(warm_start=False)`` vs a loop of
  ``LqnSolver.solve`` on real trade models — exact equality;
* warm-started sweeps — tolerance equality within the solver's
  convergence criterion.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lqn.builder import (
    RequestTypeParameters,
    TradeModelParameters,
    build_trade_model,
)
from repro.lqn.mva import (
    MvaBatchInput,
    MvaInput,
    Station,
    StationKind,
    solve_batch,
    solve_bard_schweitzer,
)
from repro.lqn.solver import LqnSolver, SolverOptions, WARM_START_STRIDE
from repro.servers.catalogue import APP_SERV_F, APP_SERV_S, APP_SERV_VF
from repro.util.errors import ConvergenceError, ValidationError
from repro.workload.trade import typical_workload

PARAMS = TradeModelParameters(
    request_types={
        "browse": RequestTypeParameters(
            name="browse",
            app_demand_ms=5.376,
            db_calls=1.14,
            db_cpu_per_call_ms=0.8294,
            db_disk_per_call_ms=1.2,
        ),
        "buy": RequestTypeParameters(
            name="buy",
            app_demand_ms=10.455,
            db_calls=2.0,
            db_cpu_per_call_ms=1.613,
            db_disk_per_call_ms=1.5,
        ),
    }
)


def _point(stations, populations, thinks, demands, hidden=None) -> MvaInput:
    return MvaInput(
        stations=stations,
        class_names=[f"c{i}" for i in range(len(populations))],
        populations=populations,
        think_times_ms=thinks,
        demands=np.asarray(demands, dtype=float),
        hidden_demands=None if hidden is None else np.asarray(hidden, dtype=float),
    )


def _assert_same_solution(a, b) -> None:
    """Bitwise equality between two MvaSolution objects."""
    assert a.iterations == b.iterations
    np.testing.assert_array_equal(a.throughput_per_ms, b.throughput_per_ms)
    np.testing.assert_array_equal(a.cycle_response_ms, b.cycle_response_ms)
    np.testing.assert_array_equal(a.queue_lengths, b.queue_lengths)
    np.testing.assert_array_equal(a.residence_ms, b.residence_ms)
    np.testing.assert_array_equal(a.utilisation, b.utilisation)
    assert a.open_response_ms == b.open_response_ms


# ---------------------------------------------------------------------------
# Hypothesis strategies: small multiclass networks sharing one structure.


@st.composite
def batched_networks(draw):
    K = draw(st.integers(1, 3))
    C = draw(st.integers(1, 2))
    B = draw(st.integers(2, 4))
    stations = []
    for k in range(K):
        kind = draw(st.sampled_from([StationKind.QUEUE, StationKind.DELAY]))
        waiting_only = kind is StationKind.QUEUE and draw(st.booleans())
        servers = draw(st.integers(1, 4)) if kind is StationKind.QUEUE else 1
        stations.append(
            Station(f"s{k}", kind=kind, servers=servers, waiting_only=waiting_only)
        )
    finite = st.floats(0.0, 20.0, allow_nan=False, allow_infinity=False)
    points = []
    for _ in range(B):
        populations = draw(st.lists(st.integers(0, 30), min_size=C, max_size=C))
        thinks = draw(
            st.lists(
                st.floats(1.0, 100.0, allow_nan=False, allow_infinity=False),
                min_size=C,
                max_size=C,
            )
        )
        demands = [[draw(finite) for _ in range(K)] for _ in range(C)]
        hidden = None
        if draw(st.booleans()):
            hidden = [
                [draw(st.floats(0.0, 0.5, allow_nan=False)) for _ in range(K)]
                for _ in range(C)
            ]
        points.append(_point(stations, populations, thinks, demands, hidden))
    return points


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(points=batched_networks())
def test_batched_solve_is_bitwise_identical_to_serial(points):
    """Each batch point's frozen output equals its solo solve, bit for bit."""
    serial = []
    error = None
    for point in points:
        try:
            serial.append(solve_bard_schweitzer(point))
        except ValidationError as exc:  # hidden-demand overload, no steady state
            error = exc
            break
    if error is not None:
        with pytest.raises(ValidationError):
            solve_batch(MvaBatchInput.from_points(points))
        return
    batched = solve_batch(MvaBatchInput.from_points(points))
    assert batched.batch_size == len(points)
    for b, solo in enumerate(serial):
        _assert_same_solution(batched.solution(b), solo)


def test_batch_of_one_is_the_single_point_path():
    """``solve_bard_schweitzer`` is literally a batch of one."""
    point = _point(
        [Station("cpu", servers=2), Station("disk"), Station("think", kind=StationKind.DELAY)],
        populations=[5, 3],
        thinks=[40.0, 10.0],
        demands=[[4.0, 2.0, 7.0], [1.0, 6.0, 0.0]],
    )
    single = solve_bard_schweitzer(point)
    batch = solve_batch(MvaBatchInput.from_points([point]))
    _assert_same_solution(batch.solution(0), single)


def test_single_point_hook_stream_matches_batch_hook():
    """The 2-arg hook adapter relays the batch kernel's instants 1:1."""
    point = _point([Station("cpu")], [8], [25.0], [[5.0]])
    single_events: list[tuple[int, float]] = []
    batch_events: list[tuple[int, float, int]] = []
    solve_bard_schweitzer(
        point, iteration_hook=lambda i, delta: single_events.append((i, delta))
    )
    solve_batch(
        MvaBatchInput.from_points([point]),
        iteration_hook=lambda i, delta, n: batch_events.append((i, delta, n)),
    )
    assert [(i, d) for i, d, _ in batch_events] == single_events
    assert all(n == 1 for _, _, n in batch_events)


def test_trivial_and_active_points_coexist():
    """Zero-population points freeze immediately without touching others."""
    stations = [Station("cpu")]
    busy = _point(stations, [6], [30.0], [[5.0]])
    idle = _point(stations, [0], [30.0], [[5.0]])
    batched = solve_batch(MvaBatchInput.from_points([idle, busy, idle]))
    _assert_same_solution(batched.solution(1), solve_bard_schweitzer(busy))
    assert batched.solution(0).throughput_per_ms[0] == 0.0
    assert batched.iterations[0] == 0


def test_from_points_rejects_mismatched_structure():
    a = _point([Station("cpu")], [2], [10.0], [[1.0]])
    b = _point([Station("cpu", servers=2)], [2], [10.0], [[1.0]])
    with pytest.raises(ValidationError, match="point 1"):
        MvaBatchInput.from_points([a, b])


def test_subset_preserves_rows():
    points = [
        _point([Station("cpu")], [n], [10.0], [[2.0]]) for n in (1, 5, 9)
    ]
    batch = MvaBatchInput.from_points(points)
    sub = batch.subset(np.array([2, 0]))
    assert sub.batch_size == 2
    np.testing.assert_array_equal(sub.populations, [[9], [1]])
    _assert_same_solution(solve_batch(sub).solution(0), solve_bard_schweitzer(points[2]))


def test_batch_convergence_error_counts_stragglers():
    points = [
        _point([Station("cpu")], [20], [5.0], [[8.0]]),
        _point([Station("cpu")], [0], [5.0], [[8.0]]),  # trivial: never iterates
    ]
    with pytest.raises(ConvergenceError, match="1 of 2"):
        solve_batch(MvaBatchInput.from_points(points), max_iterations=1)


def test_batch_seed_shape_is_validated():
    batch = MvaBatchInput.from_points([_point([Station("cpu")], [2], [10.0], [[1.0]])])
    with pytest.raises(ValidationError, match="initial_queue_lengths"):
        solve_batch(batch, initial_queue_lengths=np.zeros((2, 1, 1)))


# ---------------------------------------------------------------------------
# Solver-level sweeps over real trade models.


@pytest.fixture(scope="module")
def solver():
    return LqnSolver(SolverOptions(convergence_criterion_ms=0.5))


@pytest.fixture(scope="module")
def sweep_models():
    # Long enough that the warm path engages (> WARM_START_STRIDE per
    # structure group) and spanning two architectures (two groups).
    models = []
    for arch in (APP_SERV_S, APP_SERV_F, APP_SERV_VF):
        for n in (30, 120, 480, 700, 950, 1200):
            models.append(build_trade_model(arch, typical_workload(n), PARAMS))
    return models


def test_cold_sweep_is_bitwise_identical_to_solve_loop(solver, sweep_models):
    serial = [solver.solve(model) for model in sweep_models]
    swept = solver.solve_sweep(sweep_models, warm_start=False)
    assert len(swept) == len(serial)
    for a, b in zip(serial, swept):
        assert a.response_ms == b.response_ms
        assert a.throughput_req_per_s == b.throughput_req_per_s
        assert a.processor_utilisation == b.processor_utilisation
        assert a.residence_ms == b.residence_ms
        assert a.task_concurrency == b.task_concurrency
        assert a.iterations == b.iterations
        assert a.final_residual_ms == b.final_residual_ms
        assert a.converged and b.converged


def test_warm_sweep_stays_within_convergence_criterion(solver, sweep_models):
    assert len(sweep_models) > WARM_START_STRIDE
    serial = [solver.solve(model) for model in sweep_models]
    swept = solver.solve_sweep(sweep_models, warm_start=True)
    criterion = solver.options.convergence_criterion_ms
    for a, b in zip(serial, swept):
        for name in a.response_ms:
            assert b.response_ms[name] == pytest.approx(
                a.response_ms[name], abs=criterion
            )
        assert b.mean_response_ms() == pytest.approx(
            a.mean_response_ms(), abs=criterion
        )


def test_sweep_returns_solutions_in_input_order(solver, sweep_models):
    # Locality ordering happens inside the sweep; results must come back
    # aligned with the request, interleaved architectures and all.
    shuffled = sweep_models[::2] + sweep_models[1::2]
    swept = solver.solve_sweep(shuffled, warm_start=False)
    for model, solution in zip(shuffled, swept):
        reference = {t.name for t in model.reference_tasks()}
        assert set(solution.response_ms) == reference
        expected = solver.solve(model)
        assert solution.response_ms == expected.response_ms
