"""Thread-safe service metrics: counters, gauges and latency histograms.

The serving layer needs richer accounting than the cumulative
:class:`~repro.prediction.interface.PredictionTimer` the offline
experiments read: a resource manager operating a shared prediction
service wants tail latencies (p95/p99, not just the mean), cache
hit rates and degradation counts, all collected concurrently from many
threads.  This module provides that registry.  A
:class:`LatencyHistogram` subsumes everything a ``PredictionTimer``
reports — ``count`` is its ``evaluations``, ``total_s`` its
``total_time_s`` and ``mean_s`` its ``mean_delay_s`` — and adds
fixed-bucket quantile export on top.
"""

from __future__ import annotations

import threading
from typing import Sequence

from repro.util.validation import require

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
]

# Log-spaced bounds from 1 µs to 30 s: fine enough to separate a
# closed-form historical lookup (µs) from an LQN solve (ms-to-s) in one
# histogram. The final +inf bucket catches anything slower.
DEFAULT_LATENCY_BUCKETS_S: tuple[float, ...] = tuple(
    10.0 ** (e / 3.0) for e in range(-18, 5)
) + (30.0,)


class Counter:
    """A monotonically increasing, thread-safe event counter."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """Current count."""
        with self._lock:
            return self._value


class Gauge:
    """A thread-safe instantaneous value (queue depth, in-flight count...)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        """Shift the gauge's value by ``delta`` (may be negative)."""
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value


class LatencyHistogram:
    """A fixed-bucket latency histogram with interpolated quantile export.

    Buckets are defined by their (sorted, strictly increasing) upper
    bounds in seconds; one implicit overflow bucket catches observations
    above the last bound.  Quantiles are estimated by linear
    interpolation inside the bucket containing the requested rank, which
    is the standard fixed-bucket (Prometheus-style) estimator: exact
    enough for the p50/p95/p99 the serving experiments report, with O(1)
    memory regardless of request volume.
    """

    def __init__(self, buckets_s: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S):
        require(len(buckets_s) > 0, "histogram needs at least one bucket bound")
        require(
            all(b > a for a, b in zip(buckets_s, buckets_s[1:])),
            "histogram bucket bounds must be strictly increasing",
        )
        self._bounds = tuple(float(b) for b in buckets_s)
        self._counts = [0] * (len(self._bounds) + 1)  # +1 overflow
        self._lock = threading.Lock()
        self._count = 0
        self._total_s = 0.0
        self._max_s = 0.0

    def observe(self, elapsed_s: float) -> None:
        """Record one observation (seconds)."""
        index = self._bucket_index(elapsed_s)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._total_s += elapsed_s
            if elapsed_s > self._max_s:
                self._max_s = elapsed_s

    def _bucket_index(self, elapsed_s: float) -> int:
        lo, hi = 0, len(self._bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if elapsed_s <= self._bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def count(self) -> int:
        """Number of observations (a ``PredictionTimer``'s ``evaluations``)."""
        with self._lock:
            return self._count

    @property
    def total_s(self) -> float:
        """Sum of observations (a ``PredictionTimer``'s ``total_time_s``)."""
        with self._lock:
            return self._total_s

    @property
    def mean_s(self) -> float:
        """Mean observation (a ``PredictionTimer``'s ``mean_delay_s``)."""
        with self._lock:
            return self._total_s / self._count if self._count else 0.0

    @property
    def max_s(self) -> float:
        """Largest observation seen."""
        with self._lock:
            return self._max_s

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (seconds), 0 when empty.

        Linear interpolation inside the bucket holding rank ``q * count``;
        the overflow bucket reports the maximum observation seen.
        """
        require(0.0 <= q <= 1.0, "quantile must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            cumulative = 0
            for i, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= rank:
                    if i >= len(self._bounds):  # overflow bucket
                        return self._max_s
                    lower = self._bounds[i - 1] if i > 0 else 0.0
                    upper = min(self._bounds[i], self._max_s)
                    upper = max(upper, lower)
                    fraction = (rank - cumulative) / bucket_count
                    return lower + fraction * (upper - lower)
                cumulative += bucket_count
            return self._max_s  # pragma: no cover - defensive

    def percentiles(self) -> dict[str, float]:
        """The p50/p95/p99 export (seconds) the serving reports print."""
        return {
            "p50_s": self.quantile(0.50),
            "p95_s": self.quantile(0.95),
            "p99_s": self.quantile(0.99),
        }


class MetricsRegistry:
    """A named registry of counters, gauges and latency histograms.

    Instruments are created on first access (``registry.counter("hits")``)
    and shared thereafter, so concurrent callers always increment the
    same underlying instrument.  :meth:`export` flattens everything into
    one ``{name: value}`` dict for rendering or assertions.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, LatencyHistogram] = {}

    def counter(self, name: str) -> Counter:
        """Get (creating on first use) the counter called ``name``."""
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter()
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """Get (creating on first use) the gauge called ``name``."""
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge()
            return self._gauges[name]

    def histogram(
        self, name: str, buckets_s: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S
    ) -> LatencyHistogram:
        """Get (creating on first use) the latency histogram ``name``."""
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = LatencyHistogram(buckets_s)
            return self._histograms[name]

    def export(self) -> dict[str, float]:
        """Flatten every instrument into one ``{metric_name: value}`` dict.

        Histograms export ``<name>.count``, ``<name>.total_s``,
        ``<name>.mean_s``, ``<name>.max_s`` and the three standard
        percentiles, so a single dict carries the whole service state.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        out: dict[str, float] = {}
        for name, counter in sorted(counters.items()):
            out[name] = counter.value
        for name, gauge in sorted(gauges.items()):
            out[name] = gauge.value
        for name, histogram in sorted(histograms.items()):
            out[f"{name}.count"] = histogram.count
            out[f"{name}.total_s"] = histogram.total_s
            out[f"{name}.mean_s"] = histogram.mean_s
            out[f"{name}.max_s"] = histogram.max_s
            for key, value in histogram.percentiles().items():
                out[f"{name}.{key}"] = value
        return out
