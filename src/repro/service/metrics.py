"""Thread-safe service metrics: counters, gauges and latency histograms.

The serving layer needs richer accounting than the cumulative
:class:`~repro.prediction.interface.PredictionTimer` the offline
experiments read: a resource manager operating a shared prediction
service wants tail latencies (p95/p99, not just the mean), cache
hit rates and degradation counts, all collected concurrently from many
threads.  This module provides that registry.  A
:class:`LatencyHistogram` subsumes everything a ``PredictionTimer``
reports — ``count`` is its ``evaluations``, ``total_s`` its
``total_time_s`` and ``mean_s`` its ``mean_delay_s`` — and adds
fixed-bucket quantile export on top.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.util.validation import require

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "HistogramSnapshot",
    "MetricsSnapshot",
    "bucket_quantile",
    "merge_snapshots",
]

# Log-spaced bounds from 1 µs to 30 s: fine enough to separate a
# closed-form historical lookup (µs) from an LQN solve (ms-to-s) in one
# histogram. The final +inf bucket catches anything slower.
DEFAULT_LATENCY_BUCKETS_S: tuple[float, ...] = tuple(
    10.0 ** (e / 3.0) for e in range(-18, 5)
) + (30.0,)


def bucket_quantile(
    bounds: Sequence[float],
    counts: Sequence[int],
    count: int,
    max_s: float,
    q: float,
) -> float:
    """The fixed-bucket quantile estimator, as a pure function of bucket state.

    Linear interpolation inside the bucket containing rank ``q * count``;
    the overflow bucket reports ``max_s``.  Both the live
    :class:`LatencyHistogram` and merged :class:`HistogramSnapshot`\\ s
    delegate here, so a quantile computed from merged per-shard buckets
    is *identical* to the one a single histogram holding the union of
    observations would report — merging cannot drift the percentiles.
    """
    require(0.0 <= q <= 1.0, "quantile must be in [0, 1]")
    if count == 0:
        return 0.0
    rank = q * count
    cumulative = 0
    for i, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        if cumulative + bucket_count >= rank:
            if i >= len(bounds):  # overflow bucket
                return max_s
            lower = bounds[i - 1] if i > 0 else 0.0
            upper = min(bounds[i], max_s)
            upper = max(upper, lower)
            fraction = (rank - cumulative) / bucket_count
            return lower + fraction * (upper - lower)
        cumulative += bucket_count
    return max_s  # pragma: no cover - defensive


class Counter:
    """A monotonically increasing, thread-safe event counter."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """Current count."""
        with self._lock:
            return self._value


class Gauge:
    """A thread-safe instantaneous value (queue depth, in-flight count...)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        """Shift the gauge's value by ``delta`` (may be negative)."""
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value


class LatencyHistogram:
    """A fixed-bucket latency histogram with interpolated quantile export.

    Buckets are defined by their (sorted, strictly increasing) upper
    bounds in seconds; one implicit overflow bucket catches observations
    above the last bound.  Quantiles are estimated by linear
    interpolation inside the bucket containing the requested rank, which
    is the standard fixed-bucket (Prometheus-style) estimator: exact
    enough for the p50/p95/p99 the serving experiments report, with O(1)
    memory regardless of request volume.
    """

    def __init__(self, buckets_s: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S):
        require(len(buckets_s) > 0, "histogram needs at least one bucket bound")
        require(
            all(b > a for a, b in zip(buckets_s, buckets_s[1:])),
            "histogram bucket bounds must be strictly increasing",
        )
        self._bounds = tuple(float(b) for b in buckets_s)
        self._counts = [0] * (len(self._bounds) + 1)  # +1 overflow
        self._lock = threading.Lock()
        self._count = 0
        self._total_s = 0.0
        self._max_s = 0.0

    def observe(self, elapsed_s: float) -> None:
        """Record one observation (seconds)."""
        index = self._bucket_index(elapsed_s)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._total_s += elapsed_s
            if elapsed_s > self._max_s:
                self._max_s = elapsed_s

    def _bucket_index(self, elapsed_s: float) -> int:
        lo, hi = 0, len(self._bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if elapsed_s <= self._bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def count(self) -> int:
        """Number of observations (a ``PredictionTimer``'s ``evaluations``)."""
        with self._lock:
            return self._count

    @property
    def total_s(self) -> float:
        """Sum of observations (a ``PredictionTimer``'s ``total_time_s``)."""
        with self._lock:
            return self._total_s

    @property
    def mean_s(self) -> float:
        """Mean observation (a ``PredictionTimer``'s ``mean_delay_s``)."""
        with self._lock:
            return self._total_s / self._count if self._count else 0.0

    @property
    def max_s(self) -> float:
        """Largest observation seen."""
        with self._lock:
            return self._max_s

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (seconds), 0 when empty.

        Delegates to :func:`bucket_quantile` on a consistent snapshot of
        the bucket state, so live and merged-snapshot quantiles share
        one estimator.
        """
        with self._lock:
            counts = tuple(self._counts)
            count = self._count
            max_s = self._max_s
        return bucket_quantile(self._bounds, counts, count, max_s, q)

    def percentiles(self) -> dict[str, float]:
        """The p50/p95/p99 export (seconds) the serving reports print."""
        return {
            "p50_s": self.quantile(0.50),
            "p95_s": self.quantile(0.95),
            "p99_s": self.quantile(0.99),
        }

    def snapshot(self) -> "HistogramSnapshot":
        """A consistent, mergeable copy of the full bucket state."""
        with self._lock:
            return HistogramSnapshot(
                bounds=self._bounds,
                counts=tuple(self._counts),
                count=self._count,
                total_s=self._total_s,
                max_s=self._max_s,
            )


class MetricsRegistry:
    """A named registry of counters, gauges and latency histograms.

    Instruments are created on first access (``registry.counter("hits")``)
    and shared thereafter, so concurrent callers always increment the
    same underlying instrument.  :meth:`export` flattens everything into
    one ``{name: value}`` dict for rendering or assertions.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, LatencyHistogram] = {}

    def counter(self, name: str) -> Counter:
        """Get (creating on first use) the counter called ``name``."""
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter()
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """Get (creating on first use) the gauge called ``name``."""
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge()
            return self._gauges[name]

    def histogram(
        self, name: str, buckets_s: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S
    ) -> LatencyHistogram:
        """Get (creating on first use) the latency histogram ``name``."""
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = LatencyHistogram(buckets_s)
            return self._histograms[name]

    def export(self) -> dict[str, float]:
        """Flatten every instrument into one ``{metric_name: value}`` dict.

        Histograms export ``<name>.count``, ``<name>.total_s``,
        ``<name>.mean_s``, ``<name>.max_s`` and the three standard
        percentiles, so a single dict carries the whole service state.
        Equivalent to ``self.snapshot().export()`` — the snapshot path is
        what cross-process merging uses, and the two must never drift.
        """
        return self.snapshot().export()

    def snapshot(self) -> "MetricsSnapshot":
        """A consistent, mergeable, picklable copy of every instrument.

        This is the unit the sharded serving layer ships across process
        boundaries: each shard worker snapshots its registry, the router
        merges the snapshots associatively with :func:`merge_snapshots`,
        and the merged percentiles are exact (see :func:`bucket_quantile`).
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return MetricsSnapshot(
            counters={name: counter.value for name, counter in sorted(counters.items())},
            gauges={name: gauge.value for name, gauge in sorted(gauges.items())},
            histograms={
                name: histogram.snapshot()
                for name, histogram in sorted(histograms.items())
            },
        )


@dataclass(frozen=True)
class HistogramSnapshot:
    """The full, mergeable state of one fixed-bucket latency histogram.

    Unlike the flat percentile export (which is *not* associative —
    p95s cannot be averaged), the raw bucket counts merge exactly:
    summing per-shard counts elementwise yields the histogram a single
    process observing every request would hold, and quantiles computed
    from the merged buckets equal single-histogram quantiles by
    construction (both delegate to :func:`bucket_quantile`).
    """

    bounds: tuple[float, ...]
    counts: tuple[int, ...]  # len(bounds) + 1: the last entry is overflow
    count: int
    total_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        """Mean observation (0 when empty)."""
        return self.total_s / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (seconds) from the bucket state."""
        return bucket_quantile(self.bounds, self.counts, self.count, self.max_s, q)

    def percentiles(self) -> dict[str, float]:
        """The standard p50/p95/p99 export (seconds)."""
        return {
            "p50_s": self.quantile(0.50),
            "p95_s": self.quantile(0.95),
            "p99_s": self.quantile(0.99),
        }

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Elementwise-sum this snapshot with ``other`` (same buckets)."""
        require(
            self.bounds == other.bounds,
            "cannot merge histograms with different bucket bounds",
        )
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            count=self.count + other.count,
            total_s=self.total_s + other.total_s,
            max_s=max(self.max_s, other.max_s),
        )

    def to_jsonable(self) -> dict[str, Any]:
        """A plain-JSON rendering (for IPC and recovery reports)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total_s": self.total_s,
            "max_s": self.max_s,
        }

    @staticmethod
    def from_jsonable(data: Mapping[str, Any]) -> "HistogramSnapshot":
        """Rebuild a snapshot from :meth:`to_jsonable` output."""
        return HistogramSnapshot(
            bounds=tuple(float(b) for b in data["bounds"]),
            counts=tuple(int(c) for c in data["counts"]),
            count=int(data["count"]),
            total_s=float(data["total_s"]),
            max_s=float(data["max_s"]),
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """A point-in-time, mergeable copy of one registry's instruments.

    Counters and histogram buckets merge associatively (sums); gauges
    here are *extensive* quantities (queue depths, in-flight counts)
    whose cluster-wide value is the sum over shards, so they merge by
    summation too.  Anything non-additive (hit *rates*, breaker states)
    is deliberately excluded from snapshots and derived after merging.
    """

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramSnapshot] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """The associative merge of two snapshots."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = gauges.get(name, 0.0) + value
        histograms = dict(self.histograms)
        for name, snap in other.histograms.items():
            histograms[name] = (
                histograms[name].merge(snap) if name in histograms else snap
            )
        return MetricsSnapshot(
            counters=dict(sorted(counters.items())),
            gauges=dict(sorted(gauges.items())),
            histograms=dict(sorted(histograms.items())),
        )

    def export(self) -> dict[str, float]:
        """The flat ``{metric_name: value}`` dict (registry-export shape)."""
        out: dict[str, float] = {}
        for name, value in sorted(self.counters.items()):
            out[name] = value
        for name, value in sorted(self.gauges.items()):
            out[name] = value
        for name, histogram in sorted(self.histograms.items()):
            out[f"{name}.count"] = histogram.count
            out[f"{name}.total_s"] = histogram.total_s
            out[f"{name}.mean_s"] = histogram.mean_s
            out[f"{name}.max_s"] = histogram.max_s
            for key, value in histogram.percentiles().items():
                out[f"{name}.{key}"] = value
        return out

    def to_jsonable(self) -> dict[str, Any]:
        """A plain-JSON rendering (for IPC and recovery reports)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: snap.to_jsonable()
                for name, snap in sorted(self.histograms.items())
            },
        }

    @staticmethod
    def from_jsonable(data: Mapping[str, Any]) -> "MetricsSnapshot":
        """Rebuild a snapshot from :meth:`to_jsonable` output."""
        return MetricsSnapshot(
            counters={str(k): int(v) for k, v in data["counters"].items()},
            gauges={str(k): float(v) for k, v in data["gauges"].items()},
            histograms={
                str(k): HistogramSnapshot.from_jsonable(v)
                for k, v in data["histograms"].items()
            },
        )


def merge_snapshots(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Merge any number of registry snapshots into one (associatively).

    The identity element is the empty snapshot, so merging zero
    snapshots is well defined; merging N per-shard snapshots in any
    grouping yields the same result because counter addition, gauge
    addition, elementwise bucket sums and ``max`` are all associative
    and commutative.
    """
    merged = MetricsSnapshot()
    for snapshot in snapshots:
        merged = merged.merge(snapshot)
    return merged
