"""The online prediction-serving layer (the repo's "millions of users" seam).

Section 8.5 of the paper establishes that prediction *delay* decides
which method a resource manager can afford online: historical answers in
microseconds, the layered method in milliseconds-to-seconds per solve
(worse for capacity searches).  This subsystem turns any
:class:`~repro.prediction.interface.Predictor` into a concurrent online
service that changes that arithmetic:

* :mod:`repro.service.cache` — TTL+LRU memoization on a quantized
  operating-point grid, with explicit invalidation for recalibration;
* :mod:`repro.service.pool` — a worker pool with in-flight request
  coalescing (N concurrent identical LQN solves cost one solve);
* :mod:`repro.service.admission` — bounded admission, per-request
  deadlines and transient-error retries with exponential backoff;
* :mod:`repro.service.metrics` — counters/gauges/latency histograms
  with p50/p95/p99 export, subsuming ``PredictionTimer`` accounting;
* :mod:`repro.service.breaker` — a clock-injected circuit breaker with
  an EWMA health score, shielding the fallback path from a primary that
  is failing repeatedly (exercised by ``repro.faults`` chaos plans);
* :mod:`repro.service.service` — the :class:`PredictionService` facade
  composing all of the above behind the ``Predictor`` protocol, with
  graceful degradation to a registered fast fallback predictor;
* :mod:`repro.service.loadgen` — closed-loop load generation: a
  multi-threaded wall-clock generator and a deterministic virtual-time
  fleet driver scaling to millions of modelled users;
* :mod:`repro.service.shard` — sharded serving: N service stacks
  (inline or one per worker process) behind a consistent-hash router,
  with a cross-shard L2 cache, per-shard breaker-driven health/ejection
  and mergeable cluster metrics.  Imported on demand (``from
  repro.service.shard import ...``), not re-exported here, to keep the
  single-service import light.
"""

from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    PredictionTimeoutError,
    ServiceSaturatedError,
    call_with_retries,
)
from repro.service.breaker import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
)
from repro.service.cache import CacheKey, CacheStats, PredictionCache, quantize_key
from repro.service.loadgen import (
    CostModel,
    FleetConfig,
    FleetLoadGenerator,
    FleetReport,
    LoadGenConfig,
    LoadGenerator,
    LoadReport,
)
from repro.service.metrics import (
    Counter,
    Gauge,
    HistogramSnapshot,
    LatencyHistogram,
    MetricsRegistry,
    MetricsSnapshot,
    bucket_quantile,
    merge_snapshots,
)
from repro.service.pool import CoalescingPool, PoolStats
from repro.service.service import PredictionService, ServiceConfig

__all__ = [
    "PredictionService",
    "ServiceConfig",
    "PredictionCache",
    "CacheKey",
    "CacheStats",
    "quantize_key",
    "CoalescingPool",
    "PoolStats",
    "AdmissionConfig",
    "AdmissionController",
    "ServiceSaturatedError",
    "PredictionTimeoutError",
    "call_with_retries",
    "BreakerState",
    "BreakerConfig",
    "CircuitBreaker",
    "CircuitOpenError",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "HistogramSnapshot",
    "MetricsSnapshot",
    "merge_snapshots",
    "bucket_quantile",
    "LoadGenerator",
    "LoadGenConfig",
    "LoadReport",
    "CostModel",
    "FleetConfig",
    "FleetLoadGenerator",
    "FleetReport",
]
