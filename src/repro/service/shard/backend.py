"""Shard execution backends: where a routed request actually runs.

The router speaks one small protocol — ``request``/``ping``/
``snapshot``/``stop`` — and two implementations provide it:

* :class:`InlineShardBackend` (here): every shard is a full
  :class:`~repro.service.service.PredictionService` instance in *this*
  process.  This is the deterministic path: driven single-threaded on a
  :class:`~repro.util.clock.FakeClock` it is byte-reproducible, which
  is what the sharded chaos experiment and the CI determinism gate run,
  and it is also the fixture for the virtual-time serving benchmark.
* :class:`~repro.service.shard.worker.ProcessShardBackend`: one worker
  *process* per shard (the GIL-escape topology), same protocol over
  pipes.

Chaos integration: every inline request consults the per-shard fault
site ``service.shard.<id>`` before touching the shard's service, so a
:class:`~repro.faults.plan.FaultPlan` can kill or brown out exactly one
shard (an ERROR spec raising :class:`ShardDownError` over a fake-clock
time window) and the router's health board sees precisely the failures
the plan scheduled.
"""

from __future__ import annotations

import threading
from typing import Callable, Protocol, runtime_checkable

from repro.faults.injector import INJECTOR
from repro.service.metrics import MetricsSnapshot
from repro.service.service import PredictionService
from repro.util.errors import ReproError
from repro.util.validation import require

__all__ = [
    "ShardError",
    "ShardDownError",
    "ShardRemoteError",
    "OPERATIONS",
    "ShardBackend",
    "InlineShardBackend",
]


class ShardError(ReproError):
    """Base class of failures the router treats as *shard* failures.

    Anything else escaping a shard (a ``ValidationError`` for a bogus
    request, say) is the caller's problem and propagates; only
    ``ShardError`` subclasses feed the health board and trigger
    rerouting to ring successors.
    """


class ShardDownError(ShardError):
    """The shard is dead (killed worker, injected outage)."""


class ShardRemoteError(ShardError):
    """The shard answered, but with a failure of its own serving stack."""


#: The three Predictor-protocol operations a shard serves, mapped to the
#: PredictionService method that answers each.
OPERATIONS: dict[str, str] = {
    "mrt": "predict_mrt_ms",
    "throughput": "predict_throughput",
    "capacity": "max_clients",
}


@runtime_checkable
class ShardBackend(Protocol):
    """What the router needs from any shard execution substrate."""

    def shard_ids(self) -> tuple[str, ...]:
        """The fixed set of shards this backend hosts, sorted."""
        ...

    def request(
        self, shard_id: str, op: str, server: str, operand: float, buy_fraction: float
    ) -> tuple[float, str]:
        """Serve one operation on one shard; returns ``(value, outcome)``.

        ``outcome`` classifies how the shard answered (``"l1_hit"``,
        ``"l2_hit"``, ``"computed"``, or ``"remote"`` when the backend
        cannot see inside the shard).  Raises a :class:`ShardError`
        subclass when the *shard* failed.
        """
        ...

    def ping(self, shard_id: str) -> bool:
        """Heartbeat: True iff the shard is alive and answering."""
        ...

    def snapshot(self, shard_id: str) -> MetricsSnapshot:
        """The shard's mergeable metrics snapshot."""
        ...

    def stop(self) -> None:
        """Shut every shard down (idempotent)."""
        ...


def _classify(before: dict[str, int], after: dict[str, int]) -> str:
    """Classify one served request from cache-counter deltas.

    Exact when requests to one shard are serialized (the deterministic
    driver's regime); under concurrent wall-clock load the attribution
    is approximate and only used for reporting, never correctness.
    """
    if after["l1_hits"] > before["l1_hits"]:
        return "l1_hit"
    if after["l2_hits"] > before["l2_hits"]:
        return "l2_hit"
    return "computed"


class InlineShardBackend:
    """N full serving stacks in this process, one per shard.

    ``factory(shard_id)`` builds each shard's
    :class:`~repro.service.service.PredictionService` (the caller wires
    the shared L2 and clock into it); the backend owns their lifecycle.
    """

    def __init__(
        self,
        shard_ids: tuple[str, ...],
        factory: Callable[[str], PredictionService],
    ):
        require(len(shard_ids) > 0, "need at least one shard")
        require(len(set(shard_ids)) == len(shard_ids), "shard ids must be unique")
        self._ids = tuple(sorted(shard_ids))
        self._services: dict[str, PredictionService] = {
            shard: factory(shard) for shard in self._ids
        }
        self._lock = threading.Lock()
        self._down: set[str] = set()

    def shard_ids(self) -> tuple[str, ...]:
        """The hosted shards, sorted."""
        return self._ids

    def service(self, shard_id: str) -> PredictionService:
        """The named shard's serving stack (tests and reports peek here)."""
        return self._services[shard_id]

    # -- lifecycle / chaos hooks ----------------------------------------------

    def kill(self, shard_id: str) -> None:
        """Mark ``shard_id`` dead: requests and pings fail until revived."""
        with self._lock:
            self._down.add(shard_id)

    def revive(self, shard_id: str) -> None:
        """Bring a killed shard back (its caches survive the outage)."""
        with self._lock:
            self._down.discard(shard_id)

    def _check_up(self, shard_id: str) -> None:
        with self._lock:
            down = shard_id in self._down
        if down:
            raise ShardDownError(f"shard {shard_id!r} is down")

    # -- the backend protocol --------------------------------------------------

    def request(
        self, shard_id: str, op: str, server: str, operand: float, buy_fraction: float
    ) -> tuple[float, str]:
        """Serve one operation inline; returns ``(value, outcome)``."""
        require(op in OPERATIONS, f"unknown operation {op!r}")
        self._check_up(shard_id)
        # Per-shard chaos site: an armed ERROR spec here is an injected
        # outage/brownout of exactly this shard; consulted outside every
        # lock (the injector's session lock must never nest inside ours).
        if INJECTOR.armed:
            INJECTOR.fire(f"service.shard.{shard_id}")
        service = self._services[shard_id]
        before = self._cache_counters(service)
        if op == "capacity":
            value = float(service.max_clients(server, operand, buy_fraction=buy_fraction))
        elif op == "mrt":
            value = service.predict_mrt_ms(server, operand, buy_fraction=buy_fraction)
        else:
            value = service.predict_throughput(
                server, operand, buy_fraction=buy_fraction
            )
        return value, _classify(before, self._cache_counters(service))

    @staticmethod
    def _cache_counters(service: PredictionService) -> dict[str, int]:
        l2 = service.l2
        return {
            "l1_hits": service.cache.stats().hits,
            "l2_hits": l2.stats().hits if l2 is not None else 0,
        }

    def ping(self, shard_id: str) -> bool:
        """Heartbeat: False when killed, True otherwise."""
        with self._lock:
            return shard_id not in self._down

    def snapshot(self, shard_id: str) -> MetricsSnapshot:
        """The shard service's mergeable snapshot."""
        return self._services[shard_id].snapshot()

    def stop(self) -> None:
        """Shut every shard's worker pool down (idempotent)."""
        for service in self._services.values():
            service.shutdown()
