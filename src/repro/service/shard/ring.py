"""Consistent-hash routing of quantized prediction keys onto shards.

The shard layer must not destroy the cache locality the quantized
operating-point grid buys (`repro.service.cache`): the same grid cell
must keep landing on the same shard so its L1 entry stays hot, and
growing the fleet from N to N+1 shards must move only ~1/(N+1) of the
cells, not reshuffle all of them (a modulo hash would cold-start every
L1 on every resize).  A consistent-hash ring with virtual nodes gives
both properties:

* every shard owns ``vnodes`` pseudo-random arc segments of a 64-bit
  ring, so ownership is near-uniform (the property test bounds the
  chi-square statistic of the key distribution);
* a key routes to the owner of the first token clockwise from its hash,
  so adding/removing one shard only re-owns the arcs adjacent to that
  shard's tokens — the resharding-stability property test asserts the
  remapped fraction stays within ``1/N + epsilon``;
* an *ejected* shard (health says it is down) is skipped by walking
  further clockwise, which rehashes exactly its keys onto the surviving
  successors and nothing else.

Hashing uses :func:`hashlib.blake2b`, not Python's ``hash``: routing
must agree across worker processes and runs (``PYTHONHASHSEED``
randomizes ``str.__hash__`` per process, which would scatter every key
on restart).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Iterator

from repro.service.cache import CacheKey
from repro.util.errors import ReproError
from repro.util.validation import check_positive_int, require

__all__ = ["NoShardAvailableError", "ConsistentHashRing", "ring_key"]


class NoShardAvailableError(ReproError):
    """Every shard on the ring is ejected (or the ring is empty)."""


def _hash64(data: str) -> int:
    """A process-stable 64-bit hash of ``data`` (blake2b, big-endian)."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def ring_key(key: CacheKey) -> str:
    """The canonical routing string of one quantized cache key.

    Built from the *quantized* fields, so every request inside one cache
    grid cell routes identically — sharding preserves exactly the
    locality the L1 cache exploits.
    """
    return f"{key.server}\x1f{key.kind}\x1f{key.operand_q}\x1f{key.buy_q}"


class ConsistentHashRing:
    """A consistent-hash ring with virtual nodes over named shards.

    Not thread-safe by itself: the router mutates membership only under
    its own lock, and routing reads a token list that membership changes
    replace wholesale (so an in-progress route sees either the old or
    the new ring, never a half-built one).
    """

    def __init__(self, shards: Iterable[str] = (), *, vnodes: int = 64):
        check_positive_int(vnodes, "vnodes")
        self._vnodes = vnodes
        self._members: set[str] = set()
        # Sorted (token_hash, shard) pairs; the shard name tie-breaks
        # equal hashes deterministically.
        self._tokens: list[tuple[int, str]] = []
        for shard in shards:
            self.add(shard)

    @property
    def vnodes(self) -> int:
        """Virtual nodes per shard (fixed at construction)."""
        return self._vnodes

    def members(self) -> tuple[str, ...]:
        """The shards currently on the ring, sorted."""
        return tuple(sorted(self._members))

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, shard: str) -> bool:
        return shard in self._members

    def add(self, shard: str) -> None:
        """Place ``shard``'s virtual nodes on the ring (idempotent)."""
        require(bool(shard), "shard name must be non-empty")
        if shard in self._members:
            return
        self._members.add(shard)
        tokens = list(self._tokens)
        for i in range(self._vnodes):
            tokens.append((_hash64(f"{shard}\x1f#{i}"), shard))
        tokens.sort()
        self._tokens = tokens

    def remove(self, shard: str) -> None:
        """Remove ``shard``'s virtual nodes from the ring (idempotent)."""
        if shard not in self._members:
            return
        self._members.discard(shard)
        self._tokens = [(h, s) for h, s in self._tokens if s != shard]

    def shares(self) -> dict[str, float]:
        """Fraction of the 64-bit hash space each member owns.

        The exact stationary routing distribution for uniformly hashed
        keys: each token owns the arc that ends at it (keys hash into an
        arc and walk clockwise to its closing token).  The property
        tests chi-square routed key counts against these expectations
        and bound how far they drift from the ideal ``1/N`` (the drift
        shrinks as ``1/sqrt(vnodes)``); reports use them to explain
        per-shard load imbalance.
        """
        if not self._tokens:
            return {}
        space = float(2**64)
        out = {shard: 0.0 for shard in self._members}
        previous = self._tokens[-1][0] - 2**64  # wrap: arc into the first token
        for token_hash, shard in self._tokens:
            out[shard] += (token_hash - previous) / space
            previous = token_hash
        return out

    def iter_route(
        self, key: str, *, skip: frozenset[str] | set[str] = frozenset()
    ) -> Iterator[str]:
        """Yield the distinct owner candidates for ``key``, clockwise.

        The first yielded shard is the key's primary owner; later ones
        are the successors that inherit its keys when it is skipped
        (ejected).  Shards in ``skip`` are never yielded.
        """
        tokens = self._tokens
        if not tokens:
            return
        start = bisect.bisect_left(tokens, (_hash64(key), ""))
        seen: set[str] = set()
        for offset in range(len(tokens)):
            _, shard = tokens[(start + offset) % len(tokens)]
            if shard in seen or shard in skip:
                continue
            seen.add(shard)
            yield shard

    def route(
        self, key: str, *, skip: frozenset[str] | set[str] = frozenset()
    ) -> str:
        """The first live owner of ``key`` (clockwise from its hash)."""
        for shard in self.iter_route(key, skip=skip):
            return shard
        raise NoShardAvailableError(
            f"no shard available for key {key!r}: "
            f"{len(self._members)} member(s), {len(skip)} skipped"
        )

    def preference(
        self, key: str, n: int, *, skip: frozenset[str] | set[str] = frozenset()
    ) -> list[str]:
        """The first ``n`` distinct owner candidates for ``key``."""
        check_positive_int(n, "n")
        owners: list[str] = []
        for shard in self.iter_route(key, skip=skip):
            owners.append(shard)
            if len(owners) >= n:
                break
        return owners
