"""repro.service.shard — sharded multi-process prediction serving.

One :class:`~repro.service.service.PredictionService` saturates a
single interpreter; this package scales it sideways.  N shards — full
serving stacks (L1 cache → coalescing pool → admission → breaker),
inline or one per worker process — sit behind a
:class:`~repro.service.shard.router.ShardedPredictionService` that
consistent-hashes the *quantized* scenario key onto a virtual-node
ring, so cache locality survives sharding and resharding moves only
~1/N of the key space.  A cross-shard
:class:`~repro.service.shard.l2.SharedL2Cache` (TTL-coherent, no
invalidation protocol) catches rerouted and resharded keys; a
:class:`~repro.service.shard.health.HealthBoard` of per-shard circuit
breakers ejects sick shards from the ring and probes them back in; and
:func:`~repro.service.metrics.merge_snapshots` folds every shard's
metrics into one cluster snapshot with exact merged percentiles.

Quickstart (inline, deterministic)::

    from repro.service.shard import (
        InlineShardBackend, ShardedPredictionService,
    )
    from repro.service.shard.testing import build_stub_service

    backend = InlineShardBackend(("s0", "s1"), build_stub_service)
    with ShardedPredictionService(backend) as cluster:
        cluster.predict_mrt_ms("fruitstore_ibm", 60)

Swap :class:`~repro.service.shard.worker.ProcessShardBackend` in for
real per-shard processes; the router is identical.  See
``examples/sharded_service.py`` and the ``sharded_serving`` experiment.
"""

from repro.service.shard.backend import (
    OPERATIONS,
    InlineShardBackend,
    ShardBackend,
    ShardDownError,
    ShardError,
    ShardRemoteError,
)
from repro.service.shard.health import HealthBoard, HealthConfig
from repro.service.shard.l2 import L2Stats, SharedL2Cache
from repro.service.shard.ring import (
    ConsistentHashRing,
    NoShardAvailableError,
    ring_key,
)
from repro.service.shard.router import (
    ServeInfo,
    ShardClusterError,
    ShardConfig,
    ShardedPredictionService,
)
from repro.service.shard.worker import ProcessShardBackend, ShardSpec

__all__ = [
    "OPERATIONS",
    "ShardError",
    "ShardDownError",
    "ShardRemoteError",
    "ShardBackend",
    "InlineShardBackend",
    "ProcessShardBackend",
    "ShardSpec",
    "ConsistentHashRing",
    "NoShardAvailableError",
    "ring_key",
    "SharedL2Cache",
    "L2Stats",
    "HealthBoard",
    "HealthConfig",
    "ShardConfig",
    "ServeInfo",
    "ShardClusterError",
    "ShardedPredictionService",
]
