"""The multi-process shard backend: one worker process per shard.

This is the topology the ROADMAP's open item asks for — N full serving
stacks, each in its own interpreter (its own GIL), behind the
consistent-hash router.  The protocol is deliberately tiny and typed as
plain tuples over a :func:`multiprocessing.Pipe`:

========================  =================================================
parent sends              worker answers
========================  =================================================
``("request", op, ...)``  ``("ok", value, outcome)`` or
                          ``("error", exc_type_name, message)``
``("ping",)``             ``("pong",)``
``("snapshot",)``         ``("ok", MetricsSnapshot.to_jsonable())``
``("drain_trace",)``      ``("ok", [TraceEvent.to_dict(), ...])``
``("stop",)``             (exits)
========================  =================================================

Workers are built from a picklable :class:`ShardSpec` naming a factory
by dotted path (``"package.module:callable"``), because code objects
and closures do not cross ``spawn`` boundaries.  The cross-shard L2
lives in a :class:`multiprocessing.managers.SyncManager` dict shared by
every worker; each worker wraps the proxy in its own
:class:`~repro.service.shard.l2.SharedL2Cache` accessor (values are
shared, traffic counters stay local and are shipped inside snapshots).

Tracing: with ``ShardSpec(trace=True)`` each worker records its spans
into a :class:`~repro.trace.RingBufferSink`; the parent drains them and
re-emits each worker span into its own timeline as an instant carrying
the worker-side name/timestamp/duration and the shard id — one merged
timeline across processes, without a cross-process clock protocol
(worker timestamps are worker-epoch microseconds and are labelled so).
"""

from __future__ import annotations

import importlib
import multiprocessing
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.service.metrics import MetricsSnapshot
from repro.service.shard.backend import (
    OPERATIONS,
    InlineShardBackend,
    ShardDownError,
    ShardRemoteError,
    _classify,
)
from repro.service.shard.l2 import SharedL2Cache
from repro.trace import TRACER, RingBufferSink
from repro.util.validation import require

__all__ = ["ShardSpec", "resolve_factory", "ProcessShardBackend"]


@dataclass(frozen=True)
class ShardSpec:
    """A picklable recipe for building one shard's serving stack.

    ``factory`` is a ``"module.path:callable"`` reference resolved in
    the worker; it is called as ``factory(shard_id, **kwargs)`` and must
    return a :class:`~repro.service.service.PredictionService`.  The
    worker attaches the shared L2 afterwards, so factories stay L2
    agnostic.  ``l2_ttl_s``/``l2_max_entries`` parameterise the shared
    store; ``trace=True`` arms worker-side span recording.
    """

    factory: str
    kwargs: dict[str, Any] = field(default_factory=dict)
    l2_ttl_s: float | None = None
    l2_max_entries: int = 65_536
    trace: bool = False

    def __post_init__(self) -> None:
        """Validate the factory reference shape early (parent side)."""
        require(
            ":" in self.factory,
            "factory must be a 'module.path:callable' reference",
        )


def resolve_factory(reference: str):
    """Resolve a ``"module.path:callable"`` reference to the callable."""
    module_name, _, attr = reference.partition(":")
    module = importlib.import_module(module_name)
    factory = getattr(module, attr)
    require(callable(factory), f"{reference!r} does not name a callable")
    return factory


def _worker_main(
    spec: ShardSpec,
    shard_id: str,
    conn,
    l2_store,
    l2_lock,
) -> None:
    """The worker process body: build the stack, answer the protocol."""
    sink: RingBufferSink | None = None
    if spec.trace:
        sink = RingBufferSink()
        TRACER.enable(sink)
    service = resolve_factory(spec.factory)(shard_id, **spec.kwargs)
    if l2_store is not None:
        service.l2 = SharedL2Cache(
            ttl_s=spec.l2_ttl_s,
            max_entries=spec.l2_max_entries,
            store=l2_store,
            lock=l2_lock,
        )
    try:
        while True:
            message = conn.recv()
            verb = message[0]
            if verb == "stop":
                conn.send(("ok",))
                return
            if verb == "ping":
                conn.send(("pong",))
                continue
            if verb == "snapshot":
                conn.send(("ok", service.snapshot().to_jsonable()))
                continue
            if verb == "drain_trace":
                events = []
                if sink is not None:
                    events = [event.to_dict() for event in sink.events()]
                    sink.clear()
                conn.send(("ok", events))
                continue
            if verb == "request":
                _, op, server, operand, buy_fraction = message
                try:
                    before = InlineShardBackend._cache_counters(service)
                    method = getattr(service, OPERATIONS[op])
                    value = float(method(server, operand, buy_fraction=buy_fraction))
                    outcome = _classify(
                        before, InlineShardBackend._cache_counters(service)
                    )
                    conn.send(("ok", value, outcome))
                except Exception as error:  # ship, don't crash the worker
                    conn.send(("error", type(error).__name__, str(error)))
                continue
            conn.send(("error", "ProtocolError", f"unknown verb {verb!r}"))
    except (EOFError, KeyboardInterrupt):  # parent went away
        pass
    finally:
        service.shutdown()
        if sink is not None:
            TRACER.disable()


class ProcessShardBackend:
    """One worker process per shard, spoken to over pipes.

    Satisfies the same :class:`~repro.service.shard.backend.ShardBackend`
    protocol as the inline backend, so the router does not know or care
    that its shards are processes.  Per-shard connection locks serialize
    each pipe (requests to *different* shards proceed concurrently);
    a dead process raises :class:`ShardDownError` and a request that
    outlives ``request_timeout_s`` raises :class:`ShardRemoteError` —
    both feed the router's health board like any shard failure.
    """

    def __init__(
        self,
        shard_ids: tuple[str, ...],
        spec: ShardSpec,
        *,
        l2: bool = True,
        start_method: str | None = None,
        request_timeout_s: float = 60.0,
    ):
        require(len(shard_ids) > 0, "need at least one shard")
        require(len(set(shard_ids)) == len(shard_ids), "shard ids must be unique")
        require(request_timeout_s > 0.0, "request_timeout_s must be positive")
        self._ids = tuple(sorted(shard_ids))
        self._spec = spec
        self._timeout_s = request_timeout_s
        methods = multiprocessing.get_all_start_methods()
        chosen = start_method or ("fork" if "fork" in methods else "spawn")
        self._ctx = multiprocessing.get_context(chosen)
        self._manager = self._ctx.Manager() if l2 else None
        # The parent MUST hold these proxies for the backend's lifetime:
        # under the fork start method children inherit the parent's proxy
        # without incref'ing the manager-side referent, so dropping the
        # parent reference would let the manager delete the shared dict
        # out from under every worker.
        self._l2_store = self._manager.dict() if self._manager is not None else None
        self._l2_lock = self._manager.Lock() if self._manager is not None else None
        l2_store, l2_lock = self._l2_store, self._l2_lock
        self._conns: dict[str, Any] = {}
        self._procs: dict[str, Any] = {}
        self._locks: dict[str, threading.Lock] = {}
        for shard in self._ids:
            parent_conn, child_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_worker_main,
                args=(spec, shard, child_conn, l2_store, l2_lock),
                name=f"repro-shard-{shard}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._conns[shard] = parent_conn
            self._procs[shard] = process
            self._locks[shard] = threading.Lock()
        self._stopped = False

    def shard_ids(self) -> tuple[str, ...]:
        """The hosted shards, sorted."""
        return self._ids

    def _roundtrip(self, shard_id: str, message: tuple, timeout_s: float) -> tuple:
        """Send one message and await its reply (per-shard serialized)."""
        process = self._procs[shard_id]
        with self._locks[shard_id]:
            if not process.is_alive():
                raise ShardDownError(f"shard {shard_id!r}: worker process is dead")
            conn = self._conns[shard_id]
            try:
                conn.send(message)
                if not conn.poll(timeout_s):
                    raise ShardRemoteError(
                        f"shard {shard_id!r}: no reply within {timeout_s}s"
                    )
                return conn.recv()
            except (BrokenPipeError, EOFError, OSError) as error:
                raise ShardDownError(
                    f"shard {shard_id!r}: connection lost ({type(error).__name__})"
                ) from error

    def request(
        self, shard_id: str, op: str, server: str, operand: float, buy_fraction: float
    ) -> tuple[float, str]:
        """Serve one operation on the worker; returns ``(value, outcome)``."""
        require(op in OPERATIONS, f"unknown operation {op!r}")
        reply = self._roundtrip(
            shard_id, ("request", op, server, operand, buy_fraction), self._timeout_s
        )
        if reply[0] == "ok":
            return float(reply[1]), str(reply[2])
        raise ShardRemoteError(f"shard {shard_id!r}: {reply[1]}: {reply[2]}")

    def ping(self, shard_id: str) -> bool:
        """Heartbeat: a fast protocol round-trip (False on any failure)."""
        try:
            reply = self._roundtrip(shard_id, ("ping",), min(self._timeout_s, 5.0))
        except (ShardDownError, ShardRemoteError):
            return False
        return reply[0] == "pong"

    def snapshot(self, shard_id: str) -> MetricsSnapshot:
        """The worker's mergeable metrics snapshot, shipped as JSON."""
        reply = self._roundtrip(shard_id, ("snapshot",), self._timeout_s)
        if reply[0] != "ok":
            raise ShardRemoteError(f"shard {shard_id!r}: {reply[1]}: {reply[2]}")
        return MetricsSnapshot.from_jsonable(reply[1])

    def drain_trace_into_timeline(self, shard_id: str) -> int:
        """Pull the worker's recorded spans into this process's timeline.

        Each worker END event is re-emitted as a
        ``shard.worker_span`` instant tagged with the shard id, the
        worker-side span name, and the worker-epoch timestamp/duration.
        Returns how many events were merged.
        """
        reply = self._roundtrip(shard_id, ("drain_trace",), self._timeout_s)
        if reply[0] != "ok":
            raise ShardRemoteError(f"shard {shard_id!r}: {reply[1]}: {reply[2]}")
        merged = 0
        for raw in reply[1]:
            if raw.get("kind") != "end":
                continue
            TRACER.instant(
                "shard.worker_span",
                shard=shard_id,
                span_name=raw.get("name", ""),
                worker_ts_us=raw.get("ts_us", 0.0),
                dur_us=raw.get("dur_us", 0.0),
            )
            merged += 1
        return merged

    def kill(self, shard_id: str) -> None:
        """Hard-kill one worker (chaos: the process is simply gone)."""
        self._procs[shard_id].terminate()
        self._procs[shard_id].join(timeout=5.0)

    def stop(self) -> None:
        """Stop every worker (graceful, then forceful) and the manager."""
        if self._stopped:
            return
        self._stopped = True
        for shard in self._ids:
            process = self._procs[shard]
            if not process.is_alive():
                continue
            try:
                self._roundtrip(shard, ("stop",), 5.0)
            except (ShardDownError, ShardRemoteError):
                pass
        for shard in self._ids:
            process = self._procs[shard]
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        if self._manager is not None:
            self._manager.shutdown()

    def __enter__(self) -> "ProcessShardBackend":
        """Context-manager entry: the backend itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: stop the fleet."""
        self.stop()
