"""The cross-shard shared L2 prediction cache.

Sharding turns one big L1 into N private ones, which costs hit rate in
two places: a key whose shard was resharded away arrives at a shard
whose L1 has never seen it, and an expensive solve finished on shard A
is invisible to shard B even for the *same* grid cell (capacity
searches route probe keys across the whole ring).  The L2 is the shared
backstop for both: every computed value is published to one
cluster-wide store, and every L1 miss consults it before paying for a
solve.

Coherence is **TTL-based, with no invalidation protocol**: entries
carry the store timestamp and readers treat anything older than
``ttl_s`` as a miss, exactly matching
:class:`~repro.service.cache.PredictionCache` semantics (an entry aged
exactly ``ttl_s`` is still a hit; staleness between recalibrations is
bounded by the TTL, and :meth:`SharedL2Cache.invalidate` drops entries
eagerly cluster-wide when a model is refit).  There is deliberately no
cross-shard invalidation chatter — the DESIGN notes discuss why TTL
bounds are the right coherence contract for idempotent predictions.

The store itself is pluggable: a plain ``dict`` for the in-process
backend (guarded by a ``threading.Lock``) or a
``multiprocessing.Manager().dict()`` plus manager lock for the
multi-process backend.  Hit/miss accounting is kept *locally* per
accessor (each shard counts its own L2 traffic) so the shared store
carries values only, never contended counters.
"""

from __future__ import annotations

import threading
import time
from contextlib import AbstractContextManager
from dataclasses import dataclass
from typing import Any, Callable, MutableMapping

from repro.service.cache import CacheKey
from repro.util.validation import check_positive_int, require

__all__ = ["L2Stats", "SharedL2Cache"]


@dataclass
class L2Stats:
    """A point-in-time snapshot of one accessor's L2 traffic counters."""

    requests: int = 0
    hits: int = 0
    misses: int = 0
    expirations: int = 0
    puts: int = 0
    evictions: int = 0
    invalidated: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the L2 (0 when idle)."""
        return self.hits / self.requests if self.requests else 0.0


class SharedL2Cache:
    """A TTL cache over a shared (possibly cross-process) key/value store.

    * ``store`` maps :class:`~repro.service.cache.CacheKey` to
      ``(value, stored_at_s)`` tuples and may be shared by many
      accessors (threads or processes);
    * ``lock`` guards compound read-modify-write sequences on the store
      and must be shared by every accessor of the same store;
    * ``clock`` supplies ``stored_at`` timestamps and ages, injectable
      so TTL behaviour is exactly testable (and deterministic under the
      sharded chaos experiment's :class:`~repro.util.clock.FakeClock`).

    Capacity is bounded: on overflow the *oldest* entries (by store
    timestamp, key-repr tie-break) are evicted.  True cross-process LRU
    would require touching shared state on every read; oldest-first is
    deterministic, cheap, and close enough for a cache whose freshness
    contract is already TTL-based.
    """

    def __init__(
        self,
        *,
        ttl_s: float | None = None,
        max_entries: int = 65_536,
        store: MutableMapping[Any, tuple[Any, float]] | None = None,
        lock: AbstractContextManager | None = None,
        clock: Callable[[], float] | None = None,
    ):
        check_positive_int(max_entries, "max_entries")
        if ttl_s is not None:
            require(ttl_s > 0.0, "ttl_s must be positive (or None to disable)")
        self._ttl_s = ttl_s
        self._max_entries = max_entries
        self._store: MutableMapping[Any, tuple[Any, float]] = (
            store if store is not None else {}
        )
        self._lock: AbstractContextManager = (
            lock if lock is not None else threading.Lock()
        )
        self._clock = clock if clock is not None else time.monotonic
        # Local accounting only; never shared across accessors.
        self._stats_lock = threading.Lock()
        self._stats = L2Stats()

    @property
    def ttl_s(self) -> float | None:
        """The staleness bound (None = entries never expire)."""
        return self._ttl_s

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def get(self, key: CacheKey) -> tuple[bool, Any]:
        """Look up ``key``; returns ``(hit, value)`` and counts locally.

        A present-but-expired entry counts as a miss (and one
        expiration) and is removed so the store does not accumulate dead
        weight; ages are measured against this accessor's clock, which
        every accessor of one store must share for coherent TTLs.
        """
        now = self._clock()
        expired = False
        with self._lock:
            entry = self._store.get(key)
            if entry is not None:
                value, stored_at = entry
                if self._ttl_s is not None and now - stored_at > self._ttl_s:
                    # Delete exactly what we read; a concurrent refresh
                    # stored a different tuple and survives.
                    if self._store.get(key) == entry:
                        del self._store[key]
                    expired = True
                    entry = None
        with self._stats_lock:
            self._stats.requests += 1
            if entry is not None:
                self._stats.hits += 1
            else:
                self._stats.misses += 1
                if expired:
                    self._stats.expirations += 1
        if entry is not None:
            return True, entry[0]
        return False, None

    def put(self, key: CacheKey, value: Any) -> None:
        """Publish ``key`` cluster-wide, evicting oldest on overflow."""
        now = self._clock()
        evicted = 0
        with self._lock:
            self._store[key] = (value, now)
            overflow = len(self._store) - self._max_entries
            if overflow > 0:
                doomed = sorted(
                    self._store.items(), key=lambda kv: (kv[1][1], repr(kv[0]))
                )[:overflow]
                for doomed_key, _ in doomed:
                    del self._store[doomed_key]
                    evicted += 1
        with self._stats_lock:
            self._stats.puts += 1
            self._stats.evictions += evicted

    def invalidate(self, server: str | None = None) -> int:
        """Drop all entries (or only ``server``'s) cluster-wide.

        The eager path of the coherence story: after a recalibration the
        TTL bound is not enough, so the refitting site drops the stale
        entries for every shard at once.
        """
        with self._lock:
            if server is None:
                doomed = list(self._store.keys())
            else:
                doomed = [k for k in self._store.keys() if k.server == server]
            for key in doomed:
                del self._store[key]
        with self._stats_lock:
            self._stats.invalidated += len(doomed)
        return len(doomed)

    def stats(self) -> L2Stats:
        """A consistent snapshot of this accessor's traffic counters."""
        with self._stats_lock:
            return L2Stats(
                requests=self._stats.requests,
                hits=self._stats.hits,
                misses=self._stats.misses,
                expirations=self._stats.expirations,
                puts=self._stats.puts,
                evictions=self._stats.evictions,
                invalidated=self._stats.invalidated,
            )
