"""The shard router: one Predictor facade over N serving processes.

:class:`ShardedPredictionService` is to a fleet of
:class:`~repro.service.service.PredictionService` stacks what the
service is to a raw predictor — it satisfies the same
``Predictor`` protocol, so a resource manager, the load generators and
every experiment written against a single service run on the sharded
cluster unchanged.  Per request it:

1. quantizes the operating point with the *same* grid the shard caches
   use (:func:`~repro.service.cache.quantize_key`), so routing and
   memoization agree cell-for-cell;
2. consistent-hashes the quantized key onto the ring
   (:mod:`repro.service.shard.ring`), skipping ejected shards;
3. asks the health board to admit the attempt (per-shard circuit
   breaker semantics: an OPEN shard is skipped, a recovery probe is
   granted to exactly one request);
4. dispatches to the backend, settles the health outcome, and on a
   shard failure walks clockwise to the next live owner (**rerouting**:
   only the sick shard's keys move).

Cluster observability: :meth:`ShardedPredictionService.snapshot` merges
the router's own registry with every shard's snapshot via
:func:`~repro.service.metrics.merge_snapshots` (histogram buckets sum,
so cluster p50/p95/p99 are exact), and per-shard breaker transitions /
health scores come from the board for the chaos recovery report.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.prediction.interface import PredictionTimer
from repro.service.cache import quantize_key
from repro.service.metrics import MetricsRegistry, MetricsSnapshot, merge_snapshots
from repro.service.shard.backend import OPERATIONS, ShardBackend, ShardError
from repro.service.shard.health import HealthBoard, HealthConfig
from repro.service.shard.ring import ConsistentHashRing, NoShardAvailableError, ring_key
from repro.trace import TRACER
from repro.util.clock import SYSTEM_CLOCK, Clock
from repro.util.errors import ReproError
from repro.util.validation import check_positive_int, require

__all__ = ["ShardClusterError", "ShardConfig", "ServeInfo", "ShardedPredictionService"]


class ShardClusterError(ReproError):
    """Every candidate shard failed (or was ejected) for one request."""


@dataclass(frozen=True)
class ShardConfig:
    """Tunables of one :class:`ShardedPredictionService`.

    ``operand_step``/``buy_step`` must match the shard services' cache
    grid — the router quantizes with them *before* hashing so that
    routing preserves cache locality.  ``vnodes`` trades ring-balance
    quality against membership-change cost; ``max_attempts`` bounds how
    many ring successors one request may try before the cluster gives
    up (None = every live shard).
    """

    operand_step: float = 1.0
    buy_step: float = 0.01
    vnodes: int = 64
    max_attempts: int | None = None
    health: HealthConfig = field(default_factory=HealthConfig)

    def __post_init__(self) -> None:
        """Validate the configuration."""
        check_positive_int(self.vnodes, "vnodes")
        if self.max_attempts is not None:
            check_positive_int(self.max_attempts, "max_attempts")


@dataclass(frozen=True)
class ServeInfo:
    """How one request was served: the value plus its routing story."""

    value: float
    shard: str
    outcome: str  # "l1_hit" | "l2_hit" | "computed" | "remote"
    reroutes: int  # candidates tried before the serving shard answered


class ShardedPredictionService:
    """Serve the ``Predictor`` protocol over a consistent-hashed fleet.

    The router itself is thread-safe: the ring is mutated nowhere after
    construction (ejection is a *routing-time skip*, so a recovered
    shard keeps its token positions and gets its keys back), the health
    board and registry carry their own locks, and backend dispatch
    happens outside all of them.
    """

    def __init__(
        self,
        backend: ShardBackend,
        *,
        config: ShardConfig | None = None,
        clock: Clock = SYSTEM_CLOCK,
        name: str = "sharded_service",
    ):
        self.backend = backend
        self.config = config or ShardConfig()
        self._clock = clock
        self.name = name
        self.timer = PredictionTimer()
        self.ring = ConsistentHashRing(backend.shard_ids(), vnodes=self.config.vnodes)
        self.health = HealthBoard(
            backend.shard_ids(), self.config.health, clock=clock
        )
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self._per_shard_served: dict[str, int] = {s: 0 for s in backend.shard_ids()}

    # -- Predictor protocol ----------------------------------------------------

    def predict_mrt_ms(
        self, server: str, n_clients: float, *, buy_fraction: float = 0.0
    ) -> float:
        """Predicted mean response time (ms), served by the owning shard."""
        return self.serve_info("mrt", server, n_clients, buy_fraction).value

    def predict_throughput(
        self, server: str, n_clients: float, *, buy_fraction: float = 0.0
    ) -> float:
        """Predicted throughput (req/s), served by the owning shard."""
        return self.serve_info("throughput", server, n_clients, buy_fraction).value

    def max_clients(
        self, server: str, rt_goal_ms: float, *, buy_fraction: float = 0.0
    ) -> int:
        """Capacity under an SLA goal, served by the owning shard."""
        return int(self.serve_info("capacity", server, rt_goal_ms, buy_fraction).value)

    # -- the routed serving path ----------------------------------------------

    def serve_info(
        self, op: str, server: str, operand: float, buy_fraction: float = 0.0
    ) -> ServeInfo:
        """Route and serve one request, reporting how it was served.

        The load generators use the routing story (shard, outcome,
        reroutes) for per-shard accounting; plain Predictor-protocol
        callers go through the three methods above and never see it.
        """
        require(op in OPERATIONS, f"unknown operation {op!r}")
        start = self._clock.perf_s()
        self.metrics.counter("router.requests").inc()
        key = quantize_key(
            server,
            op,
            operand,
            buy_fraction,
            operand_step=self.config.operand_step,
            buy_step=self.config.buy_step,
        )
        rkey = ring_key(key)
        attempts = 0
        last_error: Exception | None = None
        limit = self.config.max_attempts or len(self.ring)
        try:
            with TRACER.span("shard.request", op=op, server=server) as span:
                for shard in self.ring.iter_route(rkey, skip=self.health.ejected()):
                    if attempts >= limit:
                        break
                    attempts += 1
                    if not self.health.admit(shard):
                        self.metrics.counter("router.skipped").inc()
                        continue
                    try:
                        value, outcome = self.backend.request(
                            shard, op, server, operand, buy_fraction
                        )
                    except ShardError as error:
                        self.health.record_failure(shard)
                        self.metrics.counter("router.shard_errors").inc()
                        self.metrics.counter(f"router.shard_errors.{shard}").inc()
                        TRACER.instant("shard.failure", shard=shard, op=op)
                        last_error = error
                        continue
                    self.health.record_success(shard)
                    reroutes = attempts - 1
                    if reroutes:
                        self.metrics.counter("router.rerouted").inc()
                    with self._lock:
                        self._per_shard_served[shard] += 1
                    span.set_attribute("shard", shard)
                    span.set_attribute("outcome", outcome)
                    return ServeInfo(
                        value=value, shard=shard, outcome=outcome, reroutes=reroutes
                    )
                self.metrics.counter("router.exhausted").inc()
                span.set_attribute("outcome", "exhausted")
                raise ShardClusterError(
                    f"{self.name}: no shard could serve {op} for {server!r} "
                    f"({attempts} attempt(s))"
                ) from last_error
        except NoShardAvailableError as error:
            self.metrics.counter("router.exhausted").inc()
            raise ShardClusterError(
                f"{self.name}: every shard is ejected"
            ) from error
        finally:
            elapsed = self._clock.perf_s() - start
            self.metrics.histogram("router.latency").observe(elapsed)
            self.timer.record(elapsed)

    # -- operations ------------------------------------------------------------

    def poll_health(self) -> dict[str, bool]:
        """Heartbeat every shard and feed the breakers (see the board)."""
        return self.health.poll(self.backend)

    def per_shard_served(self) -> dict[str, int]:
        """Requests each shard has answered (routing-balance view)."""
        with self._lock:
            return dict(sorted(self._per_shard_served.items()))

    def snapshot(self) -> MetricsSnapshot:
        """Router + all shards merged into one cluster snapshot.

        A dead shard's snapshot is skipped (its worker cannot answer);
        what it served before dying is still visible in the router-side
        counters, and its absence is explicit in :meth:`health_report`.
        """
        snapshots = [self.metrics.snapshot()]
        for shard in self.backend.shard_ids():
            try:
                snapshots.append(self.backend.snapshot(shard))
            except Exception:
                self.metrics.counter("router.snapshot_failures").inc()
        return merge_snapshots(snapshots)

    def export_metrics(self) -> dict[str, float]:
        """The flat cluster-wide metrics dict (merged-snapshot export).

        Derived, non-additive values (cluster cache hit rate) are
        computed here from merged counters — never merged directly.
        """
        out = self.snapshot().export()
        requests = out.get("cache.requests", 0.0)
        if requests:
            out["cache.hit_rate"] = out.get("cache.hits", 0.0) / requests
        l2_requests = out.get("l2.requests", 0.0)
        if l2_requests:
            out["l2.hit_rate"] = out.get("l2.hits", 0.0) / l2_requests
        return out

    def health_report(self) -> dict[str, Any]:
        """Per-shard health states plus the current ejection set."""
        return {
            "shards": self.health.snapshot(),
            "ejected": sorted(self.health.ejected()),
            "served": self.per_shard_served(),
        }

    def shutdown(self) -> None:
        """Stop the backend's shards (idempotent)."""
        self.backend.stop()

    def __enter__(self) -> "ShardedPredictionService":
        """Context-manager entry: the router itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: shut the fleet down."""
        self.shutdown()
