"""Per-shard health: heartbeats + error EWMA feeding circuit breakers.

A shard can fail two ways the router must distinguish from a slow
answer: its requests error (process died, injected brownout), or it
stops answering heartbeats entirely.  Both feed the *existing*
:class:`~repro.service.breaker.CircuitBreaker` — one per shard — so
shard ejection inherits the breaker's whole state machine for free:

* ``failure_threshold`` consecutive request/heartbeat failures open the
  shard's breaker, which **ejects it from the ring** (the router skips
  ejected shards, so its keys rehash clockwise onto the survivors);
* after ``recovery_time_s`` the breaker admits a single probe request —
  the router sends exactly that request to the sick shard, and on
  success the breaker re-closes and the shard **rejoins the ring** with
  its old token positions (its keys come straight back, L1 intact);
* the breaker's EWMA health score is the per-shard leading indicator
  the merged cluster report publishes.

Everything is clock-injected, so the chaos experiment drives ejection
and recovery on a shared :class:`~repro.util.clock.FakeClock` and two
runs produce byte-identical transition logs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterable

from repro.service.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.util.clock import SYSTEM_CLOCK, Clock
from repro.util.validation import require

__all__ = ["HealthConfig", "HealthBoard"]


@dataclass(frozen=True)
class HealthConfig:
    """Tunables of the per-shard health policy.

    ``breaker`` parameterises each shard's circuit breaker (ejection
    threshold, recovery probe timing); ``heartbeat_timeout_s`` is the
    maximum heartbeat age before a shard is *presumed* dead even without
    request failures (None disables the staleness check, which is right
    for in-process backends whose requests fail fast anyway).
    """

    breaker: BreakerConfig = BreakerConfig(
        failure_threshold=3, recovery_time_s=5.0, half_open_probes=1
    )
    heartbeat_timeout_s: float | None = None

    def __post_init__(self) -> None:
        """Validate the policy."""
        if self.heartbeat_timeout_s is not None:
            require(
                self.heartbeat_timeout_s > 0.0,
                "heartbeat_timeout_s must be positive or None",
            )


class HealthBoard:
    """Health accounting for a fixed set of shards.

    Thread-safe: the board's own lock guards only the heartbeat table;
    each shard's breaker carries its own lock, and the two are never
    held together (REPRO-DEADLOCK001 discipline).
    """

    def __init__(
        self,
        shard_ids: Iterable[str],
        config: HealthConfig | None = None,
        *,
        clock: Clock = SYSTEM_CLOCK,
    ):
        self.config = config if config is not None else HealthConfig()
        self._clock = clock
        self._breakers: dict[str, CircuitBreaker] = {
            shard: CircuitBreaker(self.config.breaker, clock=clock)
            for shard in shard_ids
        }
        require(len(self._breakers) > 0, "a health board needs at least one shard")
        self._lock = threading.Lock()
        now = clock.monotonic_s()
        self._last_beat_s: dict[str, float] = {s: now for s in self._breakers}

    def shard_ids(self) -> tuple[str, ...]:
        """The shards this board tracks, sorted."""
        return tuple(sorted(self._breakers))

    def breaker(self, shard: str) -> CircuitBreaker:
        """The named shard's circuit breaker (for transition logs)."""
        return self._breakers[shard]

    # -- the admit/record protocol (mirrors CircuitBreaker's) -----------------

    def admit(self, shard: str) -> bool:
        """May the router send a request to ``shard`` right now?

        Delegates to the shard's breaker: CLOSED always admits, OPEN
        admits nothing until the recovery window, then exactly the
        configured probe budget.  An admitted call MUST be settled with
        :meth:`record_success` / :meth:`record_failure`.
        """
        if self._stale(shard):
            # A stale shard is treated as failing even before a request
            # errors; feeding the breaker converts staleness into the
            # same OPEN/probe/recovery cycle as request failures.
            self._breakers[shard].record_failure()
        return self._breakers[shard].allow()

    def record_success(self, shard: str) -> None:
        """Settle one admitted request as a success (also a heartbeat)."""
        self.beat(shard)
        self._breakers[shard].record_success()

    def record_failure(self, shard: str) -> None:
        """Settle one admitted request as a failure."""
        self._breakers[shard].record_failure()

    # -- heartbeats ------------------------------------------------------------

    def beat(self, shard: str) -> None:
        """Record a heartbeat from ``shard`` at the board clock's now."""
        now = self._clock.monotonic_s()
        with self._lock:
            self._last_beat_s[shard] = now

    def heartbeat_age_s(self, shard: str) -> float:
        """Seconds since ``shard`` last heartbeat (0 at construction)."""
        now = self._clock.monotonic_s()
        with self._lock:
            return now - self._last_beat_s[shard]

    def _stale(self, shard: str) -> bool:
        timeout = self.config.heartbeat_timeout_s
        return timeout is not None and self.heartbeat_age_s(shard) > timeout

    def poll(self, backend: Any) -> dict[str, bool]:
        """Ping every shard through ``backend`` and feed the breakers.

        Returns ``{shard: ping_ok}``.  A successful ping is a heartbeat
        (not a breaker success — pings must not mask request failures);
        a failed ping is recorded as a breaker failure, so a shard that
        dies silently between requests still gets ejected after
        ``failure_threshold`` polls.
        """
        results: dict[str, bool] = {}
        for shard in self.shard_ids():
            try:
                ok = bool(backend.ping(shard))
            except Exception:
                ok = False
            if ok:
                self.beat(shard)
            else:
                self._breakers[shard].record_failure()
            results[shard] = ok
        return results

    # -- cluster views ---------------------------------------------------------

    def ejected(self) -> frozenset[str]:
        """Shards currently off the ring (breaker OPEN or heartbeat stale).

        A shard whose breaker is due a recovery probe is *not* listed —
        the router must route its next owned request to it so
        :meth:`admit` can grant the probe; listing it here would starve
        recovery forever.
        """
        out = set()
        for shard, breaker in self._breakers.items():
            if breaker.state is BreakerState.OPEN and not breaker.recovery_due:
                out.add(shard)
            elif self._stale(shard):
                out.add(shard)
        return frozenset(out)

    def snapshot(self) -> dict[str, dict[str, float | str]]:
        """Per-shard ``{state, health, heartbeat_age_s}`` for reports."""
        return {
            shard: {
                "state": breaker.state.value,
                "health": breaker.health_score,
                "heartbeat_age_s": self.heartbeat_age_s(shard),
            }
            for shard, breaker in sorted(self._breakers.items())
        }
