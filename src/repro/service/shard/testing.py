"""Importable shard-stack factories for tests, examples and workers.

:class:`ProcessShardBackend` workers rebuild their serving stack from a
dotted-path factory reference, so the factory must live in an importable
module — closures defined inside a test function cannot cross a process
boundary.  This module is that home: a deterministic, dependency-free
stub predictor plus the canonical ``build_stub_service`` factory the
process smoke tests, the chaos experiment and the examples all share.

The stub's answers are pure functions of the request (plus an optional
fixed per-call delay for wall-clock demos), so any two shards — in any
process — agree on every value, which is what lets the double-run CI
gate byte-diff cluster reports.
"""

from __future__ import annotations

import time

from repro.prediction.interface import PredictionTimer
from repro.service.service import PredictionService, ServiceConfig

__all__ = ["DeterministicStubPredictor", "build_stub_service"]


class DeterministicStubPredictor:
    """A picklable, deterministic stand-in for a real prediction method.

    Answers are smooth, server-dependent functions of the operating
    point: distinct servers and distinct (quantized) operands give
    distinct values, so cache-correctness bugs show up as wrong numbers
    rather than silent agreement.  ``delay_s`` adds a fixed sleep per
    computed answer (never per cache hit) for wall-clock throughput
    demos; leave it 0.0 in deterministic tests.
    """

    def __init__(self, *, delay_s: float = 0.0, name: str = "stub"):
        self.name = name
        self.timer = PredictionTimer()
        self.delay_s = delay_s

    def _work(self) -> None:
        if self.delay_s > 0.0:
            time.sleep(self.delay_s)

    @staticmethod
    def _server_bias(server: str) -> float:
        # Stable across processes and PYTHONHASHSEED values.
        return float(sum(server.encode("utf-8")) % 97)

    def predict_mrt_ms(
        self, server: str, n_clients: float, *, buy_fraction: float = 0.0
    ) -> float:
        """Deterministic mean response time (ms) for the operating point."""
        self._work()
        return 100.0 + self._server_bias(server) + float(n_clients) + 1000.0 * buy_fraction

    def predict_throughput(
        self, server: str, n_clients: float, *, buy_fraction: float = 0.0
    ) -> float:
        """Deterministic throughput (req/s) for the operating point."""
        self._work()
        return (float(n_clients) + self._server_bias(server)) * 0.14 * (1.0 - buy_fraction)

    def max_clients(
        self, server: str, rt_goal_ms: float, *, buy_fraction: float = 0.0
    ) -> int:
        """Deterministic capacity under an SLA goal."""
        self._work()
        return max(
            1, int(rt_goal_ms - 100.0 - self._server_bias(server) - 1000.0 * buy_fraction)
        )


def build_stub_service(
    shard_id: str,
    *,
    delay_s: float = 0.0,
    cache_entries: int = 4096,
    cache_ttl_s: float | None = None,
    max_workers: int = 2,
) -> PredictionService:
    """Build one shard's full serving stack around the stub predictor.

    This is the factory the process backend references as
    ``"repro.service.shard.testing:build_stub_service"``; the inline
    backend can pass it directly.  The shard id lands in the service
    name so merged traces and reports stay attributable.
    """
    return PredictionService(
        DeterministicStubPredictor(delay_s=delay_s, name=f"stub[{shard_id}]"),
        config=ServiceConfig(
            max_workers=max_workers,
            cache_entries=cache_entries,
            cache_ttl_s=cache_ttl_s,
        ),
        name=f"shard:{shard_id}",
    )
