"""A closed-loop, multi-threaded load generator for the serving layer.

The paper measured its testbed with JMeter driving closed client
populations; this is the analogue for the prediction service itself — N
generator threads each issue requests back-to-back (optionally with a
think time), drawing operating points from seeded per-thread random
streams so runs are reproducible and threads are decorrelated
(:mod:`repro.util.rng`'s common-random-numbers discipline).

The generator measures aggregate throughput and collects per-request
latencies into the service's own metrics registry, so one run yields
exactly the numbers the serving benchmark reports: requests/s at 1, 4,
16 threads, hit rates, p50/p95/p99 and degradation counts.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.service.service import PredictionService
from repro.util.clock import SYSTEM_CLOCK, Clock
from repro.util.rng import spawn_rng
from repro.util.validation import check_positive_int, require

__all__ = ["LoadGenConfig", "LoadReport", "LoadGenerator"]


@dataclass(frozen=True)
class LoadGenConfig:
    """Shape of one closed-loop load-generation run."""

    threads: int = 4
    requests_per_thread: int = 100
    servers: tuple[str, ...] = ("AppServS",)
    client_range: tuple[int, int] = (100, 1100)
    buy_fractions: tuple[float, ...] = (0.0,)
    # Mix of operations issued, as (operation, weight) pairs over
    # "mrt" / "throughput" / "capacity".
    operation_weights: tuple[tuple[str, float], ...] = (("mrt", 0.8), ("throughput", 0.2))
    capacity_goal_ms: float = 500.0
    think_time_s: float = 0.0
    seed: int = 2004

    def __post_init__(self) -> None:
        """Validate the run shape."""
        check_positive_int(self.threads, "threads")
        check_positive_int(self.requests_per_thread, "requests_per_thread")
        require(len(self.servers) > 0, "servers must be non-empty")
        require(
            self.client_range[0] >= 1 and self.client_range[1] >= self.client_range[0],
            "client_range must be a non-empty range of positive counts",
        )
        require(len(self.operation_weights) > 0, "operation_weights must be non-empty")
        known = {"mrt", "throughput", "capacity"}
        require(
            all(op in known for op, _ in self.operation_weights),
            f"operations must be among {sorted(known)}",
        )
        require(
            all(w >= 0 for _, w in self.operation_weights)
            and sum(w for _, w in self.operation_weights) > 0,
            "operation weights must be non-negative and not all zero",
        )
        require(self.think_time_s >= 0.0, "think_time_s must be >= 0")


@dataclass
class LoadReport:
    """What one load-generation run measured."""

    requests: int
    errors: int
    elapsed_s: float
    throughput_rps: float
    per_thread_requests: list[int] = field(default_factory=list)
    metrics: dict[str, float] = field(default_factory=dict)


class LoadGenerator:
    """Drive a :class:`~repro.service.service.PredictionService` under load."""

    def __init__(
        self,
        service: PredictionService,
        config: LoadGenConfig | None = None,
        *,
        clock: Clock = SYSTEM_CLOCK,
        on_request: Callable[[int, bool], None] | None = None,
    ):
        # on_request(completed_count, ok) fires after every request on
        # the issuing thread.  The chaos experiment uses it (with
        # threads=1) to advance a FakeClock per request, giving fault
        # time windows and breaker recovery a deterministic timebase.
        self.service = service
        self.config = config or LoadGenConfig()
        self._clock = clock
        self._on_request = on_request
        total = sum(w for _, w in self.config.operation_weights)
        self._ops = [op for op, _ in self.config.operation_weights]
        self._probs = [w / total for _, w in self.config.operation_weights]

    def _one_request(self, rng) -> None:
        """Issue one randomly drawn request against the service."""
        config = self.config
        server = config.servers[int(rng.integers(0, len(config.servers)))]
        lo, hi = config.client_range
        n_clients = int(rng.integers(lo, hi + 1))
        buy = config.buy_fractions[int(rng.integers(0, len(config.buy_fractions)))]
        op = self._ops[int(rng.choice(len(self._ops), p=self._probs))]
        if op == "mrt":
            self.service.predict_mrt_ms(server, n_clients, buy_fraction=buy)
        elif op == "throughput":
            self.service.predict_throughput(server, n_clients, buy_fraction=buy)
        else:
            self.service.max_clients(server, config.capacity_goal_ms, buy_fraction=buy)

    def _worker(
        self, index: int, barrier: threading.Barrier, done: list[int], errors: list[int]
    ) -> None:
        """One generator thread's closed loop."""
        rng = spawn_rng(self.config.seed, f"loadgen:{index}")
        barrier.wait()
        for _ in range(self.config.requests_per_thread):
            try:
                self._one_request(rng)
                done[index] += 1
                ok = True
            except Exception:
                errors[index] += 1
                ok = False
            if self._on_request is not None:
                self._on_request(done[index] + errors[index], ok)
            if self.config.think_time_s > 0.0:
                time.sleep(self.config.think_time_s)

    def run(self) -> LoadReport:
        """Run the closed loop on every thread and report what happened.

        All threads start together (barrier) so the measured wall-clock
        window is genuinely concurrent; the report's throughput is total
        completed requests over that window.
        """
        config = self.config
        done = [0] * config.threads
        errors = [0] * config.threads
        barrier = threading.Barrier(config.threads + 1)
        threads = [
            threading.Thread(
                target=self._worker,
                args=(i, barrier, done, errors),
                name=f"repro-loadgen-{i}",
                daemon=True,
            )
            for i in range(config.threads)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        start = self._clock.perf_s()
        for thread in threads:
            thread.join()
        elapsed = self._clock.perf_s() - start
        total = sum(done)
        return LoadReport(
            requests=total,
            errors=sum(errors),
            elapsed_s=elapsed,
            throughput_rps=total / elapsed if elapsed > 0 else 0.0,
            per_thread_requests=list(done),
            metrics=self.service.export_metrics(),
        )
