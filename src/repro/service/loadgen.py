"""Closed-loop load generation for the serving layer.

The paper measured its testbed with JMeter driving closed client
populations; this module is the analogue for the prediction service
itself, in two regimes:

* :class:`LoadGenerator` — N generator *threads* each issue requests
  back-to-back (optionally with a think time) against anything serving
  the ``Predictor`` protocol (a single service or a sharded cluster),
  drawing operating points from seeded per-thread random streams so
  runs are reproducible and threads are decorrelated
  (:mod:`repro.util.rng`'s common-random-numbers discipline).  It
  measures real wall-clock throughput, so its numbers are only as
  parallel as the machine running it.
* :class:`FleetLoadGenerator` — a **deterministic virtual-time fleet
  driver** modelling closed client populations far beyond what one
  machine can thread (10⁶ users is a config value, not a thread
  count).  Every request executes *for real* through the target (real
  caches, routing, health), but time is charged from an explicit
  :class:`CostModel` per routing outcome, and the elapsed virtual time
  of the run is the binding bottleneck: the router's busy time, the
  busiest shard's busy time, or the closed-loop think-time bound,
  whichever is largest.  Two runs with one seed produce byte-identical
  reports — this is the regime the serving benchmark and its CI
  determinism gate run (see DESIGN.md: "Why a virtual-time serving
  benchmark").
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.service.metrics import LatencyHistogram
from repro.util.clock import SYSTEM_CLOCK, Clock
from repro.util.rng import spawn_rng
from repro.util.validation import check_positive_int, require

__all__ = [
    "LoadGenConfig",
    "LoadReport",
    "LoadGenerator",
    "CostModel",
    "FleetConfig",
    "FleetReport",
    "FleetLoadGenerator",
]


@dataclass(frozen=True)
class LoadGenConfig:
    """Shape of one closed-loop load-generation run."""

    threads: int = 4
    requests_per_thread: int = 100
    servers: tuple[str, ...] = ("AppServS",)
    client_range: tuple[int, int] = (100, 1100)
    buy_fractions: tuple[float, ...] = (0.0,)
    # Mix of operations issued, as (operation, weight) pairs over
    # "mrt" / "throughput" / "capacity".
    operation_weights: tuple[tuple[str, float], ...] = (("mrt", 0.8), ("throughput", 0.2))
    capacity_goal_ms: float = 500.0
    think_time_s: float = 0.0
    seed: int = 2004

    def __post_init__(self) -> None:
        """Validate the run shape."""
        check_positive_int(self.threads, "threads")
        check_positive_int(self.requests_per_thread, "requests_per_thread")
        require(len(self.servers) > 0, "servers must be non-empty")
        require(
            self.client_range[0] >= 1 and self.client_range[1] >= self.client_range[0],
            "client_range must be a non-empty range of positive counts",
        )
        require(len(self.operation_weights) > 0, "operation_weights must be non-empty")
        known = {"mrt", "throughput", "capacity"}
        require(
            all(op in known for op, _ in self.operation_weights),
            f"operations must be among {sorted(known)}",
        )
        require(
            all(w >= 0 for _, w in self.operation_weights)
            and sum(w for _, w in self.operation_weights) > 0,
            "operation weights must be non-negative and not all zero",
        )
        require(self.think_time_s >= 0.0, "think_time_s must be >= 0")


@dataclass
class LoadReport:
    """What one load-generation run measured."""

    requests: int
    errors: int
    elapsed_s: float
    throughput_rps: float
    per_thread_requests: list[int] = field(default_factory=list)
    metrics: dict[str, float] = field(default_factory=dict)


def _draw_request(config, rng, ops: list[str], probs: list[float]):
    """Draw one ``(op, server, operand, buy_fraction)`` from the config.

    Shared by both generator regimes so a wall-clock run and a
    virtual-time run with the same seed issue the *same* request
    sequence (per stream) — the common-random-numbers discipline.
    """
    server = config.servers[int(rng.integers(0, len(config.servers)))]
    lo, hi = config.client_range
    n_clients = int(rng.integers(lo, hi + 1))
    buy = config.buy_fractions[int(rng.integers(0, len(config.buy_fractions)))]
    op = ops[int(rng.choice(len(ops), p=probs))]
    operand = config.capacity_goal_ms if op == "capacity" else float(n_clients)
    return op, server, operand, buy


class LoadGenerator:
    """Drive any ``Predictor``-protocol target under wall-clock load.

    The target needs the three prediction methods plus
    ``export_metrics()`` — a :class:`~repro.service.service.PredictionService`
    and a :class:`~repro.service.shard.router.ShardedPredictionService`
    both qualify, so the same generator benchmarks one stack or a
    sharded cluster.
    """

    def __init__(
        self,
        service: Any,
        config: LoadGenConfig | None = None,
        *,
        clock: Clock = SYSTEM_CLOCK,
        on_request: Callable[[int, bool], None] | None = None,
    ):
        # on_request(completed_count, ok) fires after every request on
        # the issuing thread.  The chaos experiment uses it (with
        # threads=1) to advance a FakeClock per request, giving fault
        # time windows and breaker recovery a deterministic timebase.
        self.service = service
        self.config = config or LoadGenConfig()
        self._clock = clock
        self._on_request = on_request
        total = sum(w for _, w in self.config.operation_weights)
        self._ops = [op for op, _ in self.config.operation_weights]
        self._probs = [w / total for _, w in self.config.operation_weights]

    def _one_request(self, rng) -> None:
        """Issue one randomly drawn request against the service."""
        op, server, operand, buy = _draw_request(
            self.config, rng, self._ops, self._probs
        )
        if op == "mrt":
            self.service.predict_mrt_ms(server, operand, buy_fraction=buy)
        elif op == "throughput":
            self.service.predict_throughput(server, operand, buy_fraction=buy)
        else:
            self.service.max_clients(server, operand, buy_fraction=buy)

    def _worker(
        self, index: int, barrier: threading.Barrier, done: list[int], errors: list[int]
    ) -> None:
        """One generator thread's closed loop."""
        rng = spawn_rng(self.config.seed, f"loadgen:{index}")
        barrier.wait()
        for _ in range(self.config.requests_per_thread):
            try:
                self._one_request(rng)
                done[index] += 1
                ok = True
            except Exception:
                errors[index] += 1
                ok = False
            if self._on_request is not None:
                self._on_request(done[index] + errors[index], ok)
            if self.config.think_time_s > 0.0:
                time.sleep(self.config.think_time_s)

    def run(self) -> LoadReport:
        """Run the closed loop on every thread and report what happened.

        All threads start together (barrier) so the measured wall-clock
        window is genuinely concurrent; the report's throughput is total
        completed requests over that window.
        """
        config = self.config
        done = [0] * config.threads
        errors = [0] * config.threads
        barrier = threading.Barrier(config.threads + 1)
        threads = [
            threading.Thread(
                target=self._worker,
                args=(i, barrier, done, errors),
                name=f"repro-loadgen-{i}",
                daemon=True,
            )
            for i in range(config.threads)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        start = self._clock.perf_s()
        for thread in threads:
            thread.join()
        elapsed = self._clock.perf_s() - start
        total = sum(done)
        return LoadReport(
            requests=total,
            errors=sum(errors),
            elapsed_s=elapsed,
            throughput_rps=total / elapsed if elapsed > 0 else 0.0,
            per_thread_requests=list(done),
            metrics=self.service.export_metrics(),
        )


# ---------------------------------------------------------------------------
# The deterministic virtual-time fleet driver
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CostModel:
    """Virtual time charged per routing outcome, in explicit units.

    These are *model parameters*, not measurements: they encode the
    relative costs the serving design is about (a routed L1 hit is tens
    of µs, an L2 consult adds IPC-scale cost, a miss pays a full
    LQN-solve-scale compute) so that sharding arithmetic — how
    throughput scales when compute parallelizes but routing does not —
    is deterministic and machine-independent.  The benchmark publishes
    the model alongside every number it produces.
    """

    route_us: float = 3.0  # router hash + ring lookup + health check
    reroute_us: float = 8.0  # each failed candidate before the server
    l1_hit_us: float = 12.0  # answered from the shard's own cache
    l2_hit_us: float = 40.0  # answered from the shared store (IPC-ish)
    compute_ms: float = 25.0  # full solve on a cache miss
    error_us: float = 20.0  # a request that exhausted every shard

    def __post_init__(self) -> None:
        """Validate the cost model."""
        for name in ("route_us", "reroute_us", "l1_hit_us", "l2_hit_us", "error_us"):
            require(getattr(self, name) >= 0.0, f"{name} must be >= 0")
        require(self.compute_ms >= 0.0, "compute_ms must be >= 0")

    def request_cost_s(self, outcome: str, reroutes: int) -> tuple[float, float]:
        """``(router_s, shard_s)`` virtual cost of one served request."""
        router_s = (self.route_us + reroutes * self.reroute_us) * 1e-6
        if outcome == "l1_hit":
            shard_s = self.l1_hit_us * 1e-6
        elif outcome == "l2_hit":
            shard_s = self.l2_hit_us * 1e-6
        else:  # "computed" and the process backend's opaque "remote"
            shard_s = self.compute_ms * 1e-3
        return router_s, shard_s

    def to_jsonable(self) -> dict[str, float]:
        """The model as a plain dict for benchmark metadata."""
        return {
            "route_us": self.route_us,
            "reroute_us": self.reroute_us,
            "l1_hit_us": self.l1_hit_us,
            "l2_hit_us": self.l2_hit_us,
            "compute_ms": self.compute_ms,
            "error_us": self.error_us,
        }


@dataclass(frozen=True)
class FleetConfig:
    """Shape of one virtual-time fleet run.

    ``users`` is the modelled closed population (millions are fine —
    it is arithmetic, not threads); ``requests`` is how many requests
    the run actually issues through the target.  The same drawing
    fields as :class:`LoadGenConfig` shape the request mix.
    """

    users: int = 1_000_000
    requests: int = 10_000
    think_time_s: float = 7.0  # the paper's testbed used think times of seconds
    servers: tuple[str, ...] = ("AppServS",)
    client_range: tuple[int, int] = (100, 1100)
    buy_fractions: tuple[float, ...] = (0.0,)
    operation_weights: tuple[tuple[str, float], ...] = (("mrt", 0.8), ("throughput", 0.2))
    capacity_goal_ms: float = 500.0
    seed: int = 2004
    cost_model: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        """Validate the run shape."""
        check_positive_int(self.users, "users")
        check_positive_int(self.requests, "requests")
        require(self.think_time_s >= 0.0, "think_time_s must be >= 0")
        require(len(self.servers) > 0, "servers must be non-empty")
        require(
            self.client_range[0] >= 1 and self.client_range[1] >= self.client_range[0],
            "client_range must be a non-empty range of positive counts",
        )
        known = {"mrt", "throughput", "capacity"}
        require(len(self.operation_weights) > 0, "operation_weights must be non-empty")
        require(
            all(op in known for op, _ in self.operation_weights),
            f"operations must be among {sorted(known)}",
        )
        require(
            all(w >= 0 for _, w in self.operation_weights)
            and sum(w for _, w in self.operation_weights) > 0,
            "operation weights must be non-negative and not all zero",
        )


@dataclass
class FleetReport:
    """What one virtual-time fleet run measured (all times virtual)."""

    requests: int
    errors: int
    elapsed_virtual_s: float
    throughput_rps: float
    bottleneck: str  # "router" | "shard" | "think"
    router_busy_s: float
    max_shard_busy_s: float
    think_bound_s: float
    outcomes: dict[str, int] = field(default_factory=dict)
    per_shard_busy_s: dict[str, float] = field(default_factory=dict)
    latency: dict[str, float] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)

    def to_jsonable(self) -> dict[str, Any]:
        """The report as sorted plain data for byte-stable JSON dumps."""
        return {
            "requests": self.requests,
            "errors": self.errors,
            "elapsed_virtual_s": self.elapsed_virtual_s,
            "throughput_rps": self.throughput_rps,
            "bottleneck": self.bottleneck,
            "router_busy_s": self.router_busy_s,
            "max_shard_busy_s": self.max_shard_busy_s,
            "think_bound_s": self.think_bound_s,
            "outcomes": dict(sorted(self.outcomes.items())),
            "per_shard_busy_s": dict(sorted(self.per_shard_busy_s.items())),
            "latency": dict(sorted(self.latency.items())),
            "metrics": dict(sorted(self.metrics.items())),
        }


class FleetLoadGenerator:
    """Drive a sharded target with a modelled closed-loop client fleet.

    The target must expose ``serve_info(op, server, operand,
    buy_fraction)`` returning an object with ``shard``/``outcome``/
    ``reroutes`` attributes — i.e. a
    :class:`~repro.service.shard.router.ShardedPredictionService` (over
    any backend).  Each issued request *really executes* (real caches
    warm, real health settles, real metrics accumulate); only its cost
    is virtual, charged per :class:`CostModel`.

    The run's elapsed virtual time is ``max(router busy, busiest shard
    busy, think bound)``:

    * shards serve in parallel, so the fleet's compute capacity is the
      *busiest* shard's serialized work — this is where shard count
      buys throughput;
    * the router is serial in this model (one hash pipeline), the
      canonical scaling ceiling;
    * a closed population of U users with think time Z issues at most
      ``U/Z`` requests per virtual second in aggregate, so R requests
      take at least ``R·Z/U`` — the fleet-size bound (the paper's
      closed-loop arithmetic, sec. 8.5's N/(Z+R) shape).

    ``on_request(completed, ok)`` fires after every request — the chaos
    experiment uses it to advance a shared FakeClock so fault windows
    and breaker recovery run on deterministic time.
    """

    def __init__(
        self,
        target: Any,
        config: FleetConfig | None = None,
        *,
        on_request: Callable[[int, bool], None] | None = None,
    ):
        self.target = target
        self.config = config or FleetConfig()
        self._on_request = on_request
        total = sum(w for _, w in self.config.operation_weights)
        self._ops = [op for op, _ in self.config.operation_weights]
        self._probs = [w / total for _, w in self.config.operation_weights]

    def run(self) -> FleetReport:
        """Issue the configured request stream and account virtual time."""
        config = self.config
        model = config.cost_model
        rng = spawn_rng(config.seed, "fleet")
        histogram = LatencyHistogram()
        router_busy_s = 0.0
        shard_busy_s: dict[str, float] = {}
        outcomes: dict[str, int] = {}
        errors = 0
        for index in range(config.requests):
            op, server, operand, buy = _draw_request(config, rng, self._ops, self._probs)
            try:
                info = self.target.serve_info(op, server, operand, buy)
            except Exception:
                errors += 1
                cost = model.error_us * 1e-6
                router_busy_s += cost
                histogram.observe(cost)
                outcomes["error"] = outcomes.get("error", 0) + 1
                if self._on_request is not None:
                    self._on_request(index + 1, False)
                continue
            router_s, shard_s = model.request_cost_s(info.outcome, info.reroutes)
            router_busy_s += router_s
            shard_busy_s[info.shard] = shard_busy_s.get(info.shard, 0.0) + shard_s
            histogram.observe(router_s + shard_s)
            outcomes[info.outcome] = outcomes.get(info.outcome, 0) + 1
            if self._on_request is not None:
                self._on_request(index + 1, True)
        max_shard_busy_s = max(shard_busy_s.values(), default=0.0)
        think_bound_s = config.requests * config.think_time_s / config.users
        elapsed = max(router_busy_s, max_shard_busy_s, think_bound_s)
        bottleneck = "router"
        if elapsed == max_shard_busy_s and max_shard_busy_s >= router_busy_s:
            bottleneck = "shard"
        if elapsed == think_bound_s and think_bound_s >= max(
            router_busy_s, max_shard_busy_s
        ):
            bottleneck = "think"
        served = config.requests - errors
        snapshot = histogram.snapshot()
        latency = {
            "mean_s": snapshot.mean_s,
            "p50_s": snapshot.quantile(0.50),
            "p95_s": snapshot.quantile(0.95),
            "p99_s": snapshot.quantile(0.99),
            "max_s": snapshot.max_s,
        }
        metrics: dict[str, float] = {}
        export = getattr(self.target, "export_metrics", None)
        if callable(export):
            metrics = export()
        return FleetReport(
            requests=config.requests,
            errors=errors,
            elapsed_virtual_s=elapsed,
            throughput_rps=served / elapsed if elapsed > 0 else 0.0,
            bottleneck=bottleneck,
            router_busy_s=router_busy_s,
            max_shard_busy_s=max_shard_busy_s,
            think_bound_s=think_bound_s,
            outcomes=outcomes,
            per_shard_busy_s=shard_busy_s,
            latency=latency,
            metrics=metrics,
        )
