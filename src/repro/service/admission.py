"""Bounded admission control, retry policy and saturation signalling.

A prediction service in a resource manager's control loop must degrade
predictably, not queue unboundedly: a capacity decision delayed by ten
queued LQN solves is worth less than an instant, slightly-less-accurate
historical answer (the paper's whole section-8.5 argument).  This module
supplies the pieces the :class:`~repro.service.service.PredictionService`
composes:

* :class:`AdmissionController` — a bounded concurrent-request budget;
  requests beyond it are *rejected up front* so the caller can fall back
  immediately instead of waiting;
* :func:`call_with_retries` — bounded retry with exponential backoff for
  transient failures (a :class:`~repro.util.errors.CalibrationError`
  from a model mid-recalibration, a solver
  :class:`~repro.util.errors.ConvergenceError` near saturation);
* the exception types the serving layer uses to signal saturation and
  per-request timeout when no fallback predictor is registered.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.faults.injector import INJECTOR
from repro.util.errors import CalibrationError, ConvergenceError, ReproError
from repro.util.validation import check_non_negative_int, check_positive_int, require

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "ServiceSaturatedError",
    "PredictionTimeoutError",
    "call_with_retries",
]


class ServiceSaturatedError(ReproError):
    """The service's bounded request queue is full and no fallback exists."""


class PredictionTimeoutError(ReproError):
    """A prediction missed its deadline and no fallback predictor exists."""


# Errors worth retrying: transient by nature (a model being refit under
# the online-recalibration workflow, a solver failing to converge at an
# operating point it handles fine on the next attempt with fresh
# under-relaxation), unlike e.g. ValidationError which never heals.
TRANSIENT_ERRORS: tuple[type[Exception], ...] = (CalibrationError, ConvergenceError)


@dataclass(frozen=True)
class AdmissionConfig:
    """Tunables of the admission/retry policy.

    ``max_pending`` bounds how many requests may be past admission at
    once (executing or waiting on the pool); ``timeout_s`` is the
    per-request deadline after which the service degrades to its
    fallback; the retry triple implements exponential backoff
    (``backoff_initial_s * backoff_multiplier**attempt``) for up to
    ``max_retries`` re-attempts on transient errors.
    """

    max_pending: int = 64
    timeout_s: float | None = 5.0
    max_retries: int = 2
    backoff_initial_s: float = 0.005
    backoff_multiplier: float = 4.0

    def __post_init__(self) -> None:
        """Validate the configured policy."""
        check_positive_int(self.max_pending, "max_pending")
        if self.timeout_s is not None:
            require(self.timeout_s > 0.0, "timeout_s must be positive or None")
        check_non_negative_int(self.max_retries, "max_retries")
        require(self.backoff_initial_s >= 0.0, "backoff_initial_s must be >= 0")
        require(self.backoff_multiplier >= 1.0, "backoff_multiplier must be >= 1")


def call_with_retries(
    fn: Callable[[], Any],
    config: AdmissionConfig,
    *,
    on_retry: Callable[[Exception], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Any:
    """Run ``fn``, retrying transient errors with exponential backoff.

    Only :data:`TRANSIENT_ERRORS` are retried, at most
    ``config.max_retries`` times, sleeping
    ``backoff_initial_s * multiplier**attempt`` between attempts;
    anything else (and the final transient failure) propagates.
    ``on_retry`` is invoked with the error before each re-attempt so the
    service can count retries; ``sleep`` is injectable for tests.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except TRANSIENT_ERRORS as error:
            if attempt >= config.max_retries:
                raise
            if on_retry is not None:
                on_retry(error)
            sleep(config.backoff_initial_s * config.backoff_multiplier**attempt)
            attempt += 1


class AdmissionController:
    """A bounded budget of concurrently admitted requests.

    ``try_enter`` admits a request iff fewer than ``max_pending`` are
    already past admission, without blocking — rejection must be
    instant so the caller can degrade to its fallback predictor with
    zero queueing delay.  Callers must pair every successful
    ``try_enter`` with an ``exit`` (the service does this in a
    ``finally``).
    """

    def __init__(self, config: AdmissionConfig | None = None):
        self.config = config or AdmissionConfig()
        self._lock = threading.Lock()
        self._pending = 0
        self._admitted_total = 0
        self._rejected_total = 0

    def try_enter(self) -> bool:
        """Admit one request if the budget allows; never blocks.

        A TRIP at the ``service.admission`` chaos site forces a
        rejection (counted as such), simulating a saturated queue
        without needing to actually saturate one.
        """
        forced_rejection = INJECTOR.armed and INJECTOR.trips("service.admission")
        with self._lock:
            if forced_rejection or self._pending >= self.config.max_pending:
                self._rejected_total += 1
                return False
            self._pending += 1
            self._admitted_total += 1
            return True

    def exit(self) -> None:
        """Release one admitted request's slot."""
        with self._lock:
            require(self._pending > 0, "admission exit without a matching enter")
            self._pending -= 1

    @property
    def pending(self) -> int:
        """Requests currently past admission (executing or waiting)."""
        with self._lock:
            return self._pending

    @property
    def admitted_total(self) -> int:
        """Requests admitted since construction."""
        with self._lock:
            return self._admitted_total

    @property
    def rejected_total(self) -> int:
        """Requests rejected at admission since construction."""
        with self._lock:
            return self._rejected_total
