"""Circuit breaker + health score: the service's resilience policy.

Retries and fallbacks (``repro.service.admission``) handle *isolated*
failures; a circuit breaker handles *correlated* ones.  When the primary
predictor fails repeatedly — a solver that stops converging near
saturation, a model mid-recalibration, an injected chaos fault window —
continuing to send every request through the failing path wastes a pool
slot, a deadline and up to ``max_retries`` solves per request before the
fallback finally answers.  The breaker converts that into an immediate,
metered degradation and then *probes* its way back.

State machine (the classic three states, clock-injected so transitions
are exactly testable)::

    CLOSED ──(failure_threshold consecutive failures)──▶ OPEN
    OPEN ──(recovery_time_s elapsed; next allow() is a probe)──▶ HALF_OPEN
    HALF_OPEN ──(half_open_probes consecutive probe successes)──▶ CLOSED
    HALF_OPEN ──(any probe failure)──▶ OPEN   (recovery timer restarts)

Alongside the hard state sits a soft **health score**: an exponentially
weighted moving average of outcomes (1 = success, 0 = failure) that the
metrics export publishes, giving operators a leading indicator before
the threshold trips and a trailing one while the breaker recovers.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Callable

from repro.util.clock import SYSTEM_CLOCK, Clock
from repro.util.errors import ReproError
from repro.util.validation import check_positive_int, require

__all__ = ["BreakerState", "BreakerConfig", "CircuitOpenError", "CircuitBreaker"]


class BreakerState(enum.Enum):
    """The breaker's three states (values double as metric gauge levels)."""

    CLOSED = "closed"
    HALF_OPEN = "half_open"
    OPEN = "open"


#: Gauge encoding of the state for flat metrics export.
_STATE_LEVEL = {BreakerState.CLOSED: 0.0, BreakerState.HALF_OPEN: 1.0, BreakerState.OPEN: 2.0}


class CircuitOpenError(ReproError):
    """The breaker is open and no fallback predictor is registered."""


@dataclass(frozen=True)
class BreakerConfig:
    """Tunables of one :class:`CircuitBreaker`.

    ``failure_threshold`` consecutive primary failures open the circuit;
    after ``recovery_time_s`` the next request is admitted as a probe
    (HALF_OPEN), and ``half_open_probes`` consecutive probe successes
    re-close it.  ``health_alpha`` is the EWMA weight of the newest
    outcome in the health score (higher = more reactive).
    """

    failure_threshold: int = 5
    recovery_time_s: float = 30.0
    half_open_probes: int = 1
    health_alpha: float = 0.2

    def __post_init__(self) -> None:
        """Validate the policy."""
        check_positive_int(self.failure_threshold, "failure_threshold")
        require(self.recovery_time_s > 0.0, "recovery_time_s must be positive")
        check_positive_int(self.half_open_probes, "half_open_probes")
        require(0.0 < self.health_alpha <= 1.0, "health_alpha must be in (0, 1]")


class CircuitBreaker:
    """A thread-safe three-state circuit breaker with a health score.

    Callers bracket the protected operation with :meth:`allow` (before)
    and exactly one of :meth:`record_success` / :meth:`record_failure` /
    :meth:`cancel` (after); ``allow() == False`` means degrade
    immediately without touching the primary, and ``cancel`` is the
    escape hatch for an admitted caller that never actually attempted
    the primary.  ``on_transition(old, new, at_s)`` fires outside the lock
    on every state change, which is where the service hangs its metrics
    counters and trace instants.
    """

    def __init__(
        self,
        config: BreakerConfig | None = None,
        *,
        clock: Clock = SYSTEM_CLOCK,
        on_transition: Callable[[BreakerState, BreakerState, float], None] | None = None,
    ):
        self.config = config if config is not None else BreakerConfig()
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._opened_at_s = 0.0
        self._health = 1.0
        self._transitions: list[tuple[float, str, str]] = []
        self._rejected_total = 0

    # -- queries ---------------------------------------------------------------

    @property
    def state(self) -> BreakerState:
        """Current state (OPEN is reported even before the next probe)."""
        with self._lock:
            return self._state

    @property
    def state_level(self) -> float:
        """The state as a gauge level (0 closed, 1 half-open, 2 open)."""
        with self._lock:
            return _STATE_LEVEL[self._state]

    @property
    def health_score(self) -> float:
        """EWMA of outcomes in [0, 1]; 1.0 until the first failure."""
        with self._lock:
            return self._health

    @property
    def rejected_total(self) -> int:
        """Requests turned away by :meth:`allow` since construction."""
        with self._lock:
            return self._rejected_total

    @property
    def recovery_due(self) -> bool:
        """OPEN with the recovery window elapsed (next ``allow()`` probes).

        A pure query: unlike :meth:`allow` it performs no transition, so
        policy layers (the shard router's health board) can distinguish
        "ejected, keep away" from "ejected, but owed a probe" without
        spending probe slots.
        """
        with self._lock:
            return (
                self._state is BreakerState.OPEN
                and self._clock.monotonic_s() - self._opened_at_s
                >= self.config.recovery_time_s
            )

    def transitions(self) -> list[tuple[float, str, str]]:
        """Every ``(at_s, from_state, to_state)`` transition so far."""
        with self._lock:
            return list(self._transitions)

    # -- the protected-call protocol -------------------------------------------

    def allow(self) -> bool:
        """Whether the caller may attempt the primary right now.

        CLOSED always admits.  OPEN admits nothing until
        ``recovery_time_s`` has elapsed, then transitions to HALF_OPEN
        and admits up to ``half_open_probes`` concurrent probes.  Every
        admitted HALF_OPEN call counts as a probe and **must** be
        matched by a ``record_*`` call.
        """
        now_s = self._clock.monotonic_s()
        fired: tuple[BreakerState, BreakerState] | None = None
        # State mutations stay lexically inside the `with self._lock:` block
        # (no lock-held helper methods) so REPRO-LOCK001 can verify them.
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.OPEN:
                if now_s - self._opened_at_s < self.config.recovery_time_s:
                    self._rejected_total += 1
                    return False
                fired = (self._state, BreakerState.HALF_OPEN)
                self._state = BreakerState.HALF_OPEN
                self._transitions.append((now_s, fired[0].value, fired[1].value))
                self._probes_in_flight = 0
                self._probe_successes = 0
            # HALF_OPEN: admit while probe slots remain.
            if self._probes_in_flight < self.config.half_open_probes:
                self._probes_in_flight += 1
                admitted = True
            else:
                self._rejected_total += 1
                admitted = False
        self._notify(fired, now_s)
        return admitted

    def record_success(self) -> None:
        """Report one successful primary call."""
        now_s = self._clock.monotonic_s()
        alpha = self.config.health_alpha
        fired: tuple[BreakerState, BreakerState] | None = None
        with self._lock:
            self._health = (1.0 - alpha) * self._health + alpha * 1.0
            if self._state is BreakerState.CLOSED:
                self._consecutive_failures = 0
            elif self._state is BreakerState.HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.config.half_open_probes:
                    fired = (self._state, BreakerState.CLOSED)
                    self._state = BreakerState.CLOSED
                    self._transitions.append((now_s, fired[0].value, fired[1].value))
                    self._consecutive_failures = 0
        self._notify(fired, now_s)

    def cancel(self) -> None:
        """Withdraw an admitted attempt without recording an outcome.

        For callers that :meth:`allow` admitted but that never started a
        fresh primary execution — in the service, a request whose work
        coalesced onto an already-in-flight computation (possibly one
        begun before the circuit even opened).  Hands a HALF_OPEN probe
        slot back so recorded outcomes stay one-per-execution; a no-op
        in CLOSED (nothing was reserved) and in OPEN (a probe failure
        already reset the slots).
        """
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)

    def record_failure(self) -> None:
        """Report one failed primary call (transient error or deadline miss)."""
        now_s = self._clock.monotonic_s()
        alpha = self.config.health_alpha
        fired: tuple[BreakerState, BreakerState] | None = None
        with self._lock:
            self._health = (1.0 - alpha) * self._health
            if self._state is BreakerState.CLOSED:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.config.failure_threshold:
                    fired = (self._state, BreakerState.OPEN)
            elif self._state is BreakerState.HALF_OPEN:
                # One failed probe sends it straight back to OPEN.
                fired = (self._state, BreakerState.OPEN)
            if fired is not None:
                self._state = BreakerState.OPEN
                self._transitions.append((now_s, fired[0].value, fired[1].value))
                self._opened_at_s = now_s  # (re)starts the recovery timer
                self._probes_in_flight = 0
                self._probe_successes = 0
        self._notify(fired, now_s)

    # -- internals -------------------------------------------------------------

    def _notify(
        self, fired: tuple[BreakerState, BreakerState] | None, now_s: float
    ) -> None:
        """Invoke the transition callback outside the lock."""
        if fired is not None and self._on_transition is not None:
            self._on_transition(fired[0], fired[1], now_s)
