"""TTL + LRU memoization of prediction results, keyed on quantized inputs.

Section 8.5's finding is that the layered queuing method's per-solve
delay (milliseconds to seconds) is what prices it out of online use.  A
serving layer changes that arithmetic: resource managers ask for the
same operating points over and over (the same server at the same load
band while an allocation is being searched), so a small quantized cache
turns the *second* identical question into a microsecond lookup — the
historical method's delay class — regardless of which method answers
the first.

Keys quantize ``(server, operand, buy_fraction)`` onto a grid (default:
whole clients, 1 % buy-mix steps) so that float jitter in callers maps
to the same entry; the TTL bounds staleness between recalibrations, and
:meth:`PredictionCache.invalidate` drops entries eagerly when a model is
recalibrated (section 4.2's workload-manager loop).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.faults.injector import INJECTOR
from repro.util.validation import check_positive_int, require

__all__ = ["CacheKey", "CacheStats", "PredictionCache", "quantize_key"]


@dataclass(frozen=True)
class CacheKey:
    """A hashable, quantized identity of one prediction request.

    ``operand_q`` is the quantized main operand — client count for
    mean-response-time/throughput queries, the response-time goal (ms)
    for capacity queries — and ``buy_q`` the quantized buy-mix step, so
    two requests inside the same grid cell share one entry.
    """

    server: str
    kind: str
    operand_q: int
    buy_q: int


def quantize_key(
    server: str,
    kind: str,
    operand: float,
    buy_fraction: float,
    *,
    operand_step: float = 1.0,
    buy_step: float = 0.01,
) -> CacheKey:
    """Quantize one request onto the cache grid.

    ``operand_step`` is the client-count (or goal) granularity and
    ``buy_step`` the buy-fraction granularity; both default to the
    resolutions at which the paper's models are meaningfully distinct
    (whole clients, 1 % mix steps).  Coarser steps raise hit rates at
    the price of answering from a neighbouring operating point.
    """
    require(operand_step > 0.0, "operand_step must be positive")
    require(buy_step > 0.0, "buy_step must be positive")
    return CacheKey(
        server=server,
        kind=kind,
        operand_q=int(round(operand / operand_step)),
        buy_q=int(round(buy_fraction / buy_step)),
    )


@dataclass
class CacheStats:
    """A point-in-time snapshot of cache effectiveness counters."""

    requests: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidated: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of requests answered from the cache (0 when idle)."""
        return self.hits / self.requests if self.requests else 0.0


class _Sentinel:
    """Internal marker distinguishing 'no entry' from a cached ``None``."""


_MISS = _Sentinel()


class PredictionCache:
    """A thread-safe TTL + LRU cache of prediction values.

    * **LRU**: at most ``max_entries`` live at once; the least recently
      *used* entry is evicted first, which matches the resource
      manager's access pattern (it revisits the loads near the current
      allocation frontier far more often than historic ones).
    * **TTL**: entries older than ``ttl_s`` are treated as misses and
      dropped on access, bounding how stale a served prediction can be
      between recalibrations.  ``ttl_s=None`` disables expiry.
    * **Invalidation**: :meth:`invalidate` drops everything (or one
      server's entries) immediately — the hook the online
      recalibration workflow calls after refitting a model.

    The ``clock`` is injectable so TTL behaviour is testable without
    sleeping.
    """

    def __init__(
        self,
        *,
        max_entries: int = 4096,
        ttl_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        check_positive_int(max_entries, "max_entries")
        if ttl_s is not None:
            require(ttl_s > 0.0, "ttl_s must be positive (or None to disable)")
        self._max_entries = max_entries
        self._ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, tuple[Any, float]] = OrderedDict()
        self._stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> tuple[bool, Any]:
        """Look up ``key``; returns ``(hit, value)`` and updates stats.

        A present-but-expired entry counts as a miss (and one
        expiration) and is removed, so the caller recomputes it.

        Two chaos injection sites live here: a TRIP at
        ``service.cache.expire`` forces a present, unexpired entry to be
        treated as expired, and a CORRUPT at ``service.cache.value``
        transforms a hit's value.  Both are consulted *outside* the
        cache lock so the injector's session lock never nests inside it,
        which makes the armed lookup two-phase: first find a would-be
        hit under the lock, then consult the TRIP, then re-take the lock
        to drop (or serve) it.  Consulting only would-be hits keeps the
        spec's injected count equal to entries actually forcibly
        expired — plain misses never advance it.
        """
        now = self._clock()
        armed = INJECTOR.armed
        with self._lock:
            self._stats.requests += 1
            entry = self._entries.get(key, _MISS)
            if entry is _MISS:
                self._stats.misses += 1
                return False, None
            value, stored_at = entry
            if self._ttl_s is not None and now - stored_at > self._ttl_s:
                del self._entries[key]
                self._stats.expirations += 1
                self._stats.misses += 1
                return False, None
            if not armed:
                self._entries.move_to_end(key)
                self._stats.hits += 1
                return True, value
        # Armed second phase: the entry was present and unexpired.
        if INJECTOR.trips("service.cache.expire"):
            with self._lock:
                # Drop the exact entry we saw; a concurrent put() made a
                # fresh tuple, which the forced expiry then spares.
                if self._entries.get(key) is entry:
                    del self._entries[key]
                self._stats.expirations += 1
                self._stats.misses += 1
            return False, None
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._stats.hits += 1
        return True, INJECTOR.filter("service.cache.value", value)

    def put(self, key: CacheKey, value: Any) -> None:
        """Insert/refresh ``key``, evicting the LRU entry when full."""
        now = self._clock()
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, now)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self._stats.evictions += 1

    def invalidate(self, server: str | None = None) -> int:
        """Drop all entries (or only ``server``'s); returns how many.

        Call this after recalibrating the backing model so no prediction
        computed under the old fit is ever served again.
        """
        with self._lock:
            if server is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                doomed = [k for k in self._entries if k.server == server]
                for key in doomed:
                    del self._entries[key]
                dropped = len(doomed)
            self._stats.invalidated += dropped
            return dropped

    def stats(self) -> CacheStats:
        """A consistent snapshot of the effectiveness counters."""
        with self._lock:
            return CacheStats(
                requests=self._stats.requests,
                hits=self._stats.hits,
                misses=self._stats.misses,
                evictions=self._stats.evictions,
                expirations=self._stats.expirations,
                invalidated=self._stats.invalidated,
            )
