"""The :class:`PredictionService` facade — any predictor, served online.

Composes the serving-layer pieces (quantized TTL+LRU cache, coalescing
thread pool, bounded admission with retries, metrics) behind the
existing :class:`~repro.prediction.interface.Predictor` protocol, so a
resource manager or experiment written against a raw predictor runs on
the service unchanged — it just gets concurrency, memoization and
graceful degradation for free.

Degradation policy (in the order it is applied):

1. **Cache hit** → answer in microseconds, whatever the backing method.
2. **Admission rejection** (bounded queue full) → answer from the
   registered ``fallback`` predictor immediately (the paper's
   historical method is the natural fallback: closed-form, ~µs); no
   fallback → :class:`~repro.service.admission.ServiceSaturatedError`.
3. **Open circuit breaker** (when :attr:`ServiceConfig.breaker` is set)
   → fallback immediately, without spending a retry budget on a primary
   known to be failing; no fallback →
   :class:`~repro.service.breaker.CircuitOpenError`.
4. **Transient failure** (``CalibrationError``/``ConvergenceError``)
   → bounded retries with exponential backoff, then fallback/raise.
5. **Deadline miss** → fallback (the abandoned solve still completes on
   the pool and populates the cache for future requests); no fallback →
   :class:`~repro.service.admission.PredictionTimeoutError`.
"""

from __future__ import annotations

import contextvars
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Callable

from repro.prediction.interface import PredictionTimer, Predictor
from repro.service.admission import (
    TRANSIENT_ERRORS,
    AdmissionConfig,
    AdmissionController,
    PredictionTimeoutError,
    ServiceSaturatedError,
    call_with_retries,
)
from repro.service.breaker import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
)
from repro.service.cache import PredictionCache, quantize_key
from repro.service.metrics import MetricsRegistry, MetricsSnapshot
from repro.service.pool import CoalescingPool
from repro.trace import TRACER
from repro.util.clock import SYSTEM_CLOCK, Clock

__all__ = ["ServiceConfig", "PredictionService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`PredictionService` instance."""

    max_workers: int = 4
    cache_entries: int = 4096
    cache_ttl_s: float | None = None
    operand_step: float = 1.0  # cache-grid step for client counts / RT goals
    buy_step: float = 0.01  # cache-grid step for the buy fraction
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    # None = no circuit breaker (every request tries the primary).
    breaker: BreakerConfig | None = None


class PredictionService:
    """Serve a :class:`~repro.prediction.interface.Predictor` online.

    Satisfies the ``Predictor`` protocol itself (``name``, ``timer``,
    the three query methods), so it can stand wherever a raw predictor
    does — as a resource manager's model, as ground truth in
    :func:`~repro.resource_manager.runtime.evaluate_runtime`, or under
    the section-8.5 delay experiment — while adding:

    * memoization on the quantized operating-point grid;
    * a worker pool with in-flight coalescing (N concurrent identical
      LQN solves cost one solve);
    * bounded admission, per-request deadlines, transient-error retries
      and graceful degradation to a fast ``fallback`` predictor;
    * an optional ``preflight`` admission hook (see
      :func:`repro.analysis.model_preflight`) rejecting requests whose
      models fail static lint before they reach the pool;
    * a metrics registry exporting hit rates, p50/p95/p99 latencies and
      degradation counts.

    The ``timer`` records *service-level* delays (what a caller
    experienced, cache hits included), subsuming the role the raw
    predictors' timers play in the offline delay comparison.
    """

    def __init__(
        self,
        primary: Predictor,
        *,
        fallback: Predictor | None = None,
        config: ServiceConfig | None = None,
        name: str | None = None,
        preflight: Callable[[str, str, float, float], None] | None = None,
        clock: Clock = SYSTEM_CLOCK,
        l2=None,
    ):
        self.primary = primary
        self._clock = clock
        self.fallback = fallback
        # Optional cross-shard shared L2 cache (see repro.service.shard.l2):
        # consulted on every L1 miss before the request pays for admission
        # and a solve, and published to after every computed result.  The
        # duck-typed contract is get(key) -> (hit, value) / put(key, value);
        # None (the default, and the unsharded configuration) skips both.
        self.l2 = l2
        # Admission hook called as preflight(kind, server, operand,
        # buy_fraction) on every cache miss; raising rejects the request
        # before it reaches the pool.  repro.analysis.model_preflight
        # adapts the LQN model linter into this shape.
        self.preflight = preflight
        self.config = config or ServiceConfig()
        self.name = name if name is not None else f"service({primary.name})"
        self.timer = PredictionTimer(
            startup_delay_s=getattr(primary.timer, "startup_delay_s", 0.0)
        )
        self.metrics = MetricsRegistry()
        self.cache = PredictionCache(
            max_entries=self.config.cache_entries,
            ttl_s=self.config.cache_ttl_s,
            clock=clock.monotonic_s,
        )
        self.pool = CoalescingPool(max_workers=self.config.max_workers)
        self.admission = AdmissionController(self.config.admission)
        self.breaker: CircuitBreaker | None = (
            CircuitBreaker(
                self.config.breaker,
                clock=clock,
                on_transition=self._on_breaker_transition,
            )
            if self.config.breaker is not None
            else None
        )

    # -- Predictor protocol ---------------------------------------------------

    def predict_mrt_ms(
        self, server: str, n_clients: float, *, buy_fraction: float = 0.0
    ) -> float:
        """Predicted mean response time (ms), served with caching."""
        return self._serve(
            "mrt",
            server,
            n_clients,
            buy_fraction,
            lambda: self.primary.predict_mrt_ms(
                server, n_clients, buy_fraction=buy_fraction
            ),
            lambda p: p.predict_mrt_ms(server, n_clients, buy_fraction=buy_fraction),
        )

    def predict_throughput(
        self, server: str, n_clients: float, *, buy_fraction: float = 0.0
    ) -> float:
        """Predicted throughput (req/s), served with caching."""
        return self._serve(
            "throughput",
            server,
            n_clients,
            buy_fraction,
            lambda: self.primary.predict_throughput(
                server, n_clients, buy_fraction=buy_fraction
            ),
            lambda p: p.predict_throughput(server, n_clients, buy_fraction=buy_fraction),
        )

    def max_clients(
        self, server: str, rt_goal_ms: float, *, buy_fraction: float = 0.0
    ) -> int:
        """Capacity under an SLA goal, served with caching.

        The cache operand is the goal itself, so repeated capacity
        queries — the layered method's most expensive operation, one
        solve per search probe — collapse to one search per grid cell.
        """
        return self._serve(
            "capacity",
            server,
            rt_goal_ms,
            buy_fraction,
            lambda: self.primary.max_clients(
                server, rt_goal_ms, buy_fraction=buy_fraction
            ),
            lambda p: p.max_clients(server, rt_goal_ms, buy_fraction=buy_fraction),
        )

    def clients_at_max(self, server: str) -> float:
        """Max-throughput load, delegated to whichever side can answer.

        The percentile predictor needs this; the primary answers when it
        is historical/hybrid, otherwise the fallback does.
        """
        for predictor in (self.primary, self.fallback):
            query = getattr(predictor, "clients_at_max", None)
            if query is not None:
                return query(server)
        raise AttributeError(
            f"neither {self.primary.name!r} nor the fallback exposes clients_at_max"
        )

    # -- operations -----------------------------------------------------------

    def invalidate(self, server: str | None = None) -> int:
        """Drop cached predictions (for ``server``, or all) after recalibration.

        With a shared L2 attached, the drop is cluster-wide: the L2 is
        the one coherence point every shard reads through, so eagerly
        clearing it here is what keeps TTL-only coherence honest across
        a recalibration (no invalidation protocol needed).
        """
        dropped = self.cache.invalidate(server)
        if self.l2 is not None:
            dropped += self.l2.invalidate(server)
        self.metrics.counter("invalidations").inc()
        return dropped

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker pool (idempotent)."""
        self.pool.shutdown(wait=wait)

    def __enter__(self) -> "PredictionService":
        """Context-manager entry: the service itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: shut the worker pool down."""
        self.shutdown()

    def export_metrics(self) -> dict[str, float]:
        """One flat dict of every service metric, cache and pool stat."""
        out = self.metrics.export()
        cache = self.cache.stats()
        out.update(
            {
                "cache.requests": cache.requests,
                "cache.hits": cache.hits,
                "cache.misses": cache.misses,
                "cache.evictions": cache.evictions,
                "cache.expirations": cache.expirations,
                "cache.invalidated": cache.invalidated,
                "cache.hit_rate": cache.hit_rate,
            }
        )
        pool = self.pool.stats()
        out.update(
            {
                "pool.submitted": pool.submitted,
                "pool.coalesced": pool.coalesced,
                "pool.executed": pool.executed,
                "admission.admitted": self.admission.admitted_total,
                "admission.rejected": self.admission.rejected_total,
                "admission.pending": self.admission.pending,
            }
        )
        if self.l2 is not None:
            l2 = self.l2.stats()
            out.update(
                {
                    "l2.requests": l2.requests,
                    "l2.hits": l2.hits,
                    "l2.misses": l2.misses,
                    "l2.expirations": l2.expirations,
                    "l2.puts": l2.puts,
                    "l2.hit_rate": l2.hit_rate,
                }
            )
        if self.breaker is not None:
            out.update(
                {
                    "breaker.state": self.breaker.state_level,
                    "breaker.health": self.breaker.health_score,
                    "breaker.rejected": self.breaker.rejected_total,
                }
            )
        return out

    def snapshot(self) -> MetricsSnapshot:
        """A mergeable snapshot of this service's *additive* state.

        The registry's counters/gauges/histograms plus the cache, pool,
        admission and L2 counters folded in as plain counters — exactly
        the unit a shard worker ships to the router, where
        :func:`~repro.service.metrics.merge_snapshots` combines all
        shards into one cluster view.  Non-additive values (hit rates,
        breaker state/health) are excluded by design; the router derives
        rates after merging and reads per-shard health off its own
        health board.
        """
        snap = self.metrics.snapshot()
        counters = dict(snap.counters)
        cache = self.cache.stats()
        counters.update(
            {
                "cache.requests": cache.requests,
                "cache.hits": cache.hits,
                "cache.misses": cache.misses,
                "cache.evictions": cache.evictions,
                "cache.expirations": cache.expirations,
                "cache.invalidated": cache.invalidated,
            }
        )
        pool = self.pool.stats()
        counters.update(
            {
                "pool.submitted": pool.submitted,
                "pool.coalesced": pool.coalesced,
                "pool.executed": pool.executed,
                "admission.admitted": self.admission.admitted_total,
                "admission.rejected": self.admission.rejected_total,
            }
        )
        if self.l2 is not None:
            l2 = self.l2.stats()
            counters.update(
                {
                    "l2.requests": l2.requests,
                    "l2.hits": l2.hits,
                    "l2.misses": l2.misses,
                    "l2.expirations": l2.expirations,
                    "l2.puts": l2.puts,
                }
            )
        gauges = dict(snap.gauges)
        gauges["admission.pending"] = float(self.admission.pending)
        return MetricsSnapshot(
            counters=dict(sorted(counters.items())),
            gauges=dict(sorted(gauges.items())),
            histograms=snap.histograms,
        )

    # -- the serving path -----------------------------------------------------

    def _on_breaker_transition(
        self, old: BreakerState, new: BreakerState, at_s: float
    ) -> None:
        """Meter and trace every circuit-breaker state change."""
        self.metrics.counter(f"breaker.to_{new.value}").inc()
        TRACER.instant(
            "service.breaker_transition",
            from_state=old.value,
            to_state=new.value,
            at_s=at_s,
        )

    def _degrade(
        self,
        reason: str,
        fallback_call: Callable[[Predictor], float],
        error: Exception,
    ) -> float:
        """Answer from the fallback predictor (or re-raise ``error``)."""
        self.metrics.counter(f"degraded.{reason}").inc()
        self.metrics.counter("degraded").inc()
        TRACER.instant(
            "service.fallback", reason=reason, available=self.fallback is not None
        )
        if self.fallback is None:
            raise error
        with TRACER.span("service.fallback_call", reason=reason):
            return fallback_call(self.fallback)

    def _serve(
        self,
        kind: str,
        server: str,
        operand: float,
        buy_fraction: float,
        compute: Callable[[], float],
        fallback_call: Callable[[Predictor], float],
    ) -> float:
        """The common serving path: cache → admission → pool → degrade."""
        start = self._clock.perf_s()
        latency = self.metrics.histogram("latency")
        self.metrics.counter("requests").inc()
        key = quantize_key(
            server,
            kind,
            operand,
            buy_fraction,
            operand_step=self.config.operand_step,
            buy_step=self.config.buy_step,
        )
        with TRACER.span("service.request", kind=kind, server=server) as span:
            try:
                hit, value = self.cache.get(key)
                TRACER.instant("service.cache", hit=hit)
                if hit:
                    span.set_attribute("outcome", "cache_hit")
                    return value

                if self.l2 is not None:
                    l2_hit, l2_value = self.l2.get(key)
                    TRACER.instant("service.l2", hit=l2_hit)
                    if l2_hit:
                        # Promote: the next request for this cell is a
                        # local microsecond hit instead of an L2 trip.
                        self.cache.put(key, l2_value)
                        self.metrics.counter("l2.promotions").inc()
                        span.set_attribute("outcome", "l2_hit")
                        return l2_value

                if self.preflight is not None:
                    try:
                        self.preflight(kind, server, operand, buy_fraction)
                    except Exception:
                        self.metrics.counter("preflight.rejected").inc()
                        span.set_attribute("outcome", "preflight_rejected")
                        raise

                if not self.admission.try_enter():
                    TRACER.instant("service.admission", admitted=False)
                    span.set_attribute("outcome", "degraded.saturated")
                    return self._degrade(
                        "saturated",
                        fallback_call,
                        ServiceSaturatedError(
                            f"{self.name}: admission queue full "
                            f"({self.config.admission.max_pending} pending) and no "
                            f"fallback predictor is registered"
                        ),
                    )
                TRACER.instant("service.admission", admitted=True)
                try:
                    # Breaker check sits after the cache lookup and
                    # admission, so hits and preflight rejections never
                    # charge it.
                    if self.breaker is not None and not self.breaker.allow():
                        TRACER.instant("service.breaker", allowed=False)
                        span.set_attribute("outcome", "degraded.breaker_open")
                        return self._degrade(
                            "breaker_open",
                            fallback_call,
                            CircuitOpenError(
                                f"{self.name}: circuit breaker is "
                                f"{self.breaker.state.value} and no fallback "
                                f"predictor is registered"
                            ),
                        )

                    def _task() -> float:
                        with TRACER.span("service.execute", kind=kind, server=server):
                            result = call_with_retries(
                                compute,
                                self.config.admission,
                                on_retry=lambda _e: self.metrics.counter(
                                    "retries"
                                ).inc(),
                            )
                            self.cache.put(key, result)
                            if self.l2 is not None:
                                self.l2.put(key, result)
                            return result

                    # Capture the submitting request's context so the pool
                    # thread's execute span nests under this request span.
                    # Coalesced followers attach to the submitter's tree.
                    if TRACER.enabled:
                        ctx = contextvars.copy_context()
                        runner: Callable[[], float] = lambda: ctx.run(_task)
                    else:
                        runner = _task
                    recorder = self.breaker
                    # False until exactly one record_*/cancel call has
                    # settled the allow() above; the finally below covers
                    # every path that skips the explicit outcomes (a
                    # non-transient exception out of future.result, a
                    # failed submission), so HALF_OPEN probe slots cannot
                    # leak.
                    recorded = recorder is None
                    try:
                        future, started = self.pool.submit_or_join(key, runner)
                        # The breaker is charged exactly once per primary
                        # *execution*: only the request that started the
                        # work reports an outcome.  A coalesced join
                        # piggybacks on work it did not start (possibly
                        # begun before the circuit even opened), so it
                        # hands any HALF_OPEN probe slot back and records
                        # nothing.
                        if recorder is not None and not started:
                            recorded = True
                            recorder.cancel()
                            recorder = None
                        result = future.result(timeout=self.config.admission.timeout_s)
                        if recorder is not None:
                            recorded = True
                            recorder.record_success()
                        span.set_attribute("outcome", "computed")
                        return result
                    except FutureTimeoutError:
                        if recorder is not None:
                            recorded = True
                            recorder.record_failure()
                        self.metrics.counter("timeouts").inc()
                        span.set_attribute("outcome", "degraded.timeout")
                        return self._degrade(
                            "timeout",
                            fallback_call,
                            PredictionTimeoutError(
                                f"{self.name}: {kind} prediction for {server!r} missed "
                                f"its {self.config.admission.timeout_s}s deadline and "
                                f"no fallback predictor is registered"
                            ),
                        )
                    except TRANSIENT_ERRORS as error:  # survived the retries
                        if recorder is not None:
                            recorded = True
                            recorder.record_failure()
                        self.metrics.counter("errors").inc()
                        span.set_attribute("outcome", "degraded.error")
                        return self._degrade("error", fallback_call, error)
                    finally:
                        if not recorded:
                            recorder.record_failure()
                finally:
                    self.admission.exit()
            finally:
                elapsed = self._clock.perf_s() - start
                latency.observe(elapsed)
                self.metrics.histogram(f"latency.{kind}").observe(elapsed)
                self.timer.record(elapsed)
