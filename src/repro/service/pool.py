"""Thread-pool execution with in-flight request coalescing.

When many concurrent callers ask the service the same (quantized)
question that is not yet cached, executing the underlying predictor once
per caller multiplies exactly the cost the paper warns about — an LQN
capacity query is already a multi-solve search (section 8.2), so ten
simultaneous copies of it would be ten searches.  The
:class:`CoalescingPool` deduplicates *in-flight* work: the first caller
for a key starts the computation, every later caller that arrives before
it finishes receives the same :class:`~concurrent.futures.Future`, and
the work function runs exactly once.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.faults.injector import INJECTOR
from repro.util.validation import check_positive_int

__all__ = ["CoalescingPool", "PoolStats"]


@dataclass
class PoolStats:
    """A snapshot of the pool's coalescing effectiveness."""

    submitted: int = 0  # submit() calls
    coalesced: int = 0  # calls satisfied by an already-in-flight future
    executed: int = 0  # work functions actually run

    @property
    def coalescing_rate(self) -> float:
        """Fraction of submissions that piggybacked on in-flight work."""
        return self.coalesced / self.submitted if self.submitted else 0.0


class CoalescingPool:
    """A bounded worker pool that deduplicates identical in-flight work.

    ``submit(key, fn)`` returns a future for ``fn()``; if a future for
    the same ``key`` is still in flight it is returned instead and
    ``fn`` is never invoked for this call.  Keys use the same quantized
    identity as the prediction cache, so "identical" means "would have
    hit the same cache entry".

    The in-flight table is pruned by a done-callback *before* waiters
    observe completion ordering guarantees; a submission racing with
    completion either joins the finishing future (and gets its result)
    or starts a fresh computation (and, in the serving stack, finds the
    value already cached) — both are correct, neither double-counts.
    """

    def __init__(self, max_workers: int = 4):
        check_positive_int(max_workers, "max_workers")
        self.max_workers = max_workers
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-service"
        )
        self._lock = threading.Lock()
        self._inflight: dict[Hashable, Future] = {}
        self._stats = PoolStats()

    def submit(self, key: Hashable, fn: Callable[[], Any]) -> Future:
        """Run ``fn`` on the pool (or join the in-flight run for ``key``)."""
        return self.submit_or_join(key, fn)[0]

    def submit_or_join(
        self, key: Hashable, fn: Callable[[], Any]
    ) -> tuple[Future, bool]:
        """Like :meth:`submit`, also reporting which of the two happened.

        Returns ``(future, started)``: ``started`` is True when this
        call began a fresh execution of ``fn`` and False when it joined
        a future already in flight for ``key``.  The service uses the
        flag to charge its circuit breaker exactly once per primary
        execution rather than once per coalesced waiter.
        """

        def _run() -> Any:
            with self._lock:
                self._stats.executed += 1
            # Chaos site on the worker thread itself: injected latency
            # here holds the pool slot (unlike latency inside fn, which
            # a specific predictor may not exercise), and an injected
            # error surfaces through the future like any worker crash.
            if INJECTOR.armed:
                INJECTOR.fire("service.pool")
            return fn()

        with self._lock:
            self._stats.submitted += 1
            existing = self._inflight.get(key)
            if existing is not None:
                self._stats.coalesced += 1
                return existing, False
            future = self._executor.submit(_run)
            self._inflight[key] = future

        def _forget(done: Future, *, key: Hashable = key) -> None:
            with self._lock:
                if self._inflight.get(key) is done:
                    del self._inflight[key]

        future.add_done_callback(_forget)
        return future, True

    def inflight_count(self) -> int:
        """Number of distinct keys currently being computed."""
        with self._lock:
            return len(self._inflight)

    def stats(self) -> PoolStats:
        """A consistent snapshot of the coalescing counters."""
        with self._lock:
            return PoolStats(
                submitted=self._stats.submitted,
                coalesced=self._stats.coalesced,
                executed=self._stats.executed,
            )

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker threads (idempotent)."""
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "CoalescingPool":
        """Context-manager entry: the pool itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: shut the workers down."""
        self.shutdown()
