"""repro — performance prediction for distributed enterprise applications.

A from-scratch reproduction of Bacigalupo, Jarvis, He & Nudd, *"An
Investigation into the Application of Different Performance Prediction
Techniques to e-Commerce Applications"* (IPDPS 2004 PMEO workshop; extended
as *"…Performance Prediction Methods to Distributed Enterprise
Applications"*).

The library provides:

* a discrete-event simulator of the paper's WebSphere/DB2 *Trade* testbed
  (:mod:`repro.simulation`, :mod:`repro.workload`, :mod:`repro.servers`);
* the three prediction methods — historical/HYDRA (:mod:`repro.historical`),
  layered queuing with a from-scratch solver (:mod:`repro.lqn`), and the
  hybrid combination (:mod:`repro.hybrid`) — behind one predictor interface
  (:mod:`repro.prediction`);
* response-time distribution extrapolation for percentile SLAs
  (:mod:`repro.distribution`) and cache-effect modelling
  (:mod:`repro.caching`);
* the SLA-driven, slack-tuned resource manager (:mod:`repro.resource_manager`);
* a concurrent, cached, metered prediction-serving layer that puts any
  predictor online behind the same protocol (:mod:`repro.service`);
* a hierarchical tracing subsystem — context-propagated spans over the
  solver, historical, service and simulation layers, with a summarize
  CLI and Chrome trace export (:mod:`repro.trace`);
* one experiment driver per table/figure of the paper
  (:mod:`repro.experiments`).

Quickstart::

    from repro.servers import APP_SERV_F, APP_SERV_S, APP_SERV_VF
    from repro.lqn import calibrate_from_simulator
    from repro.prediction import HybridPredictor

    calibration = calibrate_from_simulator(APP_SERV_F)
    predictor = HybridPredictor.from_parameters(
        calibration.to_model_parameters(),
        [APP_SERV_S, APP_SERV_F, APP_SERV_VF],
    )
    predictor.predict_mrt_ms("AppServS", 500)
"""

from repro.historical import HistoricalDataStore, HistoricalModel
from repro.hybrid import AdvancedHybridModel, BasicHybridModel
from repro.lqn import (
    LqnCalibration,
    LqnModel,
    LqnSolver,
    SolverOptions,
    build_trade_model,
    calibrate_from_simulator,
)
from repro.prediction import (
    HistoricalPredictor,
    HybridPredictor,
    LqnPredictor,
    Predictor,
)
from repro.servers import APP_SERV_F, APP_SERV_S, APP_SERV_VF, ServerArchitecture
from repro.service import (
    LoadGenConfig,
    LoadGenerator,
    PredictionService,
    ServiceConfig,
)
from repro.simulation import SimulationConfig, SimulationResult, simulate_deployment
from repro.trace import TRACER, JsonlSink, RingBufferSink, Tracer
from repro.workload import ServiceClass, browse_class, buy_class, mixed_workload, typical_workload

__version__ = "1.0.0"

__all__ = [
    "HistoricalDataStore",
    "HistoricalModel",
    "AdvancedHybridModel",
    "BasicHybridModel",
    "LqnCalibration",
    "LqnModel",
    "LqnSolver",
    "SolverOptions",
    "build_trade_model",
    "calibrate_from_simulator",
    "HistoricalPredictor",
    "HybridPredictor",
    "LqnPredictor",
    "Predictor",
    "APP_SERV_F",
    "APP_SERV_S",
    "APP_SERV_VF",
    "ServerArchitecture",
    "PredictionService",
    "ServiceConfig",
    "LoadGenerator",
    "LoadGenConfig",
    "SimulationConfig",
    "SimulationResult",
    "simulate_deployment",
    "TRACER",
    "Tracer",
    "RingBufferSink",
    "JsonlSink",
    "ServiceClass",
    "browse_class",
    "buy_class",
    "mixed_workload",
    "typical_workload",
    "__version__",
]
