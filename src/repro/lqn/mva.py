"""Mean Value Analysis cores for closed multiclass queueing networks.

Three entry points:

* :func:`solve_exact_single_class` — Reiser/Lavenberg exact MVA for a single
  closed class, including load-dependent multi-server stations.  Used for
  validating the approximate core and in unit tests against closed-form
  results (machine-repairman, M/M/1-with-think-time).
* :func:`solve_batch` — **the** multiclass Bard–Schweitzer approximate MVA
  fixed point, vectorised over a whole *sweep* of networks at once: a batch
  axis ``B`` sits in front of the usual class/station axes (``Q: (B, C, K)``)
  so populations × request mixes × architectures iterate together.  Each
  batch point carries its own convergence state — converged points freeze
  (their iterates stop being updated, bit-for-bit) while stragglers keep
  iterating — and an optional warm-start seeds the iterates from a
  neighbouring, already-solved grid point.
* :func:`solve_bard_schweitzer` — the single-network API, now literally a
  batch of one: it stacks its input into a :class:`MvaBatchInput` of size 1
  and unpacks :func:`solve_batch`'s first point, so there is exactly one
  fixed-point implementation in the repository.

Multi-server stations use a scaled-queue approximation
(``R = D + (D/m)·A``), and *surrogate software stations* can be marked
``waiting_only`` so only their queueing delay — not their (already counted
elsewhere) service — contributes to cycle response times.

Demands are expressed **per cycle** of each class (visit ratio × mean service
time, in ms).  A class may additionally place *hidden* demand on a station:
work that loads the station (asynchronous calls, second-phase service) but is
not on the caller's response-time path.

Implementation follows the HPC-python guides: every fixed-point step is one
set of NumPy array operations over ``(B, C, K)``; per-point Python overhead
is paid once per *sweep*, not once per network.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.util.errors import ConvergenceError, ValidationError
from repro.util.validation import check_positive, check_positive_int, require

__all__ = [
    "StationKind",
    "Station",
    "MvaInput",
    "MvaSolution",
    "MvaBatchInput",
    "MvaBatchSolution",
    "solve_batch",
    "solve_bard_schweitzer",
    "solve_exact_single_class",
]


class StationKind(enum.Enum):
    """Queueing behaviour of one MVA station."""

    QUEUE = "queue"  # single queueing resource (PS or FCFS — MVA treats alike)
    DELAY = "delay"  # infinite server


@dataclass(frozen=True, slots=True)
class Station:
    """One service centre in the closed network.

    ``capacity`` — when given — bounds the total number of customers the
    station can hold (servers plus waiting room, the ``K`` of M/M/c/K):
    offered open traffic beyond it is *lost*, not queued.  The plain
    :func:`solve_batch` core ignores the bound; the finite-capacity solve
    path (:func:`repro.lqn.loss.solve_batch_with_loss`) composes the
    closed-form loss terms around it.
    """

    name: str
    kind: StationKind = StationKind.QUEUE
    servers: int = 1
    waiting_only: bool = False
    capacity: int | None = None

    def __post_init__(self) -> None:
        check_positive_int(self.servers, "servers")
        if self.kind is StationKind.DELAY and self.waiting_only:
            raise ValidationError("a DELAY station has no waiting to count")
        if self.capacity is not None:
            check_positive_int(self.capacity, "capacity")
            if self.kind is StationKind.DELAY:
                raise ValidationError("a DELAY station has no queue to bound")
            require(
                self.capacity >= self.servers,
                "capacity must be >= servers (K >= c)",
            )


@dataclass
class MvaInput:
    """A closed multiclass network, optionally mixed with open classes.

    ``demands[c][k]`` is class ``c``'s visible per-cycle demand at station
    ``k`` (ms); ``hidden_demands`` likewise for load that is off the response
    path.  ``populations[c]`` may be zero (the class is simply absent).

    Open classes (section 8.1 of the paper: "some or all clients sending
    requests at a constant rate") are described by an arrival rate and a
    per-request demand vector; they are solved with the standard
    mixed-network reduction — open traffic inflates the closed classes'
    effective demands by ``1/(1−ρ_open)`` at each queueing station, and open
    response times then see the closed queue lengths.
    """

    stations: list[Station]
    class_names: list[str]
    populations: list[int]
    think_times_ms: list[float]
    demands: np.ndarray  # shape (C, K)
    hidden_demands: np.ndarray | None = None
    open_class_names: list[str] | None = None
    open_rates_per_ms: list[float] | None = None
    open_demands: np.ndarray | None = None  # shape (O, K)

    def __post_init__(self) -> None:
        require(len(self.class_names) == len(self.populations), "class/population mismatch")
        require(len(self.class_names) == len(self.think_times_ms), "class/think mismatch")
        self.demands = np.asarray(self.demands, dtype=float)
        require(
            self.demands.shape == (len(self.class_names), len(self.stations)),
            f"demands must be (C={len(self.class_names)}, K={len(self.stations)}), "
            f"got {self.demands.shape}",
        )
        if self.hidden_demands is None:
            self.hidden_demands = np.zeros_like(self.demands)
        else:
            self.hidden_demands = np.asarray(self.hidden_demands, dtype=float)
            require(
                self.hidden_demands.shape == self.demands.shape,
                "hidden_demands shape mismatch",
            )
        if (self.demands < 0).any() or (self.hidden_demands < 0).any():
            raise ValidationError("demands must be non-negative")
        for n in self.populations:
            if n < 0:
                raise ValidationError("populations must be >= 0")
        for z in self.think_times_ms:
            if z < 0:
                raise ValidationError("think times must be >= 0")

        if self.open_class_names is None:
            self.open_class_names = []
        if self.open_rates_per_ms is None:
            self.open_rates_per_ms = []
        require(
            len(self.open_class_names) == len(self.open_rates_per_ms),
            "open class/rate mismatch",
        )
        O = len(self.open_class_names)
        if self.open_demands is None:
            self.open_demands = np.zeros((O, len(self.stations)))
        else:
            self.open_demands = np.asarray(self.open_demands, dtype=float)
        require(
            self.open_demands.shape == (O, len(self.stations)),
            f"open_demands must be (O={O}, K={len(self.stations)}), "
            f"got {self.open_demands.shape}",
        )
        if (self.open_demands < 0).any():
            raise ValidationError("open demands must be non-negative")
        for rate in self.open_rates_per_ms:
            if rate < 0:
                raise ValidationError("open arrival rates must be >= 0")

    def open_utilisation_per_station(self) -> np.ndarray:
        """ρ_open per station (per server), from the open classes alone."""
        rates = np.asarray(self.open_rates_per_ms, dtype=float)
        servers = np.array([s.servers for s in self.stations], dtype=float)
        if rates.size == 0:
            return np.zeros(len(self.stations))
        return (rates[:, None] * self.open_demands).sum(axis=0) / servers

    def structure_signature(self) -> tuple:
        """A hashable key identifying the network *shape* of this input.

        Two inputs with equal signatures describe the same stations,
        closed classes and open classes (possibly with different demands,
        populations or rates) and may therefore be stacked into one
        :class:`MvaBatchInput`.
        """
        return (
            tuple(
                (s.name, s.kind, s.servers, s.waiting_only, s.capacity)
                for s in self.stations
            ),
            tuple(self.class_names),
            tuple(self.open_class_names or ()),
        )


@dataclass
class MvaSolution:
    """Per-class and per-station steady-state estimates."""

    class_names: list[str]
    station_names: list[str]
    throughput_per_ms: np.ndarray  # (C,) cycles per ms
    cycle_response_ms: np.ndarray  # (C,) response time per cycle (excl. think)
    queue_lengths: np.ndarray  # (C, K) mean customers (incl. in service)
    residence_ms: np.ndarray  # (C, K) counted residence time per cycle
    utilisation: np.ndarray  # (K,) per-server utilisation (DELAY: mean jobs)
    iterations: int = 0
    # Open-class estimates (mixed networks), keyed by open class name.
    open_response_ms: dict = field(default_factory=dict)
    # Finite-capacity (loss) estimates — zero / empty on the unbounded path.
    loss_probability: np.ndarray | None = None  # (K,) blocked fraction per station
    capacity_mean_in_system: np.ndarray | None = None  # (K,) closed-form L
    open_loss: dict = field(default_factory=dict)  # end-to-end loss per open class

    def throughput_per_s(self, class_name: str) -> float:
        """Class throughput in cycles (requests) per second."""
        return float(self.throughput_per_ms[self.class_names.index(class_name)] * 1000.0)

    def response_ms(self, class_name: str) -> float:
        """Class response time per cycle, excluding think time (ms)."""
        return float(self.cycle_response_ms[self.class_names.index(class_name)])

    def station_utilisation(self, station_name: str) -> float:
        """Per-server utilisation of one station."""
        return float(self.utilisation[self.station_names.index(station_name)])


@dataclass
class MvaBatchInput:
    """A *sweep* of closed multiclass networks sharing one structure.

    All ``B`` points share the same stations, closed-class names and
    open-class names; populations, think times, demands and open rates
    carry a leading batch axis.  Build one from per-point
    :class:`MvaInput` objects with :meth:`from_points` (the common
    path), or construct the stacked arrays directly.
    """

    stations: list[Station]
    class_names: list[str]
    populations: np.ndarray  # (B, C)
    think_times_ms: np.ndarray  # (B, C)
    demands: np.ndarray  # (B, C, K)
    hidden_demands: np.ndarray | None = None  # (B, C, K)
    open_class_names: list[str] | None = None
    open_rates_per_ms: np.ndarray | None = None  # (B, O)
    open_demands: np.ndarray | None = None  # (B, O, K)

    def __post_init__(self) -> None:
        C = len(self.class_names)
        K = len(self.stations)
        self.populations = np.asarray(self.populations, dtype=float)
        require(
            self.populations.ndim == 2 and self.populations.shape[1] == C,
            f"populations must be (B, C={C}), got {self.populations.shape}",
        )
        B = self.populations.shape[0]
        self.think_times_ms = np.asarray(self.think_times_ms, dtype=float)
        require(
            self.think_times_ms.shape == (B, C),
            f"think_times_ms must be (B={B}, C={C}), got {self.think_times_ms.shape}",
        )
        self.demands = np.asarray(self.demands, dtype=float)
        require(
            self.demands.shape == (B, C, K),
            f"demands must be (B={B}, C={C}, K={K}), got {self.demands.shape}",
        )
        if self.hidden_demands is None:
            self.hidden_demands = np.zeros_like(self.demands)
        else:
            self.hidden_demands = np.asarray(self.hidden_demands, dtype=float)
            require(
                self.hidden_demands.shape == self.demands.shape,
                "hidden_demands shape mismatch",
            )
        if (self.demands < 0).any() or (self.hidden_demands < 0).any():
            raise ValidationError("demands must be non-negative")
        if (self.populations < 0).any():
            raise ValidationError("populations must be >= 0")
        if (self.think_times_ms < 0).any():
            raise ValidationError("think times must be >= 0")

        if self.open_class_names is None:
            self.open_class_names = []
        O = len(self.open_class_names)
        if self.open_rates_per_ms is None:
            self.open_rates_per_ms = np.zeros((B, O))
        else:
            self.open_rates_per_ms = np.asarray(self.open_rates_per_ms, dtype=float)
        require(
            self.open_rates_per_ms.shape == (B, O),
            f"open_rates_per_ms must be (B={B}, O={O}), "
            f"got {self.open_rates_per_ms.shape}",
        )
        if self.open_demands is None:
            self.open_demands = np.zeros((B, O, K))
        else:
            self.open_demands = np.asarray(self.open_demands, dtype=float)
        require(
            self.open_demands.shape == (B, O, K),
            f"open_demands must be (B={B}, O={O}, K={K}), got {self.open_demands.shape}",
        )
        if (self.open_demands < 0).any():
            raise ValidationError("open demands must be non-negative")
        if (self.open_rates_per_ms < 0).any():
            raise ValidationError("open arrival rates must be >= 0")

    @property
    def batch_size(self) -> int:
        """Number of sweep points in the batch."""
        return int(self.populations.shape[0])

    @classmethod
    def from_points(cls, points: Sequence[MvaInput]) -> "MvaBatchInput":
        """Stack per-point inputs (identical structure required) into a batch."""
        require(len(points) > 0, "need at least one point to batch")
        first = points[0]
        signature = first.structure_signature()
        for b, point in enumerate(points[1:], start=1):
            if point.structure_signature() != signature:
                raise ValidationError(
                    f"batch point {b} has a different network structure than "
                    "point 0; group points by MvaInput.structure_signature() "
                    "before stacking"
                )
        return cls(
            stations=list(first.stations),
            class_names=list(first.class_names),
            populations=np.array([p.populations for p in points], dtype=float),
            think_times_ms=np.array([p.think_times_ms for p in points], dtype=float),
            demands=np.stack([p.demands for p in points]),
            hidden_demands=np.stack([p.hidden_demands for p in points]),
            open_class_names=list(first.open_class_names or ()),
            open_rates_per_ms=np.array(
                [p.open_rates_per_ms for p in points], dtype=float
            ).reshape(len(points), len(first.open_class_names or ())),
            open_demands=np.stack([p.open_demands for p in points]),
        )

    def subset(self, indices: Sequence[int] | np.ndarray) -> "MvaBatchInput":
        """A new batch holding only the given points (structure shared).

        Re-validation is skipped — every array is a row-subset of this
        already-validated batch, and the staged solver subsets once per
        ladder stage.
        """
        idx = np.asarray(indices, dtype=int)
        clone = object.__new__(MvaBatchInput)
        clone.stations = self.stations
        clone.class_names = self.class_names
        clone.populations = self.populations[idx]
        clone.think_times_ms = self.think_times_ms[idx]
        clone.demands = self.demands[idx]
        clone.hidden_demands = self.hidden_demands[idx]
        clone.open_class_names = self.open_class_names
        clone.open_rates_per_ms = self.open_rates_per_ms[idx]
        clone.open_demands = self.open_demands[idx]
        return clone

    def open_utilisation_per_station(self) -> np.ndarray:
        """ρ_open per point and station (per server), shape ``(B, K)``."""
        servers = np.array([s.servers for s in self.stations], dtype=float)
        if self.open_rates_per_ms.size == 0:
            return np.zeros((self.batch_size, len(self.stations)))
        return (self.open_rates_per_ms[:, :, None] * self.open_demands).sum(
            axis=1
        ) / servers


@dataclass
class MvaBatchSolution:
    """Steady-state estimates for every point of one solved sweep."""

    class_names: list[str]
    station_names: list[str]
    throughput_per_ms: np.ndarray  # (B, C)
    cycle_response_ms: np.ndarray  # (B, C)
    queue_lengths: np.ndarray  # (B, C, K)
    residence_ms: np.ndarray  # (B, C, K)
    utilisation: np.ndarray  # (B, K)
    iterations: np.ndarray  # (B,) fixed-point steps until each point froze
    open_response_ms: list[dict] = field(default_factory=list)  # one dict per point
    # Finite-capacity (loss) estimates, filled by the loss solve path
    # (None / empty when plain solve_batch produced the solution).
    loss_probability: np.ndarray | None = None  # (B, K) blocked fraction
    capacity_mean_in_system: np.ndarray | None = None  # (B, K) closed-form L
    open_loss: list[dict] = field(default_factory=list)  # one dict per point

    @property
    def batch_size(self) -> int:
        """Number of sweep points in the solution."""
        return int(self.throughput_per_ms.shape[0])

    def solution(self, b: int) -> MvaSolution:
        """Extract point ``b`` as a single-network :class:`MvaSolution`."""
        return MvaSolution(
            class_names=list(self.class_names),
            station_names=list(self.station_names),
            throughput_per_ms=self.throughput_per_ms[b].copy(),
            cycle_response_ms=self.cycle_response_ms[b].copy(),
            queue_lengths=self.queue_lengths[b].copy(),
            residence_ms=self.residence_ms[b].copy(),
            utilisation=self.utilisation[b].copy(),
            iterations=int(self.iterations[b]),
            open_response_ms=dict(self.open_response_ms[b]),
            loss_probability=(
                self.loss_probability[b].copy()
                if self.loss_probability is not None
                else None
            ),
            capacity_mean_in_system=(
                self.capacity_mean_in_system[b].copy()
                if self.capacity_mean_in_system is not None
                else None
            ),
            open_loss=dict(self.open_loss[b]) if self.open_loss else {},
        )


def _initial_queue_lengths(
    D_all: np.ndarray, N: np.ndarray, active: np.ndarray
) -> np.ndarray:
    """Default iterate: spread each class's population over visited stations."""
    visits = (D_all > 0).astype(float)
    visit_counts = np.maximum(visits.sum(axis=2, keepdims=True), 1.0)
    return np.where(active[:, :, None], N[:, :, None] / visit_counts * visits, 0.0)


def solve_batch(
    inp: MvaBatchInput,
    *,
    tol: float = 1e-10,
    max_iterations: int = 100_000,
    damping: float = 0.5,
    initial_queue_lengths: np.ndarray | None = None,
    iteration_hook: Callable[[int, float, int], None] | None = None,
) -> MvaBatchSolution:
    """Solve a whole sweep of closed multiclass networks in one fixed point.

    This is the repository's only Bard–Schweitzer implementation: the
    fixed point iterates per-class queue lengths ``Q: (B, C, K)`` with
    ``damping`` (new = damping·update + (1−damping)·old) until every
    point's largest queue-length change is below ``tol``.  Points
    converge independently: once a point's residual drops under ``tol``
    its iterate is **frozen** — never touched again — so a point's
    trajectory (and its returned arrays, bit for bit) is identical to
    solving it alone, while stragglers keep iterating.  When fewer than
    half the points remain active the working set is compacted so late
    stragglers don't pay for the whole batch.

    ``initial_queue_lengths`` (``(B, C, K)``) warm-starts the iterate —
    pass a neighbouring solved point's ``Q`` (rescaled to the new
    populations) to collapse iteration counts on smooth sweeps.  Entries
    for inactive classes are forced to zero.

    ``iteration_hook(iteration, delta, n_active)`` — when given — is
    called after every fixed-point step with the largest residual among
    the points that were still active and the count of such points; the
    layered solver uses it to stream sampled convergence-progress trace
    events.  Leave it ``None`` on hot paths: the ``None`` check is the
    only cost then.
    """
    check_positive(tol, "tol")
    check_positive_int(max_iterations, "max_iterations")
    require(0.0 < damping <= 1.0, "damping must be in (0, 1]")

    B = inp.batch_size
    C = len(inp.class_names)
    K = len(inp.stations)
    N = inp.populations  # (B, C)
    Z = inp.think_times_ms  # (B, C)

    servers = np.array([s.servers for s in inp.stations], dtype=float)  # (K,)
    is_delay = np.array([s.kind is StationKind.DELAY for s in inp.stations])
    waiting_only = np.array([s.waiting_only for s in inp.stations])
    station_names = [s.name for s in inp.stations]

    # Mixed-network reduction: open traffic permanently occupies rho_open of
    # each queueing station, so closed customers effectively see slower
    # servers (demand inflated by 1/(1-rho_open)).  Purely closed networks
    # (the common case — the staged solver calls here once per ladder stage)
    # skip the reduction entirely; the inflation would be exactly 1.0.
    if inp.open_class_names:
        rho_open = inp.open_utilisation_per_station()  # (B, K)
        queue_saturated = (~is_delay)[None, :] & (rho_open >= 1.0)
        if queue_saturated.any():
            bad = sorted(
                {station_names[k] for k in np.flatnonzero(queue_saturated.any(axis=0))}
            )
            points = [int(b) for b in np.flatnonzero(queue_saturated.any(axis=1))]
            raise ValidationError(
                f"open arrival load saturates station(s) {bad}: the mixed network "
                f"is unstable (batch point(s) {points})"
                if B > 1
                else f"open arrival load saturates station(s) {bad}: the mixed "
                "network is unstable"
            )
        inflation = np.where(is_delay[None, :], 1.0, 1.0 / (1.0 - rho_open))  # (B, K)
        D = inp.demands * inflation[:, None, :]  # (B, C, K)
        H = inp.hidden_demands * inflation[:, None, :]  # (B, C, K)
        open_work = rho_open * servers  # (B, K): total open work per station
    else:
        rho_open = None
        D = inp.demands
        H = inp.hidden_demands
        open_work = 0.0

    def open_responses(q_closed_total: np.ndarray) -> list[dict]:
        """Open-class response times per point, given closed queues (B, K)."""
        per_point: list[dict] = [{} for _ in range(B)]
        for o, name in enumerate(inp.open_class_names):
            demand = inp.open_demands[:, o, :]  # (B, K)
            r = np.where(
                is_delay[None, :],
                demand,
                demand
                * (1.0 + q_closed_total / servers)
                / np.maximum(1.0 - rho_open, 1e-12),
            )
            totals = r.sum(axis=1)
            for b in range(B):
                per_point[b][name] = float(totals[b])
        return per_point

    active_classes = N > 0  # (B, C)
    # Points with no active closed class (or no stations at all) are closed
    # form: zero closed flows, open work only.  They never enter the loop.
    trivial = (~active_classes.any(axis=1)) | (K == 0)  # (B,)

    # Frozen (output) state, filled in as points converge.
    Q_out = np.zeros((B, C, K))
    X_out = np.zeros((B, C))
    R_total_out = np.zeros((B, C))
    R_vis_out = np.zeros((B, C, K))
    iterations_out = np.zeros(B, dtype=int)

    live = np.flatnonzero(~trivial)  # original indices of points still iterating
    if live.size:
        # Working copies restricted to the live points; compacted as points
        # freeze.  All arithmetic below is elementwise or reduces over the
        # class/station axes, so a point's values never depend on its batch
        # neighbours — freezing and compaction are bit-exact.
        n = N[live]
        z = Z[live]
        d = D[live]
        h = H[live]
        act = active_classes[live]
        safe_n = np.where(act, n, 1.0)
        if initial_queue_lengths is not None:
            seed = np.asarray(initial_queue_lengths, dtype=float)
            require(
                seed.shape == (B, C, K),
                f"initial_queue_lengths must be (B={B}, C={C}, K={K}), "
                f"got {seed.shape}",
            )
            Q = np.where(act[:, :, None], np.maximum(seed[live], 0.0), 0.0)
        else:
            Q = _initial_queue_lengths(d + h, n, act)

        delay_row = is_delay[None, None, :]
        not_delay_row = (~is_delay)[None, :]
        counted_off = np.where(waiting_only[None, None, :], d, 0.0)
        # Hidden demand is rare (async calls / second phases): when a batch
        # has none, skip its arrays entirely.  Bitwise safe — ``R_hid`` would
        # be exactly zero and ``x + 0.0 == x`` for the non-negative residence
        # values here.
        has_hidden = bool(h.any())

        errstate = np.errstate(divide="ignore", invalid="ignore")
        errstate.__enter__()
        try:
            iterations = 0
            for iterations in range(1, max_iterations + 1):
                Q_total = Q.sum(axis=1)  # (b, K)
                # Arrival theorem approximation: a class-c customer arriving
                # sees the network without one of its own class (scaled by
                # (Nc-1)/Nc).
                A = Q_total[:, None, :] - Q / safe_n[:, :, None]
                A = np.maximum(A, 0.0)

                queue_factor = 1.0 + A / servers
                R_vis = np.where(delay_row, d, d * queue_factor)

                R_counted = R_vis - counted_off
                R_counted_total = R_counted.sum(axis=2)  # (b, C)

                X = np.where(act, n / (z + R_counted_total), 0.0)

                if has_hidden:
                    R_hid = np.where(delay_row, h, h * queue_factor)
                    # A closed class's *visible* load is self-throttling, but
                    # its hidden (asynchronous / second-phase) work is not: if
                    # it alone exceeds a station's capacity there is no steady
                    # state — fail loudly instead of diverging.
                    hidden_util = (X[:, :, None] * h).sum(axis=1) / servers
                    overloaded = not_delay_row & (hidden_util > 1.0 + 1e-9)
                    if overloaded.any():
                        bad = sorted(
                            {
                                station_names[k]
                                for k in np.flatnonzero(overloaded.any(axis=0))
                            }
                        )
                        raise ValidationError(
                            f"asynchronous/second-phase load exceeds capacity "
                            f"at station(s) {bad}: the model has no steady state"
                        )
                    Q_update = X[:, :, None] * (R_vis + R_hid)
                else:
                    Q_update = X[:, :, None] * R_vis
                Q_new = damping * Q_update + (1.0 - damping) * Q
                deltas = np.abs(Q_new - Q).max(axis=(1, 2))  # (b,)
                Q = Q_new

                frozen_now = deltas < tol  # (b,)
                if iteration_hook is not None:
                    iteration_hook(iterations, float(deltas.max()), int(live.size))
                if frozen_now.any():
                    done = live[frozen_now]
                    Q_out[done] = Q[frozen_now]
                    X_out[done] = X[frozen_now]
                    R_total_out[done] = R_counted_total[frozen_now]
                    R_vis_out[done] = R_vis[frozen_now]
                    iterations_out[done] = iterations
                    keep = ~frozen_now
                    live = live[keep]
                    if live.size == 0:
                        break
                    # Compact the working set: frozen points must leave it
                    # (their iterates stop here — that is what makes a point's
                    # trajectory bit-identical to a solo solve), and the
                    # stragglers stop paying batch-width cost for them.
                    n, z, d, h = n[keep], z[keep], d[keep], h[keep]
                    act, safe_n, Q = act[keep], safe_n[keep], Q[keep]
                    counted_off = counted_off[keep]
            else:
                raise ConvergenceError(
                    "Bard-Schweitzer AMVA did not converge "
                    f"({live.size} of {B} point(s) still above tol)",
                    iterations=max_iterations,
                    residual=float(deltas.max()),
                )
        finally:
            errstate.__exit__(None, None, None)

    # Utilisation from the *actual* work (un-inflated demands) plus the open
    # classes' offered load.
    closed_work = (X_out[:, :, None] * (inp.demands + inp.hidden_demands)).sum(axis=1)
    total_work = closed_work + open_work
    if K:
        util = np.where(is_delay[None, :], total_work, total_work / servers)
    else:
        util = np.zeros((B, 0))

    return MvaBatchSolution(
        class_names=list(inp.class_names),
        station_names=station_names,
        throughput_per_ms=X_out,
        cycle_response_ms=R_total_out,
        queue_lengths=Q_out,
        residence_ms=R_vis_out,
        utilisation=util,
        iterations=iterations_out,
        open_response_ms=open_responses(Q_out.sum(axis=1)),
    )


def solve_bard_schweitzer(
    inp: MvaInput,
    *,
    tol: float = 1e-10,
    max_iterations: int = 100_000,
    damping: float = 0.5,
    iteration_hook: Callable[[int, float], None] | None = None,
) -> MvaSolution:
    """Solve one closed multiclass network by Bard–Schweitzer AMVA.

    A batch of one: the input is stacked into a :class:`MvaBatchInput`
    and handed to :func:`solve_batch`, whose per-point freezing makes
    this bit-for-bit the dedicated single-network solver it replaced.

    ``iteration_hook(iteration, delta)`` — when given — is called after
    every fixed-point step with the queue-length residual; the layered
    solver uses it to stream convergence-progress trace events.  Leave it
    ``None`` on hot paths: the ``None`` check is the only cost then.
    """
    hook: Callable[[int, float, int], None] | None = None
    if iteration_hook is not None:
        single_hook = iteration_hook

        def hook(iteration: int, delta: float, _n_active: int) -> None:
            """Adapt the batch hook signature to the single-point one."""
            single_hook(iteration, delta)

    batch = solve_batch(
        MvaBatchInput.from_points([inp]),
        tol=tol,
        max_iterations=max_iterations,
        damping=damping,
        iteration_hook=hook,
    )
    return batch.solution(0)


@dataclass
class _ExactStation:
    demand_ms: float
    kind: StationKind = StationKind.QUEUE
    servers: int = 1
    # marginal queue-length probabilities p(j | n), updated along the recursion
    p: list[float] = field(default_factory=lambda: [1.0])


def solve_exact_single_class(
    stations: list[Station],
    demands_ms: list[float],
    population: int,
    think_time_ms: float = 0.0,
) -> MvaSolution:
    """Exact MVA for one closed class (load-dependent multi-servers included).

    Used as the ground truth for validating :func:`solve_bard_schweitzer` in
    the test suite and the solver-ablation benchmark.
    """
    require(len(stations) == len(demands_ms), "stations/demands length mismatch")
    require(population >= 0, "population must be >= 0")
    require(think_time_ms >= 0, "think time must be >= 0")
    require(not any(s.waiting_only for s in stations), "exact MVA has no surrogate stations")

    exact = [
        _ExactStation(demand_ms=float(d), kind=s.kind, servers=s.servers)
        for s, d in zip(stations, demands_ms)
    ]
    K = len(exact)

    Q = np.zeros(K)
    X = 0.0
    R = np.zeros(K)
    for n in range(1, population + 1):
        for k, st in enumerate(exact):
            if st.kind is StationKind.DELAY:
                R[k] = st.demand_ms
            elif st.servers == 1:
                R[k] = st.demand_ms * (1.0 + Q[k])
            else:
                m = st.servers
                # Reiser's exact multiserver residence using marginal
                # probabilities from the (n-1)-customer network.
                idle_weight = sum(
                    (m - 1 - j) * (st.p[j] if j < len(st.p) else 0.0)
                    for j in range(0, m - 1)
                )
                R[k] = (st.demand_ms / m) * (1.0 + Q[k] + idle_weight)
        total_r = float(R.sum())
        X = n / (think_time_ms + total_r) if (think_time_ms + total_r) > 0 else 0.0
        Q = X * R
        for k, st in enumerate(exact):
            if st.kind is StationKind.QUEUE and st.servers > 1:
                m = st.servers
                new_p = [0.0] * (n + 1)
                for j in range(1, n + 1):
                    prev = st.p[j - 1] if j - 1 < len(st.p) else 0.0
                    new_p[j] = (X * st.demand_ms / min(j, m)) * prev
                new_p[0] = max(0.0, 1.0 - sum(new_p[1:]))
                st.p = new_p

    util = np.array(
        [
            X * st.demand_ms / (st.servers if st.kind is StationKind.QUEUE else 1.0)
            for st in exact
        ]
    )
    return MvaSolution(
        class_names=["class0"],
        station_names=[s.name for s in stations],
        throughput_per_ms=np.array([X]),
        cycle_response_ms=np.array([float(R.sum()) if population > 0 else 0.0]),
        queue_lengths=Q[None, :].copy(),
        residence_ms=R[None, :].copy(),
        utilisation=util,
        iterations=population,
    )
