"""Mean Value Analysis cores for closed multiclass queueing networks.

Two solvers:

* :func:`solve_exact_single_class` — Reiser/Lavenberg exact MVA for a single
  closed class, including load-dependent multi-server stations.  Used for
  validating the approximate core and in unit tests against closed-form
  results (machine-repairman, M/M/1-with-think-time).
* :func:`solve_bard_schweitzer` — multiclass Bard–Schweitzer approximate MVA
  (fixed point on per-class queue lengths), the engine inside the layered
  solver.  Multi-server stations use a scaled-queue approximation
  (``R = D + (D/m)·A``), and *surrogate software stations* can be marked
  ``waiting_only`` so only their queueing delay — not their (already counted
  elsewhere) service — contributes to cycle response times.

Demands are expressed **per cycle** of each class (visit ratio × mean service
time, in ms).  A class may additionally place *hidden* demand on a station:
work that loads the station (asynchronous calls, second-phase service) but is
not on the caller's response-time path.

Implementation follows the HPC-python guides: the Bard–Schweitzer fixed point
is fully vectorised over the (class × station) matrices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.util.errors import ConvergenceError, ValidationError
from repro.util.validation import check_positive, check_positive_int, require

__all__ = [
    "StationKind",
    "Station",
    "MvaInput",
    "MvaSolution",
    "solve_bard_schweitzer",
    "solve_exact_single_class",
]


class StationKind(enum.Enum):
    """Queueing behaviour of one MVA station."""

    QUEUE = "queue"  # single queueing resource (PS or FCFS — MVA treats alike)
    DELAY = "delay"  # infinite server


@dataclass(frozen=True, slots=True)
class Station:
    """One service centre in the closed network."""

    name: str
    kind: StationKind = StationKind.QUEUE
    servers: int = 1
    waiting_only: bool = False

    def __post_init__(self) -> None:
        check_positive_int(self.servers, "servers")
        if self.kind is StationKind.DELAY and self.waiting_only:
            raise ValidationError("a DELAY station has no waiting to count")


@dataclass
class MvaInput:
    """A closed multiclass network, optionally mixed with open classes.

    ``demands[c][k]`` is class ``c``'s visible per-cycle demand at station
    ``k`` (ms); ``hidden_demands`` likewise for load that is off the response
    path.  ``populations[c]`` may be zero (the class is simply absent).

    Open classes (section 8.1 of the paper: "some or all clients sending
    requests at a constant rate") are described by an arrival rate and a
    per-request demand vector; they are solved with the standard
    mixed-network reduction — open traffic inflates the closed classes'
    effective demands by ``1/(1−ρ_open)`` at each queueing station, and open
    response times then see the closed queue lengths.
    """

    stations: list[Station]
    class_names: list[str]
    populations: list[int]
    think_times_ms: list[float]
    demands: np.ndarray  # shape (C, K)
    hidden_demands: np.ndarray | None = None
    open_class_names: list[str] | None = None
    open_rates_per_ms: list[float] | None = None
    open_demands: np.ndarray | None = None  # shape (O, K)

    def __post_init__(self) -> None:
        require(len(self.class_names) == len(self.populations), "class/population mismatch")
        require(len(self.class_names) == len(self.think_times_ms), "class/think mismatch")
        self.demands = np.asarray(self.demands, dtype=float)
        require(
            self.demands.shape == (len(self.class_names), len(self.stations)),
            f"demands must be (C={len(self.class_names)}, K={len(self.stations)}), "
            f"got {self.demands.shape}",
        )
        if self.hidden_demands is None:
            self.hidden_demands = np.zeros_like(self.demands)
        else:
            self.hidden_demands = np.asarray(self.hidden_demands, dtype=float)
            require(
                self.hidden_demands.shape == self.demands.shape,
                "hidden_demands shape mismatch",
            )
        if (self.demands < 0).any() or (self.hidden_demands < 0).any():
            raise ValidationError("demands must be non-negative")
        for n in self.populations:
            if n < 0:
                raise ValidationError("populations must be >= 0")
        for z in self.think_times_ms:
            if z < 0:
                raise ValidationError("think times must be >= 0")

        if self.open_class_names is None:
            self.open_class_names = []
        if self.open_rates_per_ms is None:
            self.open_rates_per_ms = []
        require(
            len(self.open_class_names) == len(self.open_rates_per_ms),
            "open class/rate mismatch",
        )
        O = len(self.open_class_names)
        if self.open_demands is None:
            self.open_demands = np.zeros((O, len(self.stations)))
        else:
            self.open_demands = np.asarray(self.open_demands, dtype=float)
        require(
            self.open_demands.shape == (O, len(self.stations)),
            f"open_demands must be (O={O}, K={len(self.stations)}), "
            f"got {self.open_demands.shape}",
        )
        if (self.open_demands < 0).any():
            raise ValidationError("open demands must be non-negative")
        for rate in self.open_rates_per_ms:
            if rate < 0:
                raise ValidationError("open arrival rates must be >= 0")

    def open_utilisation_per_station(self) -> np.ndarray:
        """ρ_open per station (per server), from the open classes alone."""
        rates = np.asarray(self.open_rates_per_ms, dtype=float)
        servers = np.array([s.servers for s in self.stations], dtype=float)
        if rates.size == 0:
            return np.zeros(len(self.stations))
        return (rates[:, None] * self.open_demands).sum(axis=0) / servers


@dataclass
class MvaSolution:
    """Per-class and per-station steady-state estimates."""

    class_names: list[str]
    station_names: list[str]
    throughput_per_ms: np.ndarray  # (C,) cycles per ms
    cycle_response_ms: np.ndarray  # (C,) response time per cycle (excl. think)
    queue_lengths: np.ndarray  # (C, K) mean customers (incl. in service)
    residence_ms: np.ndarray  # (C, K) counted residence time per cycle
    utilisation: np.ndarray  # (K,) per-server utilisation (DELAY: mean jobs)
    iterations: int = 0
    # Open-class estimates (mixed networks), keyed by open class name.
    open_response_ms: dict = field(default_factory=dict)

    def throughput_per_s(self, class_name: str) -> float:
        """Class throughput in cycles (requests) per second."""
        return float(self.throughput_per_ms[self.class_names.index(class_name)] * 1000.0)

    def response_ms(self, class_name: str) -> float:
        """Class response time per cycle, excluding think time (ms)."""
        return float(self.cycle_response_ms[self.class_names.index(class_name)])

    def station_utilisation(self, station_name: str) -> float:
        """Per-server utilisation of one station."""
        return float(self.utilisation[self.station_names.index(station_name)])


def solve_bard_schweitzer(
    inp: MvaInput,
    *,
    tol: float = 1e-10,
    max_iterations: int = 100_000,
    damping: float = 0.5,
    iteration_hook: Callable[[int, float], None] | None = None,
) -> MvaSolution:
    """Solve a closed multiclass network by Bard–Schweitzer AMVA.

    The fixed point iterates per-class queue lengths with ``damping`` (new =
    damping·update + (1−damping)·old) until the largest queue-length change
    is below ``tol``.

    ``iteration_hook(iteration, delta)`` — when given — is called after
    every fixed-point step with the queue-length residual; the layered
    solver uses it to stream convergence-progress trace events.  Leave it
    ``None`` on hot paths: the ``None`` check is the only cost then.
    """
    check_positive(tol, "tol")
    check_positive_int(max_iterations, "max_iterations")
    require(0.0 < damping <= 1.0, "damping must be in (0, 1]")

    C = len(inp.class_names)
    K = len(inp.stations)
    N = np.asarray(inp.populations, dtype=float)  # (C,)
    Z = np.asarray(inp.think_times_ms, dtype=float)  # (C,)

    servers = np.array([s.servers for s in inp.stations], dtype=float)  # (K,)
    is_delay = np.array([s.kind is StationKind.DELAY for s in inp.stations])
    waiting_only = np.array([s.waiting_only for s in inp.stations])

    # Mixed-network reduction: open traffic permanently occupies rho_open of
    # each queueing station, so closed customers effectively see slower
    # servers (demand inflated by 1/(1-rho_open)).
    rho_open = inp.open_utilisation_per_station()  # (K,)
    queue_saturated = (~is_delay) & (rho_open >= 1.0)
    if queue_saturated.any():
        bad = [inp.stations[k].name for k in np.flatnonzero(queue_saturated)]
        raise ValidationError(
            f"open arrival load saturates station(s) {bad}: the mixed network "
            "is unstable"
        )
    inflation = np.where(is_delay, 1.0, 1.0 / (1.0 - rho_open))
    D = inp.demands * inflation[None, :]  # (C, K)
    H = inp.hidden_demands * inflation[None, :]  # (C, K)
    D_all = D + H

    def open_metrics(q_closed_total: np.ndarray) -> tuple[dict, np.ndarray]:
        """Open-class response times and their utilisation contribution."""
        responses: dict = {}
        for o, name in enumerate(inp.open_class_names):
            demand = inp.open_demands[o]
            r = np.where(
                is_delay,
                demand,
                demand * (1.0 + q_closed_total / servers) / np.maximum(1.0 - rho_open, 1e-12),
            )
            responses[name] = float(r.sum())
        return responses, rho_open * servers  # total open work per station

    active = N > 0
    n_active = active.sum()
    if n_active == 0 or K == 0:
        open_responses, open_work = open_metrics(np.zeros(K))
        util = np.where(is_delay, open_work, open_work / servers) if K else np.zeros(K)
        return MvaSolution(
            class_names=list(inp.class_names),
            station_names=[s.name for s in inp.stations],
            throughput_per_ms=np.zeros(C),
            cycle_response_ms=np.zeros(C),
            queue_lengths=np.zeros((C, K)),
            residence_ms=np.zeros((C, K)),
            utilisation=util,
            iterations=0,
            open_response_ms=open_responses,
        )

    # Initial guess: spread each class's population evenly over the stations
    # it actually visits.
    visits = (D_all > 0).astype(float)
    visit_counts = np.maximum(visits.sum(axis=1, keepdims=True), 1.0)
    Q = np.where(active[:, None], N[:, None] / visit_counts * visits, 0.0)

    safe_N = np.where(active, N, 1.0)

    def residence(demand: np.ndarray, A: np.ndarray) -> np.ndarray:
        """Full residence time per cycle for ``demand`` given arrival queue A."""
        R = np.empty_like(demand)
        # Delay stations: no queueing.
        R[:, is_delay] = demand[:, is_delay]
        q_mask = ~is_delay
        m = servers[q_mask]
        R[:, q_mask] = demand[:, q_mask] * (1.0 + A[:, q_mask] / m)
        return R

    X = np.zeros(C)
    R_counted_total = np.zeros(C)
    R_vis = np.zeros((C, K))
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        Q_total = Q.sum(axis=0)  # (K,)
        # Arrival theorem approximation: a class-c customer arriving sees the
        # network without one of its own class (scaled by (Nc-1)/Nc).
        A = Q_total[None, :] - Q / safe_N[:, None]
        A = np.maximum(A, 0.0)

        R_vis = residence(D, A)
        R_hid = residence(H, A)

        R_counted = R_vis.copy()
        R_counted[:, waiting_only] -= D[:, waiting_only]
        R_counted_total = R_counted.sum(axis=1)

        with np.errstate(divide="ignore", invalid="ignore"):
            X = np.where(active, N / (Z + R_counted_total), 0.0)

        # A closed class's *visible* load is self-throttling, but its hidden
        # (asynchronous / second-phase) work is not: if it alone exceeds a
        # station's capacity there is no steady state — fail loudly instead
        # of diverging.
        hidden_util = (X[:, None] * H).sum(axis=0) / servers
        overloaded = (~is_delay) & (hidden_util > 1.0 + 1e-9)
        if overloaded.any():
            bad = [inp.stations[k].name for k in np.flatnonzero(overloaded)]
            raise ValidationError(
                f"asynchronous/second-phase load exceeds capacity at station(s) "
                f"{bad}: the model has no steady state"
            )

        Q_update = X[:, None] * (R_vis + R_hid)
        Q_new = damping * Q_update + (1.0 - damping) * Q
        delta = float(np.max(np.abs(Q_new - Q))) if Q.size else 0.0
        Q = Q_new
        if iteration_hook is not None:
            iteration_hook(iterations, delta)
        if delta < tol:
            break
    else:  # pragma: no cover - defensive
        raise ConvergenceError(
            "Bard-Schweitzer AMVA did not converge",
            iterations=max_iterations,
            residual=float(delta),
        )

    # Utilisation from the *actual* work (un-inflated demands) plus the open
    # classes' offered load.
    closed_work = (X[:, None] * (inp.demands + inp.hidden_demands)).sum(axis=0)
    open_responses, open_work = open_metrics(Q.sum(axis=0))
    total_work = closed_work + open_work
    util = np.where(is_delay, total_work, total_work / servers)

    return MvaSolution(
        class_names=list(inp.class_names),
        station_names=[s.name for s in inp.stations],
        throughput_per_ms=X,
        cycle_response_ms=R_counted_total,
        queue_lengths=Q,
        residence_ms=R_vis,
        utilisation=util,
        iterations=iterations,
        open_response_ms=open_responses,
    )


@dataclass
class _ExactStation:
    demand_ms: float
    kind: StationKind = StationKind.QUEUE
    servers: int = 1
    # marginal queue-length probabilities p(j | n), updated along the recursion
    p: list[float] = field(default_factory=lambda: [1.0])


def solve_exact_single_class(
    stations: list[Station],
    demands_ms: list[float],
    population: int,
    think_time_ms: float = 0.0,
) -> MvaSolution:
    """Exact MVA for one closed class (load-dependent multi-servers included).

    Used as the ground truth for validating :func:`solve_bard_schweitzer` in
    the test suite and the solver-ablation benchmark.
    """
    require(len(stations) == len(demands_ms), "stations/demands length mismatch")
    require(population >= 0, "population must be >= 0")
    require(think_time_ms >= 0, "think time must be >= 0")
    require(not any(s.waiting_only for s in stations), "exact MVA has no surrogate stations")

    exact = [
        _ExactStation(demand_ms=float(d), kind=s.kind, servers=s.servers)
        for s, d in zip(stations, demands_ms)
    ]
    K = len(exact)

    Q = np.zeros(K)
    X = 0.0
    R = np.zeros(K)
    for n in range(1, population + 1):
        for k, st in enumerate(exact):
            if st.kind is StationKind.DELAY:
                R[k] = st.demand_ms
            elif st.servers == 1:
                R[k] = st.demand_ms * (1.0 + Q[k])
            else:
                m = st.servers
                # Reiser's exact multiserver residence using marginal
                # probabilities from the (n-1)-customer network.
                idle_weight = sum(
                    (m - 1 - j) * (st.p[j] if j < len(st.p) else 0.0)
                    for j in range(0, m - 1)
                )
                R[k] = (st.demand_ms / m) * (1.0 + Q[k] + idle_weight)
        total_r = float(R.sum())
        X = n / (think_time_ms + total_r) if (think_time_ms + total_r) > 0 else 0.0
        Q = X * R
        for k, st in enumerate(exact):
            if st.kind is StationKind.QUEUE and st.servers > 1:
                m = st.servers
                new_p = [0.0] * (n + 1)
                for j in range(1, n + 1):
                    prev = st.p[j - 1] if j - 1 < len(st.p) else 0.0
                    new_p[j] = (X * st.demand_ms / min(j, m)) * prev
                new_p[0] = max(0.0, 1.0 - sum(new_p[1:]))
                st.p = new_p

    util = np.array(
        [
            X * st.demand_ms / (st.servers if st.kind is StationKind.QUEUE else 1.0)
            for st in exact
        ]
    )
    return MvaSolution(
        class_names=["class0"],
        station_names=[s.name for s in stations],
        throughput_per_ms=np.array([X]),
        cycle_response_ms=np.array([float(R.sum()) if population > 0 else 0.0]),
        queue_lengths=Q[None, :].copy(),
        residence_ms=R[None, :].copy(),
        utilisation=util,
        iterations=population,
    )
