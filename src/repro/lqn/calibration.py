"""Per-request-type calibration of the layered queuing model.

Section 5 of the paper: "The per-request type parameters can be calibrated by
taking an established server offline and sending a workload consisting only
of that request type; the parameters are calculated from the resulting
throughput (in requests/second) and the CPU usage of each server."

This module performs exactly that procedure against the simulated testbed:
one run per request type with a single-type workload, then

* application CPU demand  = app CPU utilisation / throughput
* database calls/request  = database completions / application completions
* database CPU per call   = db CPU utilisation / (throughput × calls)
* disk time per call      = disk utilisation / (throughput × calls)

Demands are normalised to the calibration server's reference speed so the
same parameters can predict any architecture via a speed ratio.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.lqn.builder import RequestTypeParameters, TradeModelParameters
from repro.servers.architecture import ServerArchitecture
from repro.servers.catalogue import DB_SERVER
from repro.simulation.system import (
    DEFAULT_NETWORK_LATENCY_MS,
    SimulationConfig,
    simulate_deployment,
)
from repro.util.errors import CalibrationError
from repro.util.units import MS_PER_S
from repro.util.validation import check_positive_int
from repro.workload.service_class import ServiceClass
from repro.workload.trade import browse_class, buy_class

__all__ = ["CalibratedRequestType", "LqnCalibration", "calibrate_from_simulator"]


@dataclass(frozen=True, slots=True)
class CalibratedRequestType:
    """One calibrated request type plus the measurements it came from."""

    parameters: RequestTypeParameters
    measured_throughput_req_per_s: float
    measured_app_utilisation: float
    measured_db_utilisation: float
    measured_disk_utilisation: float
    clients_used: int


@dataclass
class LqnCalibration:
    """The calibrated layered queuing parameter set (the paper's table 2)."""

    reference_server: str
    reference_speed: float
    request_types: dict[str, CalibratedRequestType] = field(default_factory=dict)
    calibration_time_s: float = 0.0

    def to_model_parameters(self, *, network_delay_ms: float = 0.0) -> TradeModelParameters:
        """Package as :class:`TradeModelParameters` for the model builder."""
        return TradeModelParameters(
            request_types={
                name: crt.parameters for name, crt in self.request_types.items()
            },
            reference_speed=self.reference_speed,
            network_delay_ms=network_delay_ms,
            db_arch=DB_SERVER,
        )

    def parameter_table(self) -> list[tuple[str, float, float]]:
        """Rows of (request type, app server ms, db server ms-per-call) —
        the layout of the paper's table 2."""
        return [
            (
                name,
                crt.parameters.app_demand_ms,
                crt.parameters.db_cpu_per_call_ms,
            )
            for name, crt in sorted(self.request_types.items())
        ]


def _single_type_class(request_type: str) -> ServiceClass:
    """A service class whose requests are exclusively one request type."""
    if request_type == "browse":
        return browse_class(name="calib_browse")
    if request_type == "buy":
        return buy_class(name="calib_buy")
    raise CalibrationError(f"no single-type workload known for {request_type!r}")


def calibrate_from_simulator(
    arch: ServerArchitecture,
    *,
    request_types: tuple[str, ...] = ("browse", "buy"),
    clients_per_type: int = 600,
    duration_s: float = 120.0,
    warmup_s: float = 20.0,
    seed: int = 2004,
    network_latency_ms: float = DEFAULT_NETWORK_LATENCY_MS,
) -> LqnCalibration:
    """Calibrate per-request-type parameters on an established server.

    ``clients_per_type`` sets the offered load of the dedicated calibration
    run; if it drives the server near saturation (utilisation > 0.9), the
    load is halved and the run repeated — utilisation/throughput ratios are
    ill-conditioned at saturation.
    """
    check_positive_int(clients_per_type, "clients_per_type")
    start = time.perf_counter()
    calibration = LqnCalibration(
        reference_server=arch.name, reference_speed=arch.cpu_speed
    )
    config = SimulationConfig(
        duration_s=duration_s,
        warmup_s=warmup_s,
        seed=seed,
        network_latency_ms=network_latency_ms,
    )

    for request_type in request_types:
        service_class = _single_type_class(request_type)
        clients = clients_per_type
        for _attempt in range(8):
            result = simulate_deployment(arch, {service_class: clients}, config)
            app_util = result.app_cpu_utilisation[arch.name]
            if app_util <= 0.9 or clients <= 8:
                break
            clients = max(8, clients // 2)
        else:  # pragma: no cover - defensive
            raise CalibrationError(f"could not find an unsaturated load for {request_type}")

        throughput = result.throughput_req_per_s
        if throughput <= 0 or result.samples < 50:
            raise CalibrationError(
                f"calibration run for {request_type!r} produced too little data "
                f"(throughput={throughput}, samples={result.samples})"
            )
        db_calls = result.db_requests_per_app_request
        # utilisation / throughput yields seconds of demand per request;
        # utilisation is per core, so total CPU work scales by the core count.
        app_wall_ms = (
            result.app_cpu_utilisation[arch.name] * arch.cores / throughput * MS_PER_S
        )
        db_total_ms = result.db_cpu_utilisation / throughput * MS_PER_S
        disk_total_ms = result.db_disk_utilisation / throughput * MS_PER_S
        if db_calls <= 0:
            raise CalibrationError(f"no database calls observed for {request_type!r}")

        parameters = RequestTypeParameters(
            name=request_type,
            # wall-clock CPU ms on this box × its speed = ms at reference speed
            app_demand_ms=app_wall_ms * arch.cpu_speed / calibration.reference_speed,
            db_calls=db_calls,
            db_cpu_per_call_ms=db_total_ms / db_calls,
            db_disk_per_call_ms=disk_total_ms / db_calls,
        )
        calibration.request_types[request_type] = CalibratedRequestType(
            parameters=parameters,
            measured_throughput_req_per_s=throughput,
            measured_app_utilisation=result.app_cpu_utilisation[arch.name],
            measured_db_utilisation=result.db_cpu_utilisation,
            measured_disk_utilisation=result.db_disk_utilisation,
            clients_used=clients,
        )

    calibration.calibration_time_s = time.perf_counter() - start
    return calibration
