"""Layered queuing network (LQN) modelling and solving.

This package replaces the LQNS tool used in the paper with a from-scratch
implementation of the same modelling approach (Woodside et al.'s stochastic
rendezvous networks):

* :mod:`repro.lqn.model` — processors, tasks, entries and synchronous /
  asynchronous calls, with structural validation;
* :mod:`repro.lqn.mva` — exact and Bard–Schweitzer approximate Mean Value
  Analysis cores for closed multiclass queueing networks;
* :mod:`repro.lqn.loss` — finite-capacity (M/M/1/K, M/M/c/K) closed forms
  and the effective-arrival-rate fixed point composing them with the
  batched MVA core, giving loss probability as a first-class output;
* :mod:`repro.lqn.solver` — the layered fixed-point solver: hardware
  contention is solved by approximate MVA while software (task-concurrency)
  contention is folded in through surrogate stations, iterating until
  response times change by less than a convergence criterion (the paper uses
  20 ms, and discusses the accuracy/speed trade-off of that choice);
* :mod:`repro.lqn.builder` — constructs the paper's two-tier Trade model
  from a server architecture and workload;
* :mod:`repro.lqn.calibration` — per-request-type processing-time
  calibration from throughput and CPU-utilisation measurements on one
  established server (section 5 of the paper).
"""

from repro.lqn.model import (
    Call,
    CallKind,
    Entry,
    LqnModel,
    Processor,
    Scheduling,
    Task,
)
from repro.lqn.loss import (
    LossQuantities,
    effective_throughput,
    mm1k_loss_probability,
    mmck_loss_probability,
    mmck_loss_quantities,
    mmck_mean_in_system,
    mmck_state_probabilities,
    solve_batch_with_loss,
)
from repro.lqn.mva import (
    MvaBatchInput,
    MvaBatchSolution,
    MvaInput,
    MvaSolution,
    Station,
    StationKind,
    solve_batch,
    solve_bard_schweitzer,
    solve_exact_single_class,
)
from repro.lqn.results import LqnSolution
from repro.lqn.solver import LqnSolver, SolverOptions
from repro.lqn.builder import build_trade_model, TradeModelParameters
from repro.lqn.serialization import (
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.lqn.calibration import (
    CalibratedRequestType,
    LqnCalibration,
    calibrate_from_simulator,
)

__all__ = [
    "Call",
    "CallKind",
    "Entry",
    "LqnModel",
    "Processor",
    "Scheduling",
    "Task",
    "MvaBatchInput",
    "MvaBatchSolution",
    "MvaInput",
    "MvaSolution",
    "Station",
    "StationKind",
    "solve_batch",
    "solve_bard_schweitzer",
    "solve_exact_single_class",
    "LossQuantities",
    "mmck_state_probabilities",
    "mmck_loss_quantities",
    "mm1k_loss_probability",
    "mmck_loss_probability",
    "mmck_mean_in_system",
    "effective_throughput",
    "solve_batch_with_loss",
    "LqnSolution",
    "LqnSolver",
    "SolverOptions",
    "build_trade_model",
    "TradeModelParameters",
    "CalibratedRequestType",
    "LqnCalibration",
    "calibrate_from_simulator",
    "model_to_dict",
    "model_from_dict",
    "save_model",
    "load_model",
]
