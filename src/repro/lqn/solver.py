"""The layered queuing solver.

Solution strategy (an SRVN-style approximation in the spirit of LQNS):

1. **Flatten the call DAG.**  For every reference task (service class) the
   solver walks the synchronous call graph and accumulates per-entry visit
   ratios per client cycle.  Crossing an *asynchronous* call boundary — or a
   second service phase — moves the downstream work onto the class's
   *hidden* demand: it loads the stations but is off the response path.
2. **Hardware contention.**  Every processor becomes a station of a closed
   multiclass network (PS and FIFO both queue; DELAY processors are
   infinite servers) with the flattened per-cycle demands, solved by
   Bard–Schweitzer approximate MVA (:mod:`repro.lqn.mva`).
3. **Software contention.**  Every non-reference task contributes a
   *surrogate multi-server station* with one server per thread of its
   multiplicity and ``waiting_only=True``: only queueing for a thread — not
   the (already-counted) work done while holding it — adds to response
   times.  The surrogate's per-visit service time is the task's
   no-contention holding time (its entries' raw demand plus downstream raw
   demands along synchronous calls), which keeps thread-pool queueing
   negligible while the pool is ample and growing once offered concurrency
   approaches the pool size — without double-counting processor queueing.

The iteration stops when both queue lengths and per-class response times are
stable; ``SolverOptions.convergence_criterion_ms`` plays the role of the
LQNS convergence criterion the paper sets to 20 ms, trading accuracy for
solve time (section 4.2 notes predictions for nearby client counts can
invert under a loose criterion — this solver reproduces that behaviour).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.faults.injector import INJECTOR
from repro.lqn.loss import solve_batch_with_loss
from repro.lqn.model import CallKind, LqnModel, Scheduling, Task
from repro.lqn.mva import MvaBatchInput, MvaInput, Station, StationKind
from repro.lqn.results import LqnSolution
from repro.trace import TRACER
from repro.util.clock import SYSTEM_CLOCK, Clock
from repro.util.errors import ConvergenceError, ModelError
from repro.util.validation import check_positive, check_positive_int

__all__ = ["SolverOptions", "LqnSolver", "MVA_ITERATION_SAMPLE", "WARM_START_STRIDE"]

#: Every k-th MVA fixed-point iteration gets an instant event when tracing.
MVA_ITERATION_SAMPLE = 25

#: Warm-started sweeps solve every ``stride``-th point cold (in locality
#: order), then seed the points in between from their nearest solved
#: neighbour's queue lengths.
WARM_START_STRIDE = 4


def _mva_iteration_hook():
    """A sampled per-iteration callback carrying the convergence delta.

    ``delta`` is the largest queue-length residual among the batch points
    still iterating; ``active`` counts them (1 for a single-point solve).
    """

    def hook(iteration: int, delta: float, n_active: int) -> None:
        if iteration == 1 or iteration % MVA_ITERATION_SAMPLE == 0:
            TRACER.instant(
                "lqn.mva.iteration", iteration=iteration, delta=delta, active=n_active
            )

    return hook


@dataclass(frozen=True)
class SolverOptions:
    """Numerical controls for the layered solver.

    ``convergence_criterion_ms`` is the paper's LQNS convergence criterion:
    iteration stops once successive per-class response-time estimates differ
    by less than this (and queue lengths by less than ``queue_tol``).
    Tightening it increases solve time — the trade-off section 4.2 discusses.

    ``lint_models`` runs :func:`repro.analysis.check_model` over every model
    before solving: structural defects (call cycles, unreachable entries,
    non-positive demands) surface as a
    :class:`~repro.analysis.model_lint.ModelLintError` listing every
    finding, instead of one-at-a-time validation errors or a hung
    iteration.
    """

    convergence_criterion_ms: float = 1.0
    queue_tol: float = 1e-6
    max_iterations: int = 200_000
    damping: float = 0.5
    lint_models: bool = False

    def __post_init__(self) -> None:
        check_positive(self.convergence_criterion_ms, "convergence_criterion_ms")
        check_positive(self.queue_tol, "queue_tol")
        check_positive_int(self.max_iterations, "max_iterations")


class LqnSolver:
    """Solves :class:`~repro.lqn.model.LqnModel` instances."""

    def __init__(self, options: SolverOptions | None = None, *, clock: Clock = SYSTEM_CLOCK):
        self.options = options if options is not None else SolverOptions()
        self.solve_count = 0  # predictions evaluated, for delay accounting
        self._clock = clock
        # One solver is shared across prediction-service worker threads.
        self._lock = threading.Lock()

    # -- public API -----------------------------------------------------------

    def solve(self, model: LqnModel) -> LqnSolution:
        """Solve ``model`` and return steady-state predictions.

        A batch of one: the model goes through exactly the same prepare →
        batched-fixed-point → package pipeline as :meth:`solve_sweep`.
        """
        if INJECTOR.armed:
            INJECTOR.fire("lqn.solve")
        start = self._clock.perf_s()
        with TRACER.span("lqn.solve") as span:
            classes, vis, hid, inp, station_names, task_station_index = self._prepare(model)
            with TRACER.span("lqn.iterate"):
                solution = self._iterate(inp)

            elapsed = self._clock.perf_s() - start
            with self._lock:
                self.solve_count += 1
            span.set_attribute("classes", len(classes))
            span.set_attribute("stations", len(station_names))
            span.set_attribute("iterations", solution[0].iterations)
            return self._package(
                model, classes, vis, hid, inp, solution, station_names, task_station_index, elapsed
            )

    def solve_sweep(
        self, models: list[LqnModel], *, warm_start: bool = True
    ) -> list[LqnSolution]:
        """Solve a whole sweep of models as (a few) NumPy batches.

        Models sharing a network *structure* (same stations and class
        names — e.g. one architecture swept over populations and request
        mixes) are stacked into one :class:`MvaBatchInput` and iterated
        together by :func:`repro.lqn.mva.solve_batch`; converged points
        freeze while stragglers keep iterating.  Results come back in
        input order, each bit-identical (``warm_start=False``) or
        tolerance-equal (``warm_start=True``) to ``solve`` on that model.

        With ``warm_start`` (the default), each structure group is first
        ordered for locality (by population, then think times/demands) and
        every :data:`WARM_START_STRIDE`-th point is solved cold; the points
        in between start from their nearest solved neighbour's queue
        lengths, rescaled to their own populations, and later ladder stages
        reuse the previous stage's iterate instead of restarting — both
        collapse iteration counts on smooth sweeps.

        Faults and accounting match the serial path: one
        ``lqn.solve`` fault-injection firing and one ``solve_count``
        increment per model.  ``solve_time_s`` on each returned solution is
        the sweep's wall time divided evenly across its points.
        """
        models = list(models)
        if not models:
            return []
        if INJECTOR.armed:
            for _ in models:
                INJECTOR.fire("lqn.solve")
        start = self._clock.perf_s()
        with TRACER.span("lqn.sweep") as span:
            prepared = [self._prepare(model) for model in models]
            groups: dict[tuple, list[int]] = {}
            for i, (_, _, _, inp, _, _) in enumerate(prepared):
                groups.setdefault(inp.structure_signature(), []).append(i)

            results: list[tuple | None] = [None] * len(models)
            for indices in groups.values():
                ordered = sorted(indices, key=lambda i: self._locality_key(prepared[i][3]))
                inputs = [prepared[i][3] for i in ordered]
                with TRACER.span("lqn.iterate") as group_span:
                    group_span.set_attribute("points", len(ordered))
                    if warm_start and len(inputs) > WARM_START_STRIDE:
                        solved = self._solve_group_warm(inputs)
                    else:
                        solved = self._iterate_batch(
                            MvaBatchInput.from_points(inputs), warm_start=warm_start
                        )
                for i, result in zip(ordered, solved):
                    results[i] = result

            elapsed = self._clock.perf_s() - start
            with self._lock:
                self.solve_count += len(models)
            span.set_attribute("models", len(models))
            span.set_attribute("groups", len(groups))
            per_point_s = elapsed / len(models)
            return [
                self._package(
                    models[i], classes, vis, hid, inp, results[i],
                    station_names, task_station_index, per_point_s,
                )
                for i, (classes, vis, hid, inp, station_names, task_station_index)
                in enumerate(prepared)
            ]

    def max_clients_for_goal(
        self,
        build_model,
        rt_goal_ms: float,
        *,
        class_name: str,
        upper_bound: int = 100_000,
    ) -> tuple[int, int]:
        """Largest client count whose predicted response time meets a goal.

        The layered queuing method can only take the number of clients as an
        *input*, so — as section 8.2 of the paper notes — finding a capacity
        means searching over client counts, evaluating a prediction at each
        probe.  ``build_model(n)`` must return the model for ``n`` clients.

        Returns ``(max_clients, predictions_evaluated)``; the second element
        is what makes the layered method's capacity queries expensive
        (section 8.5).
        """
        check_positive(rt_goal_ms, "rt_goal_ms")
        evaluations = 0

        def meets(n: int) -> bool:
            nonlocal evaluations
            evaluations += 1
            result = self.solve(build_model(n))
            return result.response_ms[class_name] <= rt_goal_ms

        if not meets(1):
            return 0, evaluations
        # Exponential expansion then binary search.
        lo, hi = 1, 2
        while hi <= upper_bound and meets(hi):
            lo, hi = hi, hi * 2
        hi = min(hi, upper_bound)
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if meets(mid):
                lo = mid
            else:
                hi = mid
        return lo, evaluations

    # -- preparation ----------------------------------------------------------

    def _prepare(self, model: LqnModel):
        """Lint/validate ``model`` and build its MVA network."""
        if self.options.lint_models:
            # Lazy import: repro.analysis imports this module's
            # SolverOptions consumers; importing at module scope would
            # cycle.
            from repro.analysis.model_lint import check_model

            with TRACER.span("lqn.lint"):
                check_model(model)
        model.validate()
        classes = model.reference_tasks()
        if not classes:
            raise ModelError("model has no reference tasks")

        with TRACER.span("lqn.flatten"):
            vis, hid = self._flatten(model, classes)
        with TRACER.span("lqn.build_network"):
            inp, station_names, task_station_index = self._build_network(
                model, classes, vis, hid
            )
        return classes, vis, hid, inp, station_names, task_station_index

    @staticmethod
    def _locality_key(inp: MvaInput) -> tuple:
        """Sort key placing neighbouring sweep points next to each other.

        Population dominates (fig2/fig6-style client sweeps), then think
        times and total demand (mix sweeps at fixed population).
        """
        return (
            float(sum(inp.populations)),
            tuple(inp.populations),
            tuple(inp.think_times_ms),
            float(inp.demands.sum()),
            float(inp.hidden_demands.sum()),
        )

    # -- flattening -----------------------------------------------------------

    def _flatten(
        self, model: LqnModel, classes: list[Task]
    ) -> tuple[dict[tuple[str, str], float], dict[tuple[str, str], float]]:
        """Per-class visible/hidden visit ratios for every entry.

        Returns two maps ``(class_name, entry_name) -> visits per cycle``.
        """
        vis: dict[tuple[str, str], float] = {}
        hid: dict[tuple[str, str], float] = {}

        def walk(class_name: str, entry_name: str, visits: float, hidden: bool) -> None:
            bucket = hid if hidden else vis
            key = (class_name, entry_name)
            bucket[key] = bucket.get(key, 0.0) + visits
            entry = model.entry(entry_name)
            for call in entry.calls:
                child_hidden = hidden or call.kind is CallKind.ASYNCHRONOUS
                walk(class_name, call.target_entry, visits * call.mean_calls, child_hidden)

        for ref in classes:
            for ref_entry in ref.entries:
                # The reference entry's own demand is the client's local work
                # (usually zero); its calls define one request cycle.
                for call in ref_entry.calls:
                    hidden = call.kind is CallKind.ASYNCHRONOUS
                    walk(ref.name, call.target_entry, call.mean_calls, hidden)
        return vis, hid

    # -- network construction ---------------------------------------------------

    def _holding_time_ms(self, model: LqnModel, entry_name: str) -> float:
        """No-contention holding time of one entry invocation (ms):
        raw scaled demand plus downstream synchronous holding times.

        Asynchronous and forwarding calls do not extend the holding time:
        the thread is released (forwarded work continues on the *client's*
        response path but on the *callee's* thread, not the caller's).
        """
        entry = model.entry(entry_name)
        owner = model.entry_owner(entry_name)
        assert owner is not None
        proc = model.processors[owner.processor]
        total = entry.demand_ms / proc.speed
        for call in entry.calls:
            if call.kind is CallKind.SYNCHRONOUS:
                total += call.mean_calls * self._holding_time_ms(model, call.target_entry)
        return total

    def _build_network(
        self,
        model: LqnModel,
        classes: list[Task],
        vis: dict[tuple[str, str], float],
        hid: dict[tuple[str, str], float],
    ) -> tuple[MvaInput, list[str], dict[str, int]]:
        closed = [t for t in classes if not t.is_open_reference]
        opened = [t for t in classes if t.is_open_reference]
        class_names = [t.name for t in closed]
        populations = [t.multiplicity for t in closed]
        think_times = [t.think_time_ms for t in closed]

        stations: list[Station] = []
        station_names: list[str] = []
        proc_index: dict[str, int] = {}
        for proc in model.processors.values():
            if proc.scheduling is Scheduling.DELAY:
                kind = StationKind.DELAY
            else:
                kind = StationKind.QUEUE
            proc_index[proc.name] = len(stations)
            stations.append(
                Station(
                    name=f"proc:{proc.name}",
                    kind=kind,
                    servers=proc.multiplicity,
                    capacity=proc.queue_capacity,
                )
            )
            station_names.append(f"proc:{proc.name}")

        task_station_index: dict[str, int] = {}
        server_tasks = model.server_tasks()
        for task in server_tasks:
            task_station_index[task.name] = len(stations)
            stations.append(
                Station(
                    name=f"task:{task.name}",
                    kind=StationKind.QUEUE,
                    servers=task.multiplicity,
                    waiting_only=True,
                )
            )
            station_names.append(f"task:{task.name}")

        C, K = len(class_names), len(stations)
        demands = np.zeros((C, K))
        hidden = np.zeros((C, K))

        for c, cname in enumerate(class_names):
            for task in model.tasks.values():
                proc = model.processors[task.processor]
                k = proc_index[proc.name]
                for entry in task.entries:
                    v = vis.get((cname, entry.name), 0.0)
                    h = hid.get((cname, entry.name), 0.0)
                    demands[c, k] += v * entry.demand_ms / proc.speed
                    hidden[c, k] += h * entry.demand_ms / proc.speed
                    # Second-phase work loads the processor off the response path.
                    hidden[c, k] += (v + h) * entry.phase2_demand_ms / proc.speed

            for task in server_tasks:
                k = task_station_index[task.name]
                for entry in task.entries:
                    holding = self._holding_time_ms(model, entry.name)
                    holding += entry.phase2_demand_ms / model.processors[task.processor].speed
                    v = vis.get((cname, entry.name), 0.0)
                    h = hid.get((cname, entry.name), 0.0)
                    demands[c, k] += v * holding
                    hidden[c, k] += h * holding

        # Open workload sources load the processor stations per request;
        # thread-pool (surrogate) waiting is not modelled for open traffic.
        open_names = [t.name for t in opened]
        open_rates = [t.open_arrival_rate_per_s / 1000.0 for t in opened]
        open_demands = np.zeros((len(opened), K))
        for o, task in enumerate(opened):
            for server_task in model.tasks.values():
                proc = model.processors[server_task.processor]
                k = proc_index[proc.name]
                for entry in server_task.entries:
                    visits = vis.get((task.name, entry.name), 0.0) + hid.get(
                        (task.name, entry.name), 0.0
                    )
                    open_demands[o, k] += (
                        visits * (entry.demand_ms + entry.phase2_demand_ms) / proc.speed
                    )

        inp = MvaInput(
            stations=stations,
            class_names=class_names,
            populations=populations,
            think_times_ms=think_times,
            demands=demands,
            hidden_demands=hidden,
            open_class_names=open_names,
            open_rates_per_ms=open_rates,
            open_demands=open_demands,
        )
        return inp, station_names, task_station_index

    # -- iteration ---------------------------------------------------------------

    def _iterate(self, inp: MvaInput):
        """Bard–Schweitzer fixed point with the response-time stopping rule."""
        return self._iterate_batch(MvaBatchInput.from_points([inp]))[0]

    def _iterate_batch(
        self,
        batch: MvaBatchInput,
        *,
        warm_start: bool = False,
        initial_queue_lengths: np.ndarray | None = None,
        start_stage: int = 1,
    ) -> list[tuple]:
        """Run the staged tolerance ladder over a whole batch at once.

        The AMVA fixed point runs in stages of loosening-to-tightening
        tolerance (``10^-stage`` down to ``queue_tol``), checking the
        response-time criterion between stages; this reproduces LQNS's
        "iterate until response times move < criterion" behaviour while
        the queue-length tolerance guards the fine-grained fixed point.
        Each point climbs the ladder independently: a point whose
        response residual drops below ``convergence_criterion_ms`` leaves
        the batch, and later stages solve only the survivors.

        ``warm_start=False`` (the default, used by :meth:`solve`) restarts
        every stage from the default iterate, which makes each point's
        result bit-identical to the historical serial ladder.  With
        ``warm_start=True`` each stage continues from the previous stage's
        queue lengths, and ``initial_queue_lengths`` (``(B, C, K)``) seeds
        the first stage — e.g. from a neighbouring, already-solved sweep
        point.  ``start_stage`` skips the coarsest ladder rungs, which a
        well-seeded iterate has already passed.

        Returns one ``(MvaSolution, residual_ms)`` tuple per point, in
        batch order.
        """
        options = self.options
        B = batch.batch_size
        results: list[tuple | None] = [None] * B
        live = np.arange(B)
        prev_response: np.ndarray | None = None  # (b, C) for live points
        stage_iterations = np.zeros(B, dtype=int)
        current = batch
        seed = initial_queue_lengths
        # Tracing: per-stage instants always (cheap), per-MVA-iteration
        # instants through a sampled hook so tight fixed points (tens of
        # thousands of iterations) don't flood the event log.
        trace_on = TRACER.enabled
        hook = _mva_iteration_hook() if trace_on else None
        # A loose criterion stops early (coarse, fast); a tight criterion
        # runs the fixed point to queue_tol (accurate, slower).
        for stage in range(start_stage, 64):
            stage_tol = max(options.queue_tol, 10.0 ** (-stage))
            # The finite-capacity wrapper: with no capacity stations (or
            # when every loss probability underflows to 0.0 — the K→∞
            # limit) it calls the unbounded core once on the unmodified
            # input, so this stays bit-identical to the historical ladder.
            solution = solve_batch_with_loss(
                current,
                tol=stage_tol,
                max_iterations=options.max_iterations,
                damping=options.damping,
                initial_queue_lengths=seed,
                iteration_hook=hook,
            )
            stage_iterations[live] += solution.iterations
            response = solution.cycle_response_ms  # (b, C)
            if response.shape[1] == 0:
                # Pure-open models: the mixed-network reduction is closed form.
                for j, i in enumerate(live):
                    results[i] = (solution.solution(j), 0.0)
                break
            residuals = None
            if prev_response is not None:
                residuals = np.max(np.abs(response - prev_response), axis=1)  # (b,)
            if trace_on:
                TRACER.instant(
                    "lqn.solve.stage",
                    stage=stage,
                    stage_tol=stage_tol,
                    iterations=int(solution.iterations.max()),
                    residual_ms=None if residuals is None else float(residuals.max()),
                    active=int(live.size),
                )
            if residuals is not None:
                done = residuals < options.convergence_criterion_ms
            else:
                done = np.zeros(live.size, dtype=bool)
            final_residuals = np.where(done, residuals if residuals is not None else 0.0, 0.0)
            if stage_tol <= options.queue_tol:
                # Ladder floor: whoever is left stops here, reporting a zero
                # residual exactly as the historical serial ladder did.
                done = np.ones(live.size, dtype=bool)
            if done.any():
                for j in np.flatnonzero(done):
                    point = solution.solution(j)
                    point.iterations = int(stage_iterations[live[j]])
                    results[live[j]] = (point, float(final_residuals[j]))
                keep = ~done
                live = live[keep]
                if live.size == 0:
                    break
                current = current.subset(np.flatnonzero(keep))
                prev_response = response[keep].copy()
                seed = solution.queue_lengths[keep] if warm_start else None
            else:
                prev_response = response.copy()
                seed = solution.queue_lengths if warm_start else None
        else:  # pragma: no cover - defensive
            raise ConvergenceError(
                "layered solver failed to converge",
                iterations=int(stage_iterations.max()),
            )
        return results

    def _solve_group_warm(self, inputs: list[MvaInput]) -> list[tuple]:
        """Warm-started wave solve of one locality-ordered structure group.

        Every :data:`WARM_START_STRIDE`-th point solves cold (one batch);
        the points in between seed their iterate from the nearest cold
        point's queue lengths, rescaled per class to their own population
        (classes active in the warm point but absent from its seed keep the
        default spread initialisation).  Returns results in ``inputs``
        order.
        """
        n = len(inputs)
        cold_positions = list(range(0, n, WARM_START_STRIDE))
        warm_positions = [p for p in range(n) if p % WARM_START_STRIDE != 0]
        cold_results = self._iterate_batch(
            MvaBatchInput.from_points([inputs[p] for p in cold_positions]),
            warm_start=True,
        )
        results: list[tuple | None] = [None] * n
        for p, result in zip(cold_positions, cold_results):
            results[p] = result
        if warm_positions:
            seeds = np.zeros(
                (len(warm_positions), len(inputs[0].class_names), len(inputs[0].stations))
            )
            for w, p in enumerate(warm_positions):
                nearest = min(cold_positions, key=lambda c: abs(c - p))
                neighbour, _ = results[nearest]
                n_new = np.asarray(inputs[p].populations, dtype=float)
                n_old = np.asarray(inputs[nearest].populations, dtype=float)
                scale = np.where(n_old > 0, n_new / np.where(n_old > 0, n_old, 1.0), 0.0)
                seeded = neighbour.queue_lengths * scale[:, None]
                newly_active = (n_new > 0) & (n_old == 0)
                if newly_active.any():
                    # No neighbour information for these classes: fall back to
                    # the solver's default spread-over-visited-stations seed.
                    inp = inputs[p]
                    visits = ((inp.demands + inp.hidden_demands) > 0).astype(float)
                    counts = np.maximum(visits.sum(axis=1, keepdims=True), 1.0)
                    default = n_new[:, None] / counts * visits
                    seeded = np.where(newly_active[:, None], default, seeded)
                seeds[w] = seeded
            warm_results = self._iterate_batch(
                MvaBatchInput.from_points([inputs[p] for p in warm_positions]),
                warm_start=True,
                initial_queue_lengths=seeds,
                # A neighbour-seeded iterate is already past the coarse rungs.
                start_stage=3,
            )
            for p, result in zip(warm_positions, warm_results):
                results[p] = result
        return results

    # -- packaging ----------------------------------------------------------------

    def _package(
        self,
        model: LqnModel,
        classes: list[Task],
        vis: dict[tuple[str, str], float],
        hid: dict[tuple[str, str], float],
        inp: MvaInput,
        solution_and_residual,
        station_names: list[str],
        task_station_index: dict[str, int],
        elapsed_s: float,
    ) -> LqnSolution:
        solution, residual = solution_and_residual
        response: dict[str, float] = {}
        throughput: dict[str, float] = {}
        residence: dict[tuple[str, str], float] = {}
        closed = [t for t in classes if not t.is_open_reference]
        for c, task in enumerate(closed):
            response[task.name] = float(solution.cycle_response_ms[c])
            throughput[task.name] = float(solution.throughput_per_ms[c] * 1000.0)
            for proc_name in model.processors:
                k = station_names.index(f"proc:{proc_name}")
                residence[(task.name, proc_name)] = float(solution.residence_ms[c, k])
        loss_probability: dict[str, float] = {t.name: 0.0 for t in closed}
        for task in classes:
            if task.is_open_reference:
                response[task.name] = float(solution.open_response_ms[task.name])
                # An open class's *carried* throughput: its (stable) arrival
                # rate minus whatever finite-capacity processors shed.  With
                # no capacity bounds the loss is exactly 0.0 and this is the
                # arrival rate bit-for-bit.
                loss = float(solution.open_loss.get(task.name, 0.0))
                loss_probability[task.name] = loss
                throughput[task.name] = task.open_arrival_rate_per_s * (1.0 - loss)

        processor_util = {
            proc_name: float(solution.utilisation[station_names.index(f"proc:{proc_name}")])
            for proc_name in model.processors
        }
        task_concurrency = {
            task_name: float(solution.queue_lengths[:, k].sum())
            for task_name, k in task_station_index.items()
        }
        station_loss = {
            proc_name: (
                float(solution.loss_probability[station_names.index(f"proc:{proc_name}")])
                if solution.loss_probability is not None
                else 0.0
            )
            for proc_name in model.processors
            if model.processors[proc_name].queue_capacity is not None
        }
        return LqnSolution(
            response_ms=response,
            throughput_req_per_s=throughput,
            processor_utilisation=processor_util,
            residence_ms=residence,
            task_concurrency=task_concurrency,
            iterations=solution.iterations,
            solve_time_s=elapsed_s,
            converged=True,
            final_residual_ms=residual,
            loss_probability=loss_probability,
            station_loss_probability=station_loss,
        )
