"""Layered queuing network model definition.

The model follows the stochastic rendezvous network structure used by LQNS
(Woodside et al. 1995), restricted to the features the paper exercises:

* **Processors** execute entries' host demand.  Scheduling is processor
  sharing (time-shared CPUs), FIFO (the database disk) or infinite-server
  (pure delays such as network links).  A processor may have a multiplicity.
* **Tasks** run on a processor and offer **entries**.  A task has a
  multiplicity — its thread pool (50 for the paper's application servers, 20
  for the database).  *Reference tasks* model the closed client populations:
  their multiplicity is the client count and they have a think time.
* **Entries** have a mean host demand (exponentially distributed in the
  solved model, matching the paper) plus an optional *second phase* demand
  that runs after the reply is sent.  Entries make synchronous
  (rendezvous) or asynchronous (send-no-reply) **calls** to other entries
  with a mean number of calls per invocation.

Structural validation catches dangling call targets, call cycles, and
reference tasks that are themselves call targets — the errors a model author
is most likely to make.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.errors import ModelError
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_positive_int,
    require,
)

__all__ = ["Scheduling", "CallKind", "Processor", "Task", "Entry", "Call", "LqnModel"]


class Scheduling(enum.Enum):
    """Processor scheduling disciplines supported by the solver."""

    PROCESSOR_SHARING = "ps"
    FIFO = "fifo"
    DELAY = "delay"  # infinite server: no queueing, pure latency


class CallKind(enum.Enum):
    """How an entry invokes another entry.

    * SYNCHRONOUS — rendezvous: the caller blocks until the callee replies.
    * ASYNCHRONOUS — send-no-reply: the caller continues immediately; the
      callee's work is off the caller's response path.
    * FORWARDING — the callee takes over the request and replies directly to
      the *original* client: the forwarded work stays on the client's
      response path, but the forwarding server releases its thread instead
      of blocking for it ("the forwarding of requests onto another queue",
      section 5 of the paper).
    """

    SYNCHRONOUS = "sync"  # rendezvous: caller blocks for the reply
    ASYNCHRONOUS = "async"  # send-no-reply: caller continues immediately
    FORWARDING = "forward"  # callee replies directly to the original client


@dataclass(frozen=True, slots=True)
class Processor:
    """A hardware resource that executes entry host demands.

    ``queue_capacity`` — when given — bounds the total requests the
    processor can hold (in service plus waiting, the ``K`` of M/M/c/K):
    offered *open* traffic beyond it is lost, and the solver reports the
    closed-form loss probability instead of queueing it unboundedly.
    Closed populations self-throttle and are never shed.
    """

    name: str
    scheduling: Scheduling = Scheduling.PROCESSOR_SHARING
    multiplicity: int = 1
    speed: float = 1.0
    queue_capacity: int | None = None

    def __post_init__(self) -> None:
        check_positive_int(self.multiplicity, "multiplicity")
        check_positive(self.speed, "speed")
        if self.queue_capacity is not None:
            check_positive_int(self.queue_capacity, "queue_capacity")
            require(
                self.queue_capacity >= self.multiplicity,
                f"processor {self.name!r} queue_capacity must be >= multiplicity",
            )
            require(
                self.scheduling is not Scheduling.DELAY,
                f"DELAY processor {self.name!r} has no queue to bound",
            )


@dataclass(frozen=True, slots=True)
class Call:
    """A mean number of calls from one entry to another per invocation."""

    target_entry: str
    mean_calls: float
    kind: CallKind = CallKind.SYNCHRONOUS

    def __post_init__(self) -> None:
        check_non_negative(self.mean_calls, "mean_calls")


@dataclass(frozen=True, slots=True)
class Entry:
    """A service offered by a task.

    ``demand_ms`` is the mean host-processor demand per invocation at the
    processor's nominal speed.  ``phase2_demand_ms`` runs after the reply —
    it delays the *server*, not the caller.
    """

    name: str
    demand_ms: float
    calls: tuple[Call, ...] = ()
    phase2_demand_ms: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative(self.demand_ms, "demand_ms")
        check_non_negative(self.phase2_demand_ms, "phase2_demand_ms")
        seen: set[str] = set()
        for call in self.calls:
            if call.target_entry in seen:
                raise ModelError(
                    f"entry {self.name!r} calls {call.target_entry!r} twice; "
                    "merge the mean call counts instead"
                )
            seen.add(call.target_entry)


@dataclass(frozen=True, slots=True)
class Task:
    """A software server (or, if ``is_reference``, a client population).

    A reference task with ``open_arrival_rate_per_s > 0`` models an *open*
    workload source ("clients sending requests at a constant rate", section
    8.1 of the paper) instead of a closed population; its ``multiplicity``
    and ``think_time_ms`` are then ignored by the solver.
    """

    name: str
    processor: str
    entries: tuple[Entry, ...]
    multiplicity: int = 1
    is_reference: bool = False
    think_time_ms: float = 0.0
    open_arrival_rate_per_s: float = 0.0

    def __post_init__(self) -> None:
        check_positive_int(self.multiplicity, "multiplicity")
        check_non_negative(self.think_time_ms, "think_time_ms")
        check_non_negative(self.open_arrival_rate_per_s, "open_arrival_rate_per_s")
        require(len(self.entries) > 0, f"task {self.name!r} must offer at least one entry")
        if not self.is_reference:
            require(
                self.think_time_ms <= 0.0,
                f"non-reference task {self.name!r} cannot have a think time",
            )
            require(
                self.open_arrival_rate_per_s <= 0.0,
                f"non-reference task {self.name!r} cannot be an open source",
            )

    @property
    def is_open_reference(self) -> bool:
        """Whether this reference task is an open (arrival-rate) source."""
        return self.is_reference and self.open_arrival_rate_per_s > 0.0


@dataclass
class LqnModel:
    """A complete layered queuing network.

    Build with :meth:`add_processor` / :meth:`add_task`, then call
    :meth:`validate` (done automatically by the solver).
    """

    processors: dict[str, Processor] = field(default_factory=dict)
    tasks: dict[str, Task] = field(default_factory=dict)

    def add_processor(self, processor: Processor) -> Processor:
        """Register a processor (names must be unique)."""
        if processor.name in self.processors:
            raise ModelError(f"duplicate processor {processor.name!r}")
        self.processors[processor.name] = processor
        return processor

    def add_task(self, task: Task) -> Task:
        """Register a task (task and entry names must be unique)."""
        if task.name in self.tasks:
            raise ModelError(f"duplicate task {task.name!r}")
        for entry in task.entries:
            if self.entry_owner(entry.name) is not None:
                raise ModelError(f"duplicate entry {entry.name!r}")
        self.tasks[task.name] = task
        return task

    # -- lookups -------------------------------------------------------------

    def entry_owner(self, entry_name: str) -> Task | None:
        """The task offering ``entry_name``, or None."""
        for task in self.tasks.values():
            for entry in task.entries:
                if entry.name == entry_name:
                    return task
        return None

    def entry(self, entry_name: str) -> Entry:
        """Look up an entry by name."""
        for task in self.tasks.values():
            for e in task.entries:
                if e.name == entry_name:
                    return e
        raise ModelError(f"unknown entry {entry_name!r}")

    def reference_tasks(self) -> list[Task]:
        """The model's client populations."""
        return [t for t in self.tasks.values() if t.is_reference]

    def server_tasks(self) -> list[Task]:
        """All non-reference tasks."""
        return [t for t in self.tasks.values() if not t.is_reference]

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        """Check structural consistency; raises :class:`ModelError`."""
        if not self.tasks:
            raise ModelError("model has no tasks")
        if not self.reference_tasks():
            raise ModelError("model has no reference task (client population)")
        for task in self.tasks.values():
            if task.processor not in self.processors:
                raise ModelError(
                    f"task {task.name!r} runs on unknown processor {task.processor!r}"
                )
            for entry in task.entries:
                for call in entry.calls:
                    owner = self.entry_owner(call.target_entry)
                    if owner is None:
                        raise ModelError(
                            f"entry {entry.name!r} calls unknown entry "
                            f"{call.target_entry!r}"
                        )
                    if owner.is_reference:
                        raise ModelError(
                            f"entry {entry.name!r} calls entry "
                            f"{call.target_entry!r} of a reference task"
                        )
                    if owner.name == task.name:
                        raise ModelError(
                            f"entry {entry.name!r} calls its own task {task.name!r}"
                        )
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        """Reject call cycles between tasks (layering requires a DAG)."""
        colour: dict[str, int] = {}  # 0 unvisited / 1 in progress / 2 done

        def visit(task_name: str, stack: list[str]) -> None:
            state = colour.get(task_name, 0)
            if state == 1:
                cycle = " -> ".join(stack + [task_name])
                raise ModelError(f"call cycle between tasks: {cycle}")
            if state == 2:
                return
            colour[task_name] = 1
            task = self.tasks[task_name]
            for entry in task.entries:
                for call in entry.calls:
                    owner = self.entry_owner(call.target_entry)
                    assert owner is not None  # validated before
                    visit(owner.name, stack + [task_name])
            colour[task_name] = 2

        for name in self.tasks:
            visit(name, [])

    def task_layers(self) -> list[list[Task]]:
        """Tasks grouped by call depth: layer 0 holds the reference tasks.

        A task's layer is one more than the deepest of its callers; the
        ordering is what makes the layered solution strategy well-defined.
        """
        self.validate()
        depth: dict[str, int] = {t.name: 0 for t in self.reference_tasks()}

        changed = True
        while changed:
            changed = False
            for task in self.tasks.values():
                if task.name not in depth:
                    continue
                for entry in task.entries:
                    for call in entry.calls:
                        owner = self.entry_owner(call.target_entry)
                        assert owner is not None
                        candidate = depth[task.name] + 1
                        if depth.get(owner.name, -1) < candidate:
                            depth[owner.name] = candidate
                            changed = True

        unreachable = set(self.tasks) - set(depth)
        if unreachable:
            raise ModelError(f"tasks unreachable from any reference task: {sorted(unreachable)}")
        max_depth = max(depth.values())
        layers: list[list[Task]] = [[] for _ in range(max_depth + 1)]
        for name, d in depth.items():
            layers[d].append(self.tasks[name])
        for layer in layers:
            layer.sort(key=lambda t: t.name)
        return layers
