"""Build the paper's two-tier Trade layered queuing model.

Topology (section 5 / figure 1 of the paper):

* reference tasks — one closed client population per service class, with the
  class's think time;
* an application task (multiplicity = thread pool, 50) on the application
  CPU, with one entry per *request type* (browse / buy);
* a database task (multiplicity 20) on the database CPU, one entry per
  request type, called ``db_calls`` times per application request;
* a disk task (multiplicity 1) on the disk processor — "the database server
  disk is modelled as a processor that can only process one request at a
  time" — called once per database request.

New server architectures are modelled exactly as the paper prescribes: the
calibrated reference processing times are kept, and the application
processor's speed is set to the benchmarked established/new request
processing speed ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lqn.model import Call, CallKind, Entry, LqnModel, Processor, Scheduling, Task
from repro.servers.architecture import DatabaseArchitecture, ServerArchitecture
from repro.servers.catalogue import DB_SERVER
from repro.util.validation import check_non_negative, check_positive, require
from repro.workload.service_class import ServiceClass

__all__ = ["RequestTypeParameters", "TradeModelParameters", "build_trade_model"]


@dataclass(frozen=True, slots=True)
class RequestTypeParameters:
    """Calibrated per-request-type model parameters (table 2 of the paper).

    Processing times are at the calibration (reference) server's speed.
    """

    name: str
    app_demand_ms: float
    db_calls: float
    db_cpu_per_call_ms: float
    db_disk_per_call_ms: float

    def __post_init__(self) -> None:
        check_positive(self.app_demand_ms, "app_demand_ms")
        check_non_negative(self.db_calls, "db_calls")
        check_non_negative(self.db_cpu_per_call_ms, "db_cpu_per_call_ms")
        check_non_negative(self.db_disk_per_call_ms, "db_disk_per_call_ms")


@dataclass(frozen=True)
class TradeModelParameters:
    """Everything the layered model needs besides the workload itself."""

    request_types: dict[str, RequestTypeParameters]
    reference_speed: float = 1.0  # cpu_speed of the server calibrated against
    network_delay_ms: float = 0.0  # optional extension (see section 5.1)
    db_arch: DatabaseArchitecture = field(default_factory=lambda: DB_SERVER)

    def __post_init__(self) -> None:
        require(len(self.request_types) > 0, "at least one request type required")
        check_positive(self.reference_speed, "reference_speed")
        check_non_negative(self.network_delay_ms, "network_delay_ms")


def build_trade_model(
    arch: ServerArchitecture,
    workload: dict[ServiceClass, int],
    params: TradeModelParameters,
    *,
    session_read_calls: dict[str, float] | None = None,
    session_read_cpu_ms: float = 0.8,
    session_read_disk_ms: float = 1.2,
    open_workload: dict[ServiceClass, float] | None = None,
    app_queue_capacity: int | None = None,
) -> LqnModel:
    """Construct the Trade LQN for one application server and a workload.

    ``workload`` maps service classes to client counts; classes with zero
    clients are skipped.  The application processor's speed is the target
    architecture's speed relative to the calibration reference, which is how
    the paper predicts new architectures from a benchmarked speed ratio.

    ``session_read_calls`` (class name → mean extra database session-read
    calls per request) supports the caching extension of section 7.2: a
    cache miss costs one extra database call to read the client's session.
    The mean call count is exactly the class's cache-miss probability —
    which depends on the model's own solution, hence the fixed-point
    iteration in :mod:`repro.caching.analysis`.

    ``open_workload`` (service class → request arrival rate in req/s) adds
    *open* sources — "clients sending requests at a constant rate", the
    section-8.1 system-model variation — alongside the closed populations.

    ``app_queue_capacity`` bounds the application processor's total
    occupancy (the K of M/M/c/K): the finite-capacity solve path then
    predicts a loss probability for open classes instead of diverging at
    offered loads past saturation.
    """
    model = LqnModel()
    model.add_processor(
        Processor(
            name="app_cpu",
            scheduling=Scheduling.PROCESSOR_SHARING,
            multiplicity=arch.cores,
            speed=arch.cpu_speed / params.reference_speed,
            queue_capacity=app_queue_capacity,
        )
    )
    model.add_processor(
        Processor(
            name="db_cpu",
            scheduling=Scheduling.PROCESSOR_SHARING,
            multiplicity=1,
            speed=params.db_arch.cpu_speed,
        )
    )
    model.add_processor(
        Processor(
            name="db_disk",
            scheduling=Scheduling.FIFO,
            multiplicity=1,
            speed=params.db_arch.disk_speed,
        )
    )
    model.add_processor(Processor(name="clients_proc", scheduling=Scheduling.DELAY))
    if params.network_delay_ms > 0.0:
        model.add_processor(Processor(name="network", scheduling=Scheduling.DELAY))

    app_entries: list[Entry] = []
    db_entries: list[Entry] = []
    disk_entries: list[Entry] = []
    if session_read_calls:
        disk_entries.append(Entry(name="disk_session", demand_ms=session_read_disk_ms))
        db_entries.append(
            Entry(
                name="db_session",
                demand_ms=session_read_cpu_ms,
                calls=(Call(target_entry="disk_session", mean_calls=1.0),),
            )
        )
    for rt in params.request_types.values():
        disk_entries.append(Entry(name=f"disk_{rt.name}", demand_ms=rt.db_disk_per_call_ms))
        db_entries.append(
            Entry(
                name=f"db_{rt.name}",
                demand_ms=rt.db_cpu_per_call_ms,
                calls=(Call(target_entry=f"disk_{rt.name}", mean_calls=1.0),),
            )
        )
        app_calls = [Call(target_entry=f"db_{rt.name}", mean_calls=rt.db_calls)]
        app_entries.append(
            Entry(
                name=f"app_{rt.name}",
                demand_ms=rt.app_demand_ms,
                calls=tuple(app_calls),
            )
        )

    model.add_task(
        Task(
            name="app_server",
            processor="app_cpu",
            entries=tuple(app_entries),
            multiplicity=arch.max_concurrency,
        )
    )
    model.add_task(
        Task(
            name="db_server",
            processor="db_cpu",
            entries=tuple(db_entries),
            multiplicity=params.db_arch.max_concurrency,
        )
    )
    model.add_task(
        Task(name="disk", processor="db_disk", entries=tuple(disk_entries), multiplicity=1)
    )
    if params.network_delay_ms > 0.0:
        # Round-trip network latency as a pure delay entry, called once per
        # request — the "communication overhead" extension the paper suggests
        # would improve the layered method's accuracy.
        model.add_task(
            Task(
                name="network_link",
                processor="network",
                entries=(Entry(name="net_rtt", demand_ms=params.network_delay_ms),),
                multiplicity=1_000_000,
            )
        )

    for service_class, n_clients in workload.items():
        if n_clients <= 0:
            continue
        calls: list[Call] = []
        for type_name, fraction in sorted(service_class.request_type_fractions().items()):
            if fraction <= 0.0:
                continue
            require(
                type_name in params.request_types,
                f"service class {service_class.name!r} uses uncalibrated request "
                f"type {type_name!r}",
            )
            calls.append(Call(target_entry=f"app_{type_name}", mean_calls=fraction))
        if params.network_delay_ms > 0.0:
            calls.append(Call(target_entry="net_rtt", mean_calls=1.0))
        if session_read_calls:
            miss_calls = session_read_calls.get(service_class.name, 0.0)
            if miss_calls > 0.0:
                calls.append(Call(target_entry="db_session", mean_calls=miss_calls))
        model.add_task(
            Task(
                name=service_class.name,
                processor="clients_proc",
                entries=(
                    Entry(name=f"client_{service_class.name}", demand_ms=0.0, calls=tuple(calls)),
                ),
                multiplicity=n_clients,
                is_reference=True,
                think_time_ms=service_class.think_time_ms,
            )
        )
    for service_class, rate_req_per_s in (open_workload or {}).items():
        if rate_req_per_s <= 0:
            continue
        calls = []
        for type_name, fraction in sorted(service_class.request_type_fractions().items()):
            if fraction <= 0.0:
                continue
            require(
                type_name in params.request_types,
                f"open service class {service_class.name!r} uses uncalibrated "
                f"request type {type_name!r}",
            )
            calls.append(Call(target_entry=f"app_{type_name}", mean_calls=fraction))
        model.add_task(
            Task(
                name=f"open_{service_class.name}",
                processor="clients_proc",
                entries=(
                    Entry(
                        name=f"open_client_{service_class.name}",
                        demand_ms=0.0,
                        calls=tuple(calls),
                    ),
                ),
                is_reference=True,
                open_arrival_rate_per_s=rate_req_per_s,
            )
        )
    model.validate()
    return model
