"""Solution object returned by the layered queuing solver.

Mirrors what LQNS reports and what the paper's sections 5 and 8 use:
response times, throughputs and utilisation information per service class at
each processor — plus solver metadata (iterations, wall-clock solve time)
that the prediction-delay evaluation of section 8.5 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LqnSolution"]


@dataclass
class LqnSolution:
    """Steady-state predictions for one layered queuing model."""

    # class name -> predicted mean response time per request (ms)
    response_ms: dict[str, float]
    # class name -> predicted throughput (requests/second)
    throughput_req_per_s: dict[str, float]
    # processor name -> per-server utilisation
    processor_utilisation: dict[str, float]
    # (class name, processor name) -> per-cycle residence time (ms)
    residence_ms: dict[tuple[str, str], float]
    # task name -> mean concurrency (threads busy)
    task_concurrency: dict[str, float] = field(default_factory=dict)
    iterations: int = 0
    solve_time_s: float = 0.0
    converged: bool = True
    final_residual_ms: float = 0.0
    # class name -> end-to-end loss probability (0.0 everywhere unless the
    # model has finite-capacity processors; closed classes never shed).
    loss_probability: dict[str, float] = field(default_factory=dict)
    # processor name -> station-level blocked fraction (M/M/c/K P_K).
    station_loss_probability: dict[str, float] = field(default_factory=dict)

    def total_loss_rate_req_per_s(self) -> float:
        """Total shed traffic across classes (requests/second).

        ``throughput_req_per_s`` holds *carried* throughput, so each
        class's offered rate is carried/(1 − loss).
        """
        total = 0.0
        for name, loss in self.loss_probability.items():
            if loss > 0.0:
                carried = self.throughput_req_per_s.get(name, 0.0)
                total += carried * loss / (1.0 - loss)
        return total

    @property
    def class_names(self) -> list[str]:
        """Service classes in the solution."""
        return sorted(self.response_ms)

    def mean_response_ms(self) -> float:
        """Throughput-weighted mean response time across classes (ms).

        This is the workload-level metric the paper's figures plot when the
        workload is heterogeneous.
        """
        total_tput = sum(self.throughput_req_per_s.values())
        if total_tput <= 0:
            return float("nan")
        return (
            sum(
                self.response_ms[c] * self.throughput_req_per_s[c]
                for c in self.response_ms
            )
            / total_tput
        )

    def total_throughput_req_per_s(self) -> float:
        """Total predicted request throughput across classes (req/s)."""
        return sum(self.throughput_req_per_s.values())
