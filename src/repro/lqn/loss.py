"""Finite-capacity (loss) queueing: closed forms and the MVA composition.

Real e-commerce front-ends do not queue unboundedly — beyond a capacity
``K`` they shed load.  The capacity-limited birth-death queues have exact
closed forms (the SNIPPETS formulary's M/M/1/K and M/M/c/K state-probability
recursions), and this module supplies them plus the piece that makes them
usable inside the layered solver:

* :func:`mmck_state_probabilities` — the stationary distribution of an
  M/M/c/K queue, computed in log domain so the same code is stable from
  ``a → 0`` to deep overload and to very large ``K`` (where the loss
  probability underflows to an *exact* 0.0 — the K→∞ degeneration the
  test battery pins bitwise);
* :func:`mmck_loss_quantities` — loss probability, mean number in system
  and carried (effective) load, vectorised over a batch of offered loads;
* scalar conveniences (:func:`mm1k_loss_probability`,
  :func:`mmck_loss_probability`, :func:`mmck_mean_in_system`,
  :func:`effective_throughput`) for oracle tests and experiments;
* :func:`solve_batch_with_loss` — the finite-capacity solve path: an
  **effective-arrival-rate fixed point** around the untouched
  :func:`repro.lqn.mva.solve_batch` core.  Stations with a finite
  ``capacity`` shed the closed-form blocked fraction of their *offered*
  open traffic; downstream stations (in station order) see only the
  carried load, the Bard–Schweitzer core re-solves with the thinned
  demands, and the loop repeats until the per-station loss probabilities
  are stable.  Networks with no capacity bound never enter the loop and
  return the core's result bit-for-bit.

Drop-vs-balk semantics live in the simulator
(:mod:`repro.simulation.resources`); analytically both are the same
blocked-stationary-state probability, which is why one closed form anchors
both code paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lqn.mva import MvaBatchInput, MvaBatchSolution, StationKind, solve_batch
from repro.util.errors import ConvergenceError
from repro.util.validation import check_non_negative, check_positive_int, require

__all__ = [
    "LossQuantities",
    "mmck_state_probabilities",
    "mmck_loss_quantities",
    "mm1k_loss_probability",
    "mmck_loss_probability",
    "mmck_mean_in_system",
    "effective_throughput",
    "solve_batch_with_loss",
]

#: Fixed-point tolerance on per-station loss probabilities.
LOSS_TOL = 1e-12

#: Iteration cap for the effective-arrival-rate fixed point.  The loop is
#: a contraction in practice (loss thins traffic, which lowers loss); 200
#: rounds is far beyond anything a sane model needs.
MAX_LOSS_ITERATIONS = 200


def mmck_state_probabilities(
    offered_erlangs: np.ndarray | float, servers: int, capacity: int
) -> np.ndarray:
    """Stationary distribution of an M/M/c/K queue, vectorised over loads.

    ``offered_erlangs`` is ``a = λ·E[S]`` (the *offered* traffic, which may
    exceed the station's ``servers`` — the queue is stable for any load).
    Returns an array of shape ``(..., capacity + 1)`` with
    ``p[..., n] = P(N = n)``.  Computed in log domain (a softmax over the
    birth-death log-weights), so no intermediate overflows for large ``K``
    or deep overload, and for ``a/c < 1`` with very large ``K`` the blocked
    state's probability underflows to an exact 0.0.
    """
    check_positive_int(servers, "servers")
    check_positive_int(capacity, "capacity")
    require(capacity >= servers, "capacity must be >= servers (K >= c)")
    a = np.asarray(offered_erlangs, dtype=float)
    check_non_negative(float(a.min()) if a.size else 0.0, "offered_erlangs")
    n = np.arange(capacity + 1)
    # log(n-th service product): sum of log(min(i, c)) for i = 1..n.
    log_rates = np.concatenate(([0.0], np.log(np.minimum(n[1:], servers)).cumsum()))
    with np.errstate(divide="ignore", invalid="ignore"):
        log_a = np.where(a > 0.0, np.log(np.where(a > 0.0, a, 1.0)), -np.inf)
        log_w = n * log_a[..., None] - log_rates
    # a == 0: every weight but n=0 is -inf; n=0 must be exactly 0 (empty).
    log_w[..., 0] = 0.0
    peak = log_w.max(axis=-1, keepdims=True)
    w = np.exp(log_w - peak)
    return w / w.sum(axis=-1, keepdims=True)


@dataclass(frozen=True)
class LossQuantities:
    """Closed-form steady-state quantities of a batch of M/M/c/K queues.

    All arrays share the shape of the offered-load input:
    ``loss_probability`` is the blocked fraction ``P(N = K)``,
    ``mean_in_system`` is ``L = E[N]`` and ``carried_erlangs`` is the
    admitted work ``a·(1 − P_K) = Σ min(n, c)·p_n`` — computed from the
    distribution directly, so it stays strictly below ``c`` even when the
    naive ``a·(1 − P_K)`` product would lose every significant digit in
    deep overload.
    """

    loss_probability: np.ndarray
    mean_in_system: np.ndarray
    carried_erlangs: np.ndarray


def mmck_loss_quantities(
    offered_erlangs: np.ndarray | float, servers: int, capacity: int
) -> LossQuantities:
    """Loss probability, mean number in system and carried load of M/M/c/K."""
    p = mmck_state_probabilities(offered_erlangs, servers, capacity)
    n = np.arange(capacity + 1)
    return LossQuantities(
        loss_probability=p[..., -1],
        mean_in_system=(n * p).sum(axis=-1),
        carried_erlangs=(np.minimum(n, servers) * p).sum(axis=-1),
    )


def mm1k_loss_probability(rho: float, capacity: int) -> float:
    """Loss probability of an M/M/1/K queue at offered utilisation ``rho``."""
    return float(mmck_loss_quantities(rho, 1, capacity).loss_probability)


def mmck_loss_probability(offered_erlangs: float, servers: int, capacity: int) -> float:
    """Loss probability of an M/M/c/K queue at offered load ``a`` Erlangs."""
    return float(mmck_loss_quantities(offered_erlangs, servers, capacity).loss_probability)


def mmck_mean_in_system(offered_erlangs: float, servers: int, capacity: int) -> float:
    """Mean number in system (``L``) of an M/M/c/K queue."""
    return float(mmck_loss_quantities(offered_erlangs, servers, capacity).mean_in_system)


def effective_throughput(offered_rate: float, loss_probability: float) -> float:
    """Carried (admitted) rate of a loss queue: ``λ·(1 − P_loss)``."""
    check_non_negative(offered_rate, "offered_rate")
    return offered_rate * (1.0 - loss_probability)


def _clone_with_open_demands(inp: MvaBatchInput, open_demands: np.ndarray) -> MvaBatchInput:
    """A validation-free shallow clone of ``inp`` with new open demands."""
    clone = object.__new__(MvaBatchInput)
    clone.stations = inp.stations
    clone.class_names = inp.class_names
    clone.populations = inp.populations
    clone.think_times_ms = inp.think_times_ms
    clone.demands = inp.demands
    clone.hidden_demands = inp.hidden_demands
    clone.open_class_names = inp.open_class_names
    clone.open_rates_per_ms = inp.open_rates_per_ms
    clone.open_demands = open_demands
    return clone


def _survival_per_station(
    inp: MvaBatchInput, loss: np.ndarray, cap_indices: list[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Per-(point, open class, station) survival products through the chain.

    Stations shed in list order (the order the layered builder emits them):
    a class's traffic *offered to* station ``k`` has survived every earlier
    capacity station it visits, and its traffic *carried past* ``k`` has
    additionally survived ``k`` itself.  Returns ``(before, through)``,
    both shaped ``(B, O, K)``.
    """
    B = inp.batch_size
    O = len(inp.open_class_names)
    K = len(inp.stations)
    before = np.ones((B, O, K))
    through = np.ones((B, O, K))
    running = np.ones((B, O))
    visits = inp.open_demands > 0.0
    for k in range(K):
        before[:, :, k] = running
        if k in cap_indices:
            running = running * np.where(visits[:, :, k], (1.0 - loss[:, k])[:, None], 1.0)
        through[:, :, k] = running
    return before, through


def solve_batch_with_loss(
    inp: MvaBatchInput,
    *,
    tol: float = 1e-10,
    max_iterations: int = 100_000,
    damping: float = 0.5,
    initial_queue_lengths: np.ndarray | None = None,
    iteration_hook=None,
) -> MvaBatchSolution:
    """Solve a sweep with finite-capacity (loss) stations.

    The finite-capacity solve path promised by the loss-aware system
    model: stations whose :class:`~repro.lqn.mva.Station` carries a
    ``capacity`` shed the M/M/c/K blocked fraction of their offered open
    traffic, and the composition with the Bard–Schweitzer core is an
    effective-arrival-rate fixed point —

    1. compute each capacity station's *offered* load in Erlangs (closed
       work from the current throughputs plus upstream-thinned open
       arrivals), and from it the closed-form loss probability;
    2. thin every open class's per-station demand by its survival product
       (so ``ρ_open`` and open response times see only *carried* load);
    3. re-run :func:`~repro.lqn.mva.solve_batch` — freeze-on-converge
       semantics intact, it is called as a black box — and repeat until
       the loss probabilities move less than :data:`LOSS_TOL`.

    With no capacity stations (or when every loss probability is exactly
    zero, the K→∞ degeneration) the core is called exactly once on the
    unmodified input and its result is returned **bit-for-bit**, with
    zero loss arrays attached.  Closed classes are never shed — a closed
    population self-throttles — so their ``loss_probability`` is the
    station-level blocked fraction, reported per class as 0.0.
    """
    stations = inp.stations
    B = inp.batch_size
    K = len(stations)
    cap_indices = [k for k, s in enumerate(stations) if s.capacity is not None]
    open_names = list(inp.open_class_names or ())

    def _attach(sol: MvaBatchSolution, loss: np.ndarray, mean_n: np.ndarray,
                class_loss: np.ndarray) -> MvaBatchSolution:
        sol.loss_probability = loss
        sol.capacity_mean_in_system = mean_n
        sol.open_loss = [
            {name: float(class_loss[b, o]) for o, name in enumerate(open_names)}
            for b in range(B)
        ]
        return sol

    def _solve(open_demands: np.ndarray | None) -> MvaBatchSolution:
        target = inp if open_demands is None else _clone_with_open_demands(inp, open_demands)
        return solve_batch(
            target,
            tol=tol,
            max_iterations=max_iterations,
            damping=damping,
            initial_queue_lengths=initial_queue_lengths,
            iteration_hook=iteration_hook,
        )

    if not cap_indices:
        sol = _solve(None)
        zeros = np.zeros((B, K))
        return _attach(sol, zeros, zeros.copy(), np.zeros((B, len(open_names))))

    servers_at = {k: stations[k].servers for k in cap_indices}
    capacity_at = {k: stations[k].capacity for k in cap_indices}
    rates = inp.open_rates_per_ms  # (B, O)
    D_open = inp.open_demands  # (B, O, K)

    def _loss_from(loss: np.ndarray, closed_work: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Next loss iterate and closed-form L, from the current survival."""
        before, _ = _survival_per_station(inp, loss, cap_indices)
        new_loss = np.zeros((B, K))
        mean_n = np.zeros((B, K))
        for k in cap_indices:
            offered = closed_work[:, k] + (
                rates * before[:, :, k] * D_open[:, :, k]
            ).sum(axis=1)
            q = mmck_loss_quantities(offered, servers_at[k], capacity_at[k])
            new_loss[:, k] = q.loss_probability
            mean_n[:, k] = q.mean_in_system
        return new_loss, mean_n

    # Seed the fixed point from the open traffic alone (no MVA needed):
    # this keeps the first core solve feasible even when the *offered*
    # open load exceeds a capacity station's servers, which the unbounded
    # core would rightly reject as unstable.
    loss, _ = _loss_from(np.zeros((B, K)), np.zeros((B, K)))

    sol = None
    for _ in range(MAX_LOSS_ITERATIONS):
        if not loss.any():
            # K→∞ degeneration: nothing sheds, so the thinning factors are
            # all exactly 1.0 — solve the *unmodified* input so the result
            # is bit-identical to the plain unbounded core.
            sol = _solve(None)
        else:
            _, through = _survival_per_station(inp, loss, cap_indices)
            sol = _solve(D_open * through)
        closed_work = (
            sol.throughput_per_ms[:, :, None] * (inp.demands + inp.hidden_demands)
        ).sum(axis=1)
        new_loss, mean_n = _loss_from(loss, closed_work)
        residual = float(np.abs(new_loss - loss).max())
        loss = new_loss
        if residual <= LOSS_TOL:
            break
    else:
        raise ConvergenceError(
            "effective-arrival-rate loss fixed point did not converge",
            iterations=MAX_LOSS_ITERATIONS,
            residual=residual,
        )

    before, through = _survival_per_station(inp, loss, cap_indices)
    class_loss = 1.0 - through[:, :, -1] if K else np.zeros((B, len(open_names)))

    if loss.any():
        # Open response times at capacity stations come from the closed
        # form (Little on the accepted stream: W/E[S] = L/a_carried); the
        # unbounded 1/(1-rho) inflation is meaningless past the knee.
        is_delay = np.array([s.kind is StationKind.DELAY for s in stations])
        servers = np.array([s.servers for s in stations], dtype=float)
        thinned = D_open * through
        rho_eff = (
            (rates[:, :, None] * thinned).sum(axis=1) / servers
            if rates.size
            else np.zeros((B, K))
        )
        q_closed = sol.queue_lengths.sum(axis=1)  # (B, K)
        carried = np.zeros((B, K))
        for k in cap_indices:
            offered = closed_work[:, k] + (
                rates * before[:, :, k] * D_open[:, :, k]
            ).sum(axis=1)
            carried[:, k] = mmck_loss_quantities(
                offered, servers_at[k], capacity_at[k]
            ).carried_erlangs
        mean_n_local = mean_n
        for o, name in enumerate(open_names):
            demand = D_open[:, o, :]  # (B, K)
            r = np.where(
                is_delay[None, :],
                demand,
                demand * (1.0 + q_closed / servers) / np.maximum(1.0 - rho_eff, 1e-12),
            )
            for k in cap_indices:
                with np.errstate(divide="ignore", invalid="ignore"):
                    factor = np.where(
                        carried[:, k] > 0.0,
                        mean_n_local[:, k] / np.where(carried[:, k] > 0.0, carried[:, k], 1.0),
                        1.0,
                    )
                r[:, k] = demand[:, k] * factor
            totals = r.sum(axis=1)
            for b in range(B):
                sol.open_response_ms[b][name] = float(totals[b])

    return _attach(sol, loss, mean_n, class_loss)
