"""Serialisation of layered queuing models.

LQNS models live in files; to make this solver a practical replacement the
model structure round-trips through a plain-dict (JSON-compatible) form:

>>> data = model_to_dict(model)
>>> rebuilt = model_from_dict(data)

plus convenience :func:`save_model` / :func:`load_model` for JSON files.
The dict layout is versioned so future extensions stay loadable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.lqn.model import Call, CallKind, Entry, LqnModel, Processor, Scheduling, Task
from repro.util.errors import ModelError

__all__ = ["model_to_dict", "model_from_dict", "save_model", "load_model", "FORMAT_VERSION"]

FORMAT_VERSION = 1


def model_to_dict(model: LqnModel) -> dict[str, Any]:
    """A JSON-compatible description of ``model`` (validated first)."""
    model.validate()
    return {
        "format": "repro-lqn",
        "version": FORMAT_VERSION,
        "processors": [
            {
                "name": p.name,
                "scheduling": p.scheduling.value,
                "multiplicity": p.multiplicity,
                "speed": p.speed,
            }
            for p in model.processors.values()
        ],
        "tasks": [
            {
                "name": t.name,
                "processor": t.processor,
                "multiplicity": t.multiplicity,
                "is_reference": t.is_reference,
                "think_time_ms": t.think_time_ms,
                "open_arrival_rate_per_s": t.open_arrival_rate_per_s,
                "entries": [
                    {
                        "name": e.name,
                        "demand_ms": e.demand_ms,
                        "phase2_demand_ms": e.phase2_demand_ms,
                        "calls": [
                            {
                                "target": c.target_entry,
                                "mean_calls": c.mean_calls,
                                "kind": c.kind.value,
                            }
                            for c in e.calls
                        ],
                    }
                    for e in t.entries
                ],
            }
            for t in model.tasks.values()
        ],
    }


def model_from_dict(data: dict[str, Any]) -> LqnModel:
    """Rebuild a validated :class:`LqnModel` from :func:`model_to_dict` output."""
    if data.get("format") != "repro-lqn":
        raise ModelError(f"not a repro-lqn document: format={data.get('format')!r}")
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ModelError(
            f"unsupported repro-lqn version {version!r} (supported: {FORMAT_VERSION})"
        )
    model = LqnModel()
    for p in data.get("processors", []):
        model.add_processor(
            Processor(
                name=p["name"],
                scheduling=Scheduling(p.get("scheduling", "ps")),
                multiplicity=int(p.get("multiplicity", 1)),
                speed=float(p.get("speed", 1.0)),
            )
        )
    for t in data.get("tasks", []):
        entries = tuple(
            Entry(
                name=e["name"],
                demand_ms=float(e["demand_ms"]),
                phase2_demand_ms=float(e.get("phase2_demand_ms", 0.0)),
                calls=tuple(
                    Call(
                        target_entry=c["target"],
                        mean_calls=float(c["mean_calls"]),
                        kind=CallKind(c.get("kind", "sync")),
                    )
                    for c in e.get("calls", [])
                ),
            )
            for e in t.get("entries", [])
        )
        model.add_task(
            Task(
                name=t["name"],
                processor=t["processor"],
                entries=entries,
                multiplicity=int(t.get("multiplicity", 1)),
                is_reference=bool(t.get("is_reference", False)),
                think_time_ms=float(t.get("think_time_ms", 0.0)),
                open_arrival_rate_per_s=float(t.get("open_arrival_rate_per_s", 0.0)),
            )
        )
    model.validate()
    return model


def save_model(model: LqnModel, path: str | Path) -> Path:
    """Write ``model`` to a JSON file; returns the path."""
    target = Path(path)
    target.write_text(json.dumps(model_to_dict(model), indent=2) + "\n")
    return target


def load_model(path: str | Path) -> LqnModel:
    """Read a model saved with :func:`save_model`."""
    return model_from_dict(json.loads(Path(path).read_text()))
