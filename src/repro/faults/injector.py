"""The fault-injection runtime behind the stack's injection points.

Mirrors the :data:`~repro.trace.TRACER` design: one processwide
:data:`INJECTOR` that every injection point consults, disarmed by
default, with a single attribute read (``armed``) as the hot-path
guard — so leaving the injection points threaded through the solver,
the historical layer and the serving stack costs effectively nothing
in production (gated by ``benchmarks/test_bench_faults_overhead.py``,
same <2 %-of-a-solve budget as the disabled tracer).

The three consultation verbs map onto the
:class:`~repro.faults.plan.FaultKind` families:

* :meth:`FaultInjector.fire` — ERROR and LATENCY specs: delay first,
  then raise (a site that is both slow and failing is the realistic
  worst case);
* :meth:`FaultInjector.trips` — TRIP specs: returns True when the
  site's degradation switch should flip (forced cache expiry, forced
  admission rejection);
* :meth:`FaultInjector.filter` — CORRUPT specs: passes the site's value
  through the scheduled corruption.

Determinism: per-spec call counters and per-spec seeded RNG streams
(``spawn_rng(plan.seed, "fault:" + spec.name)``) live in one
:class:`_ArmedSession` object that is swapped wholesale on arm/disarm,
so a plan armed twice starts from the same state both times.  Injected
latency goes through the session's ``sleep`` callable — pass
``sleep=fake_clock.advance`` alongside a
:class:`~repro.util.clock.FakeClock` and chaos time itself becomes
deterministic.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Any, Callable, Iterator

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.trace import TRACER
from repro.util.clock import SYSTEM_CLOCK, Clock
from repro.util.errors import ReproError
from repro.util.rng import spawn_rng

__all__ = ["InjectedFaultError", "FaultInjector", "INJECTOR", "inject"]


class InjectedFaultError(ReproError):
    """The default exception raised by ERROR specs without an ``error`` type."""


class _ArmedSession:
    """All mutable state of one armed plan (counters, RNG streams, epoch)."""

    def __init__(self, plan: FaultPlan, clock: Clock, sleep: Callable[[float], None]):
        self.plan = plan
        self.clock = clock
        self.sleep = sleep
        self.armed_at_s = clock.monotonic_s()
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {spec.name: 0 for spec in plan.specs}
        self._injected: dict[str, int] = {spec.name: 0 for spec in plan.specs}
        self._rngs = {
            spec.name: spawn_rng(plan.seed, f"fault:{spec.name}") for spec in plan.specs
        }

    def decide(self, spec: FaultSpec) -> bool:
        """Advance the spec's call counter and evaluate its trigger."""
        now_s = self.clock.monotonic_s() - self.armed_at_s
        with self._lock:
            self._calls[spec.name] += 1
            n = self._calls[spec.name]
            if spec.call_window is not None:
                first, last = spec.call_window
                if n < first or (last is not None and n > last):
                    return False
            if spec.every_nth is not None and n % spec.every_nth != 0:
                return False
            if spec.on_calls is not None and n not in spec.on_calls:
                return False
            if spec.time_window is not None:
                start_s, end_s = spec.time_window
                if not (start_s <= now_s < end_s):
                    return False
            if spec.probability is not None:
                # Drawn under the lock: the numpy Generator is not
                # thread-safe, and the draw sequence is what makes the
                # trigger replayable.
                if float(self._rngs[spec.name].random()) >= spec.probability:
                    return False
            self._injected[spec.name] += 1
        TRACER.instant(
            "fault.injected", site=spec.site, spec=spec.name, kind=spec.kind.value
        )
        return True

    def counts(self) -> dict[str, int]:
        """Times each spec actually injected, keyed by spec name."""
        with self._lock:
            return dict(self._injected)

    def consultations(self) -> dict[str, int]:
        """Times each spec's trigger was evaluated, keyed by spec name."""
        with self._lock:
            return dict(self._calls)


class FaultInjector:
    """Consulted by every injection point; disarmed (free) by default.

    ``armed`` is a plain attribute deliberately written *outside* any
    lock (the same publication idiom as ``Tracer._enabled``): injection
    points read it on hot paths, and arming/disarming happens on a
    single controlling thread between load phases.
    """

    def __init__(self, *, clock: Clock = SYSTEM_CLOCK):
        self.armed = False
        self._default_clock = clock
        self._session: _ArmedSession | None = None

    # -- arming ---------------------------------------------------------------

    def arm(
        self,
        plan: FaultPlan,
        *,
        clock: Clock | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        """Arm ``plan``: injection points start consulting its specs.

        ``clock`` drives time-window triggers and defaults to the
        injector's construction clock; ``sleep`` implements LATENCY
        specs and defaults to :func:`time.sleep` — pass a
        :meth:`FakeClock.advance <repro.util.clock.FakeClock.advance>`
        bound method to make injected latency advance fake time instead
        of wall time.  Arming replaces any previously armed plan.
        """
        self._session = _ArmedSession(
            plan, clock if clock is not None else self._default_clock,
            sleep if sleep is not None else time.sleep,
        )
        self.armed = True

    def disarm(self) -> dict[str, int]:
        """Disarm; returns ``{spec name: times injected}`` for the report."""
        self.armed = False
        session, self._session = self._session, None
        return session.counts() if session is not None else {}

    @property
    def plan(self) -> FaultPlan | None:
        """The currently armed plan, if any."""
        session = self._session
        return session.plan if session is not None else None

    def injected_counts(self) -> dict[str, int]:
        """Live ``{spec name: times injected}`` of the armed plan (or {})."""
        session = self._session
        return session.counts() if session is not None else {}

    # -- the consultation verbs ------------------------------------------------

    def fire(self, site: str) -> None:
        """Apply ERROR/LATENCY specs at ``site``: delay first, then raise."""
        if not self.armed:
            return
        session = self._session
        if session is None:  # pragma: no cover - disarm race window
            return
        raise_spec: FaultSpec | None = None
        for spec in session.plan.for_site(site):
            if spec.kind is FaultKind.LATENCY and session.decide(spec):
                session.sleep(spec.delay_s)
            elif spec.kind is FaultKind.ERROR:
                # Every ERROR spec's counter advances even once one has
                # been chosen to raise (only the first firing spec wins),
                # mirroring trips(): a spec's every_nth/on_calls schedule
                # never depends on an earlier spec's outcome, keeping
                # multi-spec sites deterministic.
                if session.decide(spec) and raise_spec is None:
                    raise_spec = spec
        if raise_spec is not None:
            raise raise_spec.make_error()

    def trips(self, site: str) -> bool:
        """Whether a TRIP spec fires at ``site`` (forced degradation)."""
        if not self.armed:
            return False
        session = self._session
        if session is None:  # pragma: no cover - disarm race window
            return False
        tripped = False
        for spec in session.plan.for_site(site):
            # Every TRIP spec's counter advances even once one has fired,
            # keeping multi-spec sites deterministic under any outcome.
            if spec.kind is FaultKind.TRIP and session.decide(spec):
                tripped = True
        return tripped

    def filter(self, site: str, value: Any) -> Any:
        """Pass ``value`` through any CORRUPT specs firing at ``site``."""
        if not self.armed:
            return value
        session = self._session
        if session is None:  # pragma: no cover - disarm race window
            return value
        for spec in session.plan.for_site(site):
            if spec.kind is FaultKind.CORRUPT and session.decide(spec):
                assert spec.corrupt is not None  # enforced by FaultSpec
                value = spec.corrupt(value)
        return value


#: The processwide injector every injection point consults.
INJECTOR = FaultInjector()


@contextlib.contextmanager
def inject(
    plan: FaultPlan,
    *,
    injector: FaultInjector | None = None,
    clock: Clock | None = None,
    sleep: Callable[[float], None] | None = None,
) -> Iterator[FaultInjector]:
    """Scoped arming: ``with inject(plan): ...`` disarms on exit.

    The test-suite idiom — guarantees the global injector never leaks an
    armed plan into unrelated tests, whatever the block raises.
    """
    target = injector if injector is not None else INJECTOR
    target.arm(plan, clock=clock, sleep=sleep)
    try:
        yield target
    finally:
        target.disarm()
