"""Declarative fault plans: what breaks, where, and when.

A :class:`FaultPlan` is data, not code — a named, seeded schedule of
:class:`FaultSpec` entries that the :class:`~repro.faults.injector.
FaultInjector` interprets at the injection sites threaded through the
stack.  Keeping plans declarative buys the chaos experiment its two key
properties: plans are trivially serializable into the recovery report
(so a CI diff shows *what* was injected, not just what happened), and
every stochastic decision is attributable to a named
:func:`~repro.util.rng.spawn_rng` sub-stream of the plan seed.

The four fault kinds map onto the four ways the serving stack can be
hurt:

=========  ==================================================
kind       effect at the injection site
=========  ==================================================
ERROR      raise ``spec.error(spec.message)``
LATENCY    delay ``spec.delay_s`` (via the injector's sleeper)
TRIP       flip a site-specific degradation switch (forced
           cache expiry, forced admission rejection)
CORRUPT    pass the site's value through ``spec.corrupt``
=========  ==================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.util.validation import check_fraction, check_non_negative, require

__all__ = ["FaultKind", "FaultSpec", "FaultPlan"]


class FaultKind(enum.Enum):
    """What happens when a fault spec's trigger fires."""

    ERROR = "error"
    LATENCY = "latency"
    TRIP = "trip"
    CORRUPT = "corrupt"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: a site, a kind, and a (conjunctive) trigger.

    Trigger fields compose with AND semantics — a spec with both
    ``call_window`` and ``probability`` fires only on calls inside the
    window that also win the seeded coin flip.  A spec with no trigger
    fields fires on every consultation of its site.

    ``every_nth`` counts consultations of this spec (fire on calls n,
    2n, 3n, …); ``on_calls`` names exact 1-based call numbers;
    ``call_window`` is an inclusive ``(first, last)`` call range
    (``None`` as last = open-ended); ``time_window`` is a
    ``[start_s, end_s)`` window on the injector's clock, measured from
    the moment the plan was armed.
    """

    site: str
    kind: FaultKind
    name: str = ""
    # -- effect parameters ----------------------------------------------------
    error: type[Exception] | None = None
    message: str = "injected fault"
    delay_s: float = 0.0
    corrupt: Callable[[Any], Any] | None = None
    # -- trigger parameters ---------------------------------------------------
    every_nth: int | None = None
    on_calls: tuple[int, ...] | None = None
    call_window: tuple[int, int | None] | None = None
    probability: float | None = None
    time_window: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        """Validate the spec and default its name from the site."""
        require(bool(self.site), "site must be non-empty")
        if not self.name:
            object.__setattr__(self, "name", f"{self.site}:{self.kind.value}")
        if self.kind is FaultKind.LATENCY:
            require(self.delay_s > 0.0, "LATENCY specs need delay_s > 0")
        else:
            check_non_negative(self.delay_s, "delay_s")
        if self.kind is FaultKind.CORRUPT:
            require(self.corrupt is not None, "CORRUPT specs need a corrupt callable")
        if self.every_nth is not None:
            require(self.every_nth >= 1, "every_nth must be >= 1")
        if self.on_calls is not None:
            require(
                len(self.on_calls) > 0 and all(n >= 1 for n in self.on_calls),
                "on_calls must name 1-based call numbers",
            )
        if self.call_window is not None:
            first, last = self.call_window
            require(first >= 1, "call_window must start at call 1 or later")
            require(
                last is None or last >= first,
                "call_window must be an inclusive (first, last) range",
            )
        if self.probability is not None:
            check_fraction(self.probability, "probability")
        if self.time_window is not None:
            start_s, end_s = self.time_window
            check_non_negative(start_s, "time_window start")
            require(end_s > start_s, "time_window must be a non-empty [start, end)")

    def make_error(self) -> Exception:
        """Instantiate this spec's exception (used by ERROR triggers)."""
        from repro.faults.injector import InjectedFaultError

        error_type = self.error if self.error is not None else InjectedFaultError
        return error_type(f"{self.message} [{self.name}]")


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded schedule of fault specs plus its documented promise.

    ``error_rate_ceiling`` is the plan's contract with the chaos
    experiment: the fraction of load-generator requests that may fail
    outright (no answer at all) while this plan is armed.  A plan aimed
    at a service with a registered fallback documents ``0.0`` — every
    degraded request must still be answered — and the chaos report
    asserts the measured rate against it.
    """

    name: str
    specs: tuple[FaultSpec, ...]
    seed: int = 0
    error_rate_ceiling: float = 0.0
    description: str = ""
    # Derived site index, built once in __post_init__.
    _by_site: dict[str, tuple[FaultSpec, ...]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        """Validate uniqueness and index the specs by site."""
        require(bool(self.name), "plan name must be non-empty")
        require(len(self.specs) > 0, "a fault plan needs at least one spec")
        check_fraction(self.error_rate_ceiling, "error_rate_ceiling")
        names = [spec.name for spec in self.specs]
        require(
            len(set(names)) == len(names),
            f"fault spec names must be unique, got {sorted(names)}",
        )
        by_site: dict[str, list[FaultSpec]] = {}
        for spec in self.specs:
            by_site.setdefault(spec.site, []).append(spec)
        object.__setattr__(
            self, "_by_site", {site: tuple(specs) for site, specs in by_site.items()}
        )

    def for_site(self, site: str) -> tuple[FaultSpec, ...]:
        """The specs scheduled at ``site`` (empty when none)."""
        return self._by_site.get(site, ())

    def sites(self) -> list[str]:
        """Every injection site this plan touches, sorted."""
        return sorted(self._by_site)

    def describe(self) -> dict[str, Any]:
        """A JSON-friendly rendering for recovery reports."""
        return {
            "name": self.name,
            "seed": self.seed,
            "error_rate_ceiling": self.error_rate_ceiling,
            "specs": [
                {
                    "name": spec.name,
                    "site": spec.site,
                    "kind": spec.kind.value,
                    "delay_s": spec.delay_s,
                    "every_nth": spec.every_nth,
                    "on_calls": list(spec.on_calls) if spec.on_calls else None,
                    "call_window": list(spec.call_window) if spec.call_window else None,
                    "probability": spec.probability,
                    "time_window": list(spec.time_window) if spec.time_window else None,
                }
                for spec in self.specs
            ],
        }
