"""repro.faults — deterministic fault injection and chaos testing.

The serving stack promises graceful degradation (cache → admission →
pool → retries → fallback), and the paper's comparative claim assumes
the three prediction methods stay mutually available; this subsystem is
how both promises get *tested* instead of trusted.  It has two halves:

* a declarative :class:`FaultPlan` — a schedule of :class:`FaultSpec`
  entries keyed by **injection site** (a dotted name like
  ``"lqn.solve"`` or ``"service.cache.expire"``) and **trigger**
  (nth call, call window, seeded probability, clock time window);
* the :class:`FaultInjector` — the runtime that injection points
  threaded through the solver, the historical layer, the service cache,
  admission control and the worker pool consult.  Disarmed (the default)
  every consultation is a near-free early return, benchmarked in
  ``benchmarks/test_bench_faults_overhead.py`` the same way the
  disabled tracer is.

Everything is deterministic under a fixed plan seed: probabilistic
triggers draw from named :func:`repro.util.rng.spawn_rng` sub-streams,
and time windows read an injectable :class:`~repro.util.clock.Clock`,
so a chaos run under :class:`~repro.util.clock.FakeClock` replays
bit-identically (the CI ``chaos`` job proves it by diffing two runs).

Quickstart::

    from repro.faults import FaultKind, FaultPlan, FaultSpec, INJECTOR

    plan = FaultPlan(
        name="solver-brownout",
        specs=(
            FaultSpec(site="lqn.solve", kind=FaultKind.ERROR,
                      probability=0.5, error=ConvergenceError),
        ),
        seed=2004,
    )
    INJECTOR.arm(plan)
    try:
        ...  # drive the service; solves now fail half the time
    finally:
        report = INJECTOR.disarm()   # {spec name: times injected}
"""

from repro.faults.injector import INJECTOR, FaultInjector, InjectedFaultError, inject
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFaultError",
    "INJECTOR",
    "inject",
]
