"""Request-trace generation, persistence and replay.

Performance teams often work from *traces* (timestamped request logs) rather
than live load generators.  This module closes that loop for the simulated
testbed:

* :func:`generate_trace` synthesises a Poisson request trace for a service
  class (the open-workload analogue of a JMeter script);
* :func:`save_trace_csv` / :func:`load_trace_csv` persist traces in the
  obvious interchange format;
* :class:`TraceReplaySource` replays a trace into a simulated application
  server, timestamp by timestamp — so recorded (or hand-crafted) workloads
  drive exactly the same machinery as the synthetic generators.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.util.errors import ValidationError
from repro.util.rng import spawn_rng
from repro.util.validation import check_non_negative, check_positive
from repro.workload.operations import operation
from repro.workload.service_class import ServiceClass

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.simulation.appserver import AppServerSim
    from repro.simulation.engine import Simulator
    from repro.simulation.metrics import MetricsCollector

__all__ = [
    "TraceEntry",
    "generate_trace",
    "save_trace_csv",
    "load_trace_csv",
    "TraceReplaySource",
]

_TRACE_COLUMNS = ("arrival_ms", "operation", "client_id")
# Traces recorded against a finite-capacity server carry a fourth column
# marking requests the server shed; drop-free traces keep the 3-column
# layout so existing files and their consumers are untouched.
_TRACE_COLUMNS_WITH_DROPS = _TRACE_COLUMNS + ("dropped",)


@dataclass(frozen=True, slots=True)
class TraceEntry:
    """One request in a trace.

    ``dropped`` marks an offered request that a finite-capacity server
    shed instead of serving — present in traces recorded under overload.
    """

    arrival_ms: float
    operation: str
    client_id: str
    dropped: bool = False

    def __post_init__(self) -> None:
        check_non_negative(self.arrival_ms, "arrival_ms")


def generate_trace(
    service_class: ServiceClass,
    rate_req_per_s: float,
    duration_s: float,
    *,
    seed: int = 0,
    n_clients: int = 100,
) -> list[TraceEntry]:
    """A Poisson request trace drawn from a service class's behaviour.

    Requests arrive at mean rate ``rate_req_per_s``; each is attributed to
    one of ``n_clients`` synthetic client identities (round-robin over the
    class's session script for scripted classes).
    """
    check_positive(rate_req_per_s, "rate_req_per_s")
    check_positive(duration_s, "duration_s")
    check_positive(float(n_clients), "n_clients")
    rng = spawn_rng(seed, f"trace:{service_class.name}")
    mean_gap = 1000.0 / rate_req_per_s
    entries: list[TraceEntry] = []
    positions = [0] * n_clients
    t = 0.0
    end = duration_s * 1000.0
    while True:
        t += float(rng.exponential(mean_gap))
        if t >= end:
            break
        client = int(rng.integers(0, n_clients))
        op = service_class.behaviour.next_operation(rng, positions[client])
        positions[client] += 1
        entries.append(
            TraceEntry(
                arrival_ms=t,
                operation=op.name,
                client_id=f"{service_class.name}:{client}",
            )
        )
    return entries


def save_trace_csv(trace: list[TraceEntry], path: str | Path) -> Path:
    """Write a trace as CSV; returns the path.

    Drop-free traces use the legacy 3-column layout byte-for-byte; a trace
    with at least one dropped entry gains the ``dropped`` column (0/1).
    """
    target = Path(path)
    with_drops = any(entry.dropped for entry in trace)
    with open(target, "w", newline="") as handle:
        writer = csv.writer(handle)
        if with_drops:
            writer.writerow(_TRACE_COLUMNS_WITH_DROPS)
            for entry in trace:
                writer.writerow(
                    [
                        repr(entry.arrival_ms),
                        entry.operation,
                        entry.client_id,
                        "1" if entry.dropped else "0",
                    ]
                )
        else:
            writer.writerow(_TRACE_COLUMNS)
            for entry in trace:
                writer.writerow([repr(entry.arrival_ms), entry.operation, entry.client_id])
    return target


def load_trace_csv(path: str | Path) -> list[TraceEntry]:
    """Read a trace written by :func:`save_trace_csv` (validates columns,
    operation names, and arrival-time ordering).

    Accepts both the legacy 3-column layout and the 4-column layout with
    the ``dropped`` marker.
    """
    source = Path(path)
    if not source.exists():
        raise ValidationError(f"no trace file at {source}")
    entries: list[TraceEntry] = []
    with open(source, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is not None and tuple(header) == _TRACE_COLUMNS:
            n_columns = 3
        elif header is not None and tuple(header) == _TRACE_COLUMNS_WITH_DROPS:
            n_columns = 4
        else:
            raise ValidationError(f"unexpected trace header {header!r}")
        last = -1.0
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != n_columns:
                raise ValidationError(
                    f"{source}:{line_number}: want {n_columns} columns"
                )
            try:
                arrival = float(row[0])
            except ValueError as exc:
                raise ValidationError(f"{source}:{line_number}: {exc}") from exc
            operation(row[1])  # validates the operation name
            if arrival < last:
                raise ValidationError(
                    f"{source}:{line_number}: arrivals must be non-decreasing"
                )
            last = arrival
            if n_columns == 4:
                if row[3] not in ("0", "1"):
                    raise ValidationError(
                        f"{source}:{line_number}: dropped must be 0 or 1"
                    )
                dropped = row[3] == "1"
            else:
                dropped = False
            entries.append(
                TraceEntry(
                    arrival_ms=arrival,
                    operation=row[1],
                    client_id=row[2],
                    dropped=dropped,
                )
            )
    return entries


class TraceReplaySource:
    """Replays a trace into one simulated application server."""

    def __init__(
        self,
        sim: Simulator,
        trace: list[TraceEntry],
        server: AppServerSim,
        metrics: MetricsCollector,
        *,
        network_latency_ms: float = 0.0,
        rng: np.random.Generator | None = None,
        metric_class_name: str = "trace",
    ) -> None:
        check_non_negative(network_latency_ms, "network_latency_ms")
        self.sim = sim
        self.trace = trace
        self.server = server
        self.metrics = metrics
        self.network_latency_ms = network_latency_ms
        self.metric_class_name = metric_class_name
        self._rng = rng if rng is not None else spawn_rng(0, "trace-replay")
        self.injected = 0

    def start(self) -> None:
        """Schedule every trace entry at its recorded timestamp."""
        from repro.simulation.events import EventPriority

        for entry in self.trace:
            self.sim.schedule_at(
                entry.arrival_ms,
                lambda e=entry: self._inject(e),
                priority=EventPriority.ARRIVAL,
            )

    def _net_delay(self) -> float:
        if self.network_latency_ms <= 0.0:
            return 0.0
        return float(self._rng.exponential(self.network_latency_ms))

    def _inject(self, entry: TraceEntry) -> None:
        from repro.simulation.events import EventPriority

        self.injected += 1
        sent_at = self.sim.now
        op = operation(entry.operation)
        outbound = self._net_delay()
        self.sim.schedule(
            outbound,
            lambda: self.server.handle(
                entry.client_id, op, lambda: self._on_response(sent_at)
            ),
            priority=EventPriority.ARRIVAL,
        )

    def _on_response(self, sent_at_ms: float) -> None:
        from repro.simulation.events import EventPriority

        inbound = self._net_delay()
        self.sim.schedule(
            inbound,
            lambda: self.metrics.record(self.metric_class_name, self.sim.now - sent_at_ms),
            priority=EventPriority.ARRIVAL,
        )
