"""Synthesized IBM *Trade* benchmark workload.

The paper drives its testbed with the IBM WebSphere Performance Benchmark
Sample "Trade" — a stock-trading application whose clients are divided into
service classes:

* **browse** clients call a mix of read-mostly operations (quote, home,
  portfolio, …) with probabilities representative of real clients;
* **buy** clients run a scripted session: *register new user and login*, ten
  sequential *buy* requests, then *logoff* (mean portfolio size 5.5).

Since the Trade binary itself is proprietary, this package recreates the
workload synthetically: operations with per-request CPU demands at the
application and database tiers, chosen so that the class-level aggregate
demands reproduce the paper's measured per-request-type behaviour (table 2)
and the published per-server max throughputs (86/186/320 req/s).
"""

from repro.workload.operations import Operation, TRADE_OPERATIONS, operation
from repro.workload.service_class import (
    OperationMix,
    ScriptedSession,
    ServiceClass,
)
from repro.workload.generators import (
    TraceEntry,
    TraceReplaySource,
    generate_trace,
    load_trace_csv,
    save_trace_csv,
)
from repro.workload.trade import (
    BROWSE_CLASS,
    BUY_CLASS,
    browse_class,
    buy_class,
    mixed_workload,
    typical_workload,
)

__all__ = [
    "Operation",
    "TRADE_OPERATIONS",
    "operation",
    "OperationMix",
    "ScriptedSession",
    "ServiceClass",
    "BROWSE_CLASS",
    "BUY_CLASS",
    "browse_class",
    "buy_class",
    "mixed_workload",
    "typical_workload",
    "TraceEntry",
    "TraceReplaySource",
    "generate_trace",
    "save_trace_csv",
    "load_trace_csv",
]
