"""Trade application operations and their resource demands.

Every client request calls one operation on the application-tier interface
(buy / sell / quote / …, section 3.1 of the paper).  An operation carries:

* ``request_type`` — the coarse class ("browse" or "buy") that the
  performance models calibrate per-request-type parameters for (section 5);
* ``app_demand_ms`` — mean CPU demand at the application server, expressed at
  the reference speed of the established AppServF architecture;
* ``db_calls`` — mean number of synchronous database requests issued while
  serving the operation;
* ``db_cpu_per_call_ms`` / ``db_disk_per_call_ms`` — mean database CPU and
  disk demand per database request;
* ``session_bytes`` — session state touched, used by the caching study
  (section 7.2).

Demands are chosen so the *class-weighted* aggregates match the paper's
calibrated behaviour; see ``repro/workload/trade.py`` for the class mixes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import (
    check_non_negative,
    check_positive,
    require,
)

__all__ = ["Operation", "TRADE_OPERATIONS", "operation", "BROWSE", "BUY"]

BROWSE = "browse"
BUY = "buy"

_REQUEST_TYPES = (BROWSE, BUY)


@dataclass(frozen=True, slots=True)
class Operation:
    """One operation on the Trade application-tier interface."""

    name: str
    request_type: str
    app_demand_ms: float
    db_calls: float
    db_cpu_per_call_ms: float
    db_disk_per_call_ms: float
    session_bytes: int = 2048

    def __post_init__(self) -> None:
        require(
            self.request_type in _REQUEST_TYPES,
            f"request_type must be one of {_REQUEST_TYPES}, got {self.request_type!r}",
        )
        check_positive(self.app_demand_ms, "app_demand_ms")
        check_non_negative(self.db_calls, "db_calls")
        check_non_negative(self.db_cpu_per_call_ms, "db_cpu_per_call_ms")
        check_non_negative(self.db_disk_per_call_ms, "db_disk_per_call_ms")

    @property
    def db_cpu_total_ms(self) -> float:
        """Mean database CPU demand across all database calls (ms)."""
        return self.db_calls * self.db_cpu_per_call_ms

    @property
    def db_disk_total_ms(self) -> float:
        """Mean database disk demand across all database calls (ms)."""
        return self.db_calls * self.db_disk_per_call_ms


def _buy_db_cpu(portfolio_size: float) -> float:
    """Database CPU per buy-family call as a function of mean portfolio size.

    The paper singles out "the average size of the clients' portfolio of
    stock" as a modelling variable that is hard to measure directly and
    therefore worth persisting via recalibration (section 2).  We model the
    database CPU per buy call as affine in the portfolio size, calibrated so
    that the paper's standard buy class (mean portfolio 5.5) costs 1.613 ms
    per call — the value in table 2.
    """
    check_positive(portfolio_size, "portfolio_size")
    return 1.3 + 0.0569090909 * portfolio_size


# The browse mix below is weighted so that browse-class aggregates are:
#   mean app demand 5.376 ms   (=> AppServF max throughput 1000/5.376 = 186 req/s)
#   mean db calls   1.14       (paper, section 5.1)
# and the buy session (register+login, 10 buys, logoff) aggregates to:
#   mean app demand 10.455 ms  (preserving the paper's buy/browse CPU ratio
#                               8.761/4.505 = 1.945 from table 2)
#   mean db calls   2.0        (paper, section 5.1)
TRADE_OPERATIONS: dict[str, Operation] = {
    op.name: op
    for op in (
        Operation("quote", BROWSE, 3.50, 1.0, 0.8294, 1.2, session_bytes=1024),
        Operation("home", BROWSE, 3.00, 1.0, 0.8294, 1.2, session_bytes=1024),
        Operation("portfolio", BROWSE, 12.00, 2.0, 0.8294, 1.2, session_bytes=4096),
        Operation("account", BROWSE, 6.56, 1.0, 0.8294, 1.2, session_bytes=2048),
        Operation("browse_stocks", BROWSE, 7.00, 1.0, 0.8294, 1.2, session_bytes=2048),
        Operation("update_profile", BROWSE, 8.00, 1.5, 0.8294, 1.2, session_bytes=2048),
        Operation("login", BROWSE, 9.00, 1.5, 0.8294, 1.2, session_bytes=4096),
        Operation("logoff_browse", BROWSE, 4.00, 0.5, 0.8294, 1.2, session_bytes=512),
        Operation(
            "register_login", BUY, 9.50, 2.5, _buy_db_cpu(5.5), 1.5, session_bytes=4096
        ),
        Operation("buy", BUY, 11.01, 2.05, _buy_db_cpu(5.5), 1.5, session_bytes=4096),
        Operation("logoff", BUY, 5.855, 1.0, _buy_db_cpu(5.5), 1.5, session_bytes=512),
    )
}


def operation(name: str) -> Operation:
    """Look up a Trade operation by name."""
    try:
        return TRADE_OPERATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown Trade operation {name!r}; known: {sorted(TRADE_OPERATIONS)}"
        ) from None
