"""Service classes: workload units with an SLA response-time goal.

A *service class* (section 3.1 of the paper) groups clients that behave the
same way and share an SLA response-time requirement.  Each client of a class
is a closed-loop request generator: it sends a request, waits for the
response, thinks for an exponentially distributed time, and repeats.

Two behaviours are supported, matching the paper's case study:

* :class:`OperationMix` — the next operation is drawn at random from a
  probability mix (the *browse* class);
* :class:`ScriptedSession` — operations follow a fixed script, optionally
  with a repeated middle section (the *buy* class: register+login, ten buys,
  logoff).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.units import s_to_ms
from repro.util.validation import (
    check_non_empty,
    check_positive,
    check_probabilities_sum_to_one,
    require,
)
from repro.workload.operations import Operation

__all__ = ["OperationMix", "ScriptedSession", "ServiceClass"]


@dataclass(frozen=True)
class OperationMix:
    """Random selection of the next operation with fixed probabilities."""

    operations: tuple[Operation, ...]
    probabilities: tuple[float, ...]

    def __post_init__(self) -> None:
        check_non_empty(self.operations, "operations")
        require(
            len(self.operations) == len(self.probabilities),
            "operations and probabilities must have equal length",
        )
        check_probabilities_sum_to_one(self.probabilities, "probabilities")

    def next_operation(self, rng: np.random.Generator, _position: int) -> Operation:
        """Draw the next operation (position in session is ignored)."""
        idx = int(rng.choice(len(self.operations), p=np.asarray(self.probabilities)))
        return self.operations[idx]

    def mean_app_demand_ms(self) -> float:
        """Probability-weighted mean application-server demand (ms)."""
        return float(
            sum(p * op.app_demand_ms for p, op in zip(self.probabilities, self.operations))
        )

    def mean_db_calls(self) -> float:
        """Probability-weighted mean database calls per request."""
        return float(
            sum(p * op.db_calls for p, op in zip(self.probabilities, self.operations))
        )

    def mean_db_cpu_per_call_ms(self) -> float:
        """Call-weighted mean database CPU per database call (ms)."""
        calls = self.mean_db_calls()
        if calls == 0:
            return 0.0
        total = sum(
            p * op.db_calls * op.db_cpu_per_call_ms
            for p, op in zip(self.probabilities, self.operations)
        )
        return float(total / calls)

    def mean_db_disk_per_call_ms(self) -> float:
        """Call-weighted mean database disk time per database call (ms)."""
        calls = self.mean_db_calls()
        if calls == 0:
            return 0.0
        total = sum(
            p * op.db_calls * op.db_disk_per_call_ms
            for p, op in zip(self.probabilities, self.operations)
        )
        return float(total / calls)


@dataclass(frozen=True)
class ScriptedSession:
    """Deterministic session script: prologue, repeated body, epilogue.

    The paper's buy class is ``ScriptedSession(prologue=[register_login],
    body=[buy], body_repeats=10, epilogue=[logoff])``.
    """

    prologue: tuple[Operation, ...]
    body: tuple[Operation, ...]
    body_repeats: int
    epilogue: tuple[Operation, ...]

    def __post_init__(self) -> None:
        require(self.body_repeats >= 0, "body_repeats must be >= 0")
        require(
            len(self.prologue) + len(self.body) * self.body_repeats + len(self.epilogue)
            > 0,
            "session script must contain at least one operation",
        )

    @property
    def session_length(self) -> int:
        """Total requests per session."""
        return (
            len(self.prologue) + len(self.body) * self.body_repeats + len(self.epilogue)
        )

    def operation_at(self, position: int) -> Operation:
        """The operation at 0-based ``position`` within the session."""
        pos = position % self.session_length
        if pos < len(self.prologue):
            return self.prologue[pos]
        pos -= len(self.prologue)
        body_total = len(self.body) * self.body_repeats
        if pos < body_total:
            return self.body[pos % len(self.body)]
        pos -= body_total
        return self.epilogue[pos]

    def next_operation(self, rng: np.random.Generator, position: int) -> Operation:
        """Scripted selection ignores the RNG."""
        return self.operation_at(position)

    def _all_ops(self) -> list[Operation]:
        ops: list[Operation] = list(self.prologue)
        ops.extend(list(self.body) * self.body_repeats)
        ops.extend(self.epilogue)
        return ops

    def mean_app_demand_ms(self) -> float:
        """Mean application-server demand per request over one session (ms)."""
        ops = self._all_ops()
        return float(sum(op.app_demand_ms for op in ops) / len(ops))

    def mean_db_calls(self) -> float:
        """Mean database calls per request over one session."""
        ops = self._all_ops()
        return float(sum(op.db_calls for op in ops) / len(ops))

    def mean_db_cpu_per_call_ms(self) -> float:
        """Call-weighted mean database CPU per call over one session (ms)."""
        ops = self._all_ops()
        calls = sum(op.db_calls for op in ops)
        if calls == 0:
            return 0.0
        return float(sum(op.db_calls * op.db_cpu_per_call_ms for op in ops) / calls)

    def mean_db_disk_per_call_ms(self) -> float:
        """Call-weighted mean database disk time per call over one session."""
        ops = self._all_ops()
        calls = sum(op.db_calls for op in ops)
        if calls == 0:
            return 0.0
        return float(sum(op.db_calls * op.db_disk_per_call_ms for op in ops) / calls)


@dataclass(frozen=True)
class ServiceClass:
    """A named client population with a behaviour and an SLA goal.

    Parameters
    ----------
    name:
        Unique class name, e.g. ``"browse"``.
    behaviour:
        An :class:`OperationMix` or :class:`ScriptedSession`.
    think_time_ms:
        Mean of the exponential client think time.  The paper uses 7 s for
        all classes, "as recommended by IBM as being representative of Trade
        clients".
    rt_goal_ms:
        SLA mean-response-time goal; ``None`` when the class has no SLA.
    mean_session_bytes:
        Mean per-client session size, used by the caching study (§7.2).
    priority:
        Thread-queue priority at the application server (lower = more
        urgent; default 0 for every class = plain FIFO).  Supports the
        "priority queuing disciplines" variation of section 8.1.
    """

    name: str
    behaviour: OperationMix | ScriptedSession
    think_time_ms: float = s_to_ms(7.0)
    rt_goal_ms: float | None = None
    mean_session_bytes: int = 4096
    priority: int = 0

    def __post_init__(self) -> None:
        check_positive(self.think_time_ms, "think_time_ms")
        if self.rt_goal_ms is not None:
            check_positive(self.rt_goal_ms, "rt_goal_ms")

    def with_goal(self, rt_goal_ms: float, *, name: str | None = None) -> "ServiceClass":
        """A copy of this class with an SLA goal (and optionally a new name)."""
        return ServiceClass(
            name=name if name is not None else self.name,
            behaviour=self.behaviour,
            think_time_ms=self.think_time_ms,
            rt_goal_ms=rt_goal_ms,
            mean_session_bytes=self.mean_session_bytes,
            priority=self.priority,
        )

    # Aggregate demand helpers delegate to the behaviour; the prediction
    # methods calibrate against these class-level means.

    def mean_app_demand_ms(self) -> float:
        """Mean application-server CPU demand per request (reference speed)."""
        return self.behaviour.mean_app_demand_ms()

    def mean_db_calls(self) -> float:
        """Mean database requests per application-server request."""
        return self.behaviour.mean_db_calls()

    def mean_db_cpu_per_call_ms(self) -> float:
        """Mean database CPU demand per database request (ms)."""
        return self.behaviour.mean_db_cpu_per_call_ms()

    def mean_db_disk_per_call_ms(self) -> float:
        """Mean database disk demand per database request (ms)."""
        return self.behaviour.mean_db_disk_per_call_ms()

    def request_type_fractions(self) -> dict[str, float]:
        """Fraction of this class's requests per request type.

        The layered queuing model calibrates parameters per *request type*
        (section 5); a class's client entry calls the per-type application
        entries with these fractions as mean call counts.
        """
        fractions: dict[str, float] = {}
        if isinstance(self.behaviour, OperationMix):
            for p, op in zip(self.behaviour.probabilities, self.behaviour.operations):
                fractions[op.request_type] = fractions.get(op.request_type, 0.0) + p
        else:
            ops = self.behaviour._all_ops()
            for op in ops:
                fractions[op.request_type] = (
                    fractions.get(op.request_type, 0.0) + 1.0 / len(ops)
                )
        return fractions

    def mean_total_demand_ms(self) -> float:
        """Total mean demand per request across all resources (ms),
        at reference speed — a lower bound on the no-contention response
        time."""
        return (
            self.mean_app_demand_ms()
            + self.mean_db_calls()
            * (self.mean_db_cpu_per_call_ms() + self.mean_db_disk_per_call_ms())
        )
