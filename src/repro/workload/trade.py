"""The paper's Trade service classes and workload mixes.

Defines the canonical *browse* and *buy* service classes (section 3.1) and
helpers for composing heterogeneous workloads:

* the **typical workload** is all browse clients (the paper's definition);
* ``mixed_workload(total, buy_fraction)`` splits a client population between
  buy and browse clients, used by relationship 3 and figure 4;
* the resource-management scenario of section 9 further splits browse into
  high- and low-priority classes with distinct SLA goals.
"""

from __future__ import annotations

from repro.util.units import s_to_ms
from repro.util.validation import check_fraction, check_non_negative_int, check_positive
from repro.workload.operations import operation
from repro.workload.service_class import OperationMix, ScriptedSession, ServiceClass

__all__ = [
    "browse_class",
    "buy_class",
    "BROWSE_CLASS",
    "BUY_CLASS",
    "typical_workload",
    "mixed_workload",
    "BUY_SESSION_LENGTH",
    "MEAN_PORTFOLIO_SIZE",
]

# The buy session is "register new user and login", 10 sequential buys, then
# "logoff" (section 3.1): 12 requests per session.
BUY_SESSION_LENGTH = 12

# Ten sequential buys give portfolio sizes 1..10 while buying, a mean
# portfolio of 5.5 as stated in section 3.1.
MEAN_PORTFOLIO_SIZE = 5.5

# Browse operation probabilities, representative of the Trade benchmark's
# published mix (quote-dominated, read-mostly).
_BROWSE_MIX: tuple[tuple[str, float], ...] = (
    ("quote", 0.40),
    ("home", 0.20),
    ("portfolio", 0.12),
    ("account", 0.10),
    ("browse_stocks", 0.10),
    ("update_profile", 0.04),
    ("login", 0.02),
    ("logoff_browse", 0.02),
)


def browse_class(
    *,
    name: str = "browse",
    think_time_s: float = 7.0,
    rt_goal_ms: float | None = None,
    priority: int = 0,
) -> ServiceClass:
    """Build the browse service class (random Trade operation mix)."""
    check_positive(think_time_s, "think_time_s")
    ops = tuple(operation(op_name) for op_name, _ in _BROWSE_MIX)
    probs = tuple(p for _, p in _BROWSE_MIX)
    return ServiceClass(
        name=name,
        behaviour=OperationMix(operations=ops, probabilities=probs),
        think_time_ms=s_to_ms(think_time_s),
        rt_goal_ms=rt_goal_ms,
        mean_session_bytes=2048,
        priority=priority,
    )


def buy_class(
    *,
    name: str = "buy",
    think_time_s: float = 7.0,
    rt_goal_ms: float | None = None,
    buys_per_session: int = 10,
    priority: int = 0,
) -> ServiceClass:
    """Build the buy service class (scripted register/buy×n/logoff session)."""
    check_positive(think_time_s, "think_time_s")
    check_non_negative_int(buys_per_session, "buys_per_session")
    session = ScriptedSession(
        prologue=(operation("register_login"),),
        body=(operation("buy"),),
        body_repeats=buys_per_session,
        epilogue=(operation("logoff"),),
    )
    return ServiceClass(
        name=name,
        behaviour=session,
        think_time_ms=s_to_ms(think_time_s),
        rt_goal_ms=rt_goal_ms,
        mean_session_bytes=4096,
        priority=priority,
    )


# Canonical instances used throughout the experiments.
BROWSE_CLASS = browse_class()
BUY_CLASS = buy_class()


def typical_workload(n_clients: int) -> dict[ServiceClass, int]:
    """The paper's typical workload: ``n_clients`` browse clients."""
    check_non_negative_int(n_clients, "n_clients")
    return {BROWSE_CLASS: n_clients}


def mixed_workload(n_clients: int, buy_fraction: float) -> dict[ServiceClass, int]:
    """Split ``n_clients`` between buy and browse clients.

    ``buy_fraction`` is the fraction of *requests* that are buy-class; since
    all classes share the same think time and sessions are closed-loop, the
    client split equals the request split in steady state.
    """
    check_non_negative_int(n_clients, "n_clients")
    check_fraction(buy_fraction, "buy_fraction")
    n_buy = round(n_clients * buy_fraction)
    n_browse = n_clients - n_buy
    workload: dict[ServiceClass, int] = {}
    if n_browse > 0:
        workload[BROWSE_CLASS] = n_browse
    if n_buy > 0:
        workload[BUY_CLASS] = n_buy
    if not workload:
        workload[BROWSE_CLASS] = 0
    return workload
