"""Response-time distribution predictions (section 7.1 of the paper).

SLAs are often percentile-based ("p % of requests must respond within
r_max"), but the layered queuing and hybrid methods predict only means.  The
paper extrapolates full distributions from mean predictions using two
regimes that are constant (relative to the mean) across architectures:

* before max throughput (CPU < 100 %): exponential, equation 6;
* after max throughput: double-exponential (Laplace), equation 7, located at
  the predicted mean with a scale parameter calibrated once (204.1 in the
  paper's setup).
"""

from repro.distribution.rtdist import (
    DoubleExponentialResponse,
    ExponentialResponse,
    ResponseTimeDistribution,
    calibrate_scale,
    distribution_for,
)
from repro.distribution.percentile import PercentilePredictor

__all__ = [
    "ResponseTimeDistribution",
    "ExponentialResponse",
    "DoubleExponentialResponse",
    "calibrate_scale",
    "distribution_for",
    "PercentilePredictor",
]
