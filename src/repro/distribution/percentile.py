"""Percentile SLA predictions extrapolated from mean predictions.

Combines any mean-response-time predictor with the section-7.1 distribution
regimes: given a server, load and percentile ``p``, predict the response
time that ``p`` of requests will beat.  This is how the layered queuing and
hybrid methods — which can only predict means — answer percentile SLA
questions (and how the paper's 90th-percentile comparison is produced).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.distribution.rtdist import distribution_for
from repro.util.validation import check_positive, require

__all__ = ["PercentilePredictor"]


@dataclass
class PercentilePredictor:
    """Wraps mean-prediction and saturation oracles into percentile queries.

    Parameters
    ----------
    predict_mean_ms:
        ``(server, n_clients) -> predicted mean response time`` from any of
        the three methods.
    clients_at_max:
        ``server -> max-throughput load`` (clients at 100 % CPU), deciding
        which distribution regime applies.
    scale_ms:
        The calibrated double-exponential scale *b* (the paper's 204.1).
    """

    predict_mean_ms: Callable[[str, float], float]
    clients_at_max: Callable[[str], float]
    scale_ms: float

    def __post_init__(self) -> None:
        check_positive(self.scale_ms, "scale_ms")

    def is_saturated(self, server: str, n_clients: float) -> bool:
        """Whether the load is past the server's max-throughput point."""
        return n_clients >= self.clients_at_max(server)

    def predict_percentile_ms(self, server: str, n_clients: float, p: float) -> float:
        """Predicted ``p``-percentile response time (ms)."""
        require(0.0 < p < 1.0, "p must be in (0, 1)")
        mean = self.predict_mean_ms(server, n_clients)
        dist = distribution_for(
            mean,
            saturated=self.is_saturated(server, n_clients),
            scale_ms=self.scale_ms,
        )
        return dist.percentile(p)

    def predict_fraction_within(
        self, server: str, n_clients: float, r_max_ms: float
    ) -> float:
        """Predicted fraction of requests within an SLA's ``r_max``."""
        check_positive(r_max_ms, "r_max_ms")
        mean = self.predict_mean_ms(server, n_clients)
        dist = distribution_for(
            mean,
            saturated=self.is_saturated(server, n_clients),
            scale_ms=self.scale_ms,
        )
        return dist.fraction_within(r_max_ms)
