"""The two response-time distribution regimes of section 7.1.

After max throughput (100 % application-server CPU utilisation) the dominant
response-time component is application-server queueing, which changes the
distribution's shape; the paper approximates:

* **before** saturation — exponential around the predicted mean ``r_p``
  (equation 6)::

      P(X <= x) = 1 - exp(-x / r_p)

* **after** saturation — double exponential (Laplace) located at ``a = r_p``
  with scale ``b`` (equation 7), ``b`` calibrated from measured data and
  found "constant across servers with heterogeneous processing speeds"
  (204.1 in the paper's setup)::

      P(X <= x) = 1 - 0.5·exp(-(x - a)/b)   for x >= r_p
      P(X <= x) = 0.5·exp((x - a)/b)        for x <  r_p

Both distributions are fully determined by a *mean response-time
prediction*, which is what lets percentile metrics be extrapolated from any
of the three methods' mean predictions.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.util.errors import CalibrationError
from repro.util.validation import check_positive, require

__all__ = [
    "ResponseTimeDistribution",
    "ExponentialResponse",
    "DoubleExponentialResponse",
    "calibrate_scale",
    "distribution_for",
]


class ResponseTimeDistribution(ABC):
    """A predicted response-time distribution."""

    @abstractmethod
    def cdf(self, x_ms: float) -> float:
        """P(response <= ``x_ms``)."""

    @abstractmethod
    def percentile(self, p: float) -> float:
        """The response time not exceeded by fraction ``p`` of requests."""

    def fraction_within(self, r_max_ms: float) -> float:
        """Fraction of requests meeting a percentile SLA's ``r_max``."""
        return self.cdf(r_max_ms)


@dataclass(frozen=True, slots=True)
class ExponentialResponse(ResponseTimeDistribution):
    """Equation 6: exponential response times below saturation."""

    mean_ms: float

    def __post_init__(self) -> None:
        check_positive(self.mean_ms, "mean_ms")

    def cdf(self, x_ms: float) -> float:
        if x_ms <= 0:
            return 0.0
        return 1.0 - math.exp(-x_ms / self.mean_ms)

    def percentile(self, p: float) -> float:
        require(0.0 <= p < 1.0, "p must be in [0, 1)")
        return -self.mean_ms * math.log(1.0 - p)


@dataclass(frozen=True, slots=True)
class DoubleExponentialResponse(ResponseTimeDistribution):
    """Equation 7: Laplace-distributed response times after saturation.

    ``location_ms`` (the paper's *a*) is set to the predicted mean; ``scale_ms``
    (the paper's *b*) is the calibrated spread, constant across architectures.
    """

    location_ms: float
    scale_ms: float

    def __post_init__(self) -> None:
        check_positive(self.location_ms, "location_ms")
        check_positive(self.scale_ms, "scale_ms")

    def cdf(self, x_ms: float) -> float:
        z = (x_ms - self.location_ms) / self.scale_ms
        if x_ms >= self.location_ms:
            return 1.0 - 0.5 * math.exp(-z)
        return 0.5 * math.exp(z)

    def percentile(self, p: float) -> float:
        require(0.0 < p < 1.0, "p must be in (0, 1)")
        if p >= 0.5:
            return self.location_ms - self.scale_ms * math.log(2.0 * (1.0 - p))
        return self.location_ms + self.scale_ms * math.log(2.0 * p)


def calibrate_scale(samples_ms, location_ms: float) -> float:
    """Calibrate the double-exponential scale *b* from measured samples.

    The maximum-likelihood estimate of a Laplace scale at a fixed location is
    the mean absolute deviation from that location.  The paper calibrates
    *b* once (204.1) and reuses it across architectures.
    """
    arr = np.asarray(samples_ms, dtype=float)
    if arr.size == 0:
        raise CalibrationError("cannot calibrate a scale from zero samples")
    check_positive(location_ms, "location_ms")
    scale = float(np.mean(np.abs(arr - location_ms)))
    if scale <= 0:
        raise CalibrationError("degenerate samples: zero spread")
    return scale


def distribution_for(
    mean_prediction_ms: float,
    *,
    saturated: bool,
    scale_ms: float,
) -> ResponseTimeDistribution:
    """The section-7.1 distribution for a mean prediction.

    ``saturated`` selects the regime — callers decide it by comparing the
    load against the predicted max-throughput load (100 % CPU utilisation).
    """
    check_positive(mean_prediction_ms, "mean_prediction_ms")
    if saturated:
        return DoubleExponentialResponse(location_ms=mean_prediction_ms, scale_ms=scale_ms)
    return ExponentialResponse(mean_ms=mean_prediction_ms)
