"""Experiment drivers: one module per table/figure of the paper.

Every module exposes ``run(fast=False) -> ExperimentResult``; the benchmark
harness (``benchmarks/``) and the CLI (``python -m repro.experiments.runner``)
both go through these.  ``fast=True`` trades statistical tightness for
runtime (shorter simulations, coarser grids) and is what the benchmark suite
uses; the defaults regenerate the paper-quality numbers recorded in
EXPERIMENTS.md.

=================  =======================================================
experiment id      paper artefact
=================  =======================================================
``table1``         Table 1 — historical relationship parameters
``table2``         Table 2 — layered queuing processing-time parameters
``fig2``           Figure 2 — mean RT vs clients, three architectures
``fig3``           Figure 3 — accuracy vs gap between calibration points
``fig4``           Figure 4 — heterogeneous-workload predictions
``fig5``/``fig6``  Figures 5/6 — RM cost metrics vs load at slack levels
``fig7``/``fig8``  Figures 7/8 — cost trade-off as slack is reduced
``accuracy``       Sections 4-6 headline accuracy numbers
``percentiles``    Section 7.1 — 90th-percentile predictions
``caching``        Section 7.2 — cache modelling and LQN circularity
``delay``          Section 8.5 — prediction-delay comparison
``recalibration``  Sections 4.2/8.4 — accuracy vs amount of historical data
=================  =======================================================
"""

from repro.experiments.scenario import ExperimentResult

__all__ = ["ExperimentResult"]
