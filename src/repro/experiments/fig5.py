"""Figure 5 — % SLA failures vs load at different slack levels.

Shape targets: with enough slack (1.1) failures stay at 0 % until the pool
saturates; at slack 1.0 the predictor's optimism causes failures at moderate
loads; below 1.0 failures appear earlier and grow; curves are irregular
because runtime optimisations absorb overflow whenever a new server comes
into play (the paper's spike discussion around 9000 clients).
"""

from __future__ import annotations

from repro.experiments.rm_common import build_rm_setup, default_loads
from repro.experiments.scenario import ExperimentResult
from repro.util.tables import format_series

__all__ = ["run", "SLACK_LEVELS"]

SLACK_LEVELS = (0.9, 1.0, 1.1)


def run(fast: bool = False) -> ExperimentResult:
    """Sweep loads at the figure's slack levels and report % SLA failures."""
    setup = build_rm_setup(fast=fast)
    loads = default_loads(fast=fast)

    series: dict[str, list[float]] = {}
    data: dict[str, object] = {"loads": loads}
    for slack in SLACK_LEVELS:
        sweep = setup.sweep(loads, slack)
        series[f"slack={slack}"] = sweep.sla_failure_series()
        data[f"failures@{slack}"] = sweep.sla_failure_series()
        data[f"usage@{slack}"] = sweep.server_usage_series()

    table = format_series(
        "total clients",
        [float(load) for load in loads],
        series,
        title="Figure 5: % SLA failures vs load (resource management algorithm)",
        precision=2,
    )
    return ExperimentResult(
        experiment_id="fig5",
        title="Figure 5: % SLA failures vs load",
        rendered=table,
        data=data,
    )
