"""Figure 6 — % server usage vs load at different slack levels.

Shape targets: usage rises with load in steps (whole servers are engaged),
higher slack uses more processing power at every load, and usage reaches
100 % at high loads.
"""

from __future__ import annotations

from repro.experiments.fig5 import SLACK_LEVELS
from repro.experiments.rm_common import build_rm_setup, default_loads
from repro.experiments.scenario import ExperimentResult
from repro.util.tables import format_series

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    """Sweep loads at the figure's slack levels and report % server usage."""
    setup = build_rm_setup(fast=fast)
    loads = default_loads(fast=fast)

    series: dict[str, list[float]] = {}
    data: dict[str, object] = {"loads": loads}
    for slack in SLACK_LEVELS:
        sweep = setup.sweep(loads, slack)
        series[f"slack={slack}"] = sweep.server_usage_series()
        data[f"usage@{slack}"] = sweep.server_usage_series()

    table = format_series(
        "total clients",
        [float(load) for load in loads],
        series,
        title="Figure 6: % server usage vs load (resource management algorithm)",
        precision=2,
    )
    return ExperimentResult(
        experiment_id="fig6",
        title="Figure 6: % server usage vs load",
        rendered=table,
        data=data,
    )
