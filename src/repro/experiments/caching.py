"""Section 7.2 — modelling the effect of session caching.

Three parts:

1. **Measured effect** — simulate the indirect (cache-using) design at
   several cache sizes; smaller caches miss more and each miss costs an
   extra database call, inflating response times.
2. **Historical method models it** — record the cache size as a variable,
   fit the miss-rate/inflation relationships, and predict an unseen memory
   size.
3. **Layered queuing cannot (without extension)** — the one-shot solve is
   self-inconsistent (the circularity report); the outer fixed point of
   :mod:`repro.caching.analysis` closes it, which is the extension the
   paper deems non-trivial for LQNS.
"""

from __future__ import annotations

from repro.caching.analysis import demonstrate_lqn_circularity, solve_lqn_with_cache
from repro.caching.historical_cache import CacheAwareHistoricalModel, CacheObservation
from repro.experiments import ground_truth as gt
from repro.experiments.scenario import ExperimentResult, SOLVER_OPTIONS
from repro.prediction.accuracy import accuracy
from repro.servers.catalogue import APP_SERV_S
from repro.util.tables import format_kv, format_table
from repro.workload.trade import BROWSE_CLASS, typical_workload

__all__ = ["run"]

# 450 browse clients put AppServS at ~73% of its max-throughput load: busy
# enough that extra database calls are visible, but clear of the saturation
# knee where run-to-run response-time noise would swamp the caching effect.
_N_CLIENTS = 450
_CACHE_FRACTIONS = (0.25, 0.5, 0.75, 1.5)
_PREDICT_FRACTION = 0.6


def _working_set_bytes(n_clients: int) -> int:
    return n_clients * BROWSE_CLASS.mean_session_bytes


def run(fast: bool = False) -> ExperimentResult:
    """Measure, model, and close the loop on session caching."""
    n = _N_CLIENTS if not fast else 400
    server = APP_SERV_S.name
    working_set = _working_set_bytes(n)

    # 1. Measured effect across cache sizes.
    rows = []
    observations: list[CacheObservation] = []
    baseline = gt.measured_point(
        server,
        n,
        fast=fast,
        enable_cache=True,
        cache_bytes=int(4 * working_set),
    )
    fractions = _CACHE_FRACTIONS[::2] if fast else _CACHE_FRACTIONS
    for frac in fractions:
        result = gt.measured_point(
            server,
            n,
            fast=fast,
            enable_cache=True,
            cache_bytes=max(4096, int(frac * working_set)),
        )
        rows.append(
            (
                f"{frac:.2f}x working set",
                result.cache_miss_rate,
                result.mean_response_ms,
                result.mean_response_ms / baseline.mean_response_ms,
            )
        )
        observations.append(
            CacheObservation(
                cache_fraction=frac,
                miss_rate=min(1.0, max(0.0, result.cache_miss_rate or 0.0)),
                mean_response_ms=result.mean_response_ms,
                baseline_response_ms=baseline.mean_response_ms,
            )
        )
    measured_table = format_table(
        ["cache size", "miss rate", "mean RT (ms)", "RT inflation"],
        rows,
        title=f"Measured caching effect ({server}, {n} browse clients)",
    )

    # 2. Historical method: calibrate and predict an unseen cache size.
    cache_model = CacheAwareHistoricalModel(observations=list(observations))
    cache_model.calibrate()
    target = gt.measured_point(
        server,
        n,
        fast=fast,
        enable_cache=True,
        cache_bytes=max(4096, int(_PREDICT_FRACTION * working_set)),
    )
    predicted = cache_model.predict_mrt_ms(
        baseline.mean_response_ms, _PREDICT_FRACTION
    )
    hist_acc = accuracy(predicted, target.mean_response_ms)

    # 3. Layered queuing: circularity, then the fixed-point extension.
    parameters = gt.lqn_calibration(fast=fast).to_model_parameters()
    workload = typical_workload(n)
    capacity = max(4096, int(0.5 * working_set))
    circularity = demonstrate_lqn_circularity(
        APP_SERV_S, workload, parameters, capacity, solver_options=SOLVER_OPTIONS
    )
    fixed_point = solve_lqn_with_cache(
        APP_SERV_S, workload, parameters, capacity, solver_options=SOLVER_OPTIONS
    )
    measured_half = gt.measured_point(
        server, n, fast=fast, enable_cache=True, cache_bytes=capacity
    )
    fp_miss = fixed_point.miss_rates[BROWSE_CLASS.name]
    fp_acc = accuracy(
        fixed_point.solution.response_ms[BROWSE_CLASS.name],
        measured_half.mean_response_ms,
    )

    summary = format_kv(
        {
            "historical cache prediction (ms)": predicted,
            f"measured at {_PREDICT_FRACTION}x working set (ms)": target.mean_response_ms,
            "historical cache-model accuracy": f"{100 * hist_acc:.1f}%",
            "one-shot LQN miss-rate inconsistency": circularity.inconsistency,
            "circular dependency": " <- ".join(circularity.dependency_chain),
            "fixed-point miss rate @0.5x": fp_miss,
            "measured miss rate @0.5x": measured_half.cache_miss_rate,
            "fixed-point outer iterations": fixed_point.outer_iterations,
            "fixed-point RT accuracy @0.5x": f"{100 * fp_acc:.1f}%",
        },
        title="Section 7.2: modelling results",
    )

    return ExperimentResult(
        experiment_id="caching",
        title="Section 7.2: caching study",
        rendered=measured_table + "\n\n" + summary,
        data={
            "observations": rows,
            "historical_accuracy": hist_acc,
            "inconsistency": circularity.inconsistency,
            "fixed_point_miss": fp_miss,
            "measured_miss": measured_half.cache_miss_rate,
            "fixed_point_accuracy": fp_acc,
        },
    )
