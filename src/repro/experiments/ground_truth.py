"""Memoised "measured" data from the simulated testbed.

Experiment drivers share many simulator runs (the same measured curve backs
table 1, figure 2, the accuracy summary, …).  This layer memoises them —
in-process and, optionally, on disk under ``.repro-cache/`` next to the
repository (delete the directory or set ``REPRO_NO_DISK_CACHE=1`` to force
fresh runs).

Everything here is keyed by the full parameter set, so changing the scenario
invalidates naturally.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Any

from repro.experiments.scenario import FAST_CONFIG, MEASUREMENT_CONFIG, SEED, SOLVER_OPTIONS
from repro.lqn.calibration import LqnCalibration, calibrate_from_simulator
from repro.servers.benchmarking import measure_max_throughput
from repro.servers.catalogue import APP_SERV_F, architecture
from repro.simulation.system import SimulationResult, simulate_deployment
from repro.workload.trade import mixed_workload

__all__ = [
    "measured_point",
    "benchmarked_max_throughput",
    "lqn_calibration",
    "lqn_mix_observations",
    "clear_memory_cache",
]

_MEMORY: dict[Any, Any] = {}


def _disk_cache_path() -> Path | None:
    if os.environ.get("REPRO_NO_DISK_CACHE"):
        return None
    root = Path(os.environ.get("REPRO_CACHE_DIR", Path(__file__).resolve().parents[3]))
    path = root / ".repro-cache"
    try:
        path.mkdir(parents=True, exist_ok=True)
    except OSError:  # pragma: no cover - read-only filesystem
        return None
    return path


def _cached(key: tuple, compute):
    if key in _MEMORY:
        return _MEMORY[key]
    disk = _disk_cache_path()
    file = None
    if disk is not None:
        import hashlib

        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:24]
        file = disk / (digest + ".pkl")
        if file.exists():
            try:
                with open(file, "rb") as fh:
                    stored_key, value = pickle.load(fh)
                if stored_key == key:
                    _MEMORY[key] = value
                    return value
            except Exception:  # pragma: no cover - corrupt cache entry
                pass
    value = compute()
    _MEMORY[key] = value
    if file is not None:
        try:
            with open(file, "wb") as fh:
                pickle.dump((key, value), fh)
        except OSError:  # pragma: no cover - disk full etc.
            pass
    return value


def clear_memory_cache() -> None:
    """Drop the in-process memo (disk entries are left alone)."""
    _MEMORY.clear()


def measured_point(
    server: str,
    n_clients: int,
    *,
    buy_fraction: float = 0.0,
    fast: bool = False,
    seed_offset: int = 0,
    enable_cache: bool = False,
    cache_bytes: int | None = None,
) -> SimulationResult:
    """One testbed measurement: run the workload on the simulated server."""
    config = FAST_CONFIG if fast else MEASUREMENT_CONFIG
    if seed_offset or enable_cache or cache_bytes is not None:
        config = config.with_overrides(
            seed=config.seed + seed_offset,
            enable_cache=enable_cache,
            cache_bytes=cache_bytes,
        )
    key = (
        "measured",
        server,
        n_clients,
        round(buy_fraction, 6),
        config.duration_s,
        config.warmup_s,
        config.seed,
        config.network_latency_ms,
        config.enable_cache,
        config.cache_bytes,
    )
    return _cached(
        key,
        lambda: simulate_deployment(
            architecture(server), mixed_workload(n_clients, buy_fraction), config
        ),
    )


def benchmarked_max_throughput(server: str, *, fast: bool = False) -> float:
    """The server's benchmarked max throughput under the typical workload
    (the system model's 'calibrate request processing speeds' service)."""
    duration, warmup = (25.0, 6.0) if fast else (40.0, 10.0)
    key = ("max_tput", server, duration, warmup, SEED)

    def compute() -> float:
        result = measure_max_throughput(
            architecture(server),
            duration_s=duration,
            warmup_s=warmup,
            seed=SEED,
        )
        return result.max_throughput_req_per_s

    return float(_cached(key, compute))


def lqn_calibration(*, fast: bool = False) -> LqnCalibration:
    """The layered queuing calibration on the established AppServF."""
    duration, clients = (60.0, 400) if fast else (120.0, 600)
    key = ("lqn_calibration", APP_SERV_F.name, duration, clients, SEED)
    return _cached(
        key,
        lambda: calibrate_from_simulator(
            APP_SERV_F,
            clients_per_type=clients,
            duration_s=duration,
            seed=SEED,
        ),
    )


def lqn_mix_observations(*, fast: bool = False) -> list[tuple[float, float]]:
    """Relationship 3's anchors: LQN max throughputs at 0 %/25 % buy on
    AppServF (the paper's 189 / 158 req/s analogues)."""
    from repro.hybrid.model import lqn_max_throughput
    from repro.lqn.builder import build_trade_model

    key = ("mix_obs", APP_SERV_F.name, fast, SEED)

    def compute() -> list[tuple[float, float]]:
        parameters = lqn_calibration(fast=fast).to_model_parameters()
        observations = []
        for buy_fraction in (0.0, 0.25):
            model = build_trade_model(
                APP_SERV_F, mixed_workload(400, buy_fraction), parameters
            )
            observations.append((buy_fraction, lqn_max_throughput(model)))
        return observations

    return _cached(key, compute)


# Re-exported so experiment modules only import ground_truth.
DEFAULT_SOLVER_OPTIONS = SOLVER_OPTIONS
