"""Section 8.5 — the delay when evaluating a prediction.

Measures, on this machine:

* the historical method's per-prediction delay (closed-form, ~microseconds);
* the layered method's per-solve delay and how it grows as the convergence
  criterion tightens (the paper's 20 ms criterion / 3 s solve trade-off);
* the hybrid method's one-off start-up delay (the paper's 11 s analogue)
  and its per-prediction delay afterwards;
* the cost of a *capacity* query (max clients under an SLA goal): closed
  form for historical/hybrid versus a multi-solve search for the layered
  method (section 8.2).
"""

from __future__ import annotations

import time

from repro.experiments import ground_truth as gt
from repro.experiments.scenario import ExperimentResult, build_predictors
from repro.hybrid.model import AdvancedHybridModel
from repro.lqn.builder import build_trade_model
from repro.lqn.solver import LqnSolver, SolverOptions
from repro.servers.catalogue import ALL_APP_SERVERS, APP_SERV_F, APP_SERV_S
from repro.util.tables import format_kv, format_table
from repro.workload.trade import typical_workload

__all__ = ["run"]


def _time_predictions(fn, calls: int) -> float:
    start = time.perf_counter()
    for i in range(calls):
        fn(400 + i % 700)
    return (time.perf_counter() - start) / calls


def run(fast: bool = False) -> ExperimentResult:
    """Measure all the section-8.5 delays."""
    historical, lqn, hybrid, calibration = build_predictors(fast=fast)
    calls = 200 if fast else 2000

    hist_delay = _time_predictions(
        lambda n: historical.predict_mrt_ms(APP_SERV_S.name, n), calls
    )
    hybrid_delay = _time_predictions(
        lambda n: hybrid.predict_mrt_ms(APP_SERV_S.name, n), calls
    )
    lqn_delay = _time_predictions(
        lambda n: lqn.predict_mrt_ms(APP_SERV_S.name, n), max(10, calls // 50)
    )

    # Convergence criterion vs solve time (the paper's 20 ms discussion).
    parameters = calibration.to_model_parameters()
    rows = []
    for criterion in (20.0, 5.0, 1.0, 0.1):
        solver = LqnSolver(SolverOptions(convergence_criterion_ms=criterion))
        model = build_trade_model(APP_SERV_F, typical_workload(1200), parameters)
        solution = solver.solve(model)
        rows.append(
            (
                criterion,
                solution.solve_time_s * 1000.0,
                solution.iterations,
                solution.response_ms["browse"],
            )
        )
    criterion_table = format_table(
        ["criterion (ms)", "solve time (ms)", "iterations", "predicted MRT (ms)"],
        rows,
        title="Layered solver: convergence criterion vs solve time (AppServF, 1200 clients)",
    )

    # Hybrid start-up delay: rebuild the hybrid from scratch and time it.
    start = time.perf_counter()
    rebuilt = AdvancedHybridModel.build(parameters, list(ALL_APP_SERVERS))
    startup = time.perf_counter() - start

    # Capacity query costs.
    hist_before = historical.model.predictions_made
    historical.max_clients(APP_SERV_S.name, 500.0)
    hist_capacity_predictions = historical.model.predictions_made - hist_before
    lqn_before = lqn.solver.solve_count
    lqn.max_clients(APP_SERV_S.name, 500.0)
    lqn_capacity_solves = lqn.solver.solve_count - lqn_before

    summary = format_kv(
        {
            "historical per-prediction delay (us)": hist_delay * 1e6,
            "hybrid per-prediction delay (us)": hybrid_delay * 1e6,
            "layered per-prediction delay (ms)": lqn_delay * 1e3,
            "layered/historical delay ratio": lqn_delay / hist_delay,
            "hybrid start-up delay (s)": startup,
            "hybrid start-up LQN solves": rebuilt.report.lqn_solves,
            "capacity query, historical (model evaluations)": hist_capacity_predictions,
            "capacity query, layered (full solves)": lqn_capacity_solves,
            "paper's anchors": "LQNS up to 3 s/solve; hybrid start-up 11 s; historical ~instant",
        },
        title="Section 8.5: prediction-evaluation delays",
    )

    return ExperimentResult(
        experiment_id="delay",
        title="Section 8.5: prediction delays",
        rendered=criterion_table + "\n\n" + summary,
        data={
            "historical_delay_s": hist_delay,
            "hybrid_delay_s": hybrid_delay,
            "lqn_delay_s": lqn_delay,
            "startup_delay_s": startup,
            "criterion_rows": rows,
            "lqn_capacity_solves": lqn_capacity_solves,
        },
    )
