"""Table 2 — layered queuing method processing-time parameters.

Regenerates the paper's table 2: per-request-type mean processing times on
the application and database servers, calibrated on the established AppServF
by the offline single-request-type procedure of section 5.  Also reports the
per-request-type database call counts (the paper's 1.14 browse / 2 buy) and
the solver's solve-time behaviour under the calibration.
"""

from __future__ import annotations

from repro.experiments import ground_truth as gt
from repro.experiments.scenario import ExperimentResult, SOLVER_OPTIONS
from repro.lqn.builder import build_trade_model
from repro.lqn.solver import LqnSolver
from repro.servers.catalogue import APP_SERV_F
from repro.util.tables import format_kv, format_table
from repro.workload.trade import typical_workload

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    """Report the LQN calibration the way the paper's table 2 does."""
    calibration = gt.lqn_calibration(fast=fast)

    rows = []
    for name, crt in sorted(calibration.request_types.items()):
        p = crt.parameters
        rows.append(
            (
                name,
                p.app_demand_ms,
                p.db_cpu_per_call_ms,
                p.db_calls,
                p.db_disk_per_call_ms,
                crt.measured_throughput_req_per_s,
                crt.clients_used,
            )
        )
    table = format_table(
        [
            "request type",
            "app server (ms)",
            "db server (ms/call)",
            "db calls/request",
            "disk (ms/call)",
            "calib. tput (req/s)",
            "calib. clients",
        ],
        rows,
        title="Table 2: layered queuing processing-time parameters (on AppServF)",
        precision=4,
    )

    # A representative solve, for the paper's "solutions after a maximum of
    # 3 seconds under a convergence criterion of 20 ms" remark.
    solver = LqnSolver(SOLVER_OPTIONS)
    model = build_trade_model(
        APP_SERV_F, typical_workload(800), calibration.to_model_parameters()
    )
    solution = solver.solve(model)
    summary = format_kv(
        {
            "calibration server": calibration.reference_server,
            "calibration wall time (s)": calibration.calibration_time_s,
            "representative solve time (ms)": solution.solve_time_s * 1000.0,
            "solver iterations": solution.iterations,
            "app/db concurrency (model)": "50 / 20 (paper values)",
        },
        title="Calibration metadata",
    )

    return ExperimentResult(
        experiment_id="table2",
        title="Table 2: layered queuing processing-time parameters",
        rendered=table + "\n\n" + summary,
        data={"rows": rows, "calibration_time_s": calibration.calibration_time_s},
    )
