"""Shared setup for the resource-management experiments (figures 5-8).

Section 9.1's configuration: a 16-server pool (8 new AppServS, 4 AppServF,
4 AppServVF); three service classes (10 % buy at 150 ms, 45 % high-priority
browse at 300 ms, 45 % low-priority browse at 600 ms); the less accurate
**hybrid** model drives the allocator while the more accurate **historical**
model stands in for the real system's response times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.scenario import (
    SOLVER_OPTIONS,
    build_historical_model,
    rm_server_pool,
    rm_workload_for,
)
from repro.prediction.interface import HistoricalPredictor, HybridPredictor
from repro.resource_manager.allocation import ManagedServer
from repro.resource_manager.slack import SlackAnalysis, SlackSweepResult, sweep_loads
from repro.servers.catalogue import ALL_APP_SERVERS

__all__ = ["RmSetup", "build_rm_setup", "default_loads", "weighted_prediction_accuracy"]


@dataclass
class RmSetup:
    """Everything figures 5-8 need."""

    servers: list[ManagedServer]
    predictor: HybridPredictor  # the allocator's (less accurate) model
    ground_truth: HistoricalPredictor  # stands in for real response times

    def sweep(self, loads: list[int], slack: float) -> SlackSweepResult:
        """Fig-5/6 helper: both cost metrics across loads at one slack."""
        return sweep_loads(
            loads,
            slack,
            workload_for=rm_workload_for,
            servers=self.servers,
            predictor=self.predictor,
            ground_truth=self.ground_truth,
        )

    def analysis(self, slacks: list[float], loads: list[int]) -> SlackAnalysis:
        """Fig-7/8 helper: averaged metrics across a slack sweep."""
        return SlackAnalysis.run(
            slacks,
            loads,
            workload_for=rm_workload_for,
            servers=self.servers,
            predictor=self.predictor,
            ground_truth=self.ground_truth,
        )


_SETUP_CACHE: dict[bool, RmSetup] = {}


def build_rm_setup(*, fast: bool = False) -> RmSetup:
    """Calibrate both models and assemble the section-9 scenario."""
    if fast in _SETUP_CACHE:
        return _SETUP_CACHE[fast]
    from repro.experiments import ground_truth as gt

    parameters = gt.lqn_calibration(fast=fast).to_model_parameters()
    predictor = HybridPredictor.from_parameters(
        parameters, list(ALL_APP_SERVERS), solver_options=SOLVER_OPTIONS
    )
    ground_truth = HistoricalPredictor(
        build_historical_model(fast=fast, with_mix=True), name="ground_truth"
    )
    setup = RmSetup(
        servers=rm_server_pool(), predictor=predictor, ground_truth=ground_truth
    )
    _SETUP_CACHE[fast] = setup
    return setup


def default_loads(*, fast: bool = False) -> list[int]:
    """Total-client x-axis for the load sweeps."""
    if fast:
        return list(range(2000, 17000, 3000))
    return list(range(1000, 18000, 1000))


def weighted_prediction_accuracy(setup: RmSetup, *, fast: bool = False) -> float:
    """Predictor accuracy weighted by server count (the paper's 92.5 %).

    Accuracy here is in the paper's section-9 sense: ``y`` such that
    multiplying the actual client capacity by ``y`` gives the predicted
    capacity — measured per architecture at the 600 ms goal and weighted by
    the number of servers of that architecture in the pool.
    """
    weights: dict[str, int] = {}
    for server in setup.servers:
        weights[server.architecture] = weights.get(server.architecture, 0) + 1
    accuracies = []
    total = 0
    for arch_name, count in weights.items():
        predicted = setup.predictor.max_clients(arch_name, 600.0)
        actual = setup.ground_truth.max_clients(arch_name, 600.0)
        if actual > 0:
            accuracies.append((1.0 - abs(predicted - actual) / actual) * count)
            total += count
    return float(np.sum(accuracies) / total) if total else float("nan")
